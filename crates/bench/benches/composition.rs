//! Ablation: streaming composition vs host-layer execution
//! (DESIGN.md §5.3, paper Fig. 11) — functional end-to-end runs of
//! AXPYDOT in both variants on the dataflow substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use fblas_arch::Device;
use fblas_core::apps::{axpydot_host_layer, axpydot_streaming};
use fblas_core::host::Fpga;

fn bench(c: &mut Criterion) {
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let n = 8_192usize;
    let w = fpga.alloc_from("w", vec![2.0f32; n]);
    let v = fpga.alloc_from("v", vec![1.0f32; n]);
    let u = fpga.alloc_from("u", vec![0.5f32; n]);

    let mut g = c.benchmark_group("axpydot");
    g.sample_size(10);
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let (beta, _) = axpydot_streaming(&fpga, &w, &v, &u, 1.0, 16).unwrap();
            std::hint::black_box(beta)
        });
    });
    g.bench_function("host_layer", |b| {
        b.iter(|| {
            let (_z, beta, _) = axpydot_host_layer(&fpga, &w, &v, &u, 1.0, 16).unwrap();
            std::hint::black_box(beta)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
