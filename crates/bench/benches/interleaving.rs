//! Ablation: DDR interleaving on/off (DESIGN.md §5.5, paper Sec. VI-A
//! and VI-C) — evaluates the memory model's effect on routine timing
//! estimates, including the bank-contention case behind the AXPYDOT
//! anomaly.

use criterion::{criterion_group, criterion_main, Criterion};
use fblas_arch::{BankAssignment, Device, MemorySystem};
use fblas_bench::model;

fn bench(c: &mut Criterion) {
    let dev = Device::Stratix10Gx2800;

    let mut g = c.benchmark_group("interleaving_model");
    g.sample_size(20);
    g.bench_function("dot_16M_banked", |b| {
        b.iter(|| {
            std::hint::black_box(model::dot_time::<f32>(dev, 16 << 20, 32, true, false).seconds)
        });
    });
    g.bench_function("dot_16M_interleaved", |b| {
        b.iter(|| {
            std::hint::black_box(model::dot_time::<f32>(dev, 16 << 20, 32, true, true).seconds)
        });
    });
    g.bench_function("axpydot_contended", |b| {
        b.iter(|| std::hint::black_box(model::axpydot_times::<f32>(dev, 16 << 20, 16)));
    });
    g.finish();

    // Also sanity-assert the ablation direction once (cheap, not timed):
    let banked = model::dot_time::<f32>(dev, 16 << 20, 32, true, false).seconds;
    let interleaved = model::dot_time::<f32>(dev, 16 << 20, 32, true, true).seconds;
    assert!(
        interleaved < banked,
        "interleaving must speed up the two-stream DOT ({interleaved} vs {banked})"
    );
    let m = MemorySystem::new(4, 19.2e9, 8 << 30, false);
    let shared = m.stream_bandwidths(&[BankAssignment { bank: 0 }, BankAssignment { bank: 0 }]);
    assert!(
        (shared[0] - 9.6e9).abs() < 1.0,
        "bank sharing halves bandwidth"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
