//! Ablation: vectorization width W (DESIGN.md §5.2).
//!
//! Benchmarks the functional dataflow simulation of the DOT module at
//! several widths. In the *model*, W trades resources for cycles; in the
//! *simulator*, W only changes the reduction grouping, so wall time is
//! roughly flat — this bench documents the substrate's throughput and
//! guards against regressions in the channel hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fblas_core::routines::Dot;
use fblas_hlssim::{channel, ModuleKind, Simulation};

fn run_dot(n: usize, w: usize) -> f32 {
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 256, "x");
    let (ty, ry) = channel(sim.ctx(), 256, "y");
    let (tr, rr) = channel(sim.ctx(), 1, "r");
    sim.add_module("sx", ModuleKind::Interface, move || {
        tx.push_iter((0..n).map(|i| (i % 7) as f32))
    });
    sim.add_module("sy", ModuleKind::Interface, move || {
        ty.push_iter((0..n).map(|i| (i % 5) as f32))
    });
    Dot::new(n, w).attach(&mut sim, rx, ry, tr);
    let out = std::sync::Arc::new(std::sync::Mutex::new(0.0f32));
    let out2 = out.clone();
    sim.add_module("res", ModuleKind::Interface, move || {
        *out2.lock().unwrap() = rr.pop()?;
        Ok(())
    });
    sim.run().unwrap();
    let v = *out.lock().unwrap();
    v
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot_width");
    g.sample_size(10);
    let n = 16_384;
    for w in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| std::hint::black_box(run_dot(n, w)));
        });
    }
    g.finish();

    // The model side: cycle counts must halve as W doubles.
    let mut g = c.benchmark_group("dot_width_model");
    g.sample_size(10);
    g.bench_function("cost_eval", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for w in [16usize, 32, 64, 128, 256] {
                acc += Dot::new(100_000_000, w).cost::<f32>().cycles();
            }
            std::hint::black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
