//! Ablation: tiles-by-rows vs tiles-by-columns GEMV (DESIGN.md §5.1,
//! paper Sec. III-B). The two variants have different I/O complexities
//! and replay patterns; this bench runs both functionally end to end
//! (readers → module → writers/replay).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fblas_core::helpers::writers::replay_vector_through_memory;
use fblas_core::helpers::{read_matrix, read_vector, read_vector_replayed, write_vector};
use fblas_core::host::DeviceBuffer;
use fblas_core::routines::gemv::{Gemv, GemvVariant};
use fblas_hlssim::{channel, Simulation};

fn run_gemv(variant: GemvVariant, n: usize, t: usize, w: usize) {
    let cfg = Gemv::new(variant, n, n, t, t, w);
    let mut sim = Simulation::new();
    let a = DeviceBuffer::from_vec("a", vec![0.5f32; n * n], 0);
    let x = DeviceBuffer::from_vec("x", vec![1.0f32; cfg.x_len()], 1);
    let y = DeviceBuffer::from_vec("y", vec![2.0f32; cfg.y_len()], 2);
    let out = DeviceBuffer::<f32>::zeroed("out", cfg.y_len(), 3);
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (tyi, ryi) = channel(sim.ctx(), 64, "yi");
    let (tyo, ryo) = channel(sim.ctx(), 64, "yo");
    read_matrix(&mut sim, &a, n, n, cfg.a_tiling(), ta, 1);
    read_vector_replayed(&mut sim, &x, tx, cfg.x_repetitions());
    cfg.attach(&mut sim, 1.0, 0.0, ra, rx, ryi, tyo);
    if cfg.y_rounds() == 1 {
        read_vector(&mut sim, &y, tyi);
        write_vector(&mut sim, &out, cfg.y_len(), ryo);
    } else {
        replay_vector_through_memory(&mut sim, &y, &out, cfg.y_len(), cfg.y_rounds(), tyi, ryo);
    }
    sim.run().unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv_tiling");
    g.sample_size(10);
    let (n, t, w) = (96usize, 32usize, 8usize);
    for (label, variant) in [
        ("rows", GemvVariant::RowStreamed),
        ("cols", GemvVariant::ColStreamed),
        ("trans_rows", GemvVariant::TransRowStreamed),
        ("trans_cols", GemvVariant::TransColStreamed),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &variant, |b, &v| {
            b.iter(|| run_gemv(v, n, t, w));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
