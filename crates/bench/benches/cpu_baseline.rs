//! CPU comparator benchmarks: serial vs multi-threaded fblas-refblas
//! kernels (the machinery behind the CPU columns of Tables IV–VI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fblas_refblas as refblas;
use fblas_refblas::parallel::default_threads;

fn bench(c: &mut Criterion) {
    let threads = default_threads();

    let n = 1 << 20;
    let x: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
    let mut g = c.benchmark_group("cpu_dot_1M");
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(refblas::level1::dot(&x, &y)));
    });
    g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
        b.iter(|| std::hint::black_box(refblas::parallel::dot(&x, &y, t)));
    });
    g.finish();

    let m = 512;
    let a: Vec<f64> = (0..m * m).map(|i| (i % 23) as f64).collect();
    let xv: Vec<f64> = (0..m).map(|i| (i % 7) as f64).collect();
    let mut yv = vec![0.0f64; m];
    let mut g = c.benchmark_group("cpu_gemv_512");
    g.sample_size(20);
    g.bench_function("serial", |b| {
        b.iter(|| {
            refblas::level2::gemv(refblas::Trans::No, m, m, 1.0, &a, &xv, 0.0, &mut yv);
            std::hint::black_box(&yv);
        });
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            refblas::parallel::gemv(m, m, 1.0, &a, &xv, 0.0, &mut yv, threads);
            std::hint::black_box(&yv);
        });
    });
    g.finish();

    let k = 128;
    let ma: Vec<f32> = (0..k * k).map(|i| (i % 31) as f32).collect();
    let mb: Vec<f32> = (0..k * k).map(|i| (i % 29) as f32).collect();
    let mut mc = vec![0.0f32; k * k];
    let mut g = c.benchmark_group("cpu_gemm_128");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            refblas::level3::gemm(
                refblas::Trans::No,
                refblas::Trans::No,
                k,
                k,
                k,
                1.0,
                &ma,
                &mb,
                0.0,
                &mut mc,
            );
            std::hint::black_box(&mc);
        });
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            refblas::parallel::gemm(
                refblas::Trans::No,
                refblas::Trans::No,
                k,
                k,
                k,
                1.0,
                &ma,
                &mb,
                0.0,
                &mut mc,
                threads,
            );
            std::hint::black_box(&mc);
        });
    });
    g.finish();

    // Batched tiny problems (the Table V CPU side).
    let dim = 4;
    let batch = 4096;
    let sz = dim * dim;
    let ba: Vec<f32> = (0..batch * sz).map(|i| (i % 11) as f32).collect();
    let bb: Vec<f32> = (0..batch * sz).map(|i| (i % 9) as f32).collect();
    let mut bc = vec![0.0f32; batch * sz];
    let mut g = c.benchmark_group("cpu_batched_gemm_4x4");
    g.sample_size(20);
    g.bench_function("batch_4096", |b| {
        b.iter(|| {
            refblas::batched::gemm_batched(dim, batch, 1.0, &ba, &bb, 0.0, &mut bc, threads);
            std::hint::black_box(&bc);
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
