//! Ablation: systolic compute/memory tile ratio (DESIGN.md §5.4,
//! paper Fig. 10 right) — functional systolic GEMM runs at several
//! ratios, plus the efficiency-model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fblas_core::host::DeviceBuffer;
use fblas_core::routines::gemm::{read_gemm_a, read_gemm_b, store_c, Gemm, SystolicShape};
use fblas_hlssim::{channel, Simulation};

fn run_gemm(size: usize, ratio: usize) {
    let shape = SystolicShape::new(4, 4);
    let cfg = Gemm::new(size, size, size, shape, 4 * ratio, 4 * ratio);
    let mut sim = Simulation::new();
    let a = DeviceBuffer::from_vec("a", vec![0.5f32; size * size], 0);
    let b = DeviceBuffer::from_vec("b", vec![1.5f32; size * size], 1);
    let c_buf = DeviceBuffer::from_vec("c", vec![0.0f32; size * size], 2);
    let (ta, ra) = channel(sim.ctx(), 512, "a");
    let (tb, rb) = channel(sim.ctx(), 512, "b");
    let (tc, rc) = channel(sim.ctx(), 512, "c");
    read_gemm_a(&mut sim, &a, cfg, ta);
    read_gemm_b(&mut sim, &b, cfg, tb);
    cfg.attach(&mut sim, ra, rb, tc);
    store_c(&mut sim, &c_buf, cfg, 1.0, 0.0, rc);
    sim.run().unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_tile_ratio");
    g.sample_size(10);
    for ratio in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            b.iter(|| run_gemm(32, r));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("gemm_efficiency_model");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let shape = SystolicShape::new(40, 80);
            let mut acc = 0.0;
            for ratio in 1..=12usize {
                let cfg = Gemm::new(4800, 4800, 4800, shape, 40 * ratio, 80 * ratio);
                acc += cfg.efficiency();
            }
            std::hint::black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
