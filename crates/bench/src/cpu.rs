//! CPU comparator timing (the paper's MKL-on-Xeon columns).
//!
//! Measurements use `fblas-refblas` with its multi-threaded kernels.
//! Problem sizes beyond what a test machine can reasonably hold or
//! finish (the paper's 48K×48K GEMM runs for minutes even on MKL) are
//! measured at a feasible size and extrapolated linearly in flops; the
//! measurement basis is carried in the result so every table prints it.

use std::time::Instant;

use fblas_refblas as refblas;
use fblas_refblas::Real;

/// A (possibly extrapolated) CPU timing.
#[derive(Debug, Clone)]
pub struct CpuTime {
    /// Estimated seconds at the target size.
    pub seconds: f64,
    /// Human-readable measurement basis, e.g. `measured` or
    /// `extrapolated from N=2^24`.
    pub basis: String,
}

/// Best-of-`reps` wall time of a closure.
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn seq<T: Real>(n: usize, seed: f64) -> Vec<T> {
    (0..n)
        .map(|i| T::from_f64(((i as f64 + seed) * 0.61803).sin()))
        .collect()
}

/// Parallel DOT at target size `n` (measured directly up to 2^24,
/// extrapolated linearly beyond).
pub fn dot_time<T: Real>(n: usize, threads: usize) -> CpuTime {
    let cap = 1 << 24;
    let m = n.min(cap);
    let x = seq::<T>(m, 0.0);
    let y = seq::<T>(m, 1.0);
    let secs = best_of(3, || {
        std::hint::black_box(refblas::parallel::dot(&x, &y, threads));
    });
    scale(secs, m as f64, n as f64, "N")
}

/// Parallel GEMV at target `n × n` (measured up to 4096², extrapolated
/// by element count beyond).
pub fn gemv_time<T: Real>(n: usize, threads: usize) -> CpuTime {
    let cap = 4096;
    let m = n.min(cap);
    let a = seq::<T>(m * m, 0.0);
    let x = seq::<T>(m, 1.0);
    let mut y = seq::<T>(m, 2.0);
    let secs = best_of(3, || {
        refblas::parallel::gemv(m, m, T::ONE, &a, &x, T::ZERO, &mut y, threads);
        std::hint::black_box(&y);
    });
    scale(secs, (m * m) as f64, (n * n) as f64, "N^2")
}

/// Parallel GEMM at target `n³` (measured up to 512³, extrapolated by
/// flop count beyond — the paper's 8K–48K sizes are far past what the
/// reference kernel finishes in harness time).
pub fn gemm_time<T: Real>(n: usize, threads: usize) -> CpuTime {
    let cap = 512;
    let m = n.min(cap);
    let a = seq::<T>(m * m, 0.0);
    let b = seq::<T>(m * m, 1.0);
    let mut c = vec![T::ZERO; m * m];
    let secs = best_of(2, || {
        refblas::parallel::gemm(
            refblas::Trans::No,
            refblas::Trans::No,
            m,
            m,
            m,
            T::ONE,
            &a,
            &b,
            T::ZERO,
            &mut c,
            threads,
        );
        std::hint::black_box(&c);
    });
    scale(secs, (m as f64).powi(3), (n as f64).powi(3), "N^3")
}

/// Batched tiny GEMM, measured directly (cheap at any paper size).
pub fn batched_gemm_time<T: Real>(dim: usize, batch: usize, threads: usize) -> CpuTime {
    let sz = dim * dim;
    let a = seq::<T>(batch * sz, 0.0);
    let b = seq::<T>(batch * sz, 1.0);
    let mut c = vec![T::ZERO; batch * sz];
    let secs = best_of(3, || {
        refblas::batched::gemm_batched(dim, batch, T::ONE, &a, &b, T::ZERO, &mut c, threads);
        std::hint::black_box(&c);
    });
    CpuTime {
        seconds: secs,
        basis: "measured".into(),
    }
}

/// Batched tiny TRSM, measured directly.
pub fn batched_trsm_time<T: Real>(dim: usize, batch: usize, threads: usize) -> CpuTime {
    let sz = dim * dim;
    let mut a = vec![T::ZERO; batch * sz];
    for p in 0..batch {
        for i in 0..dim {
            for j in 0..=i {
                a[p * sz + i * dim + j] = T::from_f64(0.2 + 0.1 * (i + j) as f64);
            }
            a[p * sz + i * dim + i] += T::from_f64(2.0);
        }
    }
    let mut b = seq::<T>(batch * sz, 3.0);
    let secs = best_of(3, || {
        refblas::batched::trsm_batched(
            refblas::Uplo::Lower,
            refblas::Diag::NonUnit,
            dim,
            batch,
            T::ONE,
            &a,
            &mut b,
            threads,
        );
        std::hint::black_box(&b);
    });
    CpuTime {
        seconds: secs,
        basis: "measured".into(),
    }
}

/// AXPYDOT at target `n`, measured up to 2^24.
pub fn axpydot_time<T: Real>(n: usize) -> CpuTime {
    let cap = 1 << 24;
    let m = n.min(cap);
    let w = seq::<T>(m, 0.0);
    let v = seq::<T>(m, 1.0);
    let u = seq::<T>(m, 2.0);
    let secs = best_of(3, || {
        std::hint::black_box(refblas::apps::axpydot(&w, &v, &u, T::from_f64(0.9)));
    });
    scale(secs, m as f64, n as f64, "N")
}

/// BICG at target `n × n`, measured up to 4096².
pub fn bicg_time<T: Real>(n: usize) -> CpuTime {
    let cap = 4096;
    let m = n.min(cap);
    let a = seq::<T>(m * m, 0.0);
    let p = seq::<T>(m, 1.0);
    let r = seq::<T>(m, 2.0);
    let secs = best_of(2, || {
        std::hint::black_box(refblas::apps::bicg(m, m, &a, &p, &r));
    });
    scale(secs, (m * m) as f64, (n * n) as f64, "N^2")
}

/// GEMVER at target `n × n`, measured up to 2048².
pub fn gemver_time<T: Real>(n: usize) -> CpuTime {
    let cap = 2048;
    let m = n.min(cap);
    let a = seq::<T>(m * m, 0.0);
    let u1 = seq::<T>(m, 1.0);
    let v1 = seq::<T>(m, 2.0);
    let u2 = seq::<T>(m, 3.0);
    let v2 = seq::<T>(m, 4.0);
    let y = seq::<T>(m, 5.0);
    let z = seq::<T>(m, 6.0);
    let secs = best_of(2, || {
        std::hint::black_box(refblas::apps::gemver(
            m,
            T::from_f64(1.1),
            T::from_f64(0.9),
            &a,
            &u1,
            &v1,
            &u2,
            &v2,
            &y,
            &z,
        ));
    });
    scale(secs, (m * m) as f64, (n * n) as f64, "N^2")
}

fn scale(measured: f64, measured_work: f64, target_work: f64, unit: &str) -> CpuTime {
    if (target_work - measured_work).abs() < 1e-9 {
        CpuTime {
            seconds: measured,
            basis: "measured".into(),
        }
    } else {
        CpuTime {
            seconds: measured * target_work / measured_work,
            basis: format!("extrapolated ({unit} scaling, basis {measured_work:.3e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sizes_are_marked_measured() {
        let t = dot_time::<f32>(1 << 16, 2);
        assert_eq!(t.basis, "measured");
        assert!(t.seconds > 0.0);
    }

    #[test]
    fn oversized_problems_are_extrapolated() {
        let t = gemm_time::<f32>(2048, 2);
        assert!(t.basis.contains("extrapolated"));
        let direct = gemm_time::<f32>(256, 2);
        assert!(t.seconds > direct.seconds);
    }

    #[test]
    fn batched_is_measured_directly() {
        let t = batched_gemm_time::<f64>(4, 1024, 2);
        assert_eq!(t.basis, "measured");
    }
}
