//! Shared machinery for the fblas-rs benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! FBLAS paper's evaluation (Sec. VI). Functional correctness of the
//! streaming modules is established by the test suite at verification
//! sizes; the harness then evaluates the *models* (cycle, frequency,
//! resource, memory-contention) at the paper's full problem sizes —
//! exactly the quantities the paper reports — and measures the CPU
//! comparator for the CPU columns.
//!
//! [`model`] computes FPGA execution-time estimates for paper-scale
//! problems; [`cpu`] times the `fblas-refblas` comparator, extrapolating
//! linearly in flops where the paper's sizes exceed what a test machine
//! can hold or compute in reasonable time (each such extrapolation is
//! printed alongside the measurement basis).

#![warn(missing_docs)]

pub mod audit;
pub mod cpu;
pub mod metrics;
pub mod model;

/// Pretty-print seconds in the paper's table units (microseconds, or
/// seconds for the long GEMM rows).
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} (sec)")
    } else {
        format!("{:.0}", seconds * 1e6)
    }
}
