//! FPGA execution-time models at paper-scale problem sizes.
//!
//! These wrap the same primitives the core library uses —
//! [`fblas_core::perf::estimate_time`] over the routine cost models and
//! the DDR bank model — with the stream/bank layouts of the evaluation
//! configurations, so the harness binaries can evaluate Tables IV–VI
//! and Figs. 10–11 at sizes that would be impractical to push through
//! the functional simulator element by element.

use fblas_arch::{Device, RoutineClass};
use fblas_core::perf::{estimate_time, StreamDemand, TimingEstimate};
use fblas_core::routines::gemm::{Gemm, SystolicShape};
use fblas_core::routines::gemv::{Gemv, GemvVariant};
use fblas_core::routines::level3::{Side, Trsm};
use fblas_core::routines::{Axpy, Diag, Dot, Ger, Trans, Uplo, VecCopy};
use fblas_core::scalar::Scalar;
use fblas_hlssim::{streamed_cycles, PipelineCost};

fn banked(device: Device, ix: usize) -> usize {
    ix % device.model().dram_banks
}

/// The device's memory system with interleaving on or off. Table IV/V/VI
/// runs interleave data across the DDR modules (Sec. VI-D); the Fig. 11
/// composition study runs with interleaving disabled (BSP limitation,
/// Sec. VI-C).
pub fn memory(device: Device, interleaved: bool) -> fblas_arch::MemorySystem {
    let mut m = device.memory();
    m.set_interleaved(interleaved);
    m
}

fn eb<T: Scalar>() -> u64 {
    T::PRECISION.elem_bytes()
}

/// DOT of `n` elements at width `w`. With `from_dram`, both operands
/// stream from distinct DDR banks; otherwise they are generated on-chip
/// (the Fig. 10 configuration) and the estimate is compute bound.
pub fn dot_time<T: Scalar>(
    device: Device,
    n: usize,
    w: usize,
    from_dram: bool,
    interleaved: bool,
) -> TimingEstimate {
    let m = Dot::new(n, w);
    let streams = if from_dram {
        vec![
            StreamDemand::new(banked(device, 0), n as u64 * eb::<T>()),
            StreamDemand::new(banked(device, 1), n as u64 * eb::<T>()),
        ]
    } else {
        Vec::new()
    };
    estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &m.estimate::<T>(),
        if from_dram { 3 } else { 1 },
        eb::<T>(),
        m.cost::<T>(),
        &streams,
        &memory(device, interleaved),
    )
}

/// GEMV (`n × m`, tiles `tn × tm`, width `w`), operands in DRAM unless
/// `from_dram` is false (matrix generated on-chip, Fig. 10 middle).
#[allow(clippy::too_many_arguments)]
pub fn gemv_time<T: Scalar>(
    device: Device,
    n: usize,
    m: usize,
    tn: usize,
    tm: usize,
    w: usize,
    from_dram: bool,
    interleaved: bool,
) -> TimingEstimate {
    let g = Gemv::new(GemvVariant::RowStreamed, n, m, tn.min(n), tm.min(m), w);
    let streams = if from_dram {
        vec![
            StreamDemand::new(banked(device, 0), (n * m) as u64 * eb::<T>()),
            StreamDemand::new(
                banked(device, 1),
                (m * g.x_repetitions()) as u64 * eb::<T>(),
            ),
            StreamDemand::new(banked(device, 2), 2 * n as u64 * eb::<T>()),
        ]
    } else {
        Vec::new()
    };
    estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &g.estimate::<T>(),
        if from_dram { 4 } else { 1 },
        eb::<T>(),
        g.cost::<T>(),
        &streams,
        &memory(device, interleaved),
    )
}

/// Systolic GEMM on a `pr × pc` array with compute/memory tile ratio
/// `ratio`, square `size³` problem, operands interleaved across banks
/// (the Table IV configuration).
pub fn gemm_time<T: Scalar>(
    device: Device,
    size: usize,
    pr: usize,
    pc: usize,
    ratio: usize,
    interleaved: bool,
) -> TimingEstimate {
    let shape = SystolicShape::new(pr, pc);
    let g = Gemm::new(size, size, size, shape, pr * ratio, pc * ratio);
    let bytes = (size * size) as u64 * eb::<T>();
    let streams = vec![
        StreamDemand::new(banked(device, 0), bytes * g.tile_cols() as u64),
        StreamDemand::new(banked(device, 1), bytes * g.tile_rows() as u64),
        StreamDemand::new(banked(device, 2), 2 * bytes),
    ];
    estimate_time(
        device,
        RoutineClass::Systolic,
        true,
        &g.estimate::<T>(),
        3,
        eb::<T>(),
        g.cost::<T>(),
        &streams,
        &memory(device, interleaved),
    )
}

/// Fully unrolled batched GEMM of `batch` problems of size `dim`
/// (Table V): one problem enters the array every `dim` cycles; traffic
/// is three matrices per problem plus the C read.
pub fn batched_gemm_time<T: Scalar>(
    device: Device,
    dim: usize,
    batch: usize,
    interleaved: bool,
) -> TimingEstimate {
    let g = Gemm::fully_unrolled(dim);
    let est = g.estimate::<T>();
    let cost = PipelineCost::pipelined(est.latency, (batch * dim) as u64);
    let sz = (dim * dim * batch) as u64 * eb::<T>();
    let streams = vec![
        StreamDemand::new(banked(device, 0), sz),
        StreamDemand::new(banked(device, 1), sz),
        StreamDemand::new(banked(device, 2), 2 * sz),
    ];
    estimate_time(
        device,
        RoutineClass::Systolic,
        true,
        &est,
        3,
        eb::<T>(),
        cost,
        &streams,
        &memory(device, interleaved),
    )
}

/// Fully unrolled batched left TRSM (Table V).
pub fn batched_trsm_time<T: Scalar>(
    device: Device,
    dim: usize,
    batch: usize,
    interleaved: bool,
) -> TimingEstimate {
    let t = Trsm::new(
        dim,
        dim,
        Side::Left,
        Uplo::Lower,
        Trans::No,
        Diag::NonUnit,
        dim,
    );
    let est = t.estimate::<T>();
    let cost = PipelineCost::pipelined(est.latency, (batch * dim) as u64);
    let tri = (dim * (dim + 1) / 2 * batch) as u64 * eb::<T>();
    let sz = (dim * dim * batch) as u64 * eb::<T>();
    let streams = vec![
        StreamDemand::new(banked(device, 0), tri),
        StreamDemand::new(banked(device, 1), 2 * sz),
    ];
    estimate_time(
        device,
        RoutineClass::Systolic,
        true,
        &est,
        3,
        eb::<T>(),
        cost,
        &streams,
        &memory(device, interleaved),
    )
}

/// AXPYDOT: returns `(streaming, host_layer)` times (Fig. 11 left,
/// Table VI).
pub fn axpydot_times<T: Scalar>(device: Device, n: usize, w: usize) -> (f64, f64) {
    axpydot_times_mem::<T>(device, n, w, false)
}

/// AXPYDOT with explicit interleaving control (Table VI uses it on).
pub fn axpydot_times_mem<T: Scalar>(
    device: Device,
    n: usize,
    w: usize,
    interleaved: bool,
) -> (f64, f64) {
    let axpy = Axpy::new(n, w);
    let dot = Dot::new(n, w);
    let copy = VecCopy::new(n, w);
    let nb = n as u64 * eb::<T>();
    let mem = memory(device, interleaved);

    // Streaming: w, v, u from three banks; z never leaves the chip.
    let circuit = axpy.estimate::<T>().merge(dot.estimate::<T>());
    let cost = PipelineCost::pipelined(streamed_cycles(&[axpy.cost::<T>(), dot.cost::<T>()]), 0);
    let streams = [
        StreamDemand::new(banked(device, 0), nb),
        StreamDemand::new(banked(device, 1), nb),
        StreamDemand::new(banked(device, 2), nb),
    ];
    let t_s = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &circuit,
        4,
        eb::<T>(),
        cost,
        &streams,
        &mem,
    );

    // Host layer: COPY (w -> z), AXPY (z read+write on one bank), DOT.
    let zb = banked(device, 3);
    let t_copy = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &copy.estimate::<T>(),
        2,
        eb::<T>(),
        copy.cost::<T>(),
        &[
            StreamDemand::new(banked(device, 0), nb),
            StreamDemand::new(zb, nb),
        ],
        &mem,
    );
    let t_axpy = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &axpy.estimate::<T>(),
        3,
        eb::<T>(),
        axpy.cost::<T>(),
        &[
            StreamDemand::new(banked(device, 1), nb),
            StreamDemand::new(zb, 2 * nb),
        ],
        &mem,
    );
    let t_dot = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &dot.estimate::<T>(),
        3,
        eb::<T>(),
        dot.cost::<T>(),
        &[
            StreamDemand::new(zb, nb),
            StreamDemand::new(banked(device, 2), nb),
        ],
        &mem,
    );
    (t_s.seconds, t_copy.seconds + t_axpy.seconds + t_dot.seconds)
}

/// BICG: returns `(streaming, host_layer)` times.
pub fn bicg_times<T: Scalar>(
    device: Device,
    n: usize,
    tn: usize,
    tm: usize,
    w: usize,
) -> (f64, f64) {
    bicg_times_mem::<T>(device, n, tn, tm, w, false)
}

/// BICG with explicit interleaving control.
pub fn bicg_times_mem<T: Scalar>(
    device: Device,
    n: usize,
    tn: usize,
    tm: usize,
    w: usize,
    interleaved: bool,
) -> (f64, f64) {
    let g1 = Gemv::new(GemvVariant::RowStreamed, n, n, tn.min(n), tm.min(n), w);
    let g2 = Gemv::new(GemvVariant::TransRowStreamed, n, n, tn.min(n), tm.min(n), w);
    let e = eb::<T>();
    let mem = memory(device, interleaved);
    let nn = (n * n) as u64 * e;

    let circuit = g1.estimate::<T>().merge(g2.estimate::<T>());
    let cost = PipelineCost::pipelined(streamed_cycles(&[g1.cost::<T>(), g2.cost::<T>()]), 0);
    let streams = [
        StreamDemand::new(banked(device, 0), nn),
        StreamDemand::new(banked(device, 1), (n * g1.x_repetitions()) as u64 * e),
        StreamDemand::new(banked(device, 2), n as u64 * e),
        StreamDemand::new(banked(device, 3), n as u64 * e),
        StreamDemand::new(banked(device, 1), (2 * n * g2.y_rounds()) as u64 * e),
    ];
    let t_s = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &circuit,
        5,
        e,
        cost,
        &streams,
        &mem,
    );

    // Host layer: two GEMV calls, A read twice.
    let per_call = |g: &Gemv| {
        let streams = [
            StreamDemand::new(banked(device, 0), nn),
            StreamDemand::new(banked(device, 1), (n * g.x_repetitions()) as u64 * e),
            StreamDemand::new(banked(device, 2), 2 * n as u64 * e),
        ];
        estimate_time(
            device,
            RoutineClass::Streaming,
            true,
            &g.estimate::<T>(),
            4,
            e,
            g.cost::<T>(),
            &streams,
            &mem,
        )
        .seconds
    };
    let g2h = Gemv::new(GemvVariant::TransColStreamed, n, n, tn.min(n), tm.min(n), w);
    (t_s.seconds, per_call(&g1) + per_call(&g2h))
}

/// GEMVER: returns `(streaming, host_layer)` times.
pub fn gemver_times<T: Scalar>(
    device: Device,
    n: usize,
    tn: usize,
    tm: usize,
    w: usize,
) -> (f64, f64) {
    gemver_times_mem::<T>(device, n, tn, tm, w, false)
}

/// GEMVER with explicit interleaving control.
pub fn gemver_times_mem<T: Scalar>(
    device: Device,
    n: usize,
    tn: usize,
    tm: usize,
    w: usize,
    interleaved: bool,
) -> (f64, f64) {
    let e = eb::<T>();
    let mem = memory(device, interleaved);
    let nn = (n * n) as u64 * e;
    let nv = n as u64 * e;
    let ger = Ger::new(n, n, tn.min(n), tm.min(n), w);
    let gemv_t = Gemv::new(GemvVariant::TransRowStreamed, n, n, tn.min(n), tm.min(n), w);
    let gemv = Gemv::new(GemvVariant::RowStreamed, n, n, tn.min(n), tm.min(n), w);
    let copy = VecCopy::new(n * n, w);

    // Streaming component 1: A -> GER -> GER -> (store B, GEMVt).
    let c1_circuit = ger
        .estimate::<T>()
        .merge(ger.estimate::<T>())
        .merge(gemv_t.estimate::<T>());
    let c1_cost = PipelineCost::pipelined(
        streamed_cycles(&[ger.cost::<T>(), ger.cost::<T>(), gemv_t.cost::<T>()]),
        0,
    );
    let c1_streams = [
        StreamDemand::new(banked(device, 0), nn),
        StreamDemand::new(banked(device, 1), nn),
        StreamDemand::new(banked(device, 2), (2 * n * gemv_t.y_rounds()) as u64 * e),
    ];
    let t1 = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &c1_circuit,
        8,
        e,
        c1_cost,
        &c1_streams,
        &mem,
    );
    // Component 2: one GEMV pass over B.
    let c2_streams = [
        StreamDemand::new(banked(device, 1), nn),
        StreamDemand::new(banked(device, 2), (n * gemv.x_repetitions()) as u64 * e),
        StreamDemand::new(banked(device, 3), nv),
    ];
    let t2 = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &gemv.estimate::<T>(),
        4,
        e,
        gemv.cost::<T>(),
        &c2_streams,
        &mem,
    );
    let t_stream = t1.seconds + t2.seconds;

    // Host layer: COPY(A->B), 2x GER, COPY(z->x), GEMVt, GEMV.
    let t_copy_b = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &copy.estimate::<T>(),
        2,
        e,
        copy.cost::<T>(),
        &[
            StreamDemand::new(banked(device, 0), nn),
            StreamDemand::new(banked(device, 1), nn),
        ],
        &mem,
    );
    let ger_streams = [
        StreamDemand::new(banked(device, 1), 2 * nn),
        StreamDemand::new(banked(device, 2), nv),
        StreamDemand::new(banked(device, 3), (n * ger.y_repetitions()) as u64 * e),
    ];
    let t_ger = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &ger.estimate::<T>(),
        4,
        e,
        ger.cost::<T>(),
        &ger_streams,
        &mem,
    );
    let gemv_streams = [
        StreamDemand::new(banked(device, 1), nn),
        StreamDemand::new(banked(device, 2), (n * gemv.x_repetitions()) as u64 * e),
        StreamDemand::new(banked(device, 3), 2 * nv),
    ];
    let t_gemv = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &gemv.estimate::<T>(),
        4,
        e,
        gemv.cost::<T>(),
        &gemv_streams,
        &mem,
    );
    let copy_v = VecCopy::new(n, w);
    let t_copy_x = estimate_time(
        device,
        RoutineClass::Streaming,
        true,
        &copy_v.estimate::<T>(),
        2,
        e,
        copy_v.cost::<T>(),
        &[
            StreamDemand::new(banked(device, 2), nv),
            StreamDemand::new(banked(device, 3), nv),
        ],
        &mem,
    );
    let t_host = t_copy_b.seconds + 2.0 * t_ger.seconds + t_copy_x.seconds + 2.0 * t_gemv.seconds;
    (t_stream, t_host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_from_dram_is_memory_bound() {
        let t = dot_time::<f32>(Device::Stratix10Gx2800, 1 << 24, 32, true, false);
        assert!(t.memory_bound);
        let t = dot_time::<f32>(Device::Stratix10Gx2800, 1 << 24, 32, false, false);
        assert!(!t.memory_bound, "on-chip generation removes the DRAM cap");
    }

    #[test]
    fn wider_dot_is_faster_when_compute_bound() {
        let t16 = dot_time::<f32>(Device::Stratix10Gx2800, 100_000_000, 16, false, false);
        let t256 = dot_time::<f32>(Device::Stratix10Gx2800, 100_000_000, 256, false, false);
        assert!(t256.seconds < t16.seconds / 8.0);
    }

    #[test]
    fn composition_speedups_in_paper_ranges() {
        let dev = Device::Stratix10Gx2800;
        let (s, h) = axpydot_times::<f32>(dev, 16 << 20, 16);
        let speedup = h / s;
        assert!(speedup > 3.0 && speedup < 5.0, "axpydot {speedup}");

        let (s, h) = bicg_times::<f32>(dev, 8192, 1024, 1024, 64);
        let speedup = h / s;
        assert!(speedup > 1.1 && speedup < 2.2, "bicg {speedup}");

        let (s, h) = gemver_times::<f32>(dev, 8192, 2048, 2048, 32);
        let speedup = h / s;
        assert!(speedup > 1.5 && speedup < 4.5, "gemver {speedup}");
    }

    #[test]
    fn batched_times_scale_with_batch() {
        let dev = Device::Stratix10Gx2800;
        let t8 = batched_gemm_time::<f32>(dev, 4, 8 << 10, true);
        let t32 = batched_gemm_time::<f32>(dev, 4, 32 << 10, true);
        assert!(t32.seconds > 3.0 * t8.seconds && t32.seconds < 5.0 * t8.seconds);
        let t = batched_trsm_time::<f32>(dev, 4, 8 << 10, true);
        assert!(t.seconds > 0.0);
    }

    #[test]
    fn gemm_time_reasonable_at_paper_scale() {
        // SGEMM 8K^3 on the 40x80 Stratix array: paper measures 1.01 s.
        let t = gemm_time::<f32>(Device::Stratix10Gx2800, 8192, 40, 80, 12, true);
        assert!(t.seconds > 0.4 && t.seconds < 2.5, "got {}", t.seconds);
    }
}
