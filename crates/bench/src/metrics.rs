//! Machine-readable benchmark output.
//!
//! Every harness binary prints its human-readable table *and* writes a
//! `BENCH_<name>.json` file with the same numbers, so regressions can be
//! diffed mechanically and CI can assert the schema stays stable.
//!
//! The schema is deliberately small and versioned:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "table1",
//!   "producer": "fblas-bench",
//!   "meta": { "device": "Stratix 10", ... },
//!   "rows": [ { "w": 16, "luts": 784, ... }, ... ]
//! }
//! ```
//!
//! `rows` is a flat list of objects whose values are numbers or strings;
//! nothing nests deeper, so any JSON consumer can load it into a table.
//! The output directory defaults to the current directory and can be
//! redirected with `FBLAS_BENCH_DIR`.

use std::path::PathBuf;

use serde::Value;

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// One benchmark's worth of rows, accumulated then written as JSON.
pub struct BenchReport {
    name: String,
    meta: Vec<(String, Value)>,
    rows: Vec<Value>,
}

/// A cell value: number or string.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Unsigned integer cell.
    U(u64),
    /// Float cell.
    F(f64),
    /// Text cell.
    S(String),
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::U(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::U(v as u64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Self {
        Cell::U(v as u64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::F(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::S(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::S(v)
    }
}

impl From<Cell> for Value {
    fn from(c: Cell) -> Value {
        match c {
            Cell::U(v) => Value::U64(v),
            Cell::F(v) => Value::F64(v),
            Cell::S(v) => Value::Str(v),
        }
    }
}

impl BenchReport {
    /// Start an empty report for the benchmark called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Attach run-level metadata (device, precision, ...).
    pub fn meta(&mut self, key: impl Into<String>, value: impl Into<Cell>) -> &mut Self {
        self.meta.push((key.into(), value.into().into()));
        self
    }

    /// Append one row of (column, value) cells.
    pub fn add_row<K: Into<String>, C: Into<Cell>>(
        &mut self,
        fields: impl IntoIterator<Item = (K, C)>,
    ) -> &mut Self {
        self.rows.push(Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into().into()))
                .collect(),
        ));
        self
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The report as a JSON value tree.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema_version".to_string(), Value::U64(SCHEMA_VERSION)),
            ("bench".to_string(), Value::Str(self.name.clone())),
            (
                "producer".to_string(),
                Value::Str("fblas-bench".to_string()),
            ),
            ("meta".to_string(), Value::Object(self.meta.clone())),
            ("rows".to_string(), Value::Array(self.rows.clone())),
        ])
    }

    /// The report as pretty-printed JSON text.
    pub fn json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("value tree always serializes")
    }

    /// The file this report writes to: `BENCH_<name>.json` in
    /// `FBLAS_BENCH_DIR` (or the current directory when unset).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("FBLAS_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the report, returning the path written. Also announces the
    /// file on stdout so table output and artifact stay associated.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, self.json())?;
        println!("\n[bench metrics] wrote {}", path.display());
        Ok(path)
    }
}

/// Check that a parsed JSON document matches the `BENCH_*.json` schema.
/// Returns a description of the first violation, if any.
pub fn validate_schema(doc: &Value) -> Result<(), String> {
    if doc.get("schema_version").and_then(Value::as_u64) != Some(SCHEMA_VERSION) {
        return Err(format!("schema_version must be {SCHEMA_VERSION}"));
    }
    if doc.get("bench").and_then(Value::as_str).is_none() {
        return Err("missing string field `bench`".to_string());
    }
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing array field `rows`".to_string())?;
    for (i, row) in rows.iter().enumerate() {
        let obj = row
            .as_object()
            .ok_or_else(|| format!("row {i} is not an object"))?;
        for (k, v) in obj {
            match v {
                Value::U64(_) | Value::I64(_) | Value::F64(_) | Value::Str(_) => {}
                _ => return Err(format!("row {i} field `{k}` must be a number or string")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_validates() {
        let mut report = BenchReport::new("unit");
        report.meta("device", "test");
        report.add_row([("w", Cell::U(16)), ("latency", Cell::F(50.5))]);
        report.add_row([("w", Cell::U(32)), ("latency", Cell::F(51.0))]);
        assert_eq!(report.len(), 2);

        let doc: Value = serde_json::from_str(&report.json()).unwrap();
        validate_schema(&doc).unwrap();
        assert_eq!(doc.get("bench").and_then(Value::as_str), Some("unit"));
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("w").and_then(Value::as_u64), Some(16));
    }

    #[test]
    fn validator_rejects_nested_rows() {
        let doc: Value =
            serde_json::from_str(r#"{"schema_version":1,"bench":"x","rows":[{"bad":[1,2]}]}"#)
                .unwrap();
        assert!(validate_schema(&doc).is_err());
    }
}
