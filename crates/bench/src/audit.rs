//! Regression gating for `BENCH_*.json` artifacts.
//!
//! Every harness binary stamps its report with audit metadata
//! ([`stamp_audit`]): the drift tolerance the gate applies and the
//! columns that are *volatile* — measured wall-clock on the host running
//! the harness (the `cpu_*` columns of Tables IV–VI) rather than
//! deterministic model output. The `bench-diff` binary then compares a
//! fresh run against the committed baselines under
//! `benchmarks/baselines/`, skipping volatile columns, and fails CI on
//! any relative change beyond tolerance.
//!
//! The model columns are pure functions of the paper's constants, so
//! their baseline diff is exactly zero unless a model changed — the
//! tolerance exists to give intentional recalibrations a visible,
//! blessable threshold rather than a silent drift path.

use std::path::{Path, PathBuf};

use serde::Value;

use crate::metrics::{validate_schema, BenchReport};

/// Default relative-change tolerance of the bench gate, overridable per
/// invocation with `bench-diff --tolerance`.
pub const DEFAULT_BENCH_TOLERANCE: f64 = 0.02;

/// Columns that are wall-clock measurements of the harness host rather
/// than model output, identified by prefix. These never gate.
pub const VOLATILE_PREFIX: &str = "cpu_";

/// Stamp a report with the audit metadata the bench gate reads back:
/// the gating tolerance and the report's volatile columns (beyond the
/// implicit [`VOLATILE_PREFIX`] rule).
pub fn stamp_audit(report: &mut BenchReport, volatile: &[&str]) {
    report.meta("audit_tolerance", DEFAULT_BENCH_TOLERANCE);
    report.meta("audit_volatile", volatile.join(","));
}

/// Whether a column is exempt from gating: explicitly listed in the
/// baseline's `audit_volatile` meta, or matching [`VOLATILE_PREFIX`].
pub fn is_volatile(column: &str, declared: &[String]) -> bool {
    column.starts_with(VOLATILE_PREFIX) || declared.iter().any(|v| v == column)
}

/// One gated cell whose relative change exceeded tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Row index within `rows`.
    pub row: usize,
    /// Column name.
    pub column: String,
    /// Baseline cell, rendered as text.
    pub baseline: String,
    /// Current cell, rendered as text.
    pub current: String,
    /// Symmetric relative change (0 for pure string mismatches).
    pub rel_change: f64,
}

impl DiffEntry {
    /// Render as a one-line gate message.
    pub fn describe(&self, bench: &str) -> String {
        format!(
            "{bench} row {} `{}`: baseline {} -> current {} ({:+.2}%)",
            self.row,
            self.column,
            self.baseline,
            self.current,
            self.rel_change * 100.0
        )
    }
}

/// Symmetric relative difference, bounded to `[0, 1]`: 0 when equal,
/// `|a-b| / max(|a|, |b|)` otherwise (so a zero baseline still gates).
pub fn rel_change(baseline: f64, current: f64) -> f64 {
    if baseline == current {
        0.0
    } else {
        (baseline - current).abs() / baseline.abs().max(current.abs())
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(f) => format!("{f:.6}"),
        Value::Str(s) => format!("{s:?}"),
        other => format!("{other:?}"),
    }
}

/// Volatile columns declared by a report's `audit_volatile` meta.
pub fn declared_volatile(doc: &Value) -> Vec<String> {
    doc.get("meta")
        .and_then(|m| m.get("audit_volatile"))
        .and_then(Value::as_str)
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default()
}

/// Diff a current `BENCH_*.json` document against its baseline.
///
/// Structural mismatches — different bench name, row count, or a
/// baseline column missing from the current run — are errors (`Err`);
/// new columns in the current run are additive and ignored. Cell-level
/// regressions beyond `tolerance` come back as [`DiffEntry`]s; an empty
/// vector means the run is within tolerance everywhere.
pub fn diff_docs(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
) -> Result<Vec<DiffEntry>, String> {
    validate_schema(baseline).map_err(|e| format!("baseline: {e}"))?;
    validate_schema(current).map_err(|e| format!("current: {e}"))?;

    let name = |doc: &Value| doc.get("bench").and_then(Value::as_str).map(String::from);
    let (base_name, cur_name) = (name(baseline).unwrap(), name(current).unwrap());
    if base_name != cur_name {
        return Err(format!("bench name changed: {base_name} -> {cur_name}"));
    }

    fn rows(doc: &Value) -> &Vec<Value> {
        doc.get("rows").and_then(Value::as_array).unwrap()
    }
    let (base_rows, cur_rows) = (rows(baseline), rows(current));
    if base_rows.len() != cur_rows.len() {
        return Err(format!(
            "{base_name}: row count changed: {} -> {}",
            base_rows.len(),
            cur_rows.len()
        ));
    }

    let volatile = declared_volatile(baseline);
    let mut regressions = Vec::new();
    for (i, (brow, crow)) in base_rows.iter().zip(cur_rows).enumerate() {
        for (column, bval) in brow.as_object().unwrap() {
            if is_volatile(column, &volatile) {
                continue;
            }
            let cval = crow
                .get(column)
                .ok_or_else(|| format!("{base_name}: row {i} lost column `{column}`"))?;
            let changed = match (bval.as_f64(), cval.as_f64()) {
                (Some(b), Some(c)) => {
                    let rel = rel_change(b, c);
                    if rel > tolerance {
                        Some(rel)
                    } else {
                        None
                    }
                }
                // Non-numeric (or type-changed) cells gate on equality.
                _ => (bval != cval).then_some(0.0),
            };
            if let Some(rel) = changed {
                regressions.push(DiffEntry {
                    row: i,
                    column: column.clone(),
                    baseline: render_cell(bval),
                    current: render_cell(cval),
                    rel_change: rel,
                });
            }
        }
    }
    Ok(regressions)
}

/// The `BENCH_*.json` files in a directory, sorted by name.
pub fn bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Load and parse one bench document.
pub fn load_doc(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e:?}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Cell;

    fn doc(name: &str, volatile: &[&str], rows: &[&[(&str, Cell)]]) -> Value {
        let mut r = BenchReport::new(name);
        stamp_audit(&mut r, volatile);
        for row in rows {
            r.add_row(row.iter().map(|(k, v)| (*k, v.clone())));
        }
        serde_json::from_str(&r.json()).unwrap()
    }

    #[test]
    fn identical_docs_diff_clean() {
        let rows: &[&[(&str, Cell)]] = &[&[("w", Cell::U(16)), ("gops", Cell::F(12.5))]];
        let base = doc("t", &[], rows);
        assert_eq!(diff_docs(&base, &base, 0.02).unwrap(), vec![]);
    }

    #[test]
    fn regression_beyond_tolerance_is_reported() {
        let base = doc("t", &[], &[&[("gops", Cell::F(100.0))]]);
        let cur = doc("t", &[], &[&[("gops", Cell::F(90.0))]]);
        let regs = diff_docs(&base, &cur, 0.02).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].column, "gops");
        assert!((regs[0].rel_change - 0.1).abs() < 1e-12);
        assert!(regs[0].describe("t").contains("`gops`"));

        // The same change passes a looser gate.
        assert!(diff_docs(&base, &cur, 0.15).unwrap().is_empty());
    }

    #[test]
    fn volatile_columns_never_gate() {
        let base = doc(
            "t",
            &["host_jitter"],
            &[&[
                ("cpu_s", Cell::F(1.0)),
                ("host_jitter", Cell::F(5.0)),
                ("fpga_s", Cell::F(2.0)),
            ]],
        );
        let cur = doc(
            "t",
            &["host_jitter"],
            &[&[
                ("cpu_s", Cell::F(9.0)),
                ("host_jitter", Cell::F(50.0)),
                ("fpga_s", Cell::F(2.0)),
            ]],
        );
        assert!(diff_docs(&base, &cur, 0.02).unwrap().is_empty());
        assert_eq!(declared_volatile(&base), vec!["host_jitter".to_string()]);
    }

    #[test]
    fn structural_changes_are_errors() {
        let base = doc("t", &[], &[&[("gops", Cell::F(1.0))]]);
        let renamed = doc("u", &[], &[&[("gops", Cell::F(1.0))]]);
        assert!(diff_docs(&base, &renamed, 0.02).is_err());

        let fewer = doc("t", &[], &[]);
        assert!(diff_docs(&base, &fewer, 0.02).is_err());

        let lost_column = doc("t", &[], &[&[("other", Cell::F(1.0))]]);
        assert!(diff_docs(&base, &lost_column, 0.02)
            .unwrap_err()
            .contains("lost column"));
    }

    #[test]
    fn string_cells_gate_on_equality_and_zero_baselines_gate() {
        let base = doc(
            "t",
            &[],
            &[&[("mode", Cell::from("tiled")), ("x", Cell::F(0.0))]],
        );
        let cur = doc(
            "t",
            &[],
            &[&[("mode", Cell::from("flat")), ("x", Cell::F(0.5))]],
        );
        let regs = diff_docs(&base, &cur, 0.02).unwrap();
        let cols: Vec<&str> = regs.iter().map(|r| r.column.as_str()).collect();
        assert_eq!(cols, vec!["mode", "x"]);
        assert_eq!(rel_change(0.0, 0.5), 1.0);
        assert_eq!(rel_change(3.0, 3.0), 0.0);
    }
}
