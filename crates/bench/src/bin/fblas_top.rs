//! `fblas-top`: live terminal view of the telemetry runtime.
//!
//! ```text
//! fblas-top                          # demo: seeded GEMVER workload, 5 frames
//! fblas-top --frames 10 --interval-ms 100
//! fblas-top --snapshot metrics.json  # render a saved JSON snapshot once
//! ```
//!
//! With `--snapshot` the bin renders a file produced by
//! [`fblas_metrics::expo::snapshot_json`] and exits. Without it, the
//! bin arms the metrics runtime, drives the composed GEMVER pipeline on
//! a background thread, and renders the registry once per interval —
//! routine throughput, channel occupancy and traffic, executor attempt
//! and retry counts, and latency quantiles, with per-second rates
//! computed from frame-to-frame counter deltas.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fblas_arch::Device;
use fblas_core::apps::gemver_streaming;
use fblas_core::host::{Fpga, GemvTuning};
use serde::Value;

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.get(key)
}

fn fmt_quantile(v: Option<&Value>) -> String {
    match v.and_then(Value::as_u64) {
        Some(q) => q.to_string(),
        None => "-".to_string(),
    }
}

/// Display key for a snapshot row: `name{l1=v1,l2=v2}`.
fn row_key(row: &Value) -> String {
    let name = field(row, "name").and_then(Value::as_str).unwrap_or("?");
    let labels: Vec<String> = field(row, "labels")
        .and_then(Value::as_object)
        .map(|pairs| {
            pairs
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect()
        })
        .unwrap_or_default();
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", labels.join(","))
    }
}

/// Render one snapshot document. `prev`/`dt` enable rate columns for
/// counters seen in the previous frame.
fn render(doc: &Value, prev: &BTreeMap<String, u64>, dt: f64) -> BTreeMap<String, u64> {
    let run_id = field(doc, "run_id")
        .and_then(Value::as_str)
        .unwrap_or("-")
        .to_string();
    println!(
        "fblas-top · schema {} · run {}",
        field(doc, "schema").and_then(Value::as_str).unwrap_or("?"),
        run_id
    );

    let mut next = BTreeMap::new();
    if let Some(counters) = field(doc, "counters").and_then(Value::as_array) {
        println!("\n  {:<54} {:>14} {:>12}", "counter", "total", "per_sec");
        for row in counters {
            let key = row_key(row);
            let val = field(row, "value").and_then(Value::as_u64).unwrap_or(0);
            let rate = match (prev.get(&key), dt > 0.0) {
                (Some(&p), true) if val >= p => {
                    format!("{:.0}", (val - p) as f64 / dt)
                }
                _ => "-".to_string(),
            };
            println!("  {key:<54} {val:>14} {rate:>12}");
            next.insert(key, val);
        }
    }
    if let Some(gauges) = field(doc, "gauges").and_then(Value::as_array) {
        if !gauges.is_empty() {
            println!("\n  {:<54} {:>14}", "gauge", "value");
            for row in gauges {
                let key = row_key(row);
                let val = field(row, "value").and_then(Value::as_f64).unwrap_or(0.0);
                println!("  {key:<54} {val:>14.1}");
            }
        }
    }
    if let Some(hists) = field(doc, "histograms").and_then(Value::as_array) {
        if !hists.is_empty() {
            println!(
                "\n  {:<44} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "histogram (µs)", "count", "p50", "p95", "p99", "max"
            );
            for row in hists {
                let key = row_key(row);
                let h = field(row, "hist").unwrap_or(&Value::Null);
                println!(
                    "  {:<44} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    key,
                    field(h, "count").and_then(Value::as_u64).unwrap_or(0),
                    fmt_quantile(field(h, "p50")),
                    fmt_quantile(field(h, "p95")),
                    fmt_quantile(field(h, "p99")),
                    fmt_quantile(field(h, "max")),
                );
            }
        }
    }
    next
}

fn demo_workload(stop: Arc<AtomicBool>) {
    let n = 64usize;
    let tuning = GemvTuning::new(32, 32, 8);
    let seq = |len: usize, s: f64| -> Vec<f64> {
        (0..len).map(|i| ((i as f64 + s) * 0.317).sin()).collect()
    };
    while !stop.load(Ordering::Relaxed) {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let a = fpga.alloc_from("a", seq(n * n, 1.0));
        let u1 = fpga.alloc_from("u1", seq(n, 2.0));
        let v1 = fpga.alloc_from("v1", seq(n, 3.0));
        let u2 = fpga.alloc_from("u2", seq(n, 4.0));
        let v2 = fpga.alloc_from("v2", seq(n, 5.0));
        let y = fpga.alloc_from("y", seq(n, 6.0));
        let z = fpga.alloc_from("z", seq(n, 7.0));
        let b_out = fpga.alloc::<f64>("b_out", n * n);
        let x_out = fpga.alloc::<f64>("x_out", n);
        let w_out = fpga.alloc::<f64>("w_out", n);
        gemver_streaming(
            &fpga, n, 1.1, 0.9, &a, &u1, &v1, &u2, &v2, &y, &z, &b_out, &x_out, &w_out, &tuning,
        )
        .expect("demo gemver runs");
    }
}

fn usage() -> ! {
    eprintln!("usage: fblas-top [--snapshot FILE] [--frames N] [--interval-ms MS]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut snapshot: Option<String> = None;
    let mut frames = 5usize;
    let mut interval_ms = 200u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--snapshot" => snapshot = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--frames" => {
                frames = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    if let Some(path) = snapshot {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fblas-top: cannot read {path}: {e}"));
        let doc: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("fblas-top: {path} is not valid JSON: {e}"));
        let schema = field(&doc, "schema").and_then(Value::as_str);
        assert_eq!(
            schema,
            Some("fblas-metrics-snapshot-v1"),
            "fblas-top: {path} is not a metrics snapshot"
        );
        render(&doc, &BTreeMap::new(), 0.0);
        return;
    }

    // Live demo: arm the runtime, drive GEMVER in the background, and
    // render the registry once per interval.
    let reg = fblas_metrics::install(fblas_hlssim::env::metrics_shards());
    let _scope = fblas_metrics::RunScope::seeded(0xF0F0);
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = stop.clone();
        std::thread::spawn(move || demo_workload(stop))
    };

    let mut prev = BTreeMap::new();
    let mut last = std::time::Instant::now();
    for frame in 0..frames {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        let dt = last.elapsed().as_secs_f64();
        last = std::time::Instant::now();
        println!("\n── frame {}/{frames} ──", frame + 1);
        let doc = fblas_metrics::expo::snapshot_value(&reg.collect());
        prev = render(&doc, &prev, dt);
    }
    stop.store(true, Ordering::Relaxed);
    worker.join().expect("demo workload thread exits cleanly");
}
