//! Regenerates paper Table VI: CPU vs FPGA for the composed kernels
//! (AXPYDOT, BICG, GEMVER; streaming FPGA implementations).
//!
//! ```text
//! cargo run --release -p fblas-bench --bin table6
//! ```

use fblas_arch::Device;
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_bench::{cpu, fmt_time, model};

fn main() {
    let mut report = BenchReport::new("table6");
    fblas_bench::audit::stamp_audit(&mut report, &["cpu_s", "cpu_basis"]);
    report.meta("device", "Stratix 10");
    let dev = Device::Stratix10Gx2800;
    println!("=== Table VI: CPU vs FPGA, composed kernels (Stratix 10) ===\n");
    println!(
        "{:<8} {:<2} {:>9} | {:>12} | {:>12} | {:>12}",
        "Appl.", "P", "N", "CPU [us]", "FPGA [us]", "paper FPGA"
    );

    // AXPYDOT: S/D at 4M and 16M; width 32 single / 16 double.
    for (prec, n, paper_us) in [
        ('S', 4usize << 20, 1_101.0),
        ('S', 16 << 20, 3_783.0),
        ('D', 4 << 20, 2_023.0),
        ('D', 16 << 20, 7_297.0),
    ] {
        let (c, (s, _h)) = if prec == 'S' {
            (
                cpu::axpydot_time::<f32>(n),
                model::axpydot_times_mem::<f32>(dev, n, 32, true),
            )
        } else {
            (
                cpu::axpydot_time::<f64>(n),
                model::axpydot_times_mem::<f64>(dev, n, 16, true),
            )
        };
        report.add_row([
            ("kernel", Cell::from("AXPYDOT")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("fpga_s", Cell::from(s)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<8} {:<2} {:>8}M | {:>12} | {:>12} | {:>12}",
            "AXPYDOT",
            prec,
            n >> 20,
            fmt_time(c.seconds),
            fmt_time(s),
            fmt_time(paper_us / 1e6)
        );
    }

    // BICG: S/D at 2K^2 and 8K^2; width 64 single (4 DDR banks) / 32.
    for (prec, n, paper_us) in [
        ('S', 2_048usize, 550.0),
        ('S', 8_192, 5_879.0),
        ('D', 2_048, 795.7),
        ('D', 8_192, 9_939.0),
    ] {
        let (c, (s, _h)) = if prec == 'S' {
            (
                cpu::bicg_time::<f32>(n),
                model::bicg_times_mem::<f32>(dev, n, 2048, 2048, 64, true),
            )
        } else {
            (
                cpu::bicg_time::<f64>(n),
                model::bicg_times_mem::<f64>(dev, n, 2048, 2048, 32, true),
            )
        };
        report.add_row([
            ("kernel", Cell::from("BICG")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("fpga_s", Cell::from(s)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<8} {:<2} {:>9} | {:>12} | {:>12} | {:>12}",
            "BICG",
            prec,
            format!("{0}Kx{0}K", n / 1024),
            fmt_time(c.seconds),
            fmt_time(s),
            fmt_time(paper_us / 1e6)
        );
    }

    // GEMVER: S/D at 2K^2 and 8K^2; width 32 single / 16 double.
    for (prec, n, paper_us) in [
        ('S', 2_048usize, 2_407.0),
        ('S', 8_192, 37_094.0),
        ('D', 2_048, 4_425.0),
        ('D', 8_192, 64_115.0),
    ] {
        let (c, (s, _h)) = if prec == 'S' {
            (
                cpu::gemver_time::<f32>(n),
                model::gemver_times_mem::<f32>(dev, n, 2048, 2048, 32, true),
            )
        } else {
            (
                cpu::gemver_time::<f64>(n),
                model::gemver_times_mem::<f64>(dev, n, 2048, 2048, 16, true),
            )
        };
        report.add_row([
            ("kernel", Cell::from("GEMVER")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("fpga_s", Cell::from(s)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<8} {:<2} {:>9} | {:>12} | {:>12} | {:>12}",
            "GEMVER",
            prec,
            format!("{0}Kx{0}K", n / 1024),
            fmt_time(c.seconds),
            fmt_time(s),
            fmt_time(paper_us / 1e6)
        );
    }

    println!("\nShape to check: the memory-intensive composed kernels run on the");
    println!("FPGA in times lower than or comparable to the CPU (Sec. VI-D),");
    println!("at ~30% lower board power (see the power model in fblas-arch).");
    report.write().expect("write BENCH_table6.json");
}
