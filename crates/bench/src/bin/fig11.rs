//! Regenerates paper Fig. 11: speedup of streaming compositions over
//! host-layer execution (Stratix 10, W = 16, tiles 1024×1024).
//!
//! ```text
//! cargo run --release -p fblas-bench --bin fig11
//! ```

use fblas_arch::Device;
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_bench::model;

fn main() {
    let mut report = BenchReport::new("fig11");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report
        .meta("device", "Stratix 10")
        .meta("precision", "f32")
        .meta("w", 16u64);
    let dev = Device::Stratix10Gx2800;
    println!("=== Fig. 11: streaming composition speedups (Stratix, f32, W=16) ===\n");

    println!("AXPYDOT (paper: ~4x at all sizes; expected 3x + z-bank contention)");
    for n in [2usize << 20, 4 << 20, 8 << 20, 16 << 20] {
        let (s, h) = model::axpydot_times::<f32>(dev, n, 16);
        report.add_row([
            ("kernel", Cell::from("AXPYDOT")),
            ("n", Cell::from(n)),
            ("streaming_s", Cell::from(s)),
            ("host_s", Cell::from(h)),
            ("speedup", Cell::from(h / s)),
        ]);
        println!(
            "  N = {:>4}M : streaming {:>9.0} us, host {:>9.0} us, speedup {:.2}x",
            n >> 20,
            s * 1e6,
            h * 1e6,
            h / s
        );
    }

    // The bandwidth model yields the ideal I/O-ratio bound (2.0x: A is
    // read once instead of twice). The paper's interface modules only
    // saturate 87% of a bank, giving its expected 1.7x and measured
    // <= 1.45x — same direction, ours is the idealized ceiling.
    println!("\nBICG (paper: expected 1.7x, measured up to 1.45x; model = 2.0x ceiling)");
    for n in [1024usize, 2048, 4096, 8192] {
        let (s, h) = model::bicg_times::<f32>(dev, n, 1024, 1024, 16);
        report.add_row([
            ("kernel", Cell::from("BICG")),
            ("n", Cell::from(n)),
            ("streaming_s", Cell::from(s)),
            ("host_s", Cell::from(h)),
            ("speedup", Cell::from(h / s)),
        ]);
        println!(
            "  {:>4}x{:<4} : streaming {:>9.0} us, host {:>9.0} us, speedup {:.2}x",
            n,
            n,
            s * 1e6,
            h * 1e6,
            h / s
        );
    }

    println!("\nGEMVER (paper: ~2.5-3x; 8N^2 -> 3N^2 I/O, 5N^2 -> 2N^2 cycles)");
    for n in [1024usize, 2048, 4096, 8192] {
        let (s, h) = model::gemver_times::<f32>(dev, n, 1024, 1024, 16);
        report.add_row([
            ("kernel", Cell::from("GEMVER")),
            ("n", Cell::from(n)),
            ("streaming_s", Cell::from(s)),
            ("host_s", Cell::from(h)),
            ("speedup", Cell::from(h / s)),
        ]);
        println!(
            "  {:>4}x{:<4} : streaming {:>9.0} us, host {:>9.0} us, speedup {:.2}x",
            n,
            n,
            s * 1e6,
            h * 1e6,
            h / s
        );
    }

    println!("\n(functional equivalence of streaming and host-layer variants is");
    println!("established by `tests/streaming_compositions.rs` at verification sizes)");
    report.write().expect("write BENCH_fig11.json");
}
