//! Fused-backend throughput vs the threaded dataflow simulator.
//!
//! Runs five planner programs — DOT, a four-op elementwise chain,
//! GEMVER, AXPYDOT, and BICG — through `execute_plan_audited_with_backend`
//! under `Backend::Threaded` and `Backend::Fused`, each at
//! `FBLAS_CHUNK ∈ {1, 256}`. The fused backend compiles validated
//! fusion regions into straight-line loops (no channels, no threads);
//! everything the analyzer cannot fuse falls back to the threaded
//! simulator, so the two backends must agree exactly.
//!
//! Before writing the report the bin asserts, per routine, that all
//! four (backend, chunk) combinations produce bit-identical buffers and
//! DOT scalars and identical modeled cycle counts: the `C = L + I·M`
//! model is a property of the plan, not the execution strategy.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin bench_fused
//! ```
//!
//! Deterministic columns (`routine`, `backend`, `chunk`, `n`,
//! `elements`, `model_cycles`, `fused_regions`) are gated by
//! bench-diff; wall-clock columns carry the volatile `cpu_` prefix and
//! are exempt.

use std::collections::HashMap;
use std::time::Instant;

use fblas_bench::metrics::{BenchReport, Cell};
use fblas_core::composition::{
    execute_plan_audited_with_backend, fusion_plan_for_component, plan, Backend, Op, PlannerConfig,
    Program,
};
use fblas_core::host::DeviceBuffer;

const CHUNKS: [usize; 2] = [1, 256];
const BACKENDS: [Backend; 2] = [Backend::Threaded, Backend::Fused];
const REPS: usize = 3;

const CHAIN_N: usize = 4096;
const DOT_N: usize = 4096;
const AXPYDOT_N: usize = 4096;
const GEMVER_N: usize = 96;
const BICG_N: usize = 96;

/// A benchmark program plus the operand shapes the harness must bind.
struct Case {
    program: Program,
    /// (name, element count) for every vector and matrix operand.
    shapes: Vec<(String, usize)>,
    /// Problem size reported in the `n` column.
    n: usize,
}

fn seq(n: usize, seed: f64) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f64 + seed) * 0.4371).sin() as f32)
        .collect()
}

/// DOT reduction: unfusable (stateful), exercises the pure fallback
/// path — the fused backend must route it to the threaded simulator.
fn case_dot() -> Case {
    let n = DOT_N;
    let mut p = Program::new();
    p.vector("x", n).vector("y", n).scalar("r");
    p.op(Op::Dot {
        x: "x".into(),
        y: "y".into(),
        out: "r".into(),
    });
    Case {
        program: p,
        shapes: vec![("x".into(), n), ("y".into(), n)],
        n,
    }
}

/// Four-op elementwise relay chain: fully fusable, the headline case —
/// one region, one loop, zero channels.
fn case_axpy_chain() -> Case {
    let n = CHAIN_N;
    let mut p = Program::new();
    p.vector("x", n).vector("y", n);
    for out in ["a", "b", "c", "d"] {
        p.vector(out, n);
    }
    p.op(Op::Scal {
        alpha: 1.5,
        x: "x".into(),
        out: "a".into(),
    });
    p.op(Op::Axpy {
        alpha: -0.5,
        x: "a".into(),
        y: "y".into(),
        out: "b".into(),
    });
    p.op(Op::Axpy {
        alpha: 0.25,
        x: "b".into(),
        y: "x".into(),
        out: "c".into(),
    });
    p.op(Op::Copy {
        x: "c".into(),
        out: "d".into(),
    });
    Case {
        program: p,
        shapes: ["x", "y", "a", "b", "c", "d"]
            .iter()
            .map(|s| (s.to_string(), n))
            .collect(),
        n,
    }
}

/// GEMVER (paper Sec. V): two rank-1 updates then two GEMV passes —
/// matrix relays are stateful, so fusion only picks at the edges while
/// the planner's component splits carry the rest.
fn case_gemver() -> Case {
    let n = GEMVER_N;
    let mut p = Program::new();
    p.matrix("A", n, n).matrix("B1", n, n).matrix("B", n, n);
    for v in ["u1", "v1", "u2", "v2", "y", "z", "xv", "w"] {
        p.vector(v, n);
    }
    p.op(Op::Ger {
        alpha: 1.0,
        a: "A".into(),
        x: "u1".into(),
        y: "v1".into(),
        out: "B1".into(),
    });
    p.op(Op::Ger {
        alpha: 1.0,
        a: "B1".into(),
        x: "u2".into(),
        y: "v2".into(),
        out: "B".into(),
    });
    p.op(Op::Gemv {
        alpha: 3.0,
        beta: 1.0,
        a: "B".into(),
        transposed: true,
        x: "y".into(),
        y: Some("z".into()),
        out: "xv".into(),
    });
    p.op(Op::Gemv {
        alpha: 2.0,
        beta: 0.0,
        a: "B".into(),
        transposed: false,
        x: "xv".into(),
        y: None,
        out: "w".into(),
    });
    let mut shapes: Vec<(String, usize)> = ["A", "B1", "B"]
        .iter()
        .map(|s| (s.to_string(), n * n))
        .collect();
    shapes.extend(
        ["u1", "v1", "u2", "v2", "y", "z", "xv", "w"]
            .iter()
            .map(|s| (s.to_string(), n)),
    );
    Case {
        program: p,
        shapes,
        n,
    }
}

/// AXPYDOT (paper Sec. V): `z = w - α·v`, `r = zᵀu` — a fusable relay
/// feeding an unfusable reduction across the handoff buffer.
fn case_axpydot() -> Case {
    let n = AXPYDOT_N;
    let mut p = Program::new();
    p.vector("w", n)
        .vector("v", n)
        .vector("u", n)
        .vector("z", n);
    p.scalar("r");
    p.op(Op::Axpy {
        alpha: -0.75,
        x: "v".into(),
        y: "w".into(),
        out: "z".into(),
    });
    p.op(Op::Dot {
        x: "z".into(),
        y: "u".into(),
        out: "r".into(),
    });
    Case {
        program: p,
        shapes: ["w", "v", "u", "z"]
            .iter()
            .map(|s| (s.to_string(), n))
            .collect(),
        n,
    }
}

/// BICG (paper Sec. V): `q = A·p`, `s = Aᵀ·r` — two independent GEMVs
/// over the same matrix operand.
fn case_bicg() -> Case {
    let n = BICG_N;
    let mut p = Program::new();
    p.matrix("A", n, n);
    for v in ["p", "r", "q", "s"] {
        p.vector(v, n);
    }
    p.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: false,
        x: "p".into(),
        y: None,
        out: "q".into(),
    });
    p.op(Op::Gemv {
        alpha: 1.0,
        beta: 0.0,
        a: "A".into(),
        transposed: true,
        x: "r".into(),
        y: None,
        out: "s".into(),
    });
    Case {
        program: p,
        shapes: [("A".to_string(), n * n)]
            .into_iter()
            .chain(["p", "r", "q", "s"].iter().map(|s| (s.to_string(), n)))
            .collect(),
        n,
    }
}

struct Sample {
    /// Total operand elements bound into the run (work touched).
    elements: u64,
    /// Summed per-component predicted cycles — must be backend- and
    /// chunk-invariant.
    model_cycles: u64,
    /// Fused regions the plan admits under this backend (0 = threaded).
    fused_regions: u64,
    /// Best-of-REPS wall time in seconds.
    wall: f64,
    /// Bit patterns of every buffer and scalar — must be invariant.
    result_bits: Vec<u32>,
}

fn bind(case: &Case) -> HashMap<String, DeviceBuffer<f32>> {
    case.shapes
        .iter()
        .enumerate()
        .map(|(bi, (name, len))| {
            (
                name.clone(),
                DeviceBuffer::from_vec(name, seq(*len, bi as f64 + 1.0), bi % 4),
            )
        })
        .collect()
}

fn run_case(case: &Case, backend: Backend) -> Sample {
    let cfg = PlannerConfig::default();
    let planned = plan(&case.program, &cfg).expect("benchmark program plans");
    let fused_regions = if matches!(backend, Backend::Fused) {
        planned
            .components
            .iter()
            .map(|c| {
                let (_, fp) = fusion_plan_for_component(&case.program, c, false);
                fp.regions.len() as u64
            })
            .sum()
    } else {
        0
    };
    let mut wall = f64::INFINITY;
    let mut result_bits: Vec<u32> = Vec::new();
    let mut model_cycles = 0u64;
    for _ in 0..REPS {
        let bufs = bind(case);
        let t0 = Instant::now();
        let (out, audits) = execute_plan_audited_with_backend::<f32>(
            &case.program,
            &planned,
            &cfg,
            &bufs,
            200.0e6,
            0.25,
            backend,
        )
        .expect("benchmark program executes");
        wall = wall.min(t0.elapsed().as_secs_f64());
        model_cycles = audits.iter().map(|a| a.predicted_cycles).sum();
        let mut bits: Vec<(String, Vec<u32>)> = case
            .shapes
            .iter()
            .map(|(name, _)| {
                (
                    name.clone(),
                    bufs[name].to_host().iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect();
        let mut scalars: Vec<(String, Vec<u32>)> = out
            .scalars
            .iter()
            .map(|(k, v)| (k.clone(), vec![v.to_bits()]))
            .collect();
        bits.append(&mut scalars);
        bits.sort();
        result_bits = bits.into_iter().flat_map(|(_, b)| b).collect();
    }
    Sample {
        elements: case.shapes.iter().map(|(_, l)| *l as u64).sum(),
        model_cycles,
        fused_regions,
        wall,
        result_bits,
    }
}

fn main() {
    let mut report = BenchReport::new("fused");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report
        .meta("chain_n", CHAIN_N as u64)
        .meta("gemver_n", GEMVER_N as u64)
        .meta("reps", REPS as u64);

    println!("=== Fused backend vs threaded simulator ===\n");
    println!(
        "{:<12} {:<9} {:>6} {:>9} {:>12} {:>8} {:>14} {:>10}",
        "routine", "backend", "chunk", "elements", "model_cyc", "regions", "elems/sec", "wall_ms"
    );

    type Builder = fn() -> Case;
    let cases: [(&str, Builder); 5] = [
        ("dot", case_dot),
        ("axpy_chain", case_axpy_chain),
        ("gemver", case_gemver),
        ("axpydot", case_axpydot),
        ("bicg", case_bicg),
    ];

    for (name, builder) in cases {
        let case = builder();
        let mut reference: Option<Sample> = None;
        for backend in BACKENDS {
            for chunk in CHUNKS {
                std::env::set_var("FBLAS_CHUNK", chunk.to_string());
                let s = run_case(&case, backend);
                if let Some(r) = &reference {
                    assert_eq!(
                        r.result_bits, s.result_bits,
                        "{name}: results must be bit-identical across backends and chunks"
                    );
                    assert_eq!(
                        r.model_cycles, s.model_cycles,
                        "{name}: modeled cycles must be backend-invariant"
                    );
                }
                let eps = s.elements as f64 / s.wall;
                println!(
                    "{:<12} {:<9} {:>6} {:>9} {:>12} {:>8} {:>14.0} {:>10.3}",
                    name,
                    backend.as_str(),
                    chunk,
                    s.elements,
                    s.model_cycles,
                    s.fused_regions,
                    eps,
                    s.wall * 1e3
                );
                report.add_row([
                    ("routine", Cell::from(name)),
                    ("backend", Cell::from(backend.as_str())),
                    ("chunk", Cell::from(chunk as u64)),
                    ("n", Cell::from(case.n as u64)),
                    ("elements", Cell::from(s.elements)),
                    ("model_cycles", Cell::from(s.model_cycles)),
                    ("fused_regions", Cell::from(s.fused_regions)),
                    ("cpu_elems_per_sec", Cell::from(eps)),
                    ("cpu_wall_ms", Cell::from(s.wall * 1e3)),
                ]);
                if reference.is_none() {
                    reference = Some(s);
                }
            }
        }
    }
    std::env::remove_var("FBLAS_CHUNK");

    let path = report.write().expect("write BENCH_fused.json");
    println!("\nreport: {}", path.display());
}
