//! Flight-recorder overhead on top of the armed telemetry runtime.
//!
//! Runs the same three simulations as `bench_observe` — DOT, tiled
//! GEMV, and the composed GEMVER pipeline — at the production chunk
//! size with the metrics runtime armed in both modes, and the flight
//! recorder additionally armed in "on" mode. The delta therefore
//! isolates what the recorder itself costs: the watchdog-driven
//! interval gate plus the periodic counter/gauge ring samples.
//!
//! The bin enforces the flight budget in-process: armed DOT may cost at
//! most 3% over recorder-off (best-of-reps, with a 0.5 ms absolute
//! floor so timer quantization on very fast runs cannot fail the gate).
//! The walls under the gate are ~10 ms, so transient machine load can
//! swamp a 3% margin: an apparent breach re-measures up to two more
//! times (keeping the best wall on both sides) before it counts. A real
//! breach aborts before any report is written.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin bench_flight
//! ```
//!
//! Deterministic columns (`routine`, `mode`, `n`, `elements`) are gated
//! by bench-diff; wall-clock columns carry the volatile `cpu_` prefix
//! and are exempt.

use std::time::Instant;

use fblas_arch::Device;
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_core::apps::gemver_streaming;
use fblas_core::helpers;
use fblas_core::host::{DeviceBuffer, Fpga, GemvTuning};
use fblas_core::routines::{Dot, Gemv, GemvVariant};
use fblas_hlssim::{channel, Simulation};
use fblas_metrics::flight::{self, FlightConfig};

const REPS: usize = 5;
const CHUNK: usize = 256;
/// Hard flight budget: recorder-armed may cost at most this fraction
/// over recorder-off on the DOT workload.
const BUDGET: f64 = 0.03;
/// Absolute slack floor guarding the gate against sub-millisecond timer
/// quantization; the 3% relative budget dominates on real runs.
const FLOOR_S: f64 = 0.0005;
/// Total measurement rounds an apparent budget breach is allowed before
/// it counts as real.
const GATE_TRIES: usize = 3;

/// Recorder cadence under test: the `FBLAS_FLIGHT_HZ` default.
const HZ: u32 = 50;
/// Ring window under test: the `FBLAS_FLIGHT_WINDOW` default.
const WINDOW_S: u32 = 10;

const DOT_N: usize = 1 << 18;
const DOT_W: usize = 8;
const GEMV_N: usize = 256;
const GEMV_T: usize = 64;
const GEMV_W: usize = 8;
const GEMVER_N: usize = 128;

fn seq(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 + seed) * 0.4371).sin()).collect()
}

/// One timed run; returns (elements moved, wall seconds).
fn run_dot() -> (u64, f64) {
    let x = seq(DOT_N, 1.0);
    let y = seq(DOT_N, 2.0);
    let cfg = Dot::new(DOT_N, DOT_W);
    let mut sim = Simulation::new();
    let x_buf = DeviceBuffer::from_vec("x", x, 0);
    let y_buf = DeviceBuffer::from_vec("y", y, 0);
    let res_buf = DeviceBuffer::<f64>::zeroed("res", 1, 0);
    let (tx, rx) = channel(sim.ctx(), 1024, "x");
    let (ty, ry) = channel(sim.ctx(), 1024, "y");
    let (tr, rr) = channel(sim.ctx(), 1, "res");
    helpers::read_vector(&mut sim, &x_buf, tx);
    helpers::read_vector(&mut sim, &y_buf, ty);
    cfg.attach(&mut sim, rx, ry, tr);
    helpers::write_scalar(&mut sim, &res_buf, rr);
    let t0 = Instant::now();
    sim.run().expect("dot composition runs");
    (2 * DOT_N as u64 + 1, t0.elapsed().as_secs_f64())
}

fn run_gemv() -> (u64, f64) {
    let cfg = Gemv::new(
        GemvVariant::RowStreamed,
        GEMV_N,
        GEMV_N,
        GEMV_T,
        GEMV_T,
        GEMV_W,
    );
    let a = seq(GEMV_N * GEMV_N, 1.0);
    let x = seq(cfg.x_len(), 2.0);
    let y = seq(cfg.y_len(), 3.0);
    let mut sim = Simulation::new();
    let a_buf = DeviceBuffer::from_vec("a", a, 0);
    let x_buf = DeviceBuffer::from_vec("x", x, 0);
    let y_buf = DeviceBuffer::from_vec("y", y, 0);
    let out_buf = DeviceBuffer::<f64>::zeroed("y_out", cfg.y_len(), 0);
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (txv, rxv) = channel(sim.ctx(), 64, "x");
    let (ty_in, ry_in) = channel(sim.ctx(), 64, "y_in");
    let (ty_out, ry_out) = channel(sim.ctx(), 64, "y_out");
    helpers::read_matrix(&mut sim, &a_buf, GEMV_N, GEMV_N, cfg.a_tiling(), ta, 1);
    helpers::read_vector_replayed(&mut sim, &x_buf, txv, cfg.x_repetitions());
    helpers::read_vector(&mut sim, &y_buf, ty_in);
    cfg.attach(&mut sim, 1.3, 0.7, ra, rxv, ry_in, ty_out);
    helpers::write_vector(&mut sim, &out_buf, cfg.y_len(), ry_out);
    let t0 = Instant::now();
    sim.run().expect("gemv composition runs");
    (cfg.io_ops(), t0.elapsed().as_secs_f64())
}

fn run_gemver() -> (u64, f64) {
    let n = GEMVER_N;
    let tuning = GemvTuning::new(32, 32, 8);
    let a = seq(n * n, 1.0);
    let vs: Vec<Vec<f64>> = (0..6).map(|s| seq(n, s as f64 + 2.0)).collect();
    let fpga = Fpga::new(Device::Stratix10Gx2800);
    let a_buf = fpga.alloc_from("a", a);
    let u1 = fpga.alloc_from("u1", vs[0].clone());
    let v1 = fpga.alloc_from("v1", vs[1].clone());
    let u2 = fpga.alloc_from("u2", vs[2].clone());
    let v2 = fpga.alloc_from("v2", vs[3].clone());
    let y = fpga.alloc_from("y", vs[4].clone());
    let z = fpga.alloc_from("z", vs[5].clone());
    let b_out = fpga.alloc::<f64>("b_out", n * n);
    let x_out = fpga.alloc::<f64>("x_out", n);
    let w_out = fpga.alloc::<f64>("w_out", n);
    let t0 = Instant::now();
    let report = gemver_streaming(
        &fpga, n, 1.1, 0.9, &a_buf, &u1, &v1, &u2, &v2, &y, &z, &b_out, &x_out, &w_out, &tuning,
    )
    .expect("gemver composition runs");
    (report.io_elements, t0.elapsed().as_secs_f64())
}

type Runner = fn() -> (u64, f64);

/// One best-of-[`REPS`] measurement round, modes interleaved within
/// each rep so load drift hits both sides. Returns the elements moved,
/// the best recorder-off and recorder-on walls, and the frame count of
/// the last armed rep's ring (read before disarming).
fn measure(name: &str, runner: Runner) -> (u64, f64, f64, usize) {
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut elements = 0u64;
    for _ in 0..REPS {
        flight::disarm();
        let (e, w) = runner();
        best_off = best_off.min(w);
        flight::install(FlightConfig {
            hz: HZ,
            window_s: WINDOW_S,
        });
        let (e2, w) = runner();
        best_on = best_on.min(w);
        assert_eq!(e, e2, "{name}: recorder-armed run moved different work");
        elements = e;
    }
    let frames = flight::recorder()
        .map(|rec| rec.frames().len())
        .unwrap_or(0);
    flight::disarm();
    (elements, best_off, best_on, frames)
}

fn main() {
    std::env::set_var("FBLAS_CHUNK", CHUNK.to_string());
    // Both modes pay for the armed metrics runtime; the delta is the
    // recorder alone.
    fblas_metrics::install(fblas_hlssim::env::metrics_shards());
    let mut report = BenchReport::new("flight");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report
        .meta("chunk", CHUNK as u64)
        .meta("reps", REPS as u64)
        .meta("budget_pct", BUDGET * 100.0)
        .meta("hz", u64::from(HZ))
        .meta("window_s", u64::from(WINDOW_S));

    println!("=== Flight-recorder overhead (chunk {CHUNK}, {HZ} Hz, best of {REPS}) ===\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "routine", "elements", "off_ms", "on_ms", "overhead"
    );

    let mut frames_seen = 0usize;
    let runners: [(&str, usize, Runner); 3] = [
        ("dot", DOT_N, run_dot),
        ("gemv", GEMV_N, run_gemv),
        ("gemver", GEMVER_N, run_gemver),
    ];

    for (name, n, runner) in runners {
        let (elements, mut best_off, mut best_on, mut frames) = measure(name, runner);
        if name == "dot" {
            // Retry apparent breaches: keep the best wall on both sides
            // across rounds so only a systematic gap survives.
            let mut tries = 1;
            while best_on - best_off > (best_off * BUDGET).max(FLOOR_S) && tries < GATE_TRIES {
                let (_, off, on, fr) = measure(name, runner);
                best_off = best_off.min(off);
                best_on = best_on.min(on);
                frames = frames.max(fr);
                tries += 1;
            }
        }
        frames_seen = frames_seen.max(frames);
        let overhead = (best_on - best_off) / best_off;
        println!(
            "{:<8} {:>10} {:>12.2} {:>12.2} {:>9.2}%",
            name,
            elements,
            best_off * 1e3,
            best_on * 1e3,
            overhead * 100.0
        );
        for (mode, wall) in [("off", best_off), ("on", best_on)] {
            report.add_row([
                ("routine", Cell::from(name)),
                ("mode", Cell::from(mode)),
                ("n", Cell::from(n as u64)),
                ("elements", Cell::from(elements)),
                ("cpu_wall_ms", Cell::from(wall * 1e3)),
                ("cpu_overhead_pct", Cell::from(overhead * 100.0)),
            ]);
        }
        if name == "dot" {
            assert!(
                best_on - best_off <= (best_off * BUDGET).max(FLOOR_S),
                "flight budget breached on {name}: armed {:.3} ms vs off {:.3} ms \
                 ({:.2}% > {:.0}% budget)",
                best_on * 1e3,
                best_off * 1e3,
                overhead * 100.0,
                BUDGET * 100.0
            );
        }
    }

    // Armed reps really recorded: at least one runner's watchdog ticked
    // frames into its ring.
    assert!(frames_seen > 0, "recorder-armed reps sampled no frames");
    std::env::remove_var("FBLAS_CHUNK");

    let path = report.write().expect("write BENCH_flight.json");
    println!("\nreport: {}", path.display());
}
