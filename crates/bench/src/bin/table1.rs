//! Regenerates paper Table I (resource consumption and latency of SCAL
//! and DOT vs vectorization width, single precision, Stratix 10) and
//! prints the Table II device summary as a header.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin table1
//! ```

use fblas_arch::Device;
use fblas_bench::metrics::BenchReport;
use fblas_core::routines::{Dot, Scal};

/// Paper Table I reference values: (W, LUTs, FFs, DSPs, latency).
const PAPER_SCAL: [(usize, u64, u64, u64, u64); 6] = [
    (2, 98, 192, 2, 50),
    (4, 196, 384, 4, 50),
    (8, 392, 768, 8, 50),
    (16, 784, 1_536, 16, 50),
    (32, 1_568, 3_072, 32, 50),
    (64, 3_136, 6_144, 64, 50),
];
const PAPER_DOT: [(usize, u64, u64, u64, u64); 6] = [
    (2, 174, 192, 2, 82),
    (4, 242, 320, 4, 85),
    (8, 378, 640, 8, 89),
    (16, 650, 1_280, 16, 93),
    (32, 1_194, 2_560, 32, 97),
    (64, 2_474, 5_120, 64, 105),
];

fn main() {
    println!("=== Table II: FPGA boards used for evaluation ===\n");
    println!(
        "{:<28} {:>9} {:>11} {:>8} {:>7} {:>10}",
        "FPGA", "ALM", "FF", "M20K", "DSP", "DRAM"
    );
    for dev in Device::PAPER {
        let m = dev.model();
        println!(
            "{:<28} {:>8}K {:>10}K {:>7}K {:>7} {:>4}x8GB   (total)",
            m.name,
            m.total.alms / 1000,
            m.total.ffs / 1000,
            m.total.m20ks as f64 / 1000.0,
            m.total.dsps,
            m.dram_banks
        );
        println!(
            "{:<28} {:>8}K {:>10}K {:>7}K {:>7}          (avail.)",
            "",
            m.available.alms / 1000,
            m.available.ffs / 1000,
            m.available.m20ks as f64 / 1000.0,
            m.available.dsps
        );
    }

    println!("\n=== Table I: resource consumption and latency (f32) ===\n");
    println!(
        "{:>4} | {:>6} {:>6} {:>5} {:>4} | {:>6} {:>6} {:>5} {:>4} |  (model)",
        "W", "LUTs", "FFs", "DSPs", "Lat", "LUTs", "FFs", "DSPs", "Lat"
    );
    println!("     |          SCAL              |            DOT            |");
    let mut report = BenchReport::new("table1");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report.meta("precision", "f32").meta("n", 1u64 << 20);
    for i in 0..6 {
        let (w, ..) = PAPER_SCAL[i];
        let s = Scal::new(1 << 20, w).estimate::<f32>();
        let d = Dot::new(1 << 20, w).estimate::<f32>();
        report.add_row([
            ("w", w as u64),
            ("scal_luts", s.luts),
            ("scal_ffs", s.resources.ffs),
            ("scal_dsps", s.resources.dsps),
            ("scal_latency", s.latency),
            ("dot_luts", d.luts),
            ("dot_ffs", d.resources.ffs),
            ("dot_dsps", d.resources.dsps),
            ("dot_latency", d.latency),
        ]);
        println!(
            "{:>4} | {:>6} {:>6} {:>5} {:>4} | {:>6} {:>6} {:>5} {:>4} |",
            w,
            s.luts,
            s.resources.ffs,
            s.resources.dsps,
            s.latency,
            d.luts,
            d.resources.ffs,
            d.resources.dsps,
            d.latency
        );
        let (pw, pl, pf, pd, plat) = PAPER_SCAL[i];
        let (_, ql, qf, qd, qlat) = PAPER_DOT[i];
        debug_assert_eq!(pw, w);
        println!(
            "{:>4} | {:>6} {:>6} {:>5} {:>4} | {:>6} {:>6} {:>5} {:>4} |  (paper)",
            "", pl, pf, pd, plat, ql, qf, qd, qlat
        );
    }
    println!("\nSCAL reproduces the paper exactly (the published coefficients");
    println!("are the model); DOT tracks within ~7% on logic, exactly on DSPs.");
    report.write().expect("write BENCH_table1.json");
}
