//! Future-work experiment: the memory-bound routines on an HBM device.
//!
//! The paper's scaling study generates data on-chip precisely because
//! its DDR testbed cannot feed wide modules, noting the widths "can
//! exploit memory interfaces faster than the one offered by the
//! testbed (e.g., HBM)" (Sec. VI-B), and lists Xilinx support as future
//! work (Sec. VI). This binary runs that projection on the modeled
//! Alveo U280: DOT/GEMV fed from HBM pseudo-channels, with the optimal
//! width computed by the Sec. IV-B formula from the available
//! bandwidth.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin hbm_scaling
//! ```

use fblas_arch::{optimal_width, Device, Precision};
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_bench::model;

fn main() {
    let mut report = BenchReport::new("hbm_scaling");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    let hbm = Device::AlveoU280;
    let ddr = Device::Stratix10Gx2800;
    let m_hbm = hbm.model();

    println!("=== Future work: memory-bound routines with HBM (Alveo U280) ===\n");
    println!(
        "device: {} — {} pseudo-channels x {:.2} GB/s = {:.0} GB/s aggregate",
        m_hbm.name,
        m_hbm.dram_banks,
        m_hbm.dram_bank_bandwidth / 1e9,
        m_hbm.total_dram_bandwidth() / 1e9
    );
    println!(
        "vs paper testbed: {} — 4 x 19.2 = 76.8 GB/s\n",
        ddr.model().name
    );

    // Sec. IV-B: the width the memory system can keep busy.
    let f = 300.0e6;
    for (label, prec) in [("f32", Precision::Single), ("f64", Precision::Double)] {
        let w_ddr = optimal_width(ddr.model().total_dram_bandwidth(), f, prec, 2);
        let w_hbm = optimal_width(m_hbm.total_dram_bandwidth(), f, prec, 2);
        println!(
            "optimal DOT width ({label}, {:.0} MHz): DDR {w_ddr} -> HBM {w_hbm}",
            f / 1e6
        );
    }
    println!();

    // DOT from DRAM at the optimal widths: the HBM device sustains the
    // wide datapaths the paper could only exercise with generated data.
    let n = 256 << 20;
    println!("DOT, N = 256M elements, streamed from memory (interleaved):");
    for (dev, w) in [(ddr, 32usize), (hbm, 256)] {
        let t = model::dot_time::<f32>(dev, n, w, true, true);
        report.add_row([
            ("routine", Cell::from("DOT")),
            ("device", Cell::from(dev.short_name())),
            ("w", Cell::from(w)),
            ("seconds", Cell::from(t.seconds)),
            (
                "memory_bound",
                Cell::from(if t.memory_bound { 1u64 } else { 0 }),
            ),
        ]);
        println!(
            "  {:<8} W={:<4}: {:>8.1} ms ({}, {:.0} MHz)",
            dev.short_name(),
            w,
            t.seconds * 1e3,
            if t.memory_bound {
                "memory bound"
            } else {
                "compute bound"
            },
            t.freq_hz / 1e6
        );
    }

    println!("\nGEMV 32Kx32K f32, tiles 2048x2048, streamed from memory:");
    for (dev, w) in [(ddr, 64usize), (hbm, 256)] {
        let t = model::gemv_time::<f32>(dev, 32_768, 32_768, 2048, 2048, w, true, true);
        report.add_row([
            ("routine", Cell::from("GEMV")),
            ("device", Cell::from(dev.short_name())),
            ("w", Cell::from(w)),
            ("seconds", Cell::from(t.seconds)),
            (
                "memory_bound",
                Cell::from(if t.memory_bound { 1u64 } else { 0 }),
            ),
        ]);
        println!(
            "  {:<8} W={:<4}: {:>8.1} ms ({})",
            dev.short_name(),
            w,
            t.seconds * 1e3,
            if t.memory_bound {
                "memory bound"
            } else {
                "compute bound"
            }
        );
    }

    println!("\nStreaming composition keeps its edge on HBM: the host-layer");
    println!("AXPYDOT still reads and writes its intermediate z on one");
    println!("pseudo-channel (the contention is inherent to materializing z),");
    println!("so the ~4x streaming win persists:");
    for dev in [ddr, hbm] {
        let (s, h) = model::axpydot_times::<f32>(dev, 16 << 20, 16);
        report.add_row([
            ("routine", Cell::from("AXPYDOT")),
            ("device", Cell::from(dev.short_name())),
            ("streaming_s", Cell::from(s)),
            ("host_s", Cell::from(h)),
            ("speedup", Cell::from(h / s)),
        ]);
        println!(
            "  {:<8}: streaming {:>7.0} us vs host {:>7.0} us -> {:.2}x",
            dev.short_name(),
            s * 1e6,
            h * 1e6,
            h / s
        );
    }
    report.write().expect("write BENCH_hbm_scaling.json");
}
