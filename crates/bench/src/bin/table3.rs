//! Regenerates paper Table III: resource consumption, frequency, and
//! power of the highest-performance module configurations.
//!
//! Configurations follow the paper: width 256 (single) / 128 (double)
//! for DOT and GEMV with 1024×1024 tiles; the largest placing systolic
//! arrays with the biggest memory tiles for GEMM.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin table3
//! ```

use fblas_arch::{
    design_overhead, interface_module, Device, FrequencyModel, PowerModel, ResourceEstimate,
    Resources, RoutineClass,
};
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_core::routines::gemm::{Gemm, SystolicShape};
use fblas_core::routines::gemv::{Gemv, GemvVariant};
use fblas_core::routines::Dot;
use fblas_core::scalar::Scalar;

/// Paper Table III values: (ALMs, FFs, M20K, DSP, MHz, W, hyperflex).
struct PaperRow(&'static str, u64, u64, u64, u64, u32, f64, bool);

const PAPER: [PaperRow; 12] = [
    PaperRow("Arria   SDOT ", 9_756, 15_620, 1, 331, 150, 47.3, false),
    PaperRow("Arria   DDOT ", 121_400, 208_300, 3, 512, 150, 47.9, false),
    PaperRow("Arria   SGEMV", 21_560, 40_000, 210, 284, 145, 48.1, false),
    PaperRow(
        "Arria   DGEMV",
        135_900,
        286_700,
        216,
        520,
        132,
        48.6,
        false,
    ),
    PaperRow(
        "Arria   SGEMM",
        102_400,
        263_600,
        1_970,
        1_086,
        197,
        52.1,
        false,
    ),
    PaperRow(
        "Arria   DGEMM",
        135_800,
        280_000,
        658,
        622,
        222,
        49.1,
        false,
    ),
    PaperRow(
        "Stratix SDOT ",
        123_100,
        386_300,
        1_028,
        328,
        358,
        68.7,
        true,
    ),
    PaperRow("Stratix DDOT ", 235_100, 682_700, 773, 512, 366, 68.8, true),
    PaperRow(
        "Stratix SGEMV",
        123_400,
        352_600,
        1_246,
        274,
        347,
        68.0,
        true,
    ),
    PaperRow("Stratix DGEMV", 275_700, 831_900, 999, 520, 347, 69.7, true),
    PaperRow(
        "Stratix SGEMM",
        328_500,
        1_031_000,
        7_767,
        3_270,
        216,
        70.5,
        false,
    ),
    PaperRow(
        "Stratix DGEMM",
        450_900,
        1_054_000,
        2_077,
        1_166,
        260,
        67.5,
        false,
    ),
];

fn full_design<T: Scalar>(
    device: Device,
    est: ResourceEstimate,
    interfaces: usize,
    hyperflex: bool,
) -> Resources {
    let mut total = est.resources + design_overhead(device, hyperflex);
    for _ in 0..interfaces {
        total += interface_module(T::PRECISION, 16);
    }
    total
}

fn row<T: Scalar>(
    label: &str,
    device: Device,
    est: ResourceEstimate,
    interfaces: usize,
    class: RoutineClass,
    paper: &PaperRow,
    report: &mut BenchReport,
) {
    let hf_requested = class == RoutineClass::Streaming;
    let total = full_design::<T>(
        device,
        est,
        interfaces,
        hf_requested && device.model().hyperflex,
    );
    let avail = device.model().available;
    let util = total.max_utilization(&avail);
    let (f, hf) = FrequencyModel::new(device).achieved_hz(class, hf_requested, util);
    let p = PowerModel::new(device).board_power_w(&total);
    let (a_pct, _f_pct, m_pct, d_pct) = total.utilization_pct(&avail);
    println!(
        "{label} | {:>7} ({:>4.1}%) {:>9} {:>6} ({:>4.1}%) {:>5} ({:>4.1}%) | {:>4.0}{} {:>5.1} | (model)",
        total.alms,
        a_pct,
        total.ffs,
        total.m20ks,
        m_pct,
        total.dsps,
        d_pct,
        f / 1e6,
        if hf { "H" } else { " " },
        p
    );
    println!(
        "{} | {:>7}         {:>9} {:>6}         {:>5}         | {:>4}{} {:>5.1} | (paper)",
        " ".repeat(label.len()),
        paper.1,
        paper.2,
        paper.3,
        paper.4,
        paper.5,
        if paper.7 { "H" } else { " " },
        paper.6
    );
    report.add_row([
        ("module", Cell::from(label.trim())),
        ("alms", Cell::from(total.alms)),
        ("ffs", Cell::from(total.ffs)),
        ("m20ks", Cell::from(total.m20ks)),
        ("dsps", Cell::from(total.dsps)),
        ("freq_mhz", Cell::from(f / 1e6)),
        ("power_w", Cell::from(p)),
        ("paper_alms", Cell::from(paper.1)),
        ("paper_freq_mhz", Cell::from(paper.5)),
        ("paper_power_w", Cell::from(paper.6)),
    ]);
}

fn main() {
    let mut report = BenchReport::new("table3");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    println!("=== Table III: module resources, frequency (MHz), power (W) ===\n");
    println!(
        "{:<14} | {:<58} | {:>5} {:>5} |",
        "module", "ALMs            FFs       M20K          DSPs", "F", "P"
    );

    for (di, device) in Device::PAPER.into_iter().enumerate() {
        // DOT: W=256 single / W=128 double; 3 interface modules.
        let base = di * 6;
        row::<f32>(
            PAPER[base].0,
            device,
            Dot::new(1 << 20, 256).estimate::<f32>(),
            3,
            RoutineClass::Streaming,
            &PAPER[base],
            &mut report,
        );
        row::<f64>(
            PAPER[base + 1].0,
            device,
            Dot::new(1 << 20, 128).estimate::<f64>(),
            3,
            RoutineClass::Streaming,
            &PAPER[base + 1],
            &mut report,
        );
        // GEMV: same widths, 1024x1024 tiles, 4 interfaces.
        row::<f32>(
            PAPER[base + 2].0,
            device,
            Gemv::new(GemvVariant::RowStreamed, 1 << 14, 1 << 14, 1024, 1024, 256)
                .estimate::<f32>(),
            4,
            RoutineClass::Streaming,
            &PAPER[base + 2],
            &mut report,
        );
        row::<f64>(
            PAPER[base + 3].0,
            device,
            Gemv::new(GemvVariant::RowStreamed, 1 << 14, 1 << 14, 1024, 1024, 128)
                .estimate::<f64>(),
            4,
            RoutineClass::Streaming,
            &PAPER[base + 3],
            &mut report,
        );
        // GEMM: the paper's largest arrays per device/precision.
        let (s_arr, d_arr) = match device {
            Device::Arria10Gx1150 => ((32usize, 32usize), (16usize, 8usize)),
            Device::Stratix10Gx2800 => ((40, 80), (16, 16)),
            Device::AlveoU280 => unreachable!("Table III covers the paper's devices"),
        };
        let sg = Gemm::new(
            10 * s_arr.0,
            10 * s_arr.1,
            10 * s_arr.0,
            SystolicShape::new(s_arr.0, s_arr.1),
            12 * s_arr.0,
            12 * s_arr.1,
        );
        row::<f32>(
            PAPER[base + 4].0,
            device,
            sg.estimate::<f32>(),
            3,
            RoutineClass::Systolic,
            &PAPER[base + 4],
            &mut report,
        );
        let dg = Gemm::new(
            10 * d_arr.0,
            10 * d_arr.1,
            10 * d_arr.0,
            SystolicShape::new(d_arr.0, d_arr.1),
            12 * d_arr.0,
            12 * d_arr.1,
        );
        row::<f64>(
            PAPER[base + 5].0,
            device,
            dg.estimate::<f64>(),
            3,
            RoutineClass::Systolic,
            &PAPER[base + 5],
            &mut report,
        );
    }
    println!("\nDSP counts track the paper (they are structural); logic and BRAM");
    println!("follow the calibrated Table-I coefficients plus the HyperFlex");
    println!("overhead model, so Stratix rows carry the paper's large fixed cost.");
    report.write().expect("write BENCH_table3.json");
}
