//! Bench regression gate: diff fresh `BENCH_*.json` output against the
//! committed baselines and fail on drift beyond tolerance.
//!
//! ```text
//! bench-diff [--baselines DIR] [--current DIR] [--tolerance F] [--bless]
//! ```
//!
//! * `--baselines` — committed reference documents
//!   (default `benchmarks/baselines`);
//! * `--current`  — a fresh run's output directory
//!   (default `$FBLAS_BENCH_DIR`, else `.`);
//! * `--tolerance` — symmetric relative change allowed per gated cell
//!   (default [`DEFAULT_BENCH_TOLERANCE`]);
//! * `--bless` — instead of gating, copy the current documents over the
//!   baselines (the documented refresh procedure after an intentional
//!   model change).
//!
//! Exit status: 0 clean, 1 regression or structural drift, 2 usage/IO
//! error. Volatile columns (`cpu_*` and anything listed in a baseline's
//! `audit_volatile` meta) never gate.

use std::path::PathBuf;
use std::process::ExitCode;

use fblas_bench::audit::{bench_files, diff_docs, load_doc, DEFAULT_BENCH_TOLERANCE};

struct Args {
    baselines: PathBuf,
    current: PathBuf,
    tolerance: f64,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baselines: PathBuf::from("benchmarks/baselines"),
        current: PathBuf::from(
            std::env::var("FBLAS_BENCH_DIR").unwrap_or_else(|_| ".".to_string()),
        ),
        tolerance: DEFAULT_BENCH_TOLERANCE,
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--baselines" => args.baselines = PathBuf::from(value("--baselines")?),
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("bad --tolerance `{raw}`"))?;
            }
            "--bless" => args.bless = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn bless(args: &Args) -> Result<(), String> {
    let files =
        bench_files(&args.current).map_err(|e| format!("{}: {e}", args.current.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no BENCH_*.json in {} to bless",
            args.current.display()
        ));
    }
    std::fs::create_dir_all(&args.baselines)
        .map_err(|e| format!("{}: {e}", args.baselines.display()))?;
    for file in files {
        load_doc(&file)?; // refuse to bless unparseable output
        let dest = args.baselines.join(file.file_name().unwrap());
        std::fs::copy(&file, &dest).map_err(|e| format!("{}: {e}", dest.display()))?;
        println!("blessed {}", dest.display());
    }
    Ok(())
}

fn gate(args: &Args) -> Result<usize, String> {
    let baselines =
        bench_files(&args.baselines).map_err(|e| format!("{}: {e}", args.baselines.display()))?;
    if baselines.is_empty() {
        return Err(format!(
            "no baselines in {} (run bench-diff --bless after a clean run)",
            args.baselines.display()
        ));
    }
    let mut failures = 0usize;
    for base_path in baselines {
        let file = base_path.file_name().unwrap();
        let cur_path = args.current.join(file);
        let base = load_doc(&base_path)?;
        if !cur_path.exists() {
            println!(
                "FAIL {}: no current run (expected {})",
                file.to_string_lossy(),
                cur_path.display()
            );
            failures += 1;
            continue;
        }
        let cur = load_doc(&cur_path)?;
        let bench = base
            .get("bench")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        match diff_docs(&base, &cur, args.tolerance) {
            Err(e) => {
                println!("FAIL {bench}: {e}");
                failures += 1;
            }
            Ok(regs) if !regs.is_empty() => {
                for r in &regs {
                    println!("FAIL {}", r.describe(&bench));
                }
                failures += 1;
            }
            Ok(_) => println!("ok   {bench}"),
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    if args.bless {
        return match bless(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench-diff: {e}");
                ExitCode::from(2)
            }
        };
    }
    match gate(&args) {
        Ok(0) => {
            println!(
                "bench-diff: all benches within {:.1}% of baseline",
                args.tolerance * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok(n) => {
            println!(
                "bench-diff: {n} bench(es) drifted beyond tolerance {:.1}%",
                args.tolerance * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::from(2)
        }
    }
}
