//! Deterministic fault-injection sweep over the recovery layer.
//!
//! For each routine (DOT, GEMV, GER) a seeded set of fault scenarios is
//! injected into the planned execution via a `fblas-chaos` [`FaultPlan`]
//! and absorbed by [`execute_plan_with_recovery`]: payload bit flips on
//! the push and pop sides (including bit 0, far below numeric noise —
//! the digest guards' territory), element drop and duplication, a
//! latency spike (undetectable by design: it changes timing, not
//! values), a module crash, and a module hang caught by the watchdog
//! deadline.
//!
//! The bin asserts the robustness contract before writing the report:
//! every value-corrupting fault is detected, every detected fault is
//! recovered within the retry budget, and recovered outputs are
//! **bit-identical** to a fault-free reference run.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin bench_chaos [--dump-reports PATH]
//! ```
//!
//! All report columns are deterministic for a fixed `FBLAS_CHAOS_SEED`
//! (wall clock carries the volatile `cpu_` prefix): two runs with the
//! same seed must produce byte-identical fault and recovery reports,
//! which `ci.sh` checks by diffing `--dump-reports` output.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fblas_bench::metrics::{BenchReport, Cell};
use fblas_chaos::{ChaosRng, FaultAction, FaultPlan, FaultSite, ModuleFault};
use fblas_core::composition::{
    execute_plan_with_recovery, plan, Op, PlannerConfig, Program, RecoveryReport, RetryPolicy,
};
use fblas_core::host::DeviceBuffer;

const N: usize = 32;
const DEFAULT_SEED: u64 = 0xFB1A5;
const HANG_DEADLINE: Duration = Duration::from_millis(800);

fn seq(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 + seed) * 0.4371).sin()).collect()
}

/// One routine under test: its program, operand bindings, and the
/// channel/module names the executor gives its dataflow.
struct Routine {
    name: &'static str,
    program: Program,
    cfg: PlannerConfig,
    bindings: Vec<(&'static str, Vec<f64>)>,
    /// The write-back channel for the routine's output stream.
    out_channel: &'static str,
    /// Elements crossing the write-back channel.
    out_len: usize,
    /// An input channel (reader → compute module).
    in_channel: &'static str,
    /// Elements crossing the input channel.
    in_len: usize,
    /// The computational module to crash/hang.
    module: &'static str,
    /// Output operand read back for the bit-identity check (None for
    /// DOT, whose result lives in the scalar map).
    out_operand: Option<&'static str>,
    /// Scalar result name (DOT).
    scalar: Option<&'static str>,
}

fn dot_routine() -> Routine {
    let mut p = Program::new();
    p.vector("x", N).vector("y", N).scalar("r");
    p.op(Op::Dot {
        x: "x".into(),
        y: "y".into(),
        out: "r".into(),
    });
    Routine {
        name: "dot",
        program: p,
        cfg: PlannerConfig {
            tn: N,
            tm: N,
            ..Default::default()
        },
        bindings: vec![("x", seq(N, 1.0)), ("y", seq(N, 2.0))],
        out_channel: "r_res",
        out_len: 1,
        in_channel: "x->0",
        in_len: N,
        module: "dot",
        out_operand: None,
        scalar: Some("r"),
    }
}

fn gemv_routine() -> Routine {
    let mut p = Program::new();
    p.matrix("A", N, N)
        .vector("x", N)
        .vector("y", N)
        .vector("o", N);
    p.op(Op::Gemv {
        alpha: 1.2,
        beta: 0.7,
        a: "A".into(),
        transposed: false,
        x: "x".into(),
        y: Some("y".into()),
        out: "o".into(),
    });
    Routine {
        name: "gemv",
        program: p,
        cfg: PlannerConfig {
            tn: N,
            tm: N,
            ..Default::default()
        },
        bindings: vec![
            ("A", seq(N * N, 1.0)),
            ("x", seq(N, 2.0)),
            ("y", seq(N, 3.0)),
            ("o", vec![0.0; N]),
        ],
        out_channel: "write_o",
        out_len: N,
        in_channel: "x->0",
        in_len: N,
        module: "gemv",
        out_operand: Some("o"),
        scalar: None,
    }
}

fn ger_routine() -> Routine {
    let mut p = Program::new();
    p.matrix("A", N, N)
        .matrix("B", N, N)
        .vector("x", N)
        .vector("y", N);
    p.op(Op::Ger {
        alpha: -0.9,
        a: "A".into(),
        x: "x".into(),
        y: "y".into(),
        out: "B".into(),
    });
    Routine {
        name: "ger",
        program: p,
        cfg: PlannerConfig {
            tn: N,
            tm: N,
            ..Default::default()
        },
        bindings: vec![
            ("A", seq(N * N, 1.0)),
            ("x", seq(N, 2.0)),
            ("y", seq(N, 3.0)),
            ("B", vec![0.0; N * N]),
        ],
        out_channel: "write_B",
        out_len: N * N,
        in_channel: "x->0",
        in_len: N,
        module: "ger",
        out_operand: Some("B"),
        scalar: None,
    }
}

/// One injected-fault experiment.
struct Scenario {
    label: &'static str,
    site: String,
    index: u64,
    bit: Option<u32>,
    plan: FaultPlan,
    deadline: Option<Duration>,
    /// Whether the fault corrupts/loses values (must be detected) or
    /// only perturbs timing (must be absorbed silently).
    expect_detected: bool,
}

fn scenarios(r: &Routine, rng: &mut ChaosRng, seed: u64) -> Vec<Scenario> {
    let mut v = Vec::new();
    // Push-side bit flips: always cover the lowest and highest bit,
    // plus seeded positions — low mantissa bits are invisible to any
    // numeric tolerance and prove the digest guards carry their weight.
    let mut bits = vec![0u32, 63];
    bits.push(rng.below(64) as u32);
    bits.push(rng.below(64) as u32);
    for bit in bits {
        let index = rng.below(r.out_len as u64);
        v.push(Scenario {
            label: "corrupt_push",
            site: r.out_channel.to_string(),
            index,
            bit: Some(bit),
            plan: FaultPlan::new(Some(seed)).channel_fault(
                FaultSite::Push,
                r.out_channel,
                index,
                FaultAction::Corrupt { bit },
            ),
            deadline: None,
            expect_detected: true,
        });
    }
    // Pop-side flip on an input stream: corrupts what the compute
    // module consumes, caught by the input channel's digest pair.
    let bit = rng.below(64) as u32;
    let index = rng.below(r.in_len as u64);
    v.push(Scenario {
        label: "corrupt_pop",
        site: r.in_channel.to_string(),
        index,
        bit: Some(bit),
        plan: FaultPlan::new(Some(seed)).channel_fault(
            FaultSite::Pop,
            r.in_channel,
            index,
            FaultAction::Corrupt { bit },
        ),
        deadline: None,
        expect_detected: true,
    });
    // Element loss: the consumer starves and sees a disconnect.
    let index = rng.below(r.out_len as u64);
    v.push(Scenario {
        label: "drop",
        site: r.out_channel.to_string(),
        index,
        bit: None,
        plan: FaultPlan::new(Some(seed)).channel_fault(
            FaultSite::Push,
            r.out_channel,
            index,
            FaultAction::DropElement,
        ),
        deadline: None,
        expect_detected: true,
    });
    // Element duplication: shifts the stream; the digest pair differs
    // even though the element counts the consumer sees still balance.
    let index = rng.below((r.out_len as u64).min(16));
    v.push(Scenario {
        label: "duplicate",
        site: r.out_channel.to_string(),
        index,
        bit: None,
        plan: FaultPlan::new(Some(seed)).channel_fault(
            FaultSite::Push,
            r.out_channel,
            index,
            FaultAction::Duplicate,
        ),
        deadline: None,
        expect_detected: true,
    });
    // Latency spike: values are untouched, so nothing may trip.
    let index = rng.below(r.in_len as u64);
    v.push(Scenario {
        label: "delay",
        site: r.in_channel.to_string(),
        index,
        bit: None,
        plan: FaultPlan::new(Some(seed)).channel_fault(
            FaultSite::Pop,
            r.in_channel,
            index,
            FaultAction::Delay { micros: 200 },
        ),
        deadline: None,
        expect_detected: false,
    });
    // Module crash: the panic poisons the composition, naming the
    // culprit; the retry runs clean.
    v.push(Scenario {
        label: "crash",
        site: r.module.to_string(),
        index: 0,
        bit: None,
        plan: FaultPlan::new(Some(seed)).module_fault(r.module, ModuleFault::Crash),
        deadline: None,
        expect_detected: true,
    });
    // Module hang: live but frozen — only the watchdog deadline can
    // call it.
    v.push(Scenario {
        label: "hang",
        site: r.module.to_string(),
        index: 0,
        bit: None,
        plan: FaultPlan::new(Some(seed)).module_fault(r.module, ModuleFault::Hang),
        deadline: Some(HANG_DEADLINE),
        expect_detected: true,
    });
    v
}

fn bind(entries: &[(&str, Vec<f64>)]) -> HashMap<String, DeviceBuffer<f64>> {
    entries
        .iter()
        .enumerate()
        .map(|(i, (name, data))| {
            (
                name.to_string(),
                DeviceBuffer::from_vec(*name, data.clone(), i % 4),
            )
        })
        .collect()
}

/// Output bit pattern of a run: the output operand's buffer (or the
/// scalar result) as raw u64 bits.
fn output_bits(
    r: &Routine,
    bufs: &HashMap<String, DeviceBuffer<f64>>,
    scalars: &HashMap<String, f64>,
) -> Vec<u64> {
    match (r.out_operand, r.scalar) {
        (Some(op), _) => bufs[op].to_host().iter().map(|v| v.to_bits()).collect(),
        (None, Some(s)) => vec![scalars[s].to_bits()],
        _ => unreachable!("routine declares an output"),
    }
}

fn main() {
    let dump_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--dump-reports")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let seed = fblas_hlssim::env::chaos_seed().unwrap_or(DEFAULT_SEED);
    let retry_max = fblas_hlssim::env::retry_max();

    let mut report = BenchReport::new("chaos");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report
        .meta("seed", seed)
        .meta("retry_max", retry_max as u64)
        .meta("n", N as u64);

    println!("=== Seeded fault-injection sweep (seed {seed}) ===\n");
    println!(
        "{:<8} {:<14} {:<12} {:>5} {:>4} {:>9} {:>9} {:>10} {:>12}",
        "routine", "fault", "site", "idx", "bit", "detected", "attempts", "recovered", "kind"
    );

    let mut fault_reports = Vec::new();
    let mut recovery_reports: Vec<RecoveryReport> = Vec::new();
    let (mut injected, mut detected_count, mut recovered_count) = (0u64, 0u64, 0u64);

    for (ri, routine) in [dot_routine(), gemv_routine(), ger_routine()]
        .into_iter()
        .enumerate()
    {
        let the_plan = plan(&routine.program, &routine.cfg).expect("plannable routine");
        assert_eq!(
            the_plan.components.len(),
            1,
            "{}: one component",
            routine.name
        );

        // Fault-free reference: the bits every recovered run must match.
        let ref_bufs = bind(&routine.bindings);
        let (ref_out, ref_report) = execute_plan_with_recovery::<f64>(
            &routine.program,
            &the_plan,
            &routine.cfg,
            &ref_bufs,
            &RetryPolicy::default(),
            None,
            None,
        )
        .expect("fault-free run succeeds");
        assert_eq!(ref_report.retries, 0, "{}: clean run retried", routine.name);
        let ref_bits = output_bits(&routine, &ref_bufs, &ref_out.scalars);

        let mut rng = ChaosRng::new(seed ^ (ri as u64).wrapping_mul(0x9e37_79b9));
        for sc in scenarios(&routine, &mut rng, seed) {
            let bufs = bind(&routine.bindings);
            let hook = Arc::new(sc.plan);
            let policy = RetryPolicy {
                max_attempts: retry_max,
                deadline: sc.deadline,
                ..RetryPolicy::default()
            };
            let t0 = Instant::now();
            let outcome = execute_plan_with_recovery::<f64>(
                &routine.program,
                &the_plan,
                &routine.cfg,
                &bufs,
                &policy,
                Some(hook.clone()),
                None,
            );
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

            let (out, rec) = match outcome {
                Ok(pair) => pair,
                Err(e) => panic!(
                    "{} / {}: not recovered within {} attempts: {}",
                    routine.name, sc.label, policy.max_attempts, e
                ),
            };
            let attempts = rec.attempts.len() as u64;
            let first_kind = rec.attempts[0].error;
            let was_detected = first_kind.is_some();
            let recovered = rec.recovered > 0;

            // The robustness contract, asserted scenario by scenario.
            if sc.expect_detected {
                assert!(
                    was_detected,
                    "{} / {} @ {}[{}] bit {:?}: fault escaped detection",
                    routine.name, sc.label, sc.site, sc.index, sc.bit
                );
                assert!(
                    recovered,
                    "{} / {}: detected but not recovered",
                    routine.name, sc.label
                );
            } else {
                assert!(
                    !was_detected && attempts == 1,
                    "{} / {}: timing-only fault tripped a guard",
                    routine.name,
                    sc.label
                );
            }
            let bits = output_bits(&routine, &bufs, &out.scalars);
            assert_eq!(
                bits, ref_bits,
                "{} / {}: recovered output is not bit-identical to the fault-free run",
                routine.name, sc.label
            );

            injected += hook.report().injections.len() as u64;
            detected_count += was_detected as u64;
            recovered_count += recovered as u64;

            let kind = first_kind.map_or("-", |k| k.as_str()).to_string();
            println!(
                "{:<8} {:<14} {:<12} {:>5} {:>4} {:>9} {:>9} {:>10} {:>12}",
                routine.name,
                sc.label,
                sc.site,
                sc.index,
                sc.bit.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
                was_detected as u64,
                attempts,
                recovered as u64,
                kind
            );
            report.add_row([
                ("routine", Cell::from(routine.name)),
                ("fault", Cell::from(sc.label)),
                ("site", Cell::from(sc.site.as_str())),
                ("index", Cell::from(sc.index)),
                (
                    "bit",
                    Cell::from(sc.bit.map(|b| b.to_string()).unwrap_or_else(|| "-".into())),
                ),
                ("detected", Cell::from(was_detected as u64)),
                ("attempts", Cell::from(attempts)),
                ("recovered", Cell::from(recovered as u64)),
                ("kind", Cell::from(kind.as_str())),
                ("cpu_wall_ms", Cell::from(wall_ms)),
            ]);
            fault_reports.push(hook.report());
            recovery_reports.push(rec);
        }
    }

    println!(
        "\n{injected} faults injected, {detected_count} detected, {recovered_count} recovered \
         (timing-only delays are absorbed, not detected — by design)"
    );

    if let Some(path) = dump_path {
        #[derive(serde::Serialize)]
        struct Dump {
            seed: u64,
            fault_reports: Vec<fblas_chaos::FaultReport>,
            recovery_reports: Vec<RecoveryReport>,
        }
        let doc = Dump {
            seed,
            fault_reports,
            recovery_reports,
        };
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serialize"),
        )
        .expect("write dump");
        println!("reports: {path}");
    }

    let path = report.write().expect("write BENCH_chaos.json");
    println!("report: {}", path.display());
}
