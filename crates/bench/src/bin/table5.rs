//! Regenerates paper Table V: batched tiny (4×4) GEMM and TRSM —
//! fully unrolled FPGA circuits vs the batched CPU routines.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin table5
//! ```

use fblas_arch::Device;
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_bench::{cpu, model};
use fblas_refblas::parallel::default_threads;

fn main() {
    let mut report = BenchReport::new("table5");
    fblas_bench::audit::stamp_audit(&mut report, &["cpu_us"]);
    report.meta("device", "Stratix 10").meta("dim", 4u64);
    let dev = Device::Stratix10Gx2800;
    let threads = default_threads();
    let dim = 4usize;
    println!("=== Table V: batched 4x4 routines, fully unrolled (Stratix 10) ===");
    println!("(CPU = fblas-refblas batched on {threads} threads; paper CPU = MKL batched)\n");
    println!(
        "{:<5} {:<2} {:>6} | {:>10} | {:>10} {:>5} | {:>10}",
        "Rout.", "P", "N", "CPU [us]", "FPGA [us]", "MHz", "paper FPGA [us]"
    );

    for (prec, batch, paper_us) in [
        ('S', 8usize << 10, 144.7),
        ('S', 32 << 10, 275.3),
        ('D', 8 << 10, 187.52),
        ('D', 32 << 10, 461.0),
    ] {
        let (c, f) = if prec == 'S' {
            (
                cpu::batched_gemm_time::<f32>(dim, batch, threads),
                model::batched_gemm_time::<f32>(dev, dim, batch, true),
            )
        } else {
            (
                cpu::batched_gemm_time::<f64>(dim, batch, threads),
                model::batched_gemm_time::<f64>(dev, dim, batch, true),
            )
        };
        report.add_row([
            ("routine", Cell::from("GEMM")),
            ("precision", Cell::from(prec.to_string())),
            ("batch", Cell::from(batch)),
            ("cpu_us", Cell::from(c.seconds * 1e6)),
            ("fpga_us", Cell::from(f.seconds * 1e6)),
            ("fpga_mhz", Cell::from(f.freq_hz / 1e6)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<5} {:<2} {:>5}K | {:>10.1} | {:>10.1} {:>5.0} | {:>10.1}",
            "GEMM",
            prec,
            batch >> 10,
            c.seconds * 1e6,
            f.seconds * 1e6,
            f.freq_hz / 1e6,
            paper_us
        );
    }

    for (prec, batch, paper_us) in [
        ('S', 8usize << 10, 144.0),
        ('S', 32 << 10, 341.6),
        ('D', 8 << 10, 184.1),
        ('D', 32 << 10, 589.2),
    ] {
        let (c, f) = if prec == 'S' {
            (
                cpu::batched_trsm_time::<f32>(dim, batch, threads),
                model::batched_trsm_time::<f32>(dev, dim, batch, true),
            )
        } else {
            (
                cpu::batched_trsm_time::<f64>(dim, batch, threads),
                model::batched_trsm_time::<f64>(dev, dim, batch, true),
            )
        };
        report.add_row([
            ("routine", Cell::from("TRSM")),
            ("precision", Cell::from(prec.to_string())),
            ("batch", Cell::from(batch)),
            ("cpu_us", Cell::from(c.seconds * 1e6)),
            ("fpga_us", Cell::from(f.seconds * 1e6)),
            ("fpga_mhz", Cell::from(f.freq_hz / 1e6)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<5} {:<2} {:>5}K | {:>10.1} | {:>10.1} {:>5.0} | {:>10.1}",
            "TRSM",
            prec,
            batch >> 10,
            c.seconds * 1e6,
            f.seconds * 1e6,
            f.freq_hz / 1e6,
            paper_us
        );
    }

    println!("\nShape to check: the fully unrolled circuits saturate DRAM, so");
    println!("the FPGA wins at the larger batch sizes (\"a good fit provided");
    println!("enough memory bandwidth is available\", Sec. VI-D).");
    report.write().expect("write BENCH_table5.json");
}
