//! Simulator throughput across channel chunk sizes.
//!
//! Measures elements/sec moved through real simulations — DOT, a tiled
//! GEMV, and the composed GEMVER pipeline — with the batched transport
//! layer swept across `FBLAS_CHUNK ∈ {1, 16, 256}`. Chunk size 1 is
//! honest element-wise transfer (one lock round per element); larger
//! chunks amortize the `Mutex`+`Condvar` and trace cost per element.
//!
//! Batching must not change *what* is computed: the bin asserts
//! bit-identical numeric results and identical modeled cycle counts
//! across all chunk sizes before writing the report.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin bench_throughput
//! ```
//!
//! Deterministic columns (`routine`, `chunk`, `n`, `elements`,
//! `model_cycles`) are gated by bench-diff; wall-clock columns carry the
//! volatile `cpu_` prefix and are exempt.

use std::time::Instant;

use fblas_arch::Device;
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_core::apps::gemver_streaming;
use fblas_core::helpers;
use fblas_core::host::{DeviceBuffer, Fpga, GemvTuning};
use fblas_core::routines::{Dot, Gemv, GemvVariant, Ger};
use fblas_hlssim::{channel, streamed_cycles, Simulation};

const CHUNKS: [usize; 3] = [1, 16, 256];
const REPS: usize = 3;

const DOT_N: usize = 1 << 18;
const DOT_W: usize = 8;
const GEMV_N: usize = 256;
const GEMV_M: usize = 256;
const GEMV_T: usize = 64;
const GEMV_W: usize = 8;
const GEMVER_N: usize = 128;

fn seq(n: usize, seed: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 + seed) * 0.4371).sin()).collect()
}

struct Sample {
    /// Total channel-element transfers the run performs (work moved).
    elements: u64,
    /// Modeled pipeline cycles `C = L + I·M` — must be chunk-invariant.
    model_cycles: u64,
    /// Best-of-REPS wall time in seconds.
    wall: f64,
    /// Bit pattern of the numeric result — must be chunk-invariant.
    result_bits: Vec<u64>,
}

/// DOT over two seeded f64 streams; the simulation moves 2n elements in
/// and 1 out.
fn run_dot() -> Sample {
    let x = seq(DOT_N, 1.0);
    let y = seq(DOT_N, 2.0);
    let cfg = Dot::new(DOT_N, DOT_W);
    let mut wall = f64::INFINITY;
    let mut result = 0.0f64;
    for _ in 0..REPS {
        let mut sim = Simulation::new();
        let x_buf = DeviceBuffer::from_vec("x", x.clone(), 0);
        let y_buf = DeviceBuffer::from_vec("y", y.clone(), 0);
        let res_buf = DeviceBuffer::<f64>::zeroed("res", 1, 0);
        let (tx, rx) = channel(sim.ctx(), 1024, "x");
        let (ty, ry) = channel(sim.ctx(), 1024, "y");
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        helpers::read_vector(&mut sim, &x_buf, tx);
        helpers::read_vector(&mut sim, &y_buf, ty);
        cfg.attach(&mut sim, rx, ry, tr);
        helpers::write_scalar(&mut sim, &res_buf, rr);
        let t0 = Instant::now();
        sim.run().expect("dot composition runs");
        wall = wall.min(t0.elapsed().as_secs_f64());
        result = res_buf.get(0);
    }
    Sample {
        elements: 2 * DOT_N as u64 + 1,
        model_cycles: cfg.cost::<f64>().cycles(),
        wall,
        result_bits: vec![result.to_bits()],
    }
}

/// Tiled row-streamed GEMV with the full reader/writer interface chain.
fn run_gemv() -> Sample {
    let cfg = Gemv::new(
        GemvVariant::RowStreamed,
        GEMV_N,
        GEMV_M,
        GEMV_T,
        GEMV_T,
        GEMV_W,
    );
    let a = seq(GEMV_N * GEMV_M, 1.0);
    let x = seq(cfg.x_len(), 2.0);
    let y = seq(cfg.y_len(), 3.0);
    let mut wall = f64::INFINITY;
    let mut result: Vec<f64> = Vec::new();
    for _ in 0..REPS {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.clone(), 0);
        let x_buf = DeviceBuffer::from_vec("x", x.clone(), 0);
        let y_buf = DeviceBuffer::from_vec("y", y.clone(), 0);
        let out_buf = DeviceBuffer::<f64>::zeroed("y_out", cfg.y_len(), 0);
        let (ta, ra) = channel(sim.ctx(), 256, "a");
        let (txv, rxv) = channel(sim.ctx(), 64, "x");
        let (ty_in, ry_in) = channel(sim.ctx(), 64, "y_in");
        let (ty_out, ry_out) = channel(sim.ctx(), 64, "y_out");
        helpers::read_matrix(&mut sim, &a_buf, GEMV_N, GEMV_M, cfg.a_tiling(), ta, 1);
        helpers::read_vector_replayed(&mut sim, &x_buf, txv, cfg.x_repetitions());
        helpers::read_vector(&mut sim, &y_buf, ty_in);
        cfg.attach(&mut sim, 1.3, 0.7, ra, rxv, ry_in, ty_out);
        helpers::write_vector(&mut sim, &out_buf, cfg.y_len(), ry_out);
        let t0 = Instant::now();
        sim.run().expect("gemv composition runs");
        wall = wall.min(t0.elapsed().as_secs_f64());
        result = out_buf.to_host();
    }
    Sample {
        elements: cfg.io_ops(),
        model_cycles: cfg.cost::<f64>().cycles(),
        wall,
        result_bits: result.iter().map(|v| v.to_bits()).collect(),
    }
}

/// The composed GEMVER application (two GERs, two GEMVs, fan-out,
/// replay-through-memory) — the heaviest multi-module pipeline.
fn run_gemver() -> Sample {
    let n = GEMVER_N;
    let tuning = GemvTuning::new(32, 32, 8);
    let a = seq(n * n, 1.0);
    let vs: Vec<Vec<f64>> = (0..6).map(|s| seq(n, s as f64 + 2.0)).collect();
    let mut wall = f64::INFINITY;
    let mut result: Vec<f64> = Vec::new();
    let mut io_elements = 0u64;
    for _ in 0..REPS {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let a_buf = fpga.alloc_from("a", a.clone());
        let u1 = fpga.alloc_from("u1", vs[0].clone());
        let v1 = fpga.alloc_from("v1", vs[1].clone());
        let u2 = fpga.alloc_from("u2", vs[2].clone());
        let v2 = fpga.alloc_from("v2", vs[3].clone());
        let y = fpga.alloc_from("y", vs[4].clone());
        let z = fpga.alloc_from("z", vs[5].clone());
        let b_out = fpga.alloc::<f64>("b_out", n * n);
        let x_out = fpga.alloc::<f64>("x_out", n);
        let w_out = fpga.alloc::<f64>("w_out", n);
        let t0 = Instant::now();
        let report = gemver_streaming(
            &fpga, n, 1.1, 0.9, &a_buf, &u1, &v1, &u2, &v2, &y, &z, &b_out, &x_out, &w_out, &tuning,
        )
        .expect("gemver composition runs");
        wall = wall.min(t0.elapsed().as_secs_f64());
        io_elements = report.io_elements;
        result = w_out.to_host();
    }
    // The same modeled composition cost gemver_streaming uses: component
    // 1 (two GERs + transposed GEMV in pipeline parallel) plus the
    // second GEMV pass.
    let tu = tuning.clamped(n, n);
    let ger = Ger::new(n, n, tu.tn, tu.tm, tu.w);
    let gemv_t = Gemv::new(GemvVariant::TransRowStreamed, n, n, tu.tn, tu.tm, tu.w);
    let gemv2 = Gemv::new(GemvVariant::RowStreamed, n, n, tu.tn, tu.tm, tu.w);
    let comp1 = streamed_cycles(&[ger.cost::<f64>(), ger.cost::<f64>(), gemv_t.cost::<f64>()]);
    Sample {
        elements: io_elements,
        model_cycles: comp1 + gemv2.cost::<f64>().cycles(),
        wall,
        result_bits: result.iter().map(|v| v.to_bits()).collect(),
    }
}

fn main() {
    let mut report = BenchReport::new("throughput");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report
        .meta("dot_n", DOT_N as u64)
        .meta("gemv_n", GEMV_N as u64)
        .meta("gemver_n", GEMVER_N as u64)
        .meta("reps", REPS as u64);

    println!("=== Simulator throughput vs channel chunk size ===\n");
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>14} {:>10}",
        "routine", "chunk", "elements", "model_cyc", "elems/sec", "wall_ms"
    );

    type Runner = fn() -> Sample;
    let runners: [(&str, Runner); 3] =
        [("dot", run_dot), ("gemv", run_gemv), ("gemver", run_gemver)];

    for (name, runner) in runners {
        let mut reference: Option<Sample> = None;
        for chunk in CHUNKS {
            std::env::set_var("FBLAS_CHUNK", chunk.to_string());
            let s = runner();
            if let Some(r) = &reference {
                assert_eq!(
                    r.result_bits, s.result_bits,
                    "{name}: numeric results must be bit-identical across chunk sizes"
                );
                assert_eq!(
                    r.model_cycles, s.model_cycles,
                    "{name}: modeled cycles must be chunk-invariant"
                );
            }
            let eps = s.elements as f64 / s.wall;
            println!(
                "{:<8} {:>6} {:>10} {:>12} {:>14.0} {:>10.2}",
                name,
                chunk,
                s.elements,
                s.model_cycles,
                eps,
                s.wall * 1e3
            );
            report.add_row([
                ("routine", Cell::from(name)),
                ("chunk", Cell::from(chunk as u64)),
                (
                    "n",
                    Cell::from(match name {
                        "dot" => DOT_N as u64,
                        "gemv" => GEMV_N as u64,
                        _ => GEMVER_N as u64,
                    }),
                ),
                ("elements", Cell::from(s.elements)),
                ("model_cycles", Cell::from(s.model_cycles)),
                ("cpu_elems_per_sec", Cell::from(eps)),
                ("cpu_wall_ms", Cell::from(s.wall * 1e3)),
            ]);
            if reference.is_none() {
                reference = Some(s);
            }
        }
    }
    std::env::remove_var("FBLAS_CHUNK");

    let path = report.write().expect("write BENCH_throughput.json");
    println!("\nreport: {}", path.display());
}
