//! Regenerates paper Table IV: CPU vs FPGA execution time for single
//! routines (DOT, GEMV, GEMM in both precisions).
//!
//! FPGA columns come from the calibrated models at the paper's problem
//! sizes and configurations; CPU columns are measured on this machine's
//! `fblas-refblas` comparator (extrapolated in flops where the paper
//! size exceeds harness budgets — the basis is printed).
//!
//! ```text
//! cargo run --release -p fblas-bench --bin table4
//! ```

use fblas_arch::{Device, PowerModel};
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_bench::{cpu, fmt_time, model};
use fblas_refblas::parallel::default_threads;

fn size_k(n: usize) -> String {
    format!("{}K", n / 1024)
}

fn main() {
    let mut report = BenchReport::new("table4");
    fblas_bench::audit::stamp_audit(&mut report, &["cpu_s", "cpu_basis"]);
    report.meta("device", "Stratix 10");
    let dev = Device::Stratix10Gx2800;
    let threads = default_threads();
    println!("=== Table IV: CPU vs FPGA, single routines (Stratix 10) ===");
    println!("(CPU = fblas-refblas on {threads} threads; paper CPU = MKL on 10-core Xeon)\n");
    println!(
        "{:<6} {:<2} {:>10} | {:>12} {:>6} | {:>12} {:>5} {:>5} | {:>10}",
        "Rout.", "P", "N", "CPU [us]", "P[W]", "FPGA [us]", "MHz", "P[W]", "paper FPGA"
    );

    // DOT: S 16M / 256M, D 16M / 128M. Paper FPGA: 1866/28272/3627/28250 us.
    for (prec, n, w, paper_us) in [
        ('S', 16usize << 20, 32usize, 1_866.0),
        ('S', 256 << 20, 32, 28_272.0),
        ('D', 16 << 20, 16, 3_627.0),
        ('D', 128 << 20, 16, 28_250.0),
    ] {
        let (c, f) = if prec == 'S' {
            (
                cpu::dot_time::<f32>(n, threads),
                model::dot_time::<f32>(dev, n, w, true, true),
            )
        } else {
            (
                cpu::dot_time::<f64>(n, threads),
                model::dot_time::<f64>(dev, n, w, true, true),
            )
        };
        report.add_row([
            ("routine", Cell::from("DOT")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("fpga_s", Cell::from(f.seconds)),
            ("fpga_mhz", Cell::from(f.freq_hz / 1e6)),
            ("fpga_power_w", Cell::from(f.power_w)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<6} {:<2} {:>9}M | {:>12} {:>6.1} | {:>12} {:>5.0} {:>5.1} | {:>10}",
            "DOT",
            prec,
            n >> 20,
            fmt_time(c.seconds),
            fblas_arch::power::CPU_LOAD_POWER_W,
            fmt_time(f.seconds),
            f.freq_hz / 1e6,
            f.power_w,
            fmt_time(paper_us / 1e6),
        );
    }

    // GEMV: S 8K/64K, D 8K/32K; width 64/32, tiles 2048.
    for (prec, n, w, paper_us) in [
        ('S', 8_192usize, 64usize, 4_091.0),
        ('S', 65_536, 64, 241_038.0),
        ('D', 8_192, 32, 7_831.0),
        ('D', 32_768, 32, 120_357.0),
    ] {
        let (c, f) = if prec == 'S' {
            (
                cpu::gemv_time::<f32>(n, threads),
                model::gemv_time::<f32>(dev, n, n, 2048, 2048, w, true, true),
            )
        } else {
            (
                cpu::gemv_time::<f64>(n, threads),
                model::gemv_time::<f64>(dev, n, n, 2048, 2048, w, true, true),
            )
        };
        report.add_row([
            ("routine", Cell::from("GEMV")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("fpga_s", Cell::from(f.seconds)),
            ("fpga_mhz", Cell::from(f.freq_hz / 1e6)),
            ("fpga_power_w", Cell::from(f.power_w)),
            ("paper_fpga_us", Cell::from(paper_us)),
        ]);
        println!(
            "{:<6} {:<2} {:>6}Kx{} | {:>12} {:>6.1} | {:>12} {:>5.0} {:>5.1} | {:>10}",
            "GEMV",
            prec,
            n / 1024,
            size_k(n),
            fmt_time(c.seconds),
            fblas_arch::power::CPU_LOAD_POWER_W,
            fmt_time(f.seconds),
            f.freq_hz / 1e6,
            f.power_w,
            fmt_time(paper_us / 1e6),
        );
    }

    // GEMM: S 8K/48K (40x80, tile 960 -> ratio 24/12), D 8K/24K (16x16, tile 384).
    for (prec, n, paper_secs) in [
        ('S', 8_192usize, 1.01),
        ('S', 49_152, 181.0),
        ('D', 8_192, 8.43),
        ('D', 24_576, 203.0),
    ] {
        let (c, f) = if prec == 'S' {
            (
                cpu::gemm_time::<f32>(n, threads),
                model::gemm_time::<f32>(dev, n, 40, 80, 12, true),
            )
        } else {
            (
                cpu::gemm_time::<f64>(n, threads),
                model::gemm_time::<f64>(dev, n, 16, 16, 24, true),
            )
        };
        report.add_row([
            ("routine", Cell::from("GEMM")),
            ("precision", Cell::from(prec.to_string())),
            ("n", Cell::from(n)),
            ("cpu_s", Cell::from(c.seconds)),
            ("cpu_basis", Cell::from(c.basis.clone())),
            ("fpga_s", Cell::from(f.seconds)),
            ("fpga_mhz", Cell::from(f.freq_hz / 1e6)),
            ("fpga_power_w", Cell::from(f.power_w)),
            ("paper_fpga_s", Cell::from(paper_secs)),
        ]);
        println!(
            "{:<6} {:<2} {:>6}Kx{} | {:>12} {:>6.1} | {:>12} {:>5.0} {:>5.1} | {:>10}",
            "GEMM",
            prec,
            n / 1024,
            size_k(n),
            fmt_time(c.seconds),
            fblas_arch::power::CPU_LOAD_POWER_W,
            fmt_time(f.seconds),
            f.freq_hz / 1e6,
            f.power_w,
            fmt_time(paper_secs),
        );
        let _ = PowerModel::new(dev);
        if c.basis != "measured" {
            println!("         ^ CPU {}", c.basis);
        }
    }

    println!("\nShape to check against the paper: FPGA beats the CPU on the");
    println!("memory-bound routines (DOT, GEMV) and on SGEMM, while DGEMM");
    println!("loses due to the missing hardened double-precision units.");
    report.write().expect("write BENCH_table4.json");
}
