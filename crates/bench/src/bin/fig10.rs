//! Regenerates paper Fig. 10: scaling of individual modules.
//!
//! * left  — DOT GOps/s vs vectorization width (input generated
//!   on-chip, N = 100M);
//! * middle — GEMV GOps/s vs width (tiles 1024×1024);
//! * right — GEMM GOps/s vs compute/memory tile ratio for the paper's
//!   systolic arrays.
//!
//! "Expected performance" is the paper's bar: every DSP lane initiating
//! work each cycle at the achieved frequency.
//!
//! ```text
//! cargo run --release -p fblas-bench --bin fig10 [dot|gemv|gemm|all]
//! ```

use fblas_arch::{design_overhead, Device, FrequencyModel, RoutineClass};
use fblas_bench::metrics::{BenchReport, Cell};
use fblas_core::routines::gemm::{Gemm, SystolicShape};
use fblas_core::routines::gemv::{Gemv, GemvVariant};
use fblas_core::routines::Dot;
use fblas_core::scalar::Scalar;

const N_DOT: usize = 100_000_000;
const WIDTHS: [usize; 5] = [16, 32, 64, 128, 256];

fn freq_for(device: Device, util: f64, class: RoutineClass) -> (f64, bool) {
    FrequencyModel::new(device).achieved_hz(class, true, util)
}

/// The paper's compiler could place double-precision streaming designs
/// only up to W = 128 (routing congestion of the soft f64 operators —
/// Sec. VI-B). The linear resource model alone does not capture
/// congestion, so the cap is applied explicitly.
const MAX_W_DOUBLE: usize = 128;

fn panel_dot<T: Scalar>(device: Device, report: &mut BenchReport) {
    let prefix = T::PRECISION.blas_prefix().to_ascii_uppercase();
    for w in WIDTHS {
        if T::PRECISION == fblas_arch::Precision::Double && w > MAX_W_DOUBLE {
            println!(
                "{:<7} {}DOT  W={:<4} not placeable in the paper (f64 routing congestion)",
                device.short_name(),
                prefix,
                w
            );
            continue;
        }
        let m = Dot::new(N_DOT, w);
        let est = m.estimate::<T>();
        let total = est.resources + design_overhead(device, true);
        if !device.model().fits(&total) {
            println!(
                "{:<7} {}DOT  W={:<4} does not place ({} DSPs needed) — paper hits the same wall",
                device.short_name(),
                prefix,
                w,
                total.dsps
            );
            continue;
        }
        let util = total.max_utilization(&device.model().available);
        let (f, hf) = freq_for(device, util, RoutineClass::Streaming);
        let secs = m.cost::<T>().cycles() as f64 / f;
        let gops = (2.0 * N_DOT as f64 - 1.0) / secs / 1e9;
        let expected = 2.0 * w as f64 * f / 1e9;
        report.add_row([
            ("panel", Cell::from("dot")),
            ("device", Cell::from(device.short_name())),
            ("precision", Cell::from(prefix.to_string())),
            ("w", Cell::from(w)),
            ("gops", Cell::from(gops)),
            ("expected_gops", Cell::from(expected)),
            ("freq_mhz", Cell::from(f / 1e6)),
        ]);
        println!(
            "{:<7} {}DOT  W={:<4} {:>7.1} GOps/s  (expected {:>7.1}, {:.0} MHz{})",
            device.short_name(),
            prefix,
            w,
            gops,
            expected,
            f / 1e6,
            if hf { ", HyperFlex" } else { "" }
        );
    }
}

fn panel_gemv<T: Scalar>(device: Device, report: &mut BenchReport) {
    let prefix = T::PRECISION.blas_prefix().to_ascii_uppercase();
    let n = 16_384usize;
    for w in WIDTHS {
        if T::PRECISION == fblas_arch::Precision::Double && w > MAX_W_DOUBLE {
            println!(
                "{:<7} {}GEMV W={:<4} not placeable in the paper (f64 routing congestion)",
                device.short_name(),
                prefix,
                w
            );
            continue;
        }
        let g = Gemv::new(GemvVariant::RowStreamed, n, n, 1024, 1024, w);
        let est = g.estimate::<T>();
        let total = est.resources + design_overhead(device, true);
        if !device.model().fits(&total) {
            println!(
                "{:<7} {}GEMV W={:<4} does not place — paper hits the same wall",
                device.short_name(),
                prefix,
                w
            );
            continue;
        }
        let util = total.max_utilization(&device.model().available);
        let (f, hf) = freq_for(device, util, RoutineClass::Streaming);
        let secs = g.cost::<T>().cycles() as f64 / f;
        let gops = 2.0 * (n as f64) * (n as f64) / secs / 1e9;
        let expected = 2.0 * w as f64 * f / 1e9;
        report.add_row([
            ("panel", Cell::from("gemv")),
            ("device", Cell::from(device.short_name())),
            ("precision", Cell::from(prefix.to_string())),
            ("w", Cell::from(w)),
            ("gops", Cell::from(gops)),
            ("expected_gops", Cell::from(expected)),
            ("freq_mhz", Cell::from(f / 1e6)),
        ]);
        println!(
            "{:<7} {}GEMV W={:<4} {:>7.1} GOps/s  (expected {:>7.1}, {:.0} MHz{})",
            device.short_name(),
            prefix,
            w,
            gops,
            expected,
            f / 1e6,
            if hf { ", HyperFlex" } else { "" }
        );
    }
}

fn panel_gemm<T: Scalar>(device: Device, pr: usize, pc: usize, report: &mut BenchReport) {
    let prefix = T::PRECISION.blas_prefix().to_ascii_uppercase();
    for ratio in [3usize, 6, 9, 12] {
        let (tr, tc) = (pr * ratio, pc * ratio);
        let size = 5 * tr.max(tc); // paper: matrices 5x the memory tile
        let g = Gemm::new(size, size, size, SystolicShape::new(pr, pc), tr, tc);
        let est = g.estimate::<T>();
        let total = est.resources + design_overhead(device, false);
        if !device.model().fits(&total) {
            println!(
                "{:<7} {}GEMM {}x{} ratio {:<3} does not place",
                device.short_name(),
                prefix,
                pr,
                pc,
                ratio
            );
            continue;
        }
        let util = total.max_utilization(&device.model().available);
        let (f, _) = freq_for(device, util, RoutineClass::Systolic);
        let secs = g.cost::<T>().cycles() as f64 / f;
        let gflops = g.flops() as f64 / secs / 1e9;
        let expected = 2.0 * (pr * pc) as f64 * f / 1e9;
        report.add_row([
            ("panel", Cell::from("gemm")),
            ("device", Cell::from(device.short_name())),
            ("precision", Cell::from(prefix.to_string())),
            ("array", Cell::from(format!("{pr}x{pc}"))),
            ("ratio", Cell::from(ratio)),
            ("gops", Cell::from(gflops)),
            ("expected_gops", Cell::from(expected)),
            ("freq_mhz", Cell::from(f / 1e6)),
        ]);
        println!(
            "{:<7} {}GEMM {:>2}x{:<3} ratio {:<3} {:>8.1} GOps/s  (expected {:>8.1}, {:.0} MHz, eff {:.1}%)",
            device.short_name(),
            prefix,
            pr,
            pc,
            ratio,
            gflops,
            expected,
            f / 1e6,
            100.0 * g.efficiency()
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut report = BenchReport::new("fig10");
    fblas_bench::audit::stamp_audit(&mut report, &[]);
    report.meta("selection", which.clone());

    if which == "dot" || which == "all" {
        println!("=== Fig. 10 (left): DOT, N = 100M, data generated on-chip ===");
        for dev in Device::PAPER {
            panel_dot::<f32>(dev, &mut report);
            panel_dot::<f64>(dev, &mut report);
        }
        println!();
    }
    if which == "gemv" || which == "all" {
        println!("=== Fig. 10 (middle): GEMV, tiles 1024x1024 ===");
        for dev in Device::PAPER {
            panel_gemv::<f32>(dev, &mut report);
            panel_gemv::<f64>(dev, &mut report);
        }
        println!();
    }
    if which == "gemm" || which == "all" {
        println!("=== Fig. 10 (right): GEMM vs compute/memory tile ratio ===");
        // Paper's array sizes: the largest that place on each device.
        panel_gemm::<f32>(Device::Arria10Gx1150, 32, 32, &mut report);
        panel_gemm::<f64>(Device::Arria10Gx1150, 16, 8, &mut report);
        panel_gemm::<f32>(Device::Stratix10Gx2800, 40, 80, &mut report);
        panel_gemm::<f64>(Device::Stratix10Gx2800, 16, 16, &mut report);
        println!("\n(paper peak: 1.28 Tflop/s single precision on the Stratix 40x80 array)");
    }
    report.write().expect("write BENCH_fig10.json");
}
