//! `fblas-doctor`: render a flight-recorder postmortem bundle as a
//! diagnosis.
//!
//! ```text
//! fblas-doctor postmortem-<run>.json          # render the diagnosis
//! fblas-doctor postmortem-<run>.json --check  # verify byte-stable round trip
//! ```
//!
//! The input is the `fblas-flight-bundle-v1` JSON document the runtime
//! writes to `FBLAS_FLIGHT_DIR` when a run dies with the flight
//! recorder armed (`FBLAS_FLIGHT=1`). The diagnosis mirrors the audit
//! crate's bottleneck-attribution style: what killed the run, the
//! per-channel occupancy trajectory leading into the failure as
//! sparklines, the anomaly timeline, the forensic attachments, and a
//! one-line verdict naming the most likely culprit.
//!
//! `--check` parses the document and re-renders it, asserting the bytes
//! match — the guarantee ci.sh leans on for bundle stability.
//!
//! Exit codes: 0 rendered/verified, 1 bad bundle or failed check,
//! 2 usage.

use serde::Value;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Most frames a sparkline renders; older frames are elided.
const SPARK_WIDTH: usize = 60;

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.get(key)
}

fn str_of<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    field(v, key).and_then(Value::as_str)
}

fn u64_of(v: &Value, key: &str) -> Option<u64> {
    field(v, key).and_then(Value::as_u64)
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// Label value for `name` on a metric row (`{"name":..,"labels":{..}}`).
fn row_label<'a>(row: &'a Value, label: &str) -> Option<&'a str> {
    field(row, "labels")
        .and_then(Value::as_object)
        .and_then(|pairs| pairs.iter().find(|(k, _)| k == label))
        .and_then(|(_, v)| v.as_str())
}

/// The gauge value for `name{channel=ch}` in one frame, if sampled.
fn frame_gauge(frame: &Value, name: &str, ch: &str) -> Option<f64> {
    field(frame, "gauges")
        .and_then(Value::as_array)?
        .iter()
        .find(|row| str_of(row, "name") == Some(name) && row_label(row, "channel") == Some(ch))
        .and_then(|row| field(row, "value").and_then(Value::as_f64))
}

/// Every channel that ever reported `name` across the frames, sorted.
fn gauge_channels(frames: &[Value], name: &str) -> Vec<String> {
    let mut out: Vec<String> = frames
        .iter()
        .filter_map(|f| field(f, "gauges").and_then(Value::as_array))
        .flatten()
        .filter(|row| str_of(row, "name") == Some(name))
        .filter_map(|row| row_label(row, "channel").map(str::to_string))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// One sparkline: occupancy per frame scaled against the channel's
/// capacity (8 glyph levels, missing samples render as spaces).
fn sparkline(frames: &[Value], ch: &str) -> (String, f64, f64) {
    let tail = &frames[frames.len().saturating_sub(SPARK_WIDTH)..];
    let cap = tail
        .iter()
        .rev()
        .find_map(|f| frame_gauge(f, "fblas_channel_capacity", ch))
        .unwrap_or(0.0);
    let mut last = 0.0;
    let line: String = tail
        .iter()
        .map(|f| match frame_gauge(f, "fblas_channel_occupancy", ch) {
            Some(occ) => {
                last = occ;
                let scale = if cap >= 1.0 { occ / cap } else { 0.0 };
                let ix = ((scale * 7.0).round() as usize).min(7);
                SPARK[ix]
            }
            None => ' ',
        })
        .collect();
    (line, last, cap)
}

fn render_trigger(doc: &Value) {
    let trigger = field(doc, "trigger").unwrap_or(&Value::Null);
    println!(
        "fblas-doctor · schema {} · run {}",
        str_of(doc, "schema").unwrap_or("?"),
        str_of(doc, "run_id").unwrap_or("-"),
    );
    println!(
        "\ntrigger: {} — {}",
        str_of(trigger, "kind").unwrap_or("?"),
        str_of(trigger, "detail").unwrap_or("?"),
    );
    if let Some(culprit) = str_of(trigger, "culprit") {
        println!("named culprit: `{culprit}`");
    }
}

fn render_knobs(doc: &Value) {
    let Some(knobs) = field(doc, "knobs").and_then(Value::as_object) else {
        return;
    };
    println!("\nknobs at capture:");
    for (name, value) in knobs {
        println!("  {:<24} {}", name, value.as_str().unwrap_or("?"));
    }
}

fn render_occupancy(frames: &[Value]) {
    let channels = gauge_channels(frames, "fblas_channel_occupancy");
    if channels.is_empty() || frames.is_empty() {
        return;
    }
    let t0 = u64_of(&frames[0], "t_us").unwrap_or(0);
    let t1 = frames.last().and_then(|f| u64_of(f, "t_us")).unwrap_or(t0);
    println!(
        "\nchannel occupancy, final {} frames ({} ms window):",
        frames.len().min(SPARK_WIDTH),
        fmt_ms(t1.saturating_sub(t0)),
    );
    for ch in channels {
        let (line, last, cap) = sparkline(frames, &ch);
        println!("  {ch:<20} {line}  {last:.0}/{cap:.0}");
    }
}

fn render_anomalies(doc: &Value, frames: &[Value]) -> Vec<(String, String)> {
    let t0 = frames.first().and_then(|f| u64_of(f, "t_us")).unwrap_or(0);
    let rows: Vec<&Value> = field(doc, "wall")
        .and_then(|w| field(w, "anomalies"))
        .and_then(Value::as_array)
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    if rows.is_empty() {
        println!("\nanomalies: none detected in the window");
        return Vec::new();
    }
    println!("\nanomaly timeline:");
    let mut found = Vec::new();
    for a in rows {
        let kind = str_of(a, "kind").unwrap_or("?");
        let culprit = str_of(a, "culprit").unwrap_or("?");
        let onset = u64_of(a, "onset_us").unwrap_or(0);
        println!(
            "  +{:>8} ms  {:<20} `{}`: {}",
            fmt_ms(onset.saturating_sub(t0)),
            kind,
            culprit,
            str_of(a, "detail").unwrap_or(""),
        );
        found.push((kind.to_string(), culprit.to_string()));
    }
    found
}

fn render_attachments(doc: &Value) {
    if let Some(stall) = field(doc, "stall").filter(|v| !v.is_null()) {
        let blocked = field(stall, "blocked")
            .and_then(Value::as_array)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        println!(
            "\nwait-for graph: {} module(s) blocked after {} ms grace (epoch {}):",
            blocked.len(),
            u64_of(stall, "grace_ms").unwrap_or(0),
            u64_of(stall, "epoch").unwrap_or(0),
        );
        for b in blocked {
            println!(
                "  `{}` waiting on `{}` ({}, occupancy {}/{})",
                str_of(b, "module").unwrap_or("?"),
                str_of(b, "channel").unwrap_or("?"),
                str_of(b, "direction").unwrap_or("?"),
                u64_of(b, "occupancy").unwrap_or(0),
                u64_of(b, "capacity").unwrap_or(0),
            );
        }
    }
    if let Some(guards) = field(doc, "guards")
        .filter(|v| !v.is_null())
        .and_then(Value::as_array)
    {
        let dirty: Vec<&Value> = guards
            .iter()
            .filter(|g| field(g, "digests_match").and_then(Value::as_bool) == Some(false))
            .collect();
        println!(
            "\nintegrity guards: {} channel(s) checked, {} dirty",
            guards.len(),
            dirty.len()
        );
        for g in dirty {
            println!(
                "  `{}`: pushed {} / popped {}, digests diverge",
                str_of(g, "channel").unwrap_or("?"),
                u64_of(g, "pushed").unwrap_or(0),
                u64_of(g, "popped").unwrap_or(0),
            );
        }
    }
    if let Some(rec) = field(doc, "recovery").filter(|v| !v.is_null()) {
        let attempts = field(rec, "attempts")
            .and_then(Value::as_array)
            .map_or(0, Vec::len);
        println!(
            "\nrecovery: {} attempt(s) across {} component(s), {} retries, {} recovered — budget exhausted",
            attempts,
            u64_of(rec, "components").unwrap_or(0),
            u64_of(rec, "retries").unwrap_or(0),
            u64_of(rec, "recovered").unwrap_or(0),
        );
    }
}

/// One-line verdict in the audit crate's attribution style: the
/// highest-priority anomaly names the culprit, the trigger breaks ties.
fn render_verdict(doc: &Value, anomalies: &[(String, String)]) {
    let priority = [
        (
            "occupancy_pinned",
            "backpressure deadlock — the FIFO is under-depth or its consumer died",
        ),
        (
            "full_wait_sustained",
            "producer-side thrashing — the channel spent the window at capacity",
        ),
        (
            "retry_spike",
            "recovery storm — injected or persistent faults burned the retry budget",
        ),
        (
            "throughput_collapse",
            "flow stopped ahead of the failure — an upstream module went quiet",
        ),
    ];
    let verdict = priority.iter().find_map(|(kind, diagnosis)| {
        anomalies
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, culprit)| (*kind, culprit.clone(), *diagnosis))
    });
    match verdict {
        Some((kind, culprit, diagnosis)) => {
            println!("\nverdict: `{culprit}` ({kind}): {diagnosis}");
        }
        None => {
            let trigger = field(doc, "trigger").unwrap_or(&Value::Null);
            println!(
                "\nverdict: no window anomaly — trust the trigger: {} ({})",
                str_of(trigger, "detail").unwrap_or("?"),
                str_of(trigger, "kind").unwrap_or("?"),
            );
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: fblas-doctor BUNDLE.json [--check]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut check = false;
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            _ if a.starts_with('-') => usage(),
            _ if path.is_none() => path = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fblas-doctor: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fblas-doctor: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    if str_of(&doc, "schema") != Some("fblas-flight-bundle-v1") {
        eprintln!("fblas-doctor: {path} is not a flight-recorder bundle");
        std::process::exit(1);
    }

    if check {
        // Byte-stable round trip: parse → pretty-print must reproduce
        // the document exactly (modulo one trailing newline).
        let rendered = serde_json::to_string_pretty(&doc).expect("parsed value tree re-serializes");
        if rendered != text.trim_end_matches('\n') {
            eprintln!("fblas-doctor: {path} does not round-trip byte-identically");
            std::process::exit(1);
        }
        println!("fblas-doctor: {path} round-trips byte-identically");
        return;
    }

    let frames: Vec<Value> = field(&doc, "wall")
        .and_then(|w| field(w, "frames"))
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();

    render_trigger(&doc);
    render_knobs(&doc);
    render_occupancy(&frames);
    let anomalies = render_anomalies(&doc, &frames);
    render_attachments(&doc);
    render_verdict(&doc, &anomalies);
}
