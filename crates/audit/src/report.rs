//! The audit proper: join predicted and measured, attribute the gaps.

use fblas_trace::{Lane, Tracer};
use serde::Serialize;

use crate::measure::{aggregate, derive_edges, ModuleMeasure};
use crate::spec::{AuditSpec, ChannelEdge, ModulePrediction};

/// Where a module's predicted-vs-measured gap comes from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Attribution {
    /// The module was busy computing — its datapath, not its
    /// environment, set the pace. Expected for the bottleneck module.
    Compute,
    /// The design is predicted memory-bound and this interface module
    /// carried the DRAM traffic: the bandwidth ceiling, not the
    /// pipeline, explains the time.
    MemoryBandwidth,
    /// The module lost its time pushing into a full FIFO: whoever drains
    /// that channel is too slow (or the FIFO too shallow for the burst).
    Backpressure {
        /// Channel the module blocked on.
        channel: String,
        /// Module that should have drained it.
        culprit: String,
        /// µs lost to that channel.
        stall_us: u64,
    },
    /// The module lost its time popping from an empty FIFO: whoever
    /// feeds that channel is not keeping up.
    Starvation {
        /// Channel the module blocked on.
        channel: String,
        /// Module that should have fed it.
        culprit: String,
        /// µs lost to that channel.
        stall_us: u64,
    },
}

impl Attribution {
    /// One-line human description of where the module's time went.
    pub fn describe(&self) -> String {
        match self {
            Attribution::Compute => "compute-bound".to_string(),
            Attribution::MemoryBandwidth => "memory-bandwidth ceiling".to_string(),
            Attribution::Backpressure {
                channel, culprit, ..
            } => {
                format!("backpressure from `{culprit}` via `{channel}`")
            }
            Attribution::Starvation {
                channel, culprit, ..
            } => {
                format!("starved by `{culprit}` via `{channel}`")
            }
        }
    }
}

/// One module's audit row: prediction (when the model covers it),
/// measurement, drift, and attribution.
#[derive(Debug, Clone, Serialize)]
pub struct ModuleAudit {
    /// Module name.
    pub module: String,
    /// Predicted cycles `C = L + I·M`, if the model covers this module.
    pub predicted_cycles: Option<u64>,
    /// Predicted busy share `I·M / max_j(I_j·M_j)`, if covered.
    pub predicted_share: Option<f64>,
    /// Measured run span, µs.
    pub run_us: u64,
    /// Measured non-stalled time, µs.
    pub busy_us: u64,
    /// µs blocked on full FIFOs.
    pub full_stall_us: u64,
    /// µs blocked on empty FIFOs.
    pub empty_stall_us: u64,
    /// Measured busy share: this module's busy time relative to the
    /// busiest module's, `busy_i / max_j busy_j`.
    pub measured_share: f64,
    /// Measured throughput, elements per second.
    pub throughput_eps: f64,
    /// `measured_share − predicted_share`, when covered.
    pub drift: Option<f64>,
    /// Whether `|drift|` exceeds the tolerance.
    pub flagged: bool,
    /// Explanation of where the module's time went.
    pub attribution: Attribution,
}

/// Estimated effect of widening the bottleneck module's vectorization.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIf {
    /// Module whose width would be doubled.
    pub module: String,
    /// Current width `W`.
    pub current_width: u64,
    /// Proposed width `2W`.
    pub proposed_width: u64,
    /// Predicted composition cycles today.
    pub current_cycles: u64,
    /// Predicted composition cycles with the bottleneck's iteration
    /// count halved.
    pub projected_cycles: u64,
    /// Speedup in predicted *time* (cycles bounded by the DRAM ceiling,
    /// which widening cannot lift).
    pub projected_speedup: f64,
    /// Whether the DRAM ceiling caps the projection.
    pub memory_capped: bool,
}

/// Verdict on the module that sets the composition's pace.
#[derive(Debug, Clone, Serialize)]
pub struct Bottleneck {
    /// The busiest measured module.
    pub module: String,
    /// Whether the model also predicted this module as the bottleneck
    /// (largest `I·M`).
    pub agrees_with_model: bool,
    /// What the bottleneck's time is attributed to.
    pub attribution: Attribution,
    /// Effect of widening its vectorization, when it is a predicted
    /// compute module.
    pub what_if: Option<WhatIf>,
}

/// Full audit of one simulated run against the analytic model.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// Drift tolerance the flags used.
    pub tolerance: f64,
    /// Modeled clock frequency, Hz.
    pub freq_hz: f64,
    /// Predicted composition cycles `Σ L_i + max_i(I_i·M_i)`.
    pub predicted_cycles: u64,
    /// Predicted completion seconds (pipeline vs DRAM ceiling max).
    pub predicted_secs: f64,
    /// Whether the DRAM ceiling dominates the prediction.
    pub memory_bound: bool,
    /// MDAG critical path (module names), when the caller computed one.
    pub critical_path: Vec<String>,
    /// Per-module rows, prediction order first, then measurement-only
    /// modules in first-seen order.
    pub modules: Vec<ModuleAudit>,
    /// The pace-setting module, when anything was measured.
    pub bottleneck: Option<Bottleneck>,
    /// Faults injected into the audited run (the `fault.injected`
    /// counter): nonzero means measured/predicted drift is partly
    /// attributable to deliberate fault injection, not the model.
    pub fault_events: u64,
    /// Component retries the recovery layer performed during the run
    /// (the `recovery.retries` counter); retried components execute
    /// their modules more than once, inflating busy shares.
    pub recovery_retries: u64,
}

impl AuditReport {
    /// Modules whose drift exceeded the tolerance.
    pub fn flagged(&self) -> impl Iterator<Item = &ModuleAudit> {
        self.modules.iter().filter(|m| m.flagged)
    }

    /// Whether every model-covered module stayed within tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.modules.iter().all(|m| !m.flagged)
    }

    /// The row for a module, if present.
    pub fn module(&self, name: &str) -> Option<&ModuleAudit> {
        self.modules.iter().find(|m| m.module == name)
    }

    /// Largest absolute drift over the covered modules (0 when none).
    pub fn worst_drift(&self) -> f64 {
        self.modules
            .iter()
            .filter_map(|m| m.drift)
            .fold(0.0f64, |acc, d| acc.max(d.abs()))
    }

    /// Inject the audit's per-module busy and drift percentages into a
    /// tracer's sampled series, so the Perfetto exporter renders them as
    /// counter tracks alongside the occupancy series. Each module gets a
    /// two-sample step (run start and end) per series.
    pub fn record_counters(&self, tracer: &Tracer, lanes: &[Lane]) {
        for m in &self.modules {
            let (t0, t1) = lanes
                .iter()
                .find(|l| l.module == m.module)
                .map(|l| (l.started_us, l.ended_us))
                .unwrap_or((0, 0));
            let busy = format!("audit:busy_pct:{}", m.module);
            tracer.record_sample(&busy, t0, m.measured_share * 100.0);
            tracer.record_sample(&busy, t1.max(t0 + 1), m.measured_share * 100.0);
            if let Some(d) = m.drift {
                let drift = format!("audit:drift_pct:{}", m.module);
                tracer.record_sample(&drift, t0, d * 100.0);
                tracer.record_sample(&drift, t1.max(t0 + 1), d * 100.0);
            }
        }
    }

    /// Render the report as a fixed-width terminal table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== audit: predicted {} cycles @ {:.0} MHz ({:.1} µs{}) ==\n",
            self.predicted_cycles,
            self.freq_hz / 1e6,
            self.predicted_secs * 1e6,
            if self.memory_bound {
                ", memory-bound"
            } else {
                ""
            }
        ));
        if !self.critical_path.is_empty() {
            out.push_str(&format!(
                "critical path: {}\n",
                self.critical_path.join(" -> ")
            ));
        }
        out.push_str(&format!(
            "{:<20} {:>10} {:>8} {:>8} {:>7} {:>9} {:>9} {:>6}  {}\n",
            "module",
            "pred cyc",
            "pred%",
            "meas%",
            "drift%",
            "full(µs)",
            "empty(µs)",
            "flag",
            "verdict"
        ));
        for m in &self.modules {
            out.push_str(&format!(
                "{:<20} {:>10} {:>8} {:>8} {:>7} {:>9} {:>9} {:>6}  {}\n",
                m.module,
                m.predicted_cycles
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
                m.predicted_share
                    .map(|s| format!("{:.1}", s * 100.0))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", m.measured_share * 100.0),
                m.drift
                    .map(|d| format!("{:+.1}", d * 100.0))
                    .unwrap_or_else(|| "-".into()),
                m.full_stall_us,
                m.empty_stall_us,
                if m.flagged { "DRIFT" } else { "ok" },
                m.attribution.describe(),
            ));
        }
        if let Some(b) = &self.bottleneck {
            out.push_str(&format!(
                "bottleneck: `{}` ({}, model {}): {}\n",
                b.module,
                if b.agrees_with_model {
                    "agrees with model"
                } else {
                    "model predicted a different module"
                },
                if self.memory_bound {
                    "mem-bound"
                } else {
                    "pipeline"
                },
                b.attribution.describe(),
            ));
            if let Some(w) = &b.what_if {
                out.push_str(&format!(
                    "what-if: widen `{}` W {} -> {}: {} -> {} cycles, {:.2}x{}\n",
                    w.module,
                    w.current_width,
                    w.proposed_width,
                    w.current_cycles,
                    w.projected_cycles,
                    w.projected_speedup,
                    if w.memory_capped {
                        " (capped by DRAM ceiling)"
                    } else {
                        ""
                    }
                ));
            }
        }
        out
    }
}

/// Minimum share of a module's run that must be lost to one stall kind
/// before the audit blames a neighbour rather than the module itself.
const STALL_ATTRIBUTION_FLOOR: f64 = 0.10;

fn attribute(
    measure: &ModuleMeasure,
    prediction: Option<&ModulePrediction>,
    edges: &[ChannelEdge],
    memory_bound: bool,
) -> Attribution {
    let run = measure.run_us.max(1) as f64;
    let full_frac = measure.full_stall_us as f64 / run;
    let empty_frac = measure.empty_stall_us as f64 / run;
    let floor = STALL_ATTRIBUTION_FLOOR;

    if full_frac.max(empty_frac) >= floor {
        if full_frac >= empty_frac {
            // Blocked pushing: the channel's consumer is the culprit.
            let (channel, stall_us) = measure
                .worst_full_channel()
                .map(|(c, us)| (c.to_string(), us))
                .unwrap_or_else(|| (String::from("?"), measure.full_stall_us));
            let culprit = edges
                .iter()
                .find(|e| e.channel == channel)
                .map(|e| e.consumer.clone())
                .filter(|c| !c.is_empty())
                .unwrap_or_else(|| String::from("?"));
            return Attribution::Backpressure {
                channel,
                culprit,
                stall_us,
            };
        }
        // Blocked popping: the channel's producer is the culprit.
        let (channel, stall_us) = measure
            .worst_empty_channel()
            .map(|(c, us)| (c.to_string(), us))
            .unwrap_or_else(|| (String::from("?"), measure.empty_stall_us));
        let culprit = edges
            .iter()
            .find(|e| e.channel == channel)
            .map(|e| e.producer.clone())
            .filter(|p| !p.is_empty())
            .unwrap_or_else(|| String::from("?"));
        return Attribution::Starvation {
            channel,
            culprit,
            stall_us,
        };
    }
    if memory_bound && prediction.is_some_and(|p| p.interface) {
        return Attribution::MemoryBandwidth;
    }
    Attribution::Compute
}

fn what_if(spec: &AuditSpec, bottleneck: &ModulePrediction) -> WhatIf {
    let current_cycles = spec.predicted_cycles();
    let latency: u64 = spec.predictions.iter().map(|p| p.cost.latency).sum();
    let max_other_work = spec
        .predictions
        .iter()
        .filter(|p| p.module != bottleneck.module)
        .map(|p| p.work())
        .max()
        .unwrap_or(0);
    // Doubling W halves the iteration count of the bottleneck's inner
    // loop; the composition then drains at the next-slowest module's
    // pace if that is larger.
    let halved = bottleneck.work().div_ceil(2);
    let projected_cycles = latency + halved.max(max_other_work);
    let current_secs = (current_cycles as f64 / spec.freq_hz).max(spec.mem_ceiling_secs);
    let projected_secs = (projected_cycles as f64 / spec.freq_hz).max(spec.mem_ceiling_secs);
    let memory_capped = spec.mem_ceiling_secs >= projected_cycles as f64 / spec.freq_hz
        && spec.mem_ceiling_secs > 0.0;
    WhatIf {
        module: bottleneck.module.clone(),
        current_width: bottleneck.width,
        proposed_width: bottleneck.width * 2,
        current_cycles,
        projected_cycles,
        projected_speedup: if projected_secs > 0.0 {
            current_secs / projected_secs
        } else {
            1.0
        },
        memory_capped,
    }
}

/// Audit a simulated run: join `spec`'s predictions with the lanes a
/// tracer collected, attribute every gap, and name the bottleneck.
pub fn audit(spec: &AuditSpec, lanes: &[Lane]) -> AuditReport {
    let measures = aggregate(lanes);
    let edges = derive_edges(lanes, &spec.edges);
    let memory_bound = spec.memory_bound();

    let mut modules: Vec<ModuleAudit> = Vec::new();
    let find_measure = |name: &str| measures.iter().find(|m| m.module == name);

    // Measured share is normalized the same way as the predicted one:
    // each module's busy time relative to the *busiest* module's, just
    // as the predicted share is `I·M` relative to the largest `I·M`.
    // Comparing ratios (instead of each module's own busy fraction)
    // keeps the audit meaningful when the host has fewer cores than
    // modules and concurrent threads timeshare: serialization scales
    // every module's busy time together and cancels in the ratio.
    let max_busy = measures
        .iter()
        .map(ModuleMeasure::busy_us)
        .max()
        .unwrap_or(0);
    let relative_share = |busy: u64| {
        if max_busy == 0 {
            1.0
        } else {
            busy as f64 / max_busy as f64
        }
    };

    // Prediction-covered modules first, in spec order.
    for p in &spec.predictions {
        let empty;
        let m = match find_measure(&p.module) {
            Some(m) => m,
            None => {
                empty = ModuleMeasure {
                    module: p.module.clone(),
                    ..ModuleMeasure::default()
                };
                &empty
            }
        };
        let predicted_share = spec.predicted_share(p);
        let measured_share = relative_share(m.busy_us());
        let drift = measured_share - predicted_share;
        let attribution = attribute(m, Some(p), &edges, memory_bound);
        modules.push(ModuleAudit {
            module: p.module.clone(),
            predicted_cycles: Some(p.cost.cycles()),
            predicted_share: Some(predicted_share),
            run_us: m.run_us,
            busy_us: m.busy_us(),
            full_stall_us: m.full_stall_us,
            empty_stall_us: m.empty_stall_us,
            measured_share,
            throughput_eps: m.throughput_eps(),
            drift: Some(drift),
            flagged: drift.abs() > spec.tolerance,
            attribution,
        });
    }
    // Measurement-only modules (readers, duplicators, writers without a
    // model entry): reported for context, never flagged.
    for m in &measures {
        if spec.predictions.iter().any(|p| p.module == m.module) {
            continue;
        }
        modules.push(ModuleAudit {
            module: m.module.clone(),
            predicted_cycles: None,
            predicted_share: None,
            run_us: m.run_us,
            busy_us: m.busy_us(),
            full_stall_us: m.full_stall_us,
            empty_stall_us: m.empty_stall_us,
            measured_share: relative_share(m.busy_us()),
            throughput_eps: m.throughput_eps(),
            drift: None,
            flagged: false,
            attribution: attribute(m, None, &edges, memory_bound),
        });
    }

    // Bottleneck: the measured module that was busy for the most
    // absolute time sets the pace (busy *share* alone would crown
    // short-lived helpers that never waited).
    let bottleneck = measures.iter().max_by_key(|m| m.busy_us()).map(|m| {
        let predicted_bottleneck = spec
            .predictions
            .iter()
            .max_by_key(|p| p.work())
            .map(|p| p.module.clone());
        let row = modules
            .iter()
            .find(|row| row.module == m.module)
            .expect("every measure has a row");
        let what_if = spec
            .predictions
            .iter()
            .find(|p| p.module == m.module && !p.interface && p.width >= 1)
            .map(|p| what_if(spec, p));
        Bottleneck {
            module: m.module.clone(),
            agrees_with_model: predicted_bottleneck.as_deref() == Some(m.module.as_str()),
            attribution: row.attribution.clone(),
            what_if,
        }
    });

    AuditReport {
        tolerance: spec.tolerance,
        freq_hz: spec.freq_hz,
        predicted_cycles: spec.predicted_cycles(),
        predicted_secs: spec.predicted_secs(),
        memory_bound,
        critical_path: spec.critical_path.clone(),
        modules,
        bottleneck,
        fault_events: 0,
        recovery_retries: 0,
    }
}

/// [`audit`] over everything a tracer recorded, also injecting the
/// audit counter tracks back into the tracer for Perfetto export.
pub fn audit_tracer(spec: &AuditSpec, tracer: &Tracer) -> AuditReport {
    let lanes = tracer.lanes();
    let mut report = audit(spec, &lanes);
    // Attribute chaos to drift: a run that absorbed injected faults or
    // re-executed components is expected to diverge from the model.
    let counters = tracer.metrics().snapshot().counters;
    report.fault_events = counters.get("fault.injected").copied().unwrap_or(0);
    report.recovery_retries = counters.get("recovery.retries").copied().unwrap_or(0);
    report.record_counters(tracer, &lanes);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::PipelineCost;
    use fblas_hlssim::{channel, ModuleKind, Simulation};
    use fblas_trace::Tracer;

    /// Timing-sensitive tests run simulations whose stall measurements
    /// are only meaningful with the machine to themselves; taking this
    /// lock keeps the default parallel test harness from running them
    /// on top of each other.
    static TIMING: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
        TIMING.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Spin for roughly `n` units of arithmetic work (keeps a module
    /// measurably busy without sleeping).
    fn burn(n: u64) -> f64 {
        let mut acc = 1.0f64;
        for i in 0..n {
            acc = (acc + i as f64).sqrt().max(1.0);
        }
        acc
    }

    fn run_pair(
        depth: usize,
        producer_work: u64,
        consumer_work: u64,
        n: usize,
    ) -> (Tracer, AuditSpec) {
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.set_tracer(tracer.clone());
        let (tx, rx) = channel::<f64>(sim.ctx(), depth, "pipe");
        sim.add_module("producer", ModuleKind::Compute, move || {
            for i in 0..n {
                let v = burn(producer_work) + i as f64;
                tx.push(v)?;
            }
            Ok(())
        });
        sim.add_module("consumer", ModuleKind::Compute, move || {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += rx.pop()?;
                acc += burn(consumer_work);
            }
            assert!(acc.is_finite());
            Ok(())
        });
        sim.run().unwrap();

        // The model predicts a balanced pipeline: both modules initiate
        // one element per cycle (equal I·M), so both are predicted ~100%
        // busy. A mis-sized FIFO or lopsided consumer breaks that.
        let spec = AuditSpec::new(200.0e6)
            .with_tolerance(0.5)
            .predict(ModulePrediction::compute(
                "producer",
                PipelineCost::pipelined(10, n as u64),
                n as u64,
                16,
            ))
            .predict(ModulePrediction::compute(
                "consumer",
                PipelineCost::pipelined(10, n as u64),
                n as u64,
                16,
            ));
        (tracer, spec)
    }

    #[test]
    fn missized_fifo_blames_backpressure_on_the_consumer() {
        // Depth-1 FIFO into a consumer doing heavy per-element work: the
        // producer spends its run blocked pushing. The audit must flag
        // the producer's drift and blame the `consumer` via `pipe`.
        let _guard = timing_lock();
        let (tracer, spec) = run_pair(1, 0, 2_000, 4_000);
        let report = audit_tracer(&spec, &tracer);

        let producer = report.module("producer").unwrap();
        assert!(producer.flagged, "producer must drift: {}", report.render());
        match &producer.attribution {
            Attribution::Backpressure {
                channel, culprit, ..
            } => {
                assert_eq!(channel, "pipe");
                assert_eq!(culprit, "consumer");
            }
            other => panic!("expected backpressure, got {other:?}\n{}", report.render()),
        }
        let b = report.bottleneck.as_ref().unwrap();
        assert_eq!(b.module, "consumer");
        assert!(!report.within_tolerance());
        // Audit counters landed in the tracer for Perfetto export.
        assert!(tracer
            .series()
            .keys()
            .any(|k| k.starts_with("audit:drift_pct:producer")));
    }

    #[test]
    fn matched_run_stays_within_tolerance() {
        // Deep FIFO, symmetric work: both modules run close to flat out,
        // matching the balanced prediction. Wall-clock measurement on a
        // loaded single-core host can deschedule one thread long enough
        // to fake a drift, so allow a couple of retries before failing.
        let _guard = timing_lock();
        let mut last = None;
        for _ in 0..3 {
            let (tracer, spec) = run_pair(4096, 400, 400, 30_000);
            let report = audit_tracer(&spec, &tracer);
            if report.within_tolerance() {
                assert!(report.worst_drift() <= spec.tolerance);
                return;
            }
            last = Some(report);
        }
        panic!("matched run must not drift: {}", last.unwrap().render());
    }

    #[test]
    fn starved_consumer_blames_the_producer() {
        // Invert the mis-sizing: the *producer* does the heavy work, so
        // the consumer starves on an empty FIFO.
        let _guard = timing_lock();
        let tracer = Tracer::new();
        let mut sim = Simulation::new();
        sim.set_tracer(tracer.clone());
        let n = 4_000usize;
        let (tx, rx) = channel::<f64>(sim.ctx(), 4, "feed");
        sim.add_module("slow_src", ModuleKind::Compute, move || {
            for i in 0..n {
                let v = burn(2_000) + i as f64;
                tx.push(v)?;
            }
            Ok(())
        });
        sim.add_module("sink", ModuleKind::Compute, move || {
            for _ in 0..n {
                rx.pop()?;
            }
            Ok(())
        });
        sim.run().unwrap();
        let spec = AuditSpec::new(200.0e6)
            .with_tolerance(0.5)
            .predict(ModulePrediction::compute(
                "sink",
                PipelineCost::pipelined(10, n as u64),
                n as u64,
                16,
            ));
        let report = audit_tracer(&spec, &tracer);
        let sink = report.module("sink").unwrap();
        assert!(sink.flagged, "{}", report.render());
        match &sink.attribution {
            Attribution::Starvation {
                channel, culprit, ..
            } => {
                assert_eq!(channel, "feed");
                assert_eq!(culprit, "slow_src");
            }
            other => panic!("expected starvation, got {other:?}"),
        }
    }

    #[test]
    fn what_if_halves_the_bottleneck_and_respects_the_ceiling() {
        let spec = AuditSpec::new(100.0e6)
            .predict(ModulePrediction::compute(
                "dot",
                PipelineCost::pipelined(50, 1_000_000),
                1_000_000,
                16,
            ))
            .predict(ModulePrediction::compute(
                "axpy",
                PipelineCost::pipelined(30, 400_000),
                400_000,
                16,
            ));
        let w = what_if(&spec, &spec.predictions[0]);
        assert_eq!(w.proposed_width, 32);
        assert_eq!(w.current_cycles, 80 + 1_000_000);
        assert_eq!(w.projected_cycles, 80 + 500_000);
        assert!(w.projected_speedup > 1.9 && w.projected_speedup < 2.1);
        assert!(!w.memory_capped);

        // With a DRAM ceiling above the projected pipeline time, the
        // speedup collapses toward the ceiling.
        let mut capped = spec.clone();
        capped.mem_ceiling_secs = 0.009; // 900k cycles at 100 MHz
        let w = what_if(&capped, &capped.predictions[0]);
        assert!(w.memory_capped);
        assert!(w.projected_speedup < 1.5);
    }

    #[test]
    fn report_serializes_and_renders() {
        let _guard = timing_lock();
        let (tracer, spec) = run_pair(64, 100, 100, 10_000);
        let report = audit_tracer(&spec, &tracer);
        let text = serde_json::to_string(&report).unwrap();
        assert!(text.contains("\"modules\""));
        assert!(text.contains("\"attribution\""));
        let table = report.render();
        assert!(table.contains("module"));
        assert!(table.contains("producer"));
        assert!(table.contains("bottleneck"));
    }

    #[test]
    fn unmeasured_prediction_gets_an_empty_row() {
        let spec = AuditSpec::new(1e8).predict(ModulePrediction::compute(
            "ghost",
            PipelineCost::pipelined(5, 100),
            100,
            4,
        ));
        let report = audit(&spec, &[]);
        let ghost = report.module("ghost").unwrap();
        assert_eq!(ghost.run_us, 0);
        // An unmeasured module resolves to full busy share; with a
        // predicted share of 1.0 the drift is zero, not a false flag.
        assert!(!ghost.flagged);
        assert!(report.bottleneck.is_none());
    }
}
