//! The predicted side of an audit: what the analytic model expects.

use fblas_hlssim::PipelineCost;
use serde::Serialize;

/// Predicted cost of one module, as the perf model sees it.
#[derive(Debug, Clone, Serialize)]
pub struct ModulePrediction {
    /// Module name — must match the name the module registers with the
    /// simulation (and therefore its trace lane).
    pub module: String,
    /// Predicted pipeline cost `C = L + I·M`.
    pub cost: PipelineCost,
    /// Elements the module streams over the run (throughput basis).
    pub elements: u64,
    /// Vectorization width `W` of the module's inner loop (what-if
    /// basis); 1 for unvectorized or interface modules.
    pub width: u64,
    /// Whether this is a DRAM interface module (circle in the paper's
    /// figures) rather than a computational one — interface modules are
    /// the ones a memory-bandwidth ceiling bites first.
    pub interface: bool,
}

impl ModulePrediction {
    /// Prediction for a computational module.
    pub fn compute(
        module: impl Into<String>,
        cost: PipelineCost,
        elements: u64,
        width: u64,
    ) -> Self {
        ModulePrediction {
            module: module.into(),
            cost,
            elements,
            width,
            interface: false,
        }
    }

    /// Prediction for a DRAM interface module.
    pub fn interface(module: impl Into<String>, cost: PipelineCost, elements: u64) -> Self {
        ModulePrediction {
            module: module.into(),
            cost,
            elements,
            width: 1,
            interface: true,
        }
    }

    /// The module's initiation work `I·M` — the cycles it initiates new
    /// input on, which is what bounds a streaming composition.
    pub fn work(&self) -> u64 {
        self.cost.initiation_interval * self.cost.iterations
    }
}

/// One FIFO edge of the module graph: which module pushes into the
/// channel and which pops from it. Used to turn "module X waited on
/// channel c" into "module X was held back by module Y".
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChannelEdge {
    /// Channel name.
    pub channel: String,
    /// Module pushing into the channel.
    pub producer: String,
    /// Module popping from the channel.
    pub consumer: String,
}

/// Everything the analytic model predicts about one simulated run.
#[derive(Debug, Clone, Serialize)]
pub struct AuditSpec {
    /// Modeled clock frequency in Hz (converts predicted cycles to
    /// predicted seconds).
    pub freq_hz: f64,
    /// Relative drift tolerance; modules beyond it are flagged.
    pub tolerance: f64,
    /// Per-module predictions. Modules that appear in the trace but not
    /// here (readers, duplicators, …) are reported measurement-only and
    /// never flagged for drift.
    pub predictions: Vec<ModulePrediction>,
    /// Known channel topology. May be left empty: the audit derives
    /// producer/consumer from push/pop events in the trace and uses
    /// these entries only to override or fill gaps (e.g. when a lane's
    /// event ring dropped its early events).
    pub edges: Vec<ChannelEdge>,
    /// DRAM ceiling in seconds (0 when the design is not memory-bound):
    /// the run cannot finish before the slowest stream has moved its
    /// bytes, no matter what the pipeline does.
    pub mem_ceiling_secs: f64,
    /// Module names along the MDAG critical path (longest predicted-cycle
    /// chain), producer to consumer. Informational; may be empty.
    pub critical_path: Vec<String>,
}

impl AuditSpec {
    /// A spec with the given frequency and the crate default tolerance
    /// (honouring `FBLAS_AUDIT_TOLERANCE`).
    pub fn new(freq_hz: f64) -> Self {
        assert!(
            freq_hz.is_finite() && freq_hz > 0.0,
            "frequency must be positive"
        );
        AuditSpec {
            freq_hz,
            tolerance: crate::default_tolerance(),
            predictions: Vec::new(),
            edges: Vec::new(),
            mem_ceiling_secs: 0.0,
            critical_path: Vec::new(),
        }
    }

    /// Set the drift tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "tolerance must be positive"
        );
        self.tolerance = tolerance;
        self
    }

    /// Add a module prediction.
    pub fn predict(mut self, p: ModulePrediction) -> Self {
        self.predictions.push(p);
        self
    }

    /// Record a known channel edge.
    pub fn edge(
        mut self,
        channel: impl Into<String>,
        producer: impl Into<String>,
        consumer: impl Into<String>,
    ) -> Self {
        self.edges.push(ChannelEdge {
            channel: channel.into(),
            producer: producer.into(),
            consumer: consumer.into(),
        });
        self
    }

    /// Predicted completion cycles of the whole streaming composition:
    /// `Σ L_i + max_i (I_i·M_i)` over the predicted modules.
    pub fn predicted_cycles(&self) -> u64 {
        let latency: u64 = self.predictions.iter().map(|p| p.cost.latency).sum();
        let max_work = self.predictions.iter().map(|p| p.work()).max().unwrap_or(0);
        latency + max_work
    }

    /// Predicted completion time in seconds: the compute pipeline or the
    /// DRAM ceiling, whichever is slower (the roofline of Sec. IV-B).
    pub fn predicted_secs(&self) -> f64 {
        (self.predicted_cycles() as f64 / self.freq_hz).max(self.mem_ceiling_secs)
    }

    /// Predicted busy share of a module: `I·M / max_j (I_j·M_j)`.
    pub fn predicted_share(&self, p: &ModulePrediction) -> f64 {
        let max_work = self.predictions.iter().map(|q| q.work()).max().unwrap_or(0);
        if max_work == 0 {
            return 0.0;
        }
        p.work() as f64 / max_work as f64
    }

    /// Whether the DRAM ceiling, not the pipeline, bounds the predicted
    /// completion time.
    pub fn memory_bound(&self) -> bool {
        self.mem_ceiling_secs > self.predicted_cycles() as f64 / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> AuditSpec {
        AuditSpec::new(200.0e6)
            .with_tolerance(0.2)
            .predict(ModulePrediction::compute(
                "axpy",
                PipelineCost::pipelined(30, 1000),
                1000,
                16,
            ))
            .predict(ModulePrediction::compute(
                "dot",
                PipelineCost::pipelined(60, 500),
                500,
                16,
            ))
    }

    #[test]
    fn streamed_cycles_and_shares() {
        let s = spec();
        assert_eq!(s.predicted_cycles(), 30 + 60 + 1000);
        assert!((s.predicted_share(&s.predictions[0]) - 1.0).abs() < 1e-12);
        assert!((s.predicted_share(&s.predictions[1]) - 0.5).abs() < 1e-12);
        assert!(!s.memory_bound());
    }

    #[test]
    fn memory_ceiling_dominates_when_larger() {
        let mut s = spec();
        let pipeline_secs = s.predicted_cycles() as f64 / s.freq_hz;
        s.mem_ceiling_secs = pipeline_secs * 10.0;
        assert!(s.memory_bound());
        assert!((s.predicted_secs() - s.mem_ceiling_secs).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = AuditSpec::new(0.0);
    }
}
