//! The measured side of an audit: per-module figures condensed from
//! trace lanes.

use std::collections::BTreeMap;

use fblas_trace::Lane;
use serde::Serialize;

/// Measured activity of one module, aggregated over every lane that
/// carries its name (a module that runs in several components — or a
/// name reused inside one simulation — contributes all of them).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ModuleMeasure {
    /// Module name.
    pub module: String,
    /// Total run-span time, µs.
    pub run_us: u64,
    /// Cumulative µs blocked pushing into full FIFOs.
    pub full_stall_us: u64,
    /// Cumulative µs blocked popping from empty FIFOs.
    pub empty_stall_us: u64,
    /// Total elements pushed.
    pub pushes: u64,
    /// Total elements popped.
    pub pops: u64,
    /// Per-channel µs this module spent blocked on a full FIFO (exact:
    /// sourced from the lane's stall ledgers, which unlike the event
    /// ring never drop entries).
    pub full_stall_by_channel: BTreeMap<String, u64>,
    /// Per-channel µs this module spent blocked on an empty FIFO.
    pub empty_stall_by_channel: BTreeMap<String, u64>,
}

impl ModuleMeasure {
    /// Time the module was actually making progress: run minus both
    /// stall ledgers (saturating — the ledgers can exceed the span by a
    /// few µs of bookkeeping skew).
    pub fn busy_us(&self) -> u64 {
        self.run_us
            .saturating_sub(self.full_stall_us)
            .saturating_sub(self.empty_stall_us)
    }

    /// Measured busy share `busy / run` in `[0, 1]`; 1.0 for a module
    /// whose span was too short to resolve (it never waited).
    pub fn busy_share(&self) -> f64 {
        if self.run_us == 0 {
            return 1.0;
        }
        self.busy_us() as f64 / self.run_us as f64
    }

    /// Elements moved per second, using the larger of the push and pop
    /// counts (a pure producer only pushes, a pure consumer only pops).
    pub fn throughput_eps(&self) -> f64 {
        if self.run_us == 0 {
            return 0.0;
        }
        self.pushes.max(self.pops) as f64 / (self.run_us as f64 * 1e-6)
    }

    /// The channel this module lost the most full-FIFO time to, if any.
    pub fn worst_full_channel(&self) -> Option<(&str, u64)> {
        self.full_stall_by_channel
            .iter()
            .max_by_key(|(_, us)| **us)
            .map(|(c, us)| (c.as_str(), *us))
    }

    /// The channel this module lost the most empty-FIFO time to, if any.
    pub fn worst_empty_channel(&self) -> Option<(&str, u64)> {
        self.empty_stall_by_channel
            .iter()
            .max_by_key(|(_, us)| **us)
            .map(|(c, us)| (c.as_str(), *us))
    }
}

/// Condense trace lanes into per-module measurements, in first-seen
/// order. Lanes sharing a module name are summed.
pub fn aggregate(lanes: &[Lane]) -> Vec<ModuleMeasure> {
    let mut order: Vec<String> = Vec::new();
    let mut by_name: BTreeMap<String, ModuleMeasure> = BTreeMap::new();
    for lane in lanes {
        let entry = by_name.entry(lane.module.clone()).or_insert_with(|| {
            order.push(lane.module.clone());
            ModuleMeasure {
                module: lane.module.clone(),
                ..ModuleMeasure::default()
            }
        });
        entry.run_us += lane.run_us();
        entry.full_stall_us += lane.full_stall_us;
        entry.empty_stall_us += lane.empty_stall_us;
        entry.pushes += lane.pushes;
        entry.pops += lane.pops;
        for (channel, us) in &lane.full_stall_by_channel {
            *entry
                .full_stall_by_channel
                .entry(channel.to_string())
                .or_default() += us;
        }
        for (channel, us) in &lane.empty_stall_by_channel {
            *entry
                .empty_stall_by_channel
                .entry(channel.to_string())
                .or_default() += us;
        }
    }
    order
        .into_iter()
        .filter_map(|name| by_name.remove(&name))
        .collect()
}

/// Derive channel producer/consumer pairs from the lanes' per-channel
/// operation ledgers, then overlay the explicitly declared edges, which
/// win on conflict.
pub fn derive_edges(
    lanes: &[Lane],
    declared: &[crate::spec::ChannelEdge],
) -> Vec<crate::spec::ChannelEdge> {
    let mut producers: BTreeMap<String, String> = BTreeMap::new();
    let mut consumers: BTreeMap<String, String> = BTreeMap::new();
    for lane in lanes {
        // A full-FIFO wait is a push-side event and an empty-FIFO wait a
        // pop-side one, so the stall ledgers identify endpoints even for
        // a module that never completed an operation before stalling.
        for (channel, _) in lane
            .pushes_by_channel
            .iter()
            .chain(&lane.full_stall_by_channel)
        {
            producers
                .entry(channel.to_string())
                .or_insert_with(|| lane.module.clone());
        }
        for (channel, _) in lane
            .pops_by_channel
            .iter()
            .chain(&lane.empty_stall_by_channel)
        {
            consumers
                .entry(channel.to_string())
                .or_insert_with(|| lane.module.clone());
        }
    }
    for e in declared {
        producers.insert(e.channel.clone(), e.producer.clone());
        consumers.insert(e.channel.clone(), e.consumer.clone());
    }
    let mut edges: Vec<crate::spec::ChannelEdge> = Vec::new();
    for (channel, producer) in &producers {
        edges.push(crate::spec::ChannelEdge {
            channel: channel.clone(),
            producer: producer.clone(),
            consumer: consumers.get(channel).cloned().unwrap_or_default(),
        });
    }
    // Channels only ever seen from the consumer side.
    for (channel, consumer) in &consumers {
        if !producers.contains_key(channel) {
            edges.push(crate::spec::ChannelEdge {
                channel: channel.clone(),
                producer: String::new(),
                consumer: consumer.clone(),
            });
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_trace::{record_channel_op, EventKind, ModuleScope, Tracer};
    use std::sync::Arc;

    fn traced_pair() -> Vec<Lane> {
        let tracer = Tracer::new();
        let ch: Arc<str> = Arc::from("pipe");
        {
            let _scope = ModuleScope::enter("producer", Some(&tracer));
            record_channel_op(EventKind::Push, &ch, 0, false);
            record_channel_op(EventKind::Push, &ch, 0, true); // full wait
        }
        {
            let _scope = ModuleScope::enter("consumer", Some(&tracer));
            record_channel_op(EventKind::Pop, &ch, 0, true); // empty wait
            record_channel_op(EventKind::Pop, &ch, 0, false);
        }
        tracer.lanes()
    }

    #[test]
    fn aggregate_sums_lanes_and_buckets_stalls_by_channel() {
        let lanes = traced_pair();
        let measures = aggregate(&lanes);
        assert_eq!(measures.len(), 2);
        let p = &measures[0];
        assert_eq!(p.module, "producer");
        assert_eq!(p.pushes, 2);
        assert!(p.full_stall_by_channel.contains_key("pipe"));
        let c = &measures[1];
        assert_eq!(c.pops, 2);
        assert!(c.empty_stall_by_channel.contains_key("pipe"));
    }

    #[test]
    fn aggregate_merges_same_named_lanes() {
        let tracer = Tracer::new();
        for _ in 0..3 {
            let _scope = ModuleScope::enter("worker", Some(&tracer));
            let ch: Arc<str> = Arc::from("c");
            record_channel_op(EventKind::Push, &ch, 0, false);
        }
        let measures = aggregate(&tracer.lanes());
        assert_eq!(measures.len(), 1);
        assert_eq!(measures[0].pushes, 3);
    }

    #[test]
    fn edges_derived_from_events_and_overridden_by_declarations() {
        let lanes = traced_pair();
        let derived = derive_edges(&lanes, &[]);
        let pipe = derived.iter().find(|e| e.channel == "pipe").unwrap();
        assert_eq!(pipe.producer, "producer");
        assert_eq!(pipe.consumer, "consumer");

        let declared = vec![crate::spec::ChannelEdge {
            channel: "pipe".into(),
            producer: "reader".into(),
            consumer: "writer".into(),
        }];
        let merged = derive_edges(&lanes, &declared);
        let pipe = merged.iter().find(|e| e.channel == "pipe").unwrap();
        assert_eq!(pipe.producer, "reader");
        assert_eq!(pipe.consumer, "writer");
    }

    #[test]
    fn busy_share_of_unresolvable_span_is_full() {
        let m = ModuleMeasure {
            module: "instant".into(),
            ..ModuleMeasure::default()
        };
        assert_eq!(m.busy_share(), 1.0);
        assert_eq!(m.throughput_eps(), 0.0);
    }
}
