//! # fblas-audit — closing the loop between model and measurement
//!
//! The FBLAS paper's central analytic claim is the pipeline cycle model
//! `C = L + I·M` (Sec. IV) and its composition rule
//! `C_streamed = Σ L_i + max_i (I_i·M_i)` (Sec. V-A). The simulator
//! (`fblas-hlssim`) *measures* what a composition actually does —
//! per-module run spans, FIFO stall time, element counts — but nothing in
//! the stack compared prediction to measurement, so model drift was
//! invisible.
//!
//! This crate is that comparison:
//!
//! * an [`AuditSpec`] carries the *predicted* side — per-module
//!   [`PipelineCost`]s, the clock frequency, the DRAM ceiling, and the
//!   MDAG critical path;
//! * [`measure::aggregate`] condenses the *measured* side from
//!   [`fblas_trace::Lane`]s into per-module cycle/throughput/stall
//!   figures;
//! * [`audit`] joins the two into an [`AuditReport`]: per-module drift
//!   between predicted and measured busy share, each gap attributed to
//!   compute, the memory-bandwidth ceiling, or upstream/downstream
//!   backpressure, plus a bottleneck verdict with a what-if estimate for
//!   widening the bottleneck's vectorization `W`.
//!
//! The report is serde-serializable, renders as a terminal table
//! ([`AuditReport::render`]), and can inject its per-module busy/drift
//! figures into a [`Tracer`](fblas_trace::Tracer) as counter tracks for
//! the Perfetto exporter ([`AuditReport::record_counters`]).
//!
//! The normalization that makes the comparison meaningful: the software
//! simulator is not cycle-accurate, so absolute wall-clock cannot be
//! held against absolute cycles. What *is* comparable is each module's
//! **busy share**. In a streaming composition the model says module `i`
//! initiates work for `I_i·M_i` of the `max_j (I_j·M_j)` cycles the
//! pipeline drains over, so its predicted busy share is
//! `I_i·M_i / max_j (I_j·M_j)`. The measured side is normalized the
//! same way: the lane's non-stalled time `run − full_wait − empty_wait`
//! relative to the *busiest* lane's, `busy_i / max_j busy_j`. Using the
//! ratio (rather than each module's own busy fraction) keeps the
//! comparison valid on core-starved hosts, where concurrent module
//! threads timeshare and every busy time is scaled together. A module
//! whose measured share falls short of prediction is losing time the
//! model did not account for — and the stall ledger says to whom.
//!
//! **Fused-backend caveat.** When the executor compiles a validated
//! fusion region into a single loop (`FBLAS_BACKEND=fused`/`auto`),
//! that whole region runs as one compute lane named `fused:<region>`:
//! there are no channels inside it, so no per-channel stall ledger and
//! no per-module busy split within the region. Modeled cycles are
//! still emitted per fused *op* and remain backend-invariant; only
//! wall-clock drift *attribution* loses intra-region resolution. Runs
//! that need per-module drift attribution should pin `FBLAS_CHUNK=1`
//! **and** `FBLAS_BACKEND=threaded`.

#![warn(missing_docs)]

pub mod measure;
pub mod report;
pub mod spec;

pub use measure::{aggregate, ModuleMeasure};
pub use report::{audit, Attribution, AuditReport, ModuleAudit, WhatIf};
pub use spec::{AuditSpec, ChannelEdge, ModulePrediction};

/// Default relative drift tolerance: a module is flagged when its
/// measured busy share deviates from the predicted share by more than
/// this fraction.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Tolerance for audits that do not pass one explicitly:
/// [`DEFAULT_TOLERANCE`] unless the `FBLAS_AUDIT_TOLERANCE` environment
/// variable overrides it with a finite value in `(0, 1]`.
pub fn default_tolerance() -> f64 {
    parse_tolerance(std::env::var("FBLAS_AUDIT_TOLERANCE").ok().as_deref())
}

/// Parse a tolerance override; out-of-range and garbage values fall back
/// to [`DEFAULT_TOLERANCE`].
pub fn parse_tolerance(raw: Option<&str>) -> f64 {
    raw.and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0 && *t <= 1.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_parsing_rejects_garbage_and_out_of_range() {
        assert_eq!(parse_tolerance(None), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("0.4")), 0.4);
        assert_eq!(parse_tolerance(Some(" 0.1 ")), 0.1);
        assert_eq!(parse_tolerance(Some("0")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("-0.3")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("2.5")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("NaN")), DEFAULT_TOLERANCE);
        assert_eq!(parse_tolerance(Some("soon")), DEFAULT_TOLERANCE);
    }
}
