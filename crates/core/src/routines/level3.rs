//! Level-3 routines beyond GEMM: SYRK, SYR2K, TRSM.
//!
//! Per the paper (Sec. VI), specialized matrix structure is "implemented
//! in terms of the generic routines": SYRK and SYR2K reuse the systolic
//! GEMM datapath with transposed-role readers and a triangle-aware
//! *Store C*; TRSM buffers the triangular factor on-chip and streams the
//! right-hand sides through a solve datapath.

use fblas_arch::{estimate_circuit, CircuitClass, OpCosts, ResourceEstimate};
use fblas_hlssim::{ModuleKind, PipelineCost, Receiver, Sender, Simulation};

use super::gemm::{Gemm, SystolicShape};
use super::trsv::triangle_len;
use super::{validate_width, Diag, Trans, Uplo};
use crate::host::buffer::DeviceBuffer;
use crate::scalar::Scalar;
use crate::tiling::{TileOrder, Tiling};

/// Side of the triangular factor in TRSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Side {
    /// Solve `op(A)·X = α·B`.
    Left,
    /// Solve `X·op(A) = α·B`.
    Right,
}

/// SYRK: `C ← α·op(A)·op(A)ᵀ + β·C` on the `uplo` triangle, computed on
/// the systolic GEMM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syrk {
    /// Order of `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// `No`: `A` is `n × k`, computes `A·Aᵀ`. `Yes`: `A` is `k × n`,
    /// computes `Aᵀ·A`.
    pub trans: Trans,
    /// Updated triangle.
    pub uplo: Uplo,
    /// PE grid.
    pub shape: SystolicShape,
    /// Memory tile rows.
    pub tr: usize,
    /// Memory tile columns.
    pub tc: usize,
}

impl Syrk {
    /// Configure a SYRK.
    pub fn new(
        n: usize,
        k: usize,
        trans: Trans,
        uplo: Uplo,
        shape: SystolicShape,
        tr: usize,
        tc: usize,
    ) -> Self {
        // Dimension checks are delegated to the underlying GEMM config.
        let _ = Gemm::new(n, n, k, shape, tr, tc);
        Syrk {
            n,
            k,
            trans,
            uplo,
            shape,
            tr,
            tc,
        }
    }

    /// The underlying systolic GEMM configuration (`C` is `n × n`).
    pub fn gemm_cfg(&self) -> Gemm {
        Gemm::new(self.n, self.n, self.k, self.shape, self.tr, self.tc)
    }

    /// Attach the compute module (the systolic array itself).
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_a: Receiver<T>,
        ch_b: Receiver<T>,
        ch_c: Sender<T>,
    ) {
        self.gemm_cfg().attach(sim, ch_a, ch_b, ch_c);
    }

    /// Add the two operand readers: the same `A` buffer streamed in the
    /// GEMM "A role" and, transposed, in the "B role".
    pub fn read_inputs<T: Scalar>(
        &self,
        sim: &mut Simulation,
        a_buf: &DeviceBuffer<T>,
        tx_a: Sender<T>,
        tx_b: Sender<T>,
    ) {
        let cfg = self.gemm_cfg();
        let trans = self.trans;
        let (n, k) = (self.n, self.k);
        let a1 = a_buf.clone();
        sim.add_module("read_syrk_a", ModuleKind::Interface, move || {
            let data = a1.to_host();
            let get = |r: usize, kk: usize| -> T {
                match trans {
                    Trans::No => data[r * k + kk],  // A is n×k
                    Trans::Yes => data[kk * n + r], // A is k×n
                }
            };
            stream_a_role(&cfg, get, &tx_a)
        });
        let a2 = a_buf.clone();
        sim.add_module("read_syrk_b", ModuleKind::Interface, move || {
            let data = a2.to_host();
            // B role carries op(A)ᵀ: element (kk, c) = op(A)[c][kk].
            let get = |kk: usize, c: usize| -> T {
                match trans {
                    Trans::No => data[c * k + kk],
                    Trans::Yes => data[kk * n + c],
                }
            };
            stream_b_role(&cfg, get, &tx_b)
        });
    }

    /// Add the triangle-aware *Store C*: `C ← α·acc + β·C` inside the
    /// `uplo` triangle; elements outside are left untouched (BLAS
    /// semantics: the other triangle is not referenced).
    pub fn store<T: Scalar>(
        &self,
        sim: &mut Simulation,
        c_buf: &DeviceBuffer<T>,
        alpha: T,
        beta: T,
        rx: Receiver<T>,
    ) {
        store_triangle(sim, c_buf, self.gemm_cfg(), self.uplo, alpha, beta, rx);
    }

    /// Circuit resource estimate (the systolic array).
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        self.gemm_cfg().estimate::<T>()
    }

    /// Pipeline cost (full-array schedule; the generic implementation
    /// computes both triangles and keeps one).
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        self.gemm_cfg().cost::<T>()
    }
}

/// SYR2K: `C ← α·(A·Bᵀ + B·Aᵀ) + β·C` on the `uplo` triangle, computed
/// as two systolic products drained into a combining store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syr2k {
    /// Order of `C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// `No`: operands are `n × k`. `Yes`: operands are `k × n` and the
    /// products transpose (`AᵀB + BᵀA`).
    pub trans: Trans,
    /// Updated triangle.
    pub uplo: Uplo,
    /// PE grid (used by each of the two products).
    pub shape: SystolicShape,
    /// Memory tile rows.
    pub tr: usize,
    /// Memory tile columns.
    pub tc: usize,
}

impl Syr2k {
    /// Configure a SYR2K.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        k: usize,
        trans: Trans,
        uplo: Uplo,
        shape: SystolicShape,
        tr: usize,
        tc: usize,
    ) -> Self {
        let _ = Gemm::new(n, n, k, shape, tr, tc);
        Syr2k {
            n,
            k,
            trans,
            uplo,
            shape,
            tr,
            tc,
        }
    }

    /// The GEMM configuration of each of the two products.
    pub fn gemm_cfg(&self) -> Gemm {
        Gemm::new(self.n, self.n, self.k, self.shape, self.tr, self.tc)
    }

    /// Attach the full SYR2K pipeline: readers for both products, two
    /// systolic modules, and the combining triangle store. This is a
    /// streaming composition of two GEMM modules executing in parallel —
    /// inter-module parallelism on one configured design (Sec. V).
    #[allow(clippy::too_many_arguments)]
    pub fn build<T: Scalar>(
        &self,
        sim: &mut Simulation,
        a_buf: &DeviceBuffer<T>,
        b_buf: &DeviceBuffer<T>,
        c_buf: &DeviceBuffer<T>,
        alpha: T,
        beta: T,
    ) {
        let cfg = self.gemm_cfg();
        let trans = self.trans;
        let (n, k) = (self.n, self.k);

        // op(A)·op(B)ᵀ product.
        let (ta1, ra1) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_a1");
        let (tb1, rb1) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_b1");
        let (tc1, rc1) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_c1");
        // op(B)·op(A)ᵀ product.
        let (ta2, ra2) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_a2");
        let (tb2, rb2) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_b2");
        let (tc2, rc2) = fblas_hlssim::channel(sim.ctx(), 256, "syr2k_c2");

        let op_get = move |data: &[T], r: usize, kk: usize| -> T {
            match trans {
                Trans::No => data[r * k + kk],
                Trans::Yes => data[kk * n + r],
            }
        };

        let (a1, b1) = (a_buf.clone(), b_buf.clone());
        sim.add_module("read_syr2k_a1", ModuleKind::Interface, move || {
            let d = a1.to_host();
            stream_a_role(&cfg, |r, kk| op_get(&d, r, kk), &ta1)
        });
        sim.add_module("read_syr2k_b1", ModuleKind::Interface, move || {
            let d = b1.to_host();
            stream_b_role(&cfg, |kk, c| op_get(&d, c, kk), &tb1)
        });
        let (a2, b2) = (a_buf.clone(), b_buf.clone());
        sim.add_module("read_syr2k_a2", ModuleKind::Interface, move || {
            let d = b2.to_host();
            stream_a_role(&cfg, |r, kk| op_get(&d, r, kk), &ta2)
        });
        sim.add_module("read_syr2k_b2", ModuleKind::Interface, move || {
            let d = a2.to_host();
            stream_b_role(&cfg, |kk, c| op_get(&d, c, kk), &tb2)
        });

        cfg.attach(sim, ra1, rb1, tc1);
        cfg.attach(sim, ra2, rb2, tc2);

        // Combining store: C ← α(acc1 + acc2) + βC on the triangle.
        let c = c_buf.clone();
        let uplo = self.uplo;
        sim.add_module("store_syr2k", ModuleKind::Interface, move || {
            let mut out = c.to_host();
            for ti in 0..cfg.tile_rows() {
                for tj in 0..cfg.tile_cols() {
                    for i in 0..cfg.tr {
                        for j in 0..cfg.tc {
                            let acc = rc1.pop()? + rc2.pop()?;
                            let (r, col) = (ti * cfg.tr + i, tj * cfg.tc + j);
                            if r < cfg.n && col < cfg.m {
                                let in_tri = match uplo {
                                    Uplo::Upper => col >= r,
                                    Uplo::Lower => col <= r,
                                };
                                if in_tri {
                                    let idx = r * cfg.m + col;
                                    out[idx] = alpha.mul_add(acc, beta * out[idx]);
                                }
                            }
                        }
                    }
                }
            }
            c.from_host(&out);
            Ok(())
        });
    }

    /// Circuit resource estimate: two systolic arrays.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let one = self.gemm_cfg().estimate::<T>();
        one.merge(one)
    }

    /// Pipeline cost: the two products run in parallel.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        self.gemm_cfg().cost::<T>()
    }
}

/// Stream a matrix in the GEMM "A role" order (per C-tile, per k: a
/// `T_R` column block) using an element getter, zero-padding the edges.
fn stream_a_role<T: Scalar>(
    cfg: &Gemm,
    get: impl Fn(usize, usize) -> T,
    tx: &Sender<T>,
) -> Result<(), fblas_hlssim::SimError> {
    for ti in 0..cfg.tile_rows() {
        for _tj in 0..cfg.tile_cols() {
            for kk in 0..cfg.k {
                for i in 0..cfg.tr {
                    let r = ti * cfg.tr + i;
                    let v = if r < cfg.n { get(r, kk) } else { T::ZERO };
                    tx.push(v)?;
                }
            }
        }
    }
    Ok(())
}

/// Stream a matrix in the GEMM "B role" order (per C-tile, per k: a
/// `T_C` row block) using an element getter, zero-padding the edges.
fn stream_b_role<T: Scalar>(
    cfg: &Gemm,
    get: impl Fn(usize, usize) -> T,
    tx: &Sender<T>,
) -> Result<(), fblas_hlssim::SimError> {
    for _ti in 0..cfg.tile_rows() {
        for tj in 0..cfg.tile_cols() {
            for kk in 0..cfg.k {
                for j in 0..cfg.tc {
                    let c = tj * cfg.tc + j;
                    let v = if c < cfg.m { get(kk, c) } else { T::ZERO };
                    tx.push(v)?;
                }
            }
        }
    }
    Ok(())
}

/// Triangle-aware *Store C* shared by SYRK (and usable standalone).
fn store_triangle<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    cfg: Gemm,
    uplo: Uplo,
    alpha: T,
    beta: T,
    rx: Receiver<T>,
) {
    let buf = buf.clone();
    sim.add_module("store_c_tri", ModuleKind::Interface, move || {
        let mut c = buf.to_host();
        for ti in 0..cfg.tile_rows() {
            for tj in 0..cfg.tile_cols() {
                for i in 0..cfg.tr {
                    for j in 0..cfg.tc {
                        let acc = rx.pop()?;
                        let (r, col) = (ti * cfg.tr + i, tj * cfg.tc + j);
                        if r < cfg.n && col < cfg.m {
                            let in_tri = match uplo {
                                Uplo::Upper => col >= r,
                                Uplo::Lower => col <= r,
                            };
                            if in_tri {
                                let idx = r * cfg.m + col;
                                c[idx] = alpha.mul_add(acc, beta * c[idx]);
                            }
                        }
                    }
                }
            }
        }
        buf.from_host(&c);
        Ok(())
    });
}

/// TRSM: `B ← α·op(A)⁻¹·B` (Left) or `B ← α·B·op(A)⁻¹` (Right), with the
/// triangular factor buffered on-chip and the right-hand sides streamed
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trsm {
    /// Rows of `B`.
    pub m: usize,
    /// Columns of `B`.
    pub n: usize,
    /// Factor side.
    pub side: Side,
    /// Stored triangle of `A`.
    pub uplo: Uplo,
    /// Transpose flag for `A`.
    pub trans: Trans,
    /// Unit-diagonal flag.
    pub diag: Diag,
    /// Vectorization width of the update lanes.
    pub w: usize,
}

impl Trsm {
    /// Configure a TRSM.
    pub fn new(
        m: usize,
        n: usize,
        side: Side,
        uplo: Uplo,
        trans: Trans,
        diag: Diag,
        w: usize,
    ) -> Self {
        validate_width(w);
        Trsm {
            m,
            n,
            side,
            uplo,
            trans,
            diag,
            w,
        }
    }

    /// Order of the triangular factor (`m` for Left, `n` for Right).
    pub fn a_order(&self) -> usize {
        match self.side {
            Side::Left => self.m,
            Side::Right => self.n,
        }
    }

    /// The tiling the `B` reader/writer must use: column-major streaming
    /// for Left (each solve works on one column of `B`), row-major for
    /// Right (each solve works on one row).
    pub fn b_tiling(&self) -> Tiling {
        match self.side {
            Side::Left => Tiling::new(self.m, 1, TileOrder::ColTilesRowMajor),
            Side::Right => Tiling::new(1, self.n, TileOrder::RowTilesRowMajor),
        }
    }

    /// Number of independent solves streamed through the module.
    pub fn rhs_count(&self) -> usize {
        match self.side {
            Side::Left => self.n,
            Side::Right => self.m,
        }
    }

    /// Attach the module: `ch_a` carries the stored triangle (natural
    /// row order, ascending columns, `tri(len)` elements); `ch_b` the
    /// right-hand sides in [`b_tiling`](Self::b_tiling) order; `ch_out`
    /// receives solutions in the same order.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_a: Receiver<T>,
        ch_b: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("trsm", ModuleKind::Compute, move || {
            let ord = cfg.a_order();
            // Buffer the stored triangle on-chip (this is what bounds
            // fully streaming TRSM to on-chip capacity).
            let tri = ch_a.pop_n(triangle_len(ord))?;
            let at = |i: usize, j: usize| -> T {
                // Stored element (i, j) of the uplo triangle.
                match cfg.uplo {
                    Uplo::Lower => {
                        debug_assert!(j <= i);
                        tri[i * (i + 1) / 2 + j]
                    }
                    Uplo::Upper => {
                        debug_assert!(j >= i);
                        // Row i starts after rows 0..i-1, of lengths
                        // ord-r each: Σ_{r<i}(ord−r) = i·ord − i(i−1)/2.
                        let start = i * ord - (i * i - i) / 2;
                        tri[start + (j - i)]
                    }
                }
            };
            // Effective op(A) element accessor.
            let a_elem = |i: usize, j: usize| -> T {
                match cfg.trans {
                    Trans::No => at(i, j),
                    Trans::Yes => at(j, i),
                }
            };
            let effective_upper = matches!(
                (cfg.uplo, cfg.trans),
                (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
            );
            for _rhs in 0..cfg.rhs_count() {
                let mut b = ch_b.pop_n(ord)?;
                for v in b.iter_mut() {
                    *v *= alpha;
                }
                // For Side::Right the system is op(A)ᵀ·xᵀ = bᵀ, which
                // flips the effective triangle once more.
                let upper = match cfg.side {
                    Side::Left => effective_upper,
                    Side::Right => !effective_upper,
                };
                let el = |i: usize, j: usize| -> T {
                    match cfg.side {
                        Side::Left => a_elem(i, j),
                        Side::Right => a_elem(j, i),
                    }
                };
                if upper {
                    for i in (0..ord).rev() {
                        let mut acc = b[i];
                        for j in i + 1..ord {
                            acc -= el(i, j) * b[j];
                        }
                        b[i] = match cfg.diag {
                            Diag::Unit => acc,
                            Diag::NonUnit => acc / el(i, i),
                        };
                    }
                } else {
                    for i in 0..ord {
                        let mut acc = b[i];
                        for j in 0..i {
                            acc -= el(i, j) * b[j];
                        }
                        b[i] = match cfg.diag {
                            Diag::Unit => acc,
                            Diag::NonUnit => acc / el(i, i),
                        };
                    }
                }
                ch_out.push_slice(&b)?;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: update lanes, a divider, and the
    /// on-chip triangle buffer.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let lanes = estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 1,
            },
            T::PRECISION,
        );
        let div = OpCosts::div(T::PRECISION);
        let luts = lanes.luts + div.luts;
        ResourceEstimate {
            luts,
            resources: lanes.resources
                + fblas_arch::Resources::from_luts(div.luts, div.ffs, 0, div.dsps),
            latency: lanes.latency + div.latency,
        }
        .with_buffer(triangle_len(self.a_order()) as u64, T::PRECISION)
    }

    /// Pipeline cost: triangle load + per-solve dependency chains.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let ord = self.a_order() as u64;
        let div_lat = OpCosts::div(T::PRECISION).latency;
        let tri = triangle_len(self.a_order()) as u64;
        let per_solve = (ord * ord / 2).div_ceil(self.w as u64) + ord * div_lat;
        let iterations = tri.div_ceil(self.w as u64) + self.rhs_count() as u64 * per_solve;
        PipelineCost::pipelined(self.estimate::<T>().latency, iterations)
    }
}

/// Add an interface module streaming the stored `uplo` triangle of a
/// full row-major `ord × ord` matrix in the order [`Trsm::attach`]
/// expects (natural row order, ascending columns).
pub fn read_trsm_triangle<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    ord: usize,
    uplo: Uplo,
    tx: Sender<T>,
) {
    super::trsv::read_triangle(sim, buf, ord, uplo, false, tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{read_matrix, write_matrix};
    use fblas_hlssim::channel;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.173).sin()).collect()
    }

    fn dense_gemm_tt(
        n: usize,
        m: usize,
        k: usize,
        a_get: impl Fn(usize, usize) -> f64,
        b_get: impl Fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let mut c = vec![0.0f64; n * m];
        for i in 0..n {
            for j in 0..m {
                for l in 0..k {
                    c[i * m + j] += a_get(i, l) * b_get(l, j);
                }
            }
        }
        c
    }

    fn run_syrk(cfg: Syrk, alpha: f64, beta: f64, a: &[f64], c0: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let c_buf = DeviceBuffer::from_vec("c", c0.to_vec(), 1);
        let (ta, ra) = channel(sim.ctx(), 256, "a");
        let (tb, rb) = channel(sim.ctx(), 256, "b");
        let (tcc, rc) = channel(sim.ctx(), 256, "c");
        cfg.read_inputs(&mut sim, &a_buf, ta, tb);
        cfg.attach(&mut sim, ra, rb, tcc);
        cfg.store(&mut sim, &c_buf, alpha, beta, rc);
        sim.run().unwrap();
        c_buf.to_host()
    }

    #[test]
    fn syrk_no_trans_updates_triangle_only() {
        let (n, k) = (6, 4);
        let cfg = Syrk::new(n, k, Trans::No, Uplo::Upper, SystolicShape::new(2, 2), 2, 2);
        let a = seq(n * k, 1.0);
        let c0 = seq(n * n, 2.0);
        let got = run_syrk(cfg, 1.5, 0.5, &a, &c0);
        let prod = dense_gemm_tt(n, n, k, |i, l| a[i * k + l], |l, j| a[j * k + l]);
        for i in 0..n {
            for j in 0..n {
                let exp = if j >= i {
                    1.5 * prod[i * n + j] + 0.5 * c0[i * n + j]
                } else {
                    c0[i * n + j]
                };
                assert!((got[i * n + j] - exp).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn syrk_trans_computes_ata() {
        let (n, k) = (4, 7);
        let cfg = Syrk::new(
            n,
            k,
            Trans::Yes,
            Uplo::Lower,
            SystolicShape::new(2, 2),
            4,
            4,
        );
        let a = seq(k * n, 3.0); // k×n
        let c0 = vec![0.0f64; n * n];
        let got = run_syrk(cfg, 1.0, 0.0, &a, &c0);
        for i in 0..n {
            for j in 0..=i {
                let mut exp = 0.0;
                for l in 0..k {
                    exp += a[l * n + i] * a[l * n + j];
                }
                assert!((got[i * n + j] - exp).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn syr2k_matches_dense() {
        let (n, k) = (5, 3);
        let cfg = Syr2k::new(n, k, Trans::No, Uplo::Upper, SystolicShape::new(1, 1), 2, 2);
        let a = seq(n * k, 1.0);
        let b = seq(n * k, 2.0);
        let c0 = seq(n * n, 3.0);

        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.clone(), 0);
        let b_buf = DeviceBuffer::from_vec("b", b.clone(), 1);
        let c_buf = DeviceBuffer::from_vec("c", c0.clone(), 2);
        cfg.build(&mut sim, &a_buf, &b_buf, &c_buf, 0.8, 0.4);
        sim.run().unwrap();
        let got = c_buf.to_host();

        for i in 0..n {
            for j in 0..n {
                let exp = if j >= i {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += a[i * k + l] * b[j * k + l] + b[i * k + l] * a[j * k + l];
                    }
                    0.8 * acc + 0.4 * c0[i * n + j]
                } else {
                    c0[i * n + j]
                };
                assert!((got[i * n + j] - exp).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    fn tri_matrix(ord: usize, uplo: Uplo) -> Vec<f64> {
        let mut a = vec![0.0f64; ord * ord];
        for i in 0..ord {
            for j in 0..ord {
                let stored = match uplo {
                    Uplo::Upper => j >= i,
                    Uplo::Lower => j <= i,
                };
                if stored {
                    a[i * ord + j] = 0.1 + 0.05 * (i + 2 * j) as f64;
                }
            }
            a[i * ord + i] += 2.0;
        }
        a
    }

    fn run_trsm(cfg: Trsm, alpha: f64, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let b_buf = DeviceBuffer::from_vec("b", b.to_vec(), 1);
        let out = DeviceBuffer::<f64>::zeroed("x", cfg.m * cfg.n, 2);
        let (ta, ra) = channel(sim.ctx(), 256, "a");
        let (tb, rb) = channel(sim.ctx(), 256, "b");
        let (to, ro) = channel(sim.ctx(), 256, "o");
        read_trsm_triangle(&mut sim, &a_buf, cfg.a_order(), cfg.uplo, ta);
        read_matrix(&mut sim, &b_buf, cfg.m, cfg.n, cfg.b_tiling(), tb, 1);
        cfg.attach(&mut sim, alpha, ra, rb, to);
        write_matrix(&mut sim, &out, cfg.m, cfg.n, cfg.b_tiling(), ro);
        sim.run().unwrap();
        out.to_host()
    }

    /// Dense op(A)·X or X·op(A) for building test right-hand sides.
    fn apply_tri(cfg: &Trsm, a: &[f64], x: &[f64]) -> Vec<f64> {
        let ord = cfg.a_order();
        let (m, n) = (cfg.m, cfg.n);
        let mut b = vec![0.0f64; m * n];
        let el = |i: usize, j: usize| -> f64 {
            let (r, c) = match cfg.trans {
                Trans::No => (i, j),
                Trans::Yes => (j, i),
            };
            let stored = match cfg.uplo {
                Uplo::Upper => c >= r,
                Uplo::Lower => c <= r,
            };
            if !stored {
                return 0.0;
            }
            if r == c && cfg.diag == Diag::Unit {
                1.0
            } else {
                a[r * ord + c]
            }
        };
        match cfg.side {
            Side::Left => {
                for i in 0..m {
                    for j in 0..n {
                        for l in 0..m {
                            b[i * n + j] += el(i, l) * x[l * n + j];
                        }
                    }
                }
            }
            Side::Right => {
                for i in 0..m {
                    for j in 0..n {
                        for l in 0..n {
                            b[i * n + j] += x[i * n + l] * el(l, j);
                        }
                    }
                }
            }
        }
        b
    }

    #[test]
    fn trsm_left_all_flag_combinations() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::Unit, Diag::NonUnit] {
                    let cfg = Trsm::new(5, 3, Side::Left, uplo, trans, diag, 2);
                    let a = tri_matrix(5, uplo);
                    let x = seq(5 * 3, 7.0);
                    let b = apply_tri(&cfg, &a, &x);
                    let got = run_trsm(cfg, 1.0, &a, &b);
                    for idx in 0..x.len() {
                        assert!(
                            (got[idx] - x[idx]).abs() < 1e-9,
                            "{uplo:?}/{trans:?}/{diag:?} idx {idx}: {} vs {}",
                            got[idx],
                            x[idx]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_right_solves() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                let cfg = Trsm::new(3, 4, Side::Right, uplo, trans, Diag::NonUnit, 1);
                let a = tri_matrix(4, uplo);
                let x = seq(3 * 4, 9.0);
                let b = apply_tri(&cfg, &a, &x);
                let got = run_trsm(cfg, 1.0, &a, &b);
                for idx in 0..x.len() {
                    assert!(
                        (got[idx] - x[idx]).abs() < 1e-9,
                        "{uplo:?}/{trans:?} idx {idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let cfg = Trsm::new(2, 2, Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, 1);
        let a = vec![2.0f64, 0.0, 0.0, 4.0];
        let b = vec![2.0f64, 4.0, 8.0, 16.0];
        let got = run_trsm(cfg, 3.0, &a, &b);
        assert_eq!(got, vec![3.0, 6.0, 6.0, 12.0]);
    }

    #[test]
    fn fully_unrolled_trsm_4x4_for_batched_mode() {
        // The Table V workload shape: tiny 4×4 solves.
        let cfg = Trsm::new(4, 4, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 4);
        let a = tri_matrix(4, Uplo::Lower);
        let x = seq(16, 1.0);
        let b = apply_tri(&cfg, &a, &x);
        let got = run_trsm(cfg, 1.0, &a, &b);
        for idx in 0..16 {
            assert!((got[idx] - x[idx]).abs() < 1e-9);
        }
    }

    #[test]
    fn estimates_and_costs() {
        let syrk = Syrk::new(
            64,
            64,
            Trans::No,
            Uplo::Upper,
            SystolicShape::new(4, 4),
            8,
            8,
        );
        assert_eq!(syrk.estimate::<f32>().resources.dsps, 16);
        let syr2k = Syr2k::new(
            64,
            64,
            Trans::No,
            Uplo::Upper,
            SystolicShape::new(4, 4),
            8,
            8,
        );
        assert_eq!(syr2k.estimate::<f32>().resources.dsps, 32, "two arrays");
        let trsm = Trsm::new(64, 8, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 4);
        assert!(
            trsm.estimate::<f32>().resources.m20ks >= 4,
            "triangle buffer"
        );
        assert!(trsm.cost::<f32>().iterations > 0);
    }
}
