//! FBLAS HLS modules: the streaming routine implementations.
//!
//! Each routine is a configuration struct (`Dot`, `Gemv`, `Gemm`, …) that
//! can
//!
//! * `attach` itself to a [`Simulation`](fblas_hlssim::Simulation) as a
//!   computational module reading and writing FIFO channels — the
//!   functional behaviour;
//! * `estimate` its circuit resources via the calibrated model of
//!   [`fblas_arch::estimator`] — the space side of the space/time
//!   trade-off (paper Sec. IV);
//! * report its pipeline `cost` (`C = L + I·M`) — the time side.
//!
//! All modules are perfectly pipelined (`I = 1`) thanks to the paper's
//! pipeline-enabling transformations; the `W`-wide inner loops are
//! simulated with the same reduction shapes the unrolled circuits use
//! (binary adder trees, see [`crate::scalar::tree_sum`]).

pub mod gemm;
pub mod gemv;
pub mod ger;
pub mod level1_map;
pub mod level1_reduce;
pub mod level1_scalar;
pub mod level3;
pub mod trsv;

pub use gemm::{Gemm, SystolicShape};
pub use gemv::{Gemv, GemvVariant};
pub use ger::{Ger, Syr, Syr2};
pub use level1_map::{Axpy, Rot, Rotm, Scal, Swap, VecCopy};
pub use level1_reduce::{Asum, Dot, Iamax, Nrm2, Sdsdot};
pub use level1_scalar::{Rotg, Rotmg};
pub use level3::{Side, Syr2k, Syrk, Trsm};
pub use trsv::Trsv;

/// Whether a matrix operand is used transposed (functional parameter of
/// the code generator, paper Sec. II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose.
    Yes,
}

/// Which triangle of a matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Uplo {
    /// Upper triangle.
    Upper,
    /// Lower triangle.
    Lower,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Diag {
    /// Implicit ones on the diagonal.
    Unit,
    /// Diagonal stored explicitly.
    NonUnit,
}

/// Number of `W`-wide outer-loop iterations covering `n` elements —
/// `⌈n/W⌉`, the `M` of the cycle formula `C = L + I·M`.
pub fn outer_iterations(n: usize, w: usize) -> u64 {
    assert!(w >= 1, "vectorization width must be at least 1");
    n.div_ceil(w) as u64
}

/// Validate a vectorization width (must be ≥ 1; the paper's designs use
/// powers of two, which we encourage but do not require).
pub fn validate_width(w: usize) {
    assert!(w >= 1, "vectorization width must be at least 1");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_iterations_rounds_up() {
        assert_eq!(outer_iterations(100, 4), 25);
        assert_eq!(outer_iterations(101, 4), 26);
        assert_eq!(outer_iterations(0, 4), 0);
        assert_eq!(outer_iterations(3, 8), 1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        outer_iterations(10, 0);
    }
}
