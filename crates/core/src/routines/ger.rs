//! Rank-1 update modules: GER, SYR, SYR2.
//!
//! These are *map*-class Level-2 routines (paper Sec. IV-A): each matrix
//! element receives an independent fused multiply-add, so the `W`-wide
//! inner loop is `W` independent MAC lanes. The matrix is streamed
//! through the module (in, updated, out) in tiles by rows; the column
//! operand is replayed once per row of tiles by its interface module.

use fblas_arch::{estimate_circuit, CircuitClass, ResourceEstimate};
use fblas_hlssim::{
    ChunkReader, ChunkWriter, ModuleKind, PipelineCost, Receiver, Sender, Simulation,
};

use super::{validate_width, Uplo};
use crate::scalar::Scalar;
use crate::tiling::{TileOrder, Tiling};

/// Extent of tile `b` of size `t` over an axis of length `total`.
fn tile_extent(b: usize, t: usize, total: usize) -> usize {
    let start = b * t;
    t.min(total - start)
}

/// GER: `A ← α·x·yᵀ + A` over an `n × m` matrix streamed in tiles by
/// rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ger {
    /// Rows of `A`.
    pub n: usize,
    /// Columns of `A`.
    pub m: usize,
    /// Tile height `T_N`.
    pub tn: usize,
    /// Tile width `T_M`.
    pub tm: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Ger {
    /// Configure a GER module.
    pub fn new(n: usize, m: usize, tn: usize, tm: usize, w: usize) -> Self {
        validate_width(w);
        assert!(tn >= 1 && tm >= 1, "tile dimensions must be at least 1");
        Ger { n, m, tn, tm, w }
    }

    /// The tiling the `A` reader/writer must use.
    pub fn a_tiling(&self) -> Tiling {
        Tiling::new(self.tn, self.tm, TileOrder::RowTilesRowMajor)
    }

    /// Replay count for the `y` operand: once per row of tiles.
    pub fn y_repetitions(&self) -> usize {
        self.n.div_ceil(self.tn)
    }

    /// Attach the module: `ch_a`/`ch_out` carry the matrix in tile order,
    /// `ch_x` delivers `x` in row blocks (once), `ch_y` delivers `y`
    /// replayed [`y_repetitions`](Self::y_repetitions) times.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_a: Receiver<T>,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("ger", ModuleKind::Compute, move || {
            // The matrix stream is relayed in chunks; the writer is
            // flushed at every tile boundary so no output is buffered
            // across the blocking vector-block reads.
            let mut a_rd = ChunkReader::new(&ch_a);
            let mut out_wr = ChunkWriter::new(&ch_out);
            for bi in 0..cfg.n.div_ceil(cfg.tn) {
                let rows = tile_extent(bi, cfg.tn, cfg.n);
                let xblock = ch_x.pop_n(rows)?;
                for bj in 0..cfg.m.div_ceil(cfg.tm) {
                    let cols = tile_extent(bj, cfg.tm, cfg.m);
                    let yblock = ch_y.pop_n(cols)?;
                    for xi in xblock.iter().take(rows) {
                        let ax = alpha * *xi;
                        for yj in yblock.iter().take(cols) {
                            let a = a_rd.next()?;
                            out_wr.push(ax.mul_add(*yj, a))?;
                        }
                    }
                    out_wr.flush()?;
                }
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: `W` MAC lanes plus vector tile buffers.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 1,
            },
            T::PRECISION,
        )
        .with_buffer((self.tn + self.tm) as u64, T::PRECISION)
    }

    /// Pipeline cost: the matrix stream dominates.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let elems = self.n as u64 * self.m as u64;
        PipelineCost::pipelined(self.estimate::<T>().latency, elems.div_ceil(self.w as u64))
    }
}

/// SYR: `A ← α·x·xᵀ + A` on the `uplo` triangle of an `n × n` matrix.
///
/// The full square matrix is streamed and only the `uplo` triangle is
/// updated — "specialized matrix routines (triangular and symmetric
/// matrices) must currently be implemented in terms of the generic
/// routines" (paper Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syr {
    /// Matrix order.
    pub n: usize,
    /// Tile height.
    pub tn: usize,
    /// Tile width.
    pub tm: usize,
    /// Vectorization width `W`.
    pub w: usize,
    /// Updated triangle.
    pub uplo: Uplo,
}

impl Syr {
    /// Configure a SYR module.
    pub fn new(n: usize, tn: usize, tm: usize, w: usize, uplo: Uplo) -> Self {
        validate_width(w);
        assert!(tn >= 1 && tm >= 1, "tile dimensions must be at least 1");
        Syr { n, tn, tm, w, uplo }
    }

    /// The tiling the `A` reader/writer must use.
    pub fn a_tiling(&self) -> Tiling {
        Tiling::new(self.tn, self.tm, TileOrder::RowTilesRowMajor)
    }

    /// Replay count for the column copy of `x`.
    pub fn x_col_repetitions(&self) -> usize {
        self.n.div_ceil(self.tn)
    }

    /// Attach the module: `ch_x_row` delivers `x` in row blocks once;
    /// `ch_x_col` delivers `x` replayed per row of tiles.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_a: Receiver<T>,
        ch_x_row: Receiver<T>,
        ch_x_col: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("syr", ModuleKind::Compute, move || {
            let mut a_rd = ChunkReader::new(&ch_a);
            let mut out_wr = ChunkWriter::new(&ch_out);
            for bi in 0..cfg.n.div_ceil(cfg.tn) {
                let rows = tile_extent(bi, cfg.tn, cfg.n);
                let r0 = bi * cfg.tn;
                let xrow = ch_x_row.pop_n(rows)?;
                for bj in 0..cfg.n.div_ceil(cfg.tm) {
                    let cols = tile_extent(bj, cfg.tm, cfg.n);
                    let c0 = bj * cfg.tm;
                    let xcol = ch_x_col.pop_n(cols)?;
                    for i in 0..rows {
                        for j in 0..cols {
                            let a = a_rd.next()?;
                            let (gi, gj) = (r0 + i, c0 + j);
                            let in_triangle = match cfg.uplo {
                                Uplo::Upper => gj >= gi,
                                Uplo::Lower => gj <= gi,
                            };
                            let v = if in_triangle {
                                (alpha * xrow[i]).mul_add(xcol[j], a)
                            } else {
                                a
                            };
                            out_wr.push(v)?;
                        }
                    }
                    out_wr.flush()?;
                }
            }
            Ok(())
        });
    }

    /// Circuit resource estimate.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 1,
            },
            T::PRECISION,
        )
        .with_buffer((self.tn + self.tm) as u64, T::PRECISION)
    }

    /// Pipeline cost: full square matrix streamed.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let elems = (self.n as u64).pow(2);
        PipelineCost::pipelined(self.estimate::<T>().latency, elems.div_ceil(self.w as u64))
    }
}

/// SYR2: `A ← α·x·yᵀ + α·y·xᵀ + A` on the `uplo` triangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syr2 {
    /// Matrix order.
    pub n: usize,
    /// Tile height.
    pub tn: usize,
    /// Tile width.
    pub tm: usize,
    /// Vectorization width `W`.
    pub w: usize,
    /// Updated triangle.
    pub uplo: Uplo,
}

impl Syr2 {
    /// Configure a SYR2 module.
    pub fn new(n: usize, tn: usize, tm: usize, w: usize, uplo: Uplo) -> Self {
        validate_width(w);
        assert!(tn >= 1 && tm >= 1, "tile dimensions must be at least 1");
        Syr2 { n, tn, tm, w, uplo }
    }

    /// The tiling the `A` reader/writer must use.
    pub fn a_tiling(&self) -> Tiling {
        Tiling::new(self.tn, self.tm, TileOrder::RowTilesRowMajor)
    }

    /// Replay count for the column copies of `x` and `y`.
    pub fn col_repetitions(&self) -> usize {
        self.n.div_ceil(self.tn)
    }

    /// Attach the module. Row copies of `x`/`y` arrive once; column
    /// copies are replayed per row of tiles.
    #[allow(clippy::too_many_arguments)]
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_a: Receiver<T>,
        ch_x_row: Receiver<T>,
        ch_y_row: Receiver<T>,
        ch_x_col: Receiver<T>,
        ch_y_col: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("syr2", ModuleKind::Compute, move || {
            let mut a_rd = ChunkReader::new(&ch_a);
            let mut out_wr = ChunkWriter::new(&ch_out);
            for bi in 0..cfg.n.div_ceil(cfg.tn) {
                let rows = tile_extent(bi, cfg.tn, cfg.n);
                let r0 = bi * cfg.tn;
                let xrow = ch_x_row.pop_n(rows)?;
                let yrow = ch_y_row.pop_n(rows)?;
                for bj in 0..cfg.n.div_ceil(cfg.tm) {
                    let cols = tile_extent(bj, cfg.tm, cfg.n);
                    let c0 = bj * cfg.tm;
                    let xcol = ch_x_col.pop_n(cols)?;
                    let ycol = ch_y_col.pop_n(cols)?;
                    for i in 0..rows {
                        for j in 0..cols {
                            let a = a_rd.next()?;
                            let (gi, gj) = (r0 + i, c0 + j);
                            let in_triangle = match cfg.uplo {
                                Uplo::Upper => gj >= gi,
                                Uplo::Lower => gj <= gi,
                            };
                            let v = if in_triangle {
                                let t = (alpha * xrow[i]).mul_add(ycol[j], a);
                                (alpha * yrow[i]).mul_add(xcol[j], t)
                            } else {
                                a
                            };
                            out_wr.push(v)?;
                        }
                    }
                    out_wr.flush()?;
                }
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: two MAC pairs per lane.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 2,
            },
            T::PRECISION,
        )
        .with_buffer(2 * (self.tn + self.tm) as u64, T::PRECISION)
    }

    /// Pipeline cost: full square matrix streamed.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let elems = (self.n as u64).pow(2);
        PipelineCost::pipelined(self.estimate::<T>().latency, elems.div_ceil(self.w as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::writers::write_matrix;
    use crate::helpers::{read_matrix, read_vector, read_vector_replayed};
    use crate::host::buffer::DeviceBuffer;
    use fblas_hlssim::channel;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.531).sin()).collect()
    }

    fn run_ger(cfg: Ger, alpha: f64, a: &[f64], x: &[f64], y: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let x_buf = DeviceBuffer::from_vec("x", x.to_vec(), 0);
        let y_buf = DeviceBuffer::from_vec("y", y.to_vec(), 0);
        let out = DeviceBuffer::<f64>::zeroed("a_out", cfg.n * cfg.m, 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (tx, rx) = channel(sim.ctx(), 64, "x");
        let (ty, ry) = channel(sim.ctx(), 64, "y");
        let (to, ro) = channel(sim.ctx(), 64, "out");
        read_matrix(&mut sim, &a_buf, cfg.n, cfg.m, cfg.a_tiling(), ta, 1);
        read_vector(&mut sim, &x_buf, tx);
        read_vector_replayed(&mut sim, &y_buf, ty, cfg.y_repetitions());
        cfg.attach(&mut sim, alpha, ra, rx, ry, to);
        write_matrix(&mut sim, &out, cfg.n, cfg.m, cfg.a_tiling(), ro);
        sim.run().unwrap();
        out.to_host()
    }

    #[test]
    fn ger_matches_dense_update() {
        for (n, m, tn, tm) in [(6, 8, 2, 4), (5, 7, 3, 3), (4, 4, 4, 4)] {
            let cfg = Ger::new(n, m, tn, tm, 2);
            let a = seq(n * m, 0.0);
            let x = seq(n, 1.0);
            let y = seq(m, 2.0);
            let got = run_ger(cfg, 1.7, &a, &x, &y);
            for i in 0..n {
                for j in 0..m {
                    let exp = a[i * m + j] + 1.7 * x[i] * y[j];
                    assert!(
                        (got[i * m + j] - exp).abs() < 1e-12,
                        "n={n} m={m} ({i},{j})"
                    );
                }
            }
        }
    }

    fn run_syr(cfg: Syr, alpha: f64, a: &[f64], x: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let x_buf = DeviceBuffer::from_vec("x", x.to_vec(), 0);
        let out = DeviceBuffer::<f64>::zeroed("a_out", cfg.n * cfg.n, 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (txr, rxr) = channel(sim.ctx(), 64, "xr");
        let (txc, rxc) = channel(sim.ctx(), 64, "xc");
        let (to, ro) = channel(sim.ctx(), 64, "out");
        read_matrix(&mut sim, &a_buf, cfg.n, cfg.n, cfg.a_tiling(), ta, 1);
        read_vector(&mut sim, &x_buf, txr);
        read_vector_replayed(&mut sim, &x_buf, txc, cfg.x_col_repetitions());
        cfg.attach(&mut sim, alpha, ra, rxr, rxc, to);
        write_matrix(&mut sim, &out, cfg.n, cfg.n, cfg.a_tiling(), ro);
        sim.run().unwrap();
        out.to_host()
    }

    #[test]
    fn syr_updates_only_triangle() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let n = 6;
            let cfg = Syr::new(n, 2, 3, 2, uplo);
            let a = seq(n * n, 0.0);
            let x = seq(n, 1.0);
            let got = run_syr(cfg, 2.0, &a, &x);
            for i in 0..n {
                for j in 0..n {
                    let in_tri = match uplo {
                        Uplo::Upper => j >= i,
                        Uplo::Lower => j <= i,
                    };
                    let exp = if in_tri {
                        a[i * n + j] + 2.0 * x[i] * x[j]
                    } else {
                        a[i * n + j]
                    };
                    assert!((got[i * n + j] - exp).abs() < 1e-12, "{uplo:?} ({i},{j})");
                }
            }
        }
    }

    fn run_syr2(cfg: Syr2, alpha: f64, a: &[f64], x: &[f64], y: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let x_buf = DeviceBuffer::from_vec("x", x.to_vec(), 0);
        let y_buf = DeviceBuffer::from_vec("y", y.to_vec(), 0);
        let out = DeviceBuffer::<f64>::zeroed("a_out", cfg.n * cfg.n, 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (txr, rxr) = channel(sim.ctx(), 64, "xr");
        let (tyr, ryr) = channel(sim.ctx(), 64, "yr");
        let (txc, rxc) = channel(sim.ctx(), 64, "xc");
        let (tyc, ryc) = channel(sim.ctx(), 64, "yc");
        let (to, ro) = channel(sim.ctx(), 64, "out");
        read_matrix(&mut sim, &a_buf, cfg.n, cfg.n, cfg.a_tiling(), ta, 1);
        read_vector(&mut sim, &x_buf, txr);
        read_vector(&mut sim, &y_buf, tyr);
        read_vector_replayed(&mut sim, &x_buf, txc, cfg.col_repetitions());
        read_vector_replayed(&mut sim, &y_buf, tyc, cfg.col_repetitions());
        cfg.attach(&mut sim, alpha, ra, rxr, ryr, rxc, ryc, to);
        write_matrix(&mut sim, &out, cfg.n, cfg.n, cfg.a_tiling(), ro);
        sim.run().unwrap();
        out.to_host()
    }

    #[test]
    fn syr2_matches_dense_update() {
        let n = 5;
        let cfg = Syr2::new(n, 2, 2, 1, Uplo::Lower);
        let a = seq(n * n, 3.0);
        let x = seq(n, 4.0);
        let y = seq(n, 5.0);
        let got = run_syr2(cfg, 0.9, &a, &x, &y);
        for i in 0..n {
            for j in 0..n {
                let exp = if j <= i {
                    a[i * n + j] + 0.9 * (x[i] * y[j] + y[i] * x[j])
                } else {
                    a[i * n + j]
                };
                assert!((got[i * n + j] - exp).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn estimates_are_map_class() {
        let g = Ger::new(100, 100, 10, 10, 8);
        let e = g.estimate::<f32>();
        assert_eq!(e.resources.dsps, 8, "one MAC lane per width unit");
        let s2 = Syr2::new(100, 10, 10, 8, Uplo::Upper).estimate::<f32>();
        assert_eq!(s2.resources.dsps, 16, "two MAC pairs per lane");
    }

    #[test]
    fn cost_streams_whole_matrix() {
        let g = Ger::new(64, 32, 8, 8, 4);
        assert_eq!(g.cost::<f64>().iterations, 64 * 32 / 4);
        let s = Syr::new(64, 8, 8, 4, Uplo::Upper);
        assert_eq!(s.cost::<f64>().iterations, 64 * 64 / 4);
    }
}
