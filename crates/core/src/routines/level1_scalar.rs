//! Level-1 scalar-only modules: ROTG and ROTMG.
//!
//! These construct Givens rotations from a handful of scalars — no
//! vectorization applies. Their circuits are dominated by a divider and
//! (for ROTG) a square root, and they exist in FBLAS for completeness of
//! the Level-1 interface.

use fblas_arch::{OpCosts, ResourceEstimate, Resources};
use fblas_hlssim::{ModuleKind, PipelineCost, Receiver, Sender, Simulation};

use crate::scalar::Scalar;

/// ROTG: pops `(a, b)`, pushes `(r, z, c, s)` of the Givens rotation
/// annihilating `b` (netlib semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rotg;

/// Compute the Givens rotation `(r, z, c, s)` for `(a, b)` —
/// the arithmetic shared by the module and the host layer.
pub fn rotg_kernel<T: Scalar>(a: T, b: T) -> (T, T, T, T) {
    let roe = if a.abs() > b.abs() { a } else { b };
    let scale = a.abs() + b.abs();
    if scale == T::ZERO {
        return (T::ZERO, T::ZERO, T::ONE, T::ZERO);
    }
    let sa = a / scale;
    let sb = b / scale;
    let r = (scale * (sa * sa + sb * sb).sqrt()).copysign(roe);
    let c = a / r;
    let s = b / r;
    let z = if a.abs() > b.abs() {
        s
    } else if c != T::ZERO {
        T::ONE / c
    } else {
        T::ONE
    };
    (r, z, c, s)
}

impl Rotg {
    /// Attach the module.
    pub fn attach<T: Scalar>(&self, sim: &mut Simulation, ch_in: Receiver<T>, ch_out: Sender<T>) {
        sim.add_module("rotg", ModuleKind::Compute, move || {
            let a = ch_in.pop()?;
            let b = ch_in.pop()?;
            let (r, z, c, s) = rotg_kernel(a, b);
            ch_out.push(r)?;
            ch_out.push(z)?;
            ch_out.push(c)?;
            ch_out.push(s)?;
            Ok(())
        });
    }

    /// Circuit resource estimate: two dividers and a square root.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let div = OpCosts::div(T::PRECISION);
        let sqrt = OpCosts::sqrt(T::PRECISION);
        let luts = 2 * div.luts + sqrt.luts;
        ResourceEstimate {
            luts,
            resources: Resources::from_luts(
                luts,
                2 * div.ffs + sqrt.ffs,
                0,
                2 * div.dsps + sqrt.dsps,
            ),
            latency: div.latency + sqrt.latency,
        }
    }

    /// Pipeline cost: a single iteration through the scalar datapath.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(self.estimate::<T>().latency, 1)
    }
}

/// ROTMG: pops `(d1, d2, x1, y1)`, pushes
/// `(d1', d2', x1', flag, h11, h21, h12, h22)` — the netlib `param`
/// layout flattened onto the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rotmg;

/// The ROTMG arithmetic: returns `(d1, d2, x1, param)` with `param` in
/// netlib order `[flag, h11, h21, h12, h22]`.
pub fn rotmg_kernel<T: Scalar>(mut d1: T, mut d2: T, mut x1: T, y1: T) -> (T, T, T, [T; 5]) {
    let gam = T::from_f64(4096.0);
    let gamsq = gam * gam;
    let rgamsq = T::ONE / gamsq;

    let zeroed = |_: ()| {
        (
            T::ZERO,
            T::ZERO,
            T::ZERO,
            [-T::ONE, T::ZERO, T::ZERO, T::ZERO, T::ZERO],
        )
    };

    if d1 < T::ZERO {
        return zeroed(());
    }
    let p2 = d2 * y1;
    if p2 == T::ZERO {
        return (
            d1,
            d2,
            x1,
            [-(T::ONE + T::ONE), T::ZERO, T::ZERO, T::ZERO, T::ZERO],
        );
    }
    let p1 = d1 * x1;
    let q2 = p2 * y1;
    let q1 = p1 * x1;

    let mut flag;
    let (mut h11, mut h12, mut h21, mut h22);
    if q1.abs() > q2.abs() {
        h21 = -y1 / x1;
        h12 = p2 / p1;
        let u = T::ONE - h12 * h21;
        if u <= T::ZERO {
            return zeroed(());
        }
        flag = T::ZERO;
        d1 /= u;
        d2 /= u;
        x1 *= u;
        h11 = T::ONE;
        h22 = T::ONE;
    } else {
        if q2 < T::ZERO {
            return zeroed(());
        }
        flag = T::ONE;
        h11 = p1 / p2;
        h22 = x1 / y1;
        let u = T::ONE + h11 * h22;
        let tmp = d2 / u;
        d2 = d1 / u;
        d1 = tmp;
        x1 = y1 * u;
        h12 = T::ONE;
        h21 = -T::ONE;
    }

    while d1 != T::ZERO && (d1 <= rgamsq || d1 >= gamsq) {
        flag = -T::ONE;
        if d1 <= rgamsq {
            d1 *= gamsq;
            x1 /= gam;
            h11 /= gam;
            h12 /= gam;
        } else {
            d1 /= gamsq;
            x1 *= gam;
            h11 *= gam;
            h12 *= gam;
        }
    }
    while d2 != T::ZERO && (d2.abs() <= rgamsq || d2.abs() >= gamsq) {
        flag = -T::ONE;
        if d2.abs() <= rgamsq {
            d2 *= gamsq;
            h21 /= gam;
            h22 /= gam;
        } else {
            d2 /= gamsq;
            h21 *= gam;
            h22 *= gam;
        }
    }

    // Blank out implicit entries per flag, netlib-style.
    let param = if flag.to_f64() == 0.0 {
        [flag, T::ZERO, h21, h12, T::ZERO]
    } else if flag.to_f64() == 1.0 {
        [flag, h11, T::ZERO, T::ZERO, h22]
    } else {
        [flag, h11, h21, h12, h22]
    };
    (d1, d2, x1, param)
}

impl Rotmg {
    /// Attach the module.
    pub fn attach<T: Scalar>(&self, sim: &mut Simulation, ch_in: Receiver<T>, ch_out: Sender<T>) {
        sim.add_module("rotmg", ModuleKind::Compute, move || {
            let d1 = ch_in.pop()?;
            let d2 = ch_in.pop()?;
            let x1 = ch_in.pop()?;
            let y1 = ch_in.pop()?;
            let (d1, d2, x1, param) = rotmg_kernel(d1, d2, x1, y1);
            for v in [d1, d2, x1] {
                ch_out.push(v)?;
            }
            for v in param {
                ch_out.push(v)?;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: several dividers and the rescaling
    /// comparators.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let div = OpCosts::div(T::PRECISION);
        let luts = 4 * div.luts + 600;
        ResourceEstimate {
            luts,
            resources: Resources::from_luts(luts, 4 * div.ffs + 1200, 0, 4 * div.dsps),
            latency: 2 * div.latency,
        }
    }

    /// Pipeline cost: a single iteration through the scalar datapath.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(self.estimate::<T>().latency, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    #[test]
    fn rotg_module_streams_result() {
        let mut sim = Simulation::new();
        let (ti, ri) = channel(sim.ctx(), 4, "in");
        let (to, ro) = channel(sim.ctx(), 4, "out");
        sim.add_module("src", ModuleKind::Interface, move || {
            ti.push_slice(&[3.0f64, 4.0])
        });
        Rotg.attach(&mut sim, ri, to);
        sim.add_module("check", ModuleKind::Interface, move || {
            let v = ro.pop_n(4)?;
            let (r, _z, c, s) = (v[0], v[1], v[2], v[3]);
            assert!((r.abs() - 5.0).abs() < 1e-12);
            assert!((c * 4.0 - s * 3.0 - (c * 4.0 - s * 3.0)).abs() < 1e-12);
            assert!((-s * 3.0 + c * 4.0).abs() < 1e-12, "b must be annihilated");
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn rotg_kernel_zero_case() {
        let (r, z, c, s) = rotg_kernel(0.0f32, 0.0);
        assert_eq!((r, z, c, s), (0.0, 0.0, 1.0, 0.0));
    }

    #[test]
    fn rotmg_kernel_annihilates() {
        for &(d1, d2, x1, y1) in &[
            (2.0f64, 3.0, 1.5, 0.5),
            (1.0, 1.0, 1.0, 2.0),
            (0.5, 4.0, -1.0, 0.25),
        ] {
            let (_d1n, _d2n, x1n, param) = rotmg_kernel(d1, d2, x1, y1);
            let dec = crate::routines::level1_map::decode_rotm_param(&param).unwrap();
            let (h11, h12, h21, h22) = dec;
            let xr = x1 * h11 + y1 * h12;
            let yr = x1 * h21 + y1 * h22;
            assert!(yr.abs() < 1e-10, "({d1},{d2},{x1},{y1}): yr = {yr}");
            assert!((xr - x1n).abs() < 1e-10);
        }
    }

    #[test]
    fn rotmg_module_streams_eight_outputs() {
        let mut sim = Simulation::new();
        let (ti, ri) = channel(sim.ctx(), 4, "in");
        let (to, ro) = channel(sim.ctx(), 8, "out");
        sim.add_module("src", ModuleKind::Interface, move || {
            ti.push_slice(&[2.0f64, 3.0, 1.5, 0.5])
        });
        Rotmg.attach(&mut sim, ri, to);
        sim.add_module("check", ModuleKind::Interface, move || {
            let v = ro.pop_n(8)?;
            // d1', d2' positive, flag is one of {-2,-1,0,1}.
            assert!(v[0] > 0.0 && v[1] > 0.0);
            assert!([-2.0, -1.0, 0.0, 1.0].contains(&v[3]));
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn rotmg_negative_d1_zeroes() {
        let (d1, d2, x1, param) = rotmg_kernel(-1.0f64, 1.0, 1.0, 1.0);
        assert_eq!((d1, d2, x1), (0.0, 0.0, 0.0));
        assert_eq!(param[0], -1.0);
    }

    #[test]
    fn estimates_have_div_and_sqrt_costs() {
        let rg = Rotg.estimate::<f32>();
        assert!(rg.resources.dsps >= 6);
        assert!(rg.latency >= 50);
        let rm = Rotmg.estimate::<f64>();
        assert!(rm.resources.dsps >= 8);
        assert_eq!(Rotg.cost::<f32>().iterations, 1);
        assert_eq!(Rotmg.cost::<f32>().iterations, 1);
    }
}
