//! GEMM: 2D systolic matrix-matrix multiply (paper Sec. III-C, Fig. 3).
//!
//! A `P_R × P_C` grid of processing elements computes one `T_R × T_C`
//! tile of `C` at a time (`T_R`, `T_C` multiples of `P_R`, `P_C`): helper
//! kernels *Read A* / *Read B* fetch operands from DRAM, feeders forward
//! them along the first row and column of PEs, each PE multiplies and
//! accumulates one `A`/`B` element pair per clock, and drainers collect
//! finished tiles toward *Store C*. Each PE has constant fan-out, which
//! is what lets the design scale to thousands of PEs where naive
//! unrolling would not (Sec. III-C).
//!
//! On Intel FPGAs the paper expresses the whole array as a single kernel
//! with a fully unrolled PE loop; the simulation mirrors that: one module
//! performs the systolic schedule (same per-element accumulation order),
//! with the feed/drain helpers as separate interface modules.
//!
//! Matrix dimensions need not divide the tile sizes: feeders zero-pad
//! the streams at the edges and *Store C* discards padding — exactly how
//! the hardware handles arbitrary sizes with a fixed array.

use fblas_arch::{estimate_circuit, CircuitClass, ResourceEstimate};
use fblas_hlssim::{ModuleKind, PipelineCost, Receiver, Sender, Simulation};

use crate::host::buffer::DeviceBuffer;
use crate::scalar::Scalar;

/// Dimensions of the systolic PE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicShape {
    /// PE rows `P_R`.
    pub pr: usize,
    /// PE columns `P_C`.
    pub pc: usize,
}

impl SystolicShape {
    /// Create a PE grid shape.
    ///
    /// # Panics
    /// Panics if a dimension is zero.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1, "systolic dimensions must be at least 1");
        SystolicShape { pr, pc }
    }

    /// Total processing elements.
    pub fn pes(&self) -> usize {
        self.pr * self.pc
    }
}

/// Calibration constant of the tile-ratio efficiency model: PEs idle
/// during tile feed/drain phases, with the lost fraction shrinking
/// quadratically in the compute/memory tile ratio (fits the Fig. 10
/// right panel, where large arrays need large memory tiles to approach
/// expected performance).
const DRAIN_OVERHEAD: f64 = 2.0;

/// A configured systolic GEMM computing `C ← α·A·B + β·C` with `A` of
/// shape `n × k`, `B` of shape `k × m`, `C` of shape `n × m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    /// Rows of `C` (and `A`).
    pub n: usize,
    /// Columns of `C` (and rows of... columns of `B`).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// PE grid.
    pub shape: SystolicShape,
    /// Memory tile rows `T_R` (multiple of `P_R`).
    pub tr: usize,
    /// Memory tile columns `T_C` (multiple of `P_C`).
    pub tc: usize,
}

impl Gemm {
    /// Configure a systolic GEMM.
    ///
    /// # Panics
    /// Panics if the memory tile is not a positive multiple of the PE
    /// grid in each dimension.
    pub fn new(n: usize, m: usize, k: usize, shape: SystolicShape, tr: usize, tc: usize) -> Self {
        assert!(
            tr >= shape.pr && tr.is_multiple_of(shape.pr),
            "T_R must be a positive multiple of P_R"
        );
        assert!(
            tc >= shape.pc && tc.is_multiple_of(shape.pc),
            "T_C must be a positive multiple of P_C"
        );
        Gemm {
            n,
            m,
            k,
            shape,
            tr,
            tc,
        }
    }

    /// A fully unrolled small GEMM (paper Sec. III-A2/Table V): the PE
    /// grid covers the whole `dim × dim` problem, so a new input can be
    /// accepted every cycle.
    pub fn fully_unrolled(dim: usize) -> Self {
        let shape = SystolicShape::new(dim, dim);
        Gemm {
            n: dim,
            m: dim,
            k: dim,
            shape,
            tr: dim,
            tc: dim,
        }
    }

    /// Compute/memory tile ratio `T_R/P_R` (equal to `T_C/P_C` in the
    /// paper's sweeps when both scale together; the geometric mean covers
    /// asymmetric configurations).
    pub fn tile_ratio(&self) -> f64 {
        let rr = self.tr as f64 / self.shape.pr as f64;
        let rc = self.tc as f64 / self.shape.pc as f64;
        (rr * rc).sqrt()
    }

    /// Number of C-tile rows (zero-padded).
    pub fn tile_rows(&self) -> usize {
        self.n.div_ceil(self.tr)
    }

    /// Number of C-tile columns (zero-padded).
    pub fn tile_cols(&self) -> usize {
        self.m.div_ceil(self.tc)
    }

    /// PE utilization efficiency as a function of the tile ratio:
    /// `1 / (1 + c/r²)` — small memory tiles spend proportionally more
    /// cycles feeding and draining (Fig. 10 right).
    pub fn efficiency(&self) -> f64 {
        let r = self.tile_ratio();
        1.0 / (1.0 + DRAIN_OVERHEAD / (r * r))
    }

    /// Attach the systolic-array module. Streams:
    ///
    /// * `ch_a` — per C-tile, per `k`-step: `T_R` column elements of `A`
    ///   (zero-padded), from [`read_gemm_a`];
    /// * `ch_b` — per C-tile, per `k`-step: `T_C` row elements of `B`,
    ///   from [`read_gemm_b`];
    /// * `ch_c` — per C-tile: `T_R × T_C` accumulated values, row-major
    ///   drain order, consumed by [`store_c`].
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_a: Receiver<T>,
        ch_b: Receiver<T>,
        ch_c: Sender<T>,
    ) {
        self.attach_batched(sim, 1, ch_a, ch_b, ch_c);
    }

    /// Attach the systolic module processing `rounds` back-to-back
    /// problems of this shape from the same streams — the batched mode
    /// of paper Table V, where a fully unrolled small GEMM starts a new
    /// problem as soon as the previous one drains.
    pub fn attach_batched<T: Scalar>(
        &self,
        sim: &mut Simulation,
        rounds: usize,
        ch_a: Receiver<T>,
        ch_b: Receiver<T>,
        ch_c: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("gemm_systolic", ModuleKind::Compute, move || {
            let (tr, tc) = (cfg.tr, cfg.tc);
            let mut ctile = vec![T::ZERO; tr * tc];
            for _round in 0..rounds {
                for _ti in 0..cfg.tile_rows() {
                    for _tj in 0..cfg.tile_cols() {
                        ctile.iter_mut().for_each(|v| *v = T::ZERO);
                        for _kk in 0..cfg.k {
                            let ablock = ch_a.pop_n(tr)?;
                            let bblock = ch_b.pop_n(tc)?;
                            // The PE grid: PE (i mod P_R, j mod P_C)
                            // performs this MAC; every C element
                            // accumulates once per k-step, identical to
                            // the hardware order.
                            for i in 0..tr {
                                let a = ablock[i];
                                let row = &mut ctile[i * tc..(i + 1) * tc];
                                for (c, b) in row.iter_mut().zip(&bblock) {
                                    *c = a.mul_add(*b, *c);
                                }
                            }
                        }
                        ch_c.push_slice(&ctile)?;
                    }
                }
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: the PE array plus the C-tile and
    /// feeder buffers.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::Systolic {
                rows: self.shape.pr as u64,
                cols: self.shape.pc as u64,
            },
            T::PRECISION,
        )
        // C tile storage plus double-buffered feeders on both edges.
        .with_buffer(
            (self.tr * self.tc + 2 * (self.tr + self.tc)) as u64,
            T::PRECISION,
        )
    }

    /// Pipeline cost: `⌈N/T_R⌉·⌈M/T_C⌉·K·(T_R·T_C)/(P_R·P_C)` MAC steps
    /// divided by the tile-ratio efficiency.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let tiles = (self.tile_rows() * self.tile_cols()) as u64;
        let per_tile = self.k as u64 * (self.tr * self.tc) as u64 / self.shape.pes() as u64;
        let ideal = tiles * per_tile;
        let actual = (ideal as f64 / self.efficiency()).ceil() as u64;
        PipelineCost::pipelined(self.estimate::<T>().latency, actual)
    }

    /// Useful floating-point operations (2·N·M·K).
    pub fn flops(&self) -> u64 {
        2 * self.n as u64 * self.m as u64 * self.k as u64
    }
}

/// Add the *Read A* interface module: for each C-tile, for each `k`,
/// stream the `T_R` elements `A[ti·T_R .. ti·T_R+T_R][k]` (zero-padded
/// past row `n`). `A` is `n × k` row-major in `buf`.
pub fn read_gemm_a<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    cfg: Gemm,
    tx: Sender<T>,
) {
    let buf = buf.clone();
    sim.add_module("read_a", ModuleKind::Interface, move || {
        let data = buf.to_host();
        if data.len() != cfg.n * cfg.k {
            return Err(fblas_hlssim::SimError::module(
                "read_a",
                format!(
                    "A holds {} elements, expected {}",
                    data.len(),
                    cfg.n * cfg.k
                ),
            ));
        }
        for ti in 0..cfg.tile_rows() {
            for _tj in 0..cfg.tile_cols() {
                for kk in 0..cfg.k {
                    for i in 0..cfg.tr {
                        let r = ti * cfg.tr + i;
                        let v = if r < cfg.n {
                            data[r * cfg.k + kk]
                        } else {
                            T::ZERO
                        };
                        tx.push(v)?;
                    }
                }
            }
        }
        Ok(())
    });
}

/// Add the *Read B* interface module: for each C-tile, for each `k`,
/// stream the `T_C` elements `B[k][tj·T_C .. tj·T_C+T_C]` (zero-padded
/// past column `m`). `B` is `k × m` row-major in `buf`.
pub fn read_gemm_b<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    cfg: Gemm,
    tx: Sender<T>,
) {
    let buf = buf.clone();
    sim.add_module("read_b", ModuleKind::Interface, move || {
        let data = buf.to_host();
        if data.len() != cfg.k * cfg.m {
            return Err(fblas_hlssim::SimError::module(
                "read_b",
                format!(
                    "B holds {} elements, expected {}",
                    data.len(),
                    cfg.k * cfg.m
                ),
            ));
        }
        for _ti in 0..cfg.tile_rows() {
            for tj in 0..cfg.tile_cols() {
                for kk in 0..cfg.k {
                    for j in 0..cfg.tc {
                        let c = tj * cfg.tc + j;
                        let v = if c < cfg.m {
                            data[kk * cfg.m + c]
                        } else {
                            T::ZERO
                        };
                        tx.push(v)?;
                    }
                }
            }
        }
        Ok(())
    });
}

/// Add the *Store C* interface module: pops drained `T_R × T_C` tiles,
/// discards padding, and writes `C ← α·acc + β·C_old` into the row-major
/// `n × m` buffer.
pub fn store_c<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    cfg: Gemm,
    alpha: T,
    beta: T,
    rx: Receiver<T>,
) {
    let buf = buf.clone();
    sim.add_module("store_c", ModuleKind::Interface, move || {
        if buf.len() != cfg.n * cfg.m {
            return Err(fblas_hlssim::SimError::module(
                "store_c",
                format!("C holds {} elements, expected {}", buf.len(), cfg.n * cfg.m),
            ));
        }
        let mut c = buf.to_host();
        for ti in 0..cfg.tile_rows() {
            for tj in 0..cfg.tile_cols() {
                for i in 0..cfg.tr {
                    for j in 0..cfg.tc {
                        let acc = rx.pop()?;
                        let (r, col) = (ti * cfg.tr + i, tj * cfg.tc + j);
                        if r < cfg.n && col < cfg.m {
                            let idx = r * cfg.m + col;
                            c[idx] = alpha.mul_add(acc, beta * c[idx]);
                        }
                    }
                }
            }
        }
        buf.from_host(&c);
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.231).sin()).collect()
    }

    fn dense_gemm(n: usize, m: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0f64; n * m];
        for i in 0..n {
            for l in 0..k {
                let av = a[i * k + l];
                for j in 0..m {
                    c[i * m + j] += av * b[l * m + j];
                }
            }
        }
        c
    }

    fn run_gemm(cfg: Gemm, alpha: f64, beta: f64, a: &[f64], b: &[f64], c0: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let b_buf = DeviceBuffer::from_vec("b", b.to_vec(), 1);
        let c_buf = DeviceBuffer::from_vec("c", c0.to_vec(), 2);
        let (ta, ra) = channel(sim.ctx(), 256, "a");
        let (tb, rb) = channel(sim.ctx(), 256, "b");
        let (tc, rc) = channel(sim.ctx(), 256, "c");
        read_gemm_a(&mut sim, &a_buf, cfg, ta);
        read_gemm_b(&mut sim, &b_buf, cfg, tb);
        cfg.attach(&mut sim, ra, rb, tc);
        store_c(&mut sim, &c_buf, cfg, alpha, beta, rc);
        sim.run().unwrap();
        c_buf.to_host()
    }

    fn check(cfg: Gemm, alpha: f64, beta: f64) {
        let a = seq(cfg.n * cfg.k, 1.0);
        let b = seq(cfg.k * cfg.m, 2.0);
        let c0 = seq(cfg.n * cfg.m, 3.0);
        let got = run_gemm(cfg, alpha, beta, &a, &b, &c0);
        let prod = dense_gemm(cfg.n, cfg.m, cfg.k, &a, &b);
        for i in 0..cfg.n * cfg.m {
            let exp = alpha * prod[i] + beta * c0[i];
            assert!(
                (got[i] - exp).abs() < 1e-9,
                "n={} m={} k={} tr={} tc={} idx {i}: {} vs {exp}",
                cfg.n,
                cfg.m,
                cfg.k,
                cfg.tr,
                cfg.tc,
                got[i]
            );
        }
    }

    #[test]
    fn exact_tiles() {
        check(Gemm::new(8, 8, 8, SystolicShape::new(2, 2), 4, 4), 1.0, 0.0);
    }

    #[test]
    fn alpha_beta_combination() {
        check(Gemm::new(4, 6, 5, SystolicShape::new(2, 3), 4, 6), 1.3, 0.6);
    }

    #[test]
    fn ragged_edges_are_zero_padded() {
        check(Gemm::new(7, 5, 3, SystolicShape::new(2, 2), 4, 4), 1.0, 1.0);
        check(Gemm::new(5, 9, 6, SystolicShape::new(2, 2), 4, 6), 2.0, 0.0);
    }

    #[test]
    fn single_pe_grid() {
        check(Gemm::new(3, 3, 3, SystolicShape::new(1, 1), 3, 3), 1.0, 0.0);
    }

    #[test]
    fn fully_unrolled_small() {
        let cfg = Gemm::fully_unrolled(4);
        assert_eq!(cfg.shape.pes(), 16);
        assert_eq!(cfg.tile_ratio(), 1.0);
        check(cfg, 1.0, 0.0);
    }

    #[test]
    fn efficiency_grows_with_tile_ratio() {
        let shape = SystolicShape::new(4, 4);
        let small = Gemm::new(64, 64, 64, shape, 4, 4);
        let big = Gemm::new(64, 64, 64, shape, 32, 32);
        assert!(big.efficiency() > small.efficiency());
        assert!(big.efficiency() > 0.95, "ratio 8 should be near peak");
        assert!(small.efficiency() < 0.4, "ratio 1 pays heavy drain cost");
    }

    #[test]
    fn cost_scales_with_problem_and_inverse_pes() {
        let shape2 = SystolicShape::new(2, 2);
        let shape4 = SystolicShape::new(4, 4);
        let small = Gemm::new(64, 64, 64, shape2, 16, 16);
        let big = Gemm::new(64, 64, 64, shape4, 32, 32);
        // 4x the PEs at comparable efficiency: ~4x fewer cycles.
        let r = small.cost::<f32>().cycles() as f64 / big.cost::<f32>().cycles() as f64;
        assert!(r > 3.0 && r < 5.5, "speedup ratio {r}");
    }

    #[test]
    fn estimate_counts_pes_and_tile_buffers() {
        let cfg = Gemm::new(1024, 1024, 1024, SystolicShape::new(8, 4), 32, 16);
        let e = cfg.estimate::<f32>();
        assert_eq!(e.resources.dsps, 32, "one DSP per PE in f32");
        assert!(e.resources.m20ks >= 1);
        let ed = cfg.estimate::<f64>();
        assert_eq!(ed.resources.dsps, 128, "4 DSPs per PE in f64");
    }

    #[test]
    fn flops_formula() {
        assert_eq!(
            Gemm::new(4, 5, 6, SystolicShape::new(1, 1), 4, 5).flops(),
            240
        );
    }

    #[test]
    #[should_panic(expected = "multiple of P_R")]
    fn tile_must_be_multiple_of_grid() {
        let _ = Gemm::new(8, 8, 8, SystolicShape::new(3, 2), 4, 4);
    }
}
