//! GEMV: streaming matrix-vector multiply (paper Sec. III-B, Fig. 2).
//!
//! The way `A` is tiled and streamed determines which vector operand must
//! be *replayed* and therefore the routine's I/O complexity — the paper's
//! central Level-2 example. Four variants are provided:
//!
//! | variant             | computes      | `A` stream        | replayed operand |
//! |---------------------|---------------|-------------------|------------------|
//! | [`RowStreamed`]     | `αAx + βy`    | tiles by rows     | `x` (⌈N/T_N⌉×)   |
//! | [`ColStreamed`]     | `αAx + βy`    | tiles by columns  | `y` (⌈M/T_M⌉×)   |
//! | [`TransRowStreamed`]| `αAᵀx + βy`   | tiles by rows     | `y` (⌈N/T_N⌉×)   |
//! | [`TransColStreamed`]| `αAᵀx + βy`   | tiles by columns  | `x` (⌈M/T_M⌉×)   |
//!
//! `x`-replay is performed by the *interface* module re-reading DRAM
//! (legal); `y`-replay writes partial results out and re-reads them —
//! the [`replay_vector_through_memory`](crate::helpers::writers)
//! helper. A compute module can never replay (Sec. V edge-validity), which
//! is what makes certain compositions (BICG) work only with matching
//! variants.
//!
//! [`RowStreamed`]: GemvVariant::RowStreamed
//! [`ColStreamed`]: GemvVariant::ColStreamed
//! [`TransRowStreamed`]: GemvVariant::TransRowStreamed
//! [`TransColStreamed`]: GemvVariant::TransColStreamed

use fblas_arch::{estimate_circuit, CircuitClass, ResourceEstimate};
use fblas_hlssim::{ChunkReader, ModuleKind, PipelineCost, Receiver, Sender, SimError, Simulation};

use super::validate_width;
use crate::scalar::{tree_sum, Scalar};
use crate::tiling::{gemv_io_tiles_by_cols, gemv_io_tiles_by_rows, TileOrder, Tiling};

/// Streaming/compute variant of the GEMV module (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemvVariant {
    /// `y = αAx + βy`, `A` in tiles by rows (paper Fig. 2 left).
    RowStreamed,
    /// `y = αAx + βy`, `A` in tiles by columns (paper Fig. 2 right).
    ColStreamed,
    /// `y = αAᵀx + βy`, `A` in tiles by rows.
    TransRowStreamed,
    /// `y = αAᵀx + βy`, `A` in tiles by columns.
    TransColStreamed,
}

impl GemvVariant {
    /// Does this variant apply the transpose of the streamed matrix?
    pub fn transposed(self) -> bool {
        matches!(
            self,
            GemvVariant::TransRowStreamed | GemvVariant::TransColStreamed
        )
    }
}

/// A configured GEMV module over an `n × m` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemv {
    /// Streaming variant.
    pub variant: GemvVariant,
    /// Rows of the stored matrix `A`.
    pub n: usize,
    /// Columns of the stored matrix `A`.
    pub m: usize,
    /// Tile height `T_N`.
    pub tn: usize,
    /// Tile width `T_M`.
    pub tm: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Gemv {
    /// Configure a GEMV module.
    ///
    /// # Panics
    /// Panics if `w` or a tile dimension is zero.
    pub fn new(variant: GemvVariant, n: usize, m: usize, tn: usize, tm: usize, w: usize) -> Self {
        validate_width(w);
        assert!(tn >= 1 && tm >= 1, "tile dimensions must be at least 1");
        Gemv {
            variant,
            n,
            m,
            tn,
            tm,
            w,
        }
    }

    /// The tiling the `A` reader must use to feed this module.
    pub fn a_tiling(&self) -> Tiling {
        let order = match self.variant {
            GemvVariant::RowStreamed | GemvVariant::TransRowStreamed => TileOrder::RowTilesRowMajor,
            GemvVariant::ColStreamed | GemvVariant::TransColStreamed => TileOrder::ColTilesRowMajor,
        };
        Tiling::new(self.tn, self.tm, order)
    }

    /// Number of tile rows `⌈N/T_N⌉`.
    pub fn tile_rows(&self) -> usize {
        self.n.div_ceil(self.tn)
    }

    /// Number of tile columns `⌈M/T_M⌉`.
    pub fn tile_cols(&self) -> usize {
        self.m.div_ceil(self.tm)
    }

    /// Length of the `x` operand (input vector).
    pub fn x_len(&self) -> usize {
        if self.variant.transposed() {
            self.n
        } else {
            self.m
        }
    }

    /// Length of the `y` operand (output vector).
    pub fn y_len(&self) -> usize {
        if self.variant.transposed() {
            self.m
        } else {
            self.n
        }
    }

    /// How many times the interface module must send `x` (replay count).
    pub fn x_repetitions(&self) -> usize {
        match self.variant {
            GemvVariant::RowStreamed => self.tile_rows(),
            GemvVariant::ColStreamed => 1,
            GemvVariant::TransRowStreamed => 1,
            GemvVariant::TransColStreamed => self.tile_cols(),
        }
    }

    /// How many rounds `y` makes through the module (1 = streamed once;
    /// >1 = partial results replayed through memory).
    pub fn y_rounds(&self) -> usize {
        match self.variant {
            GemvVariant::RowStreamed => 1,
            GemvVariant::ColStreamed => self.tile_cols(),
            GemvVariant::TransRowStreamed => self.tile_rows(),
            GemvVariant::TransColStreamed => 1,
        }
    }

    /// Total I/O operations of this configuration (paper Sec. III-B).
    pub fn io_ops(&self) -> u64 {
        match self.variant {
            GemvVariant::RowStreamed => gemv_io_tiles_by_rows(self.n, self.m, self.tn),
            GemvVariant::ColStreamed => gemv_io_tiles_by_cols(self.n, self.m, self.tm),
            // Transposed variants are the mirror images.
            GemvVariant::TransColStreamed => gemv_io_tiles_by_cols(self.m, self.n, self.tm),
            GemvVariant::TransRowStreamed => gemv_io_tiles_by_rows(self.m, self.n, self.tn),
        }
    }

    /// Attach the module.
    ///
    /// * `ch_a` — matrix stream in the order of [`a_tiling`](Self::a_tiling);
    /// * `ch_x` — input vector, sent [`x_repetitions`](Self::x_repetitions)
    ///   times;
    /// * `ch_y_in` — incoming `y` (original values on the first round,
    ///   partials on later rounds);
    /// * `ch_y_out` — outgoing `y` blocks ([`y_rounds`](Self::y_rounds)
    ///   rounds; the last round carries the final result).
    #[allow(clippy::too_many_arguments)]
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        beta: T,
        ch_a: Receiver<T>,
        ch_x: Receiver<T>,
        ch_y_in: Receiver<T>,
        ch_y_out: Sender<T>,
    ) {
        let cfg = *self;
        let name = if cfg.variant.transposed() {
            "gemv_t"
        } else {
            "gemv"
        };
        sim.add_module(name, ModuleKind::Compute, move || match cfg.variant {
            GemvVariant::RowStreamed => {
                cfg.run_row_streamed(alpha, beta, &ch_a, &ch_x, &ch_y_in, &ch_y_out)
            }
            GemvVariant::ColStreamed => {
                cfg.run_col_streamed(alpha, beta, &ch_a, &ch_x, &ch_y_in, &ch_y_out)
            }
            GemvVariant::TransRowStreamed => {
                cfg.run_trans_row_streamed(alpha, beta, &ch_a, &ch_x, &ch_y_in, &ch_y_out)
            }
            GemvVariant::TransColStreamed => {
                cfg.run_trans_col_streamed(alpha, beta, &ch_a, &ch_x, &ch_y_in, &ch_y_out)
            }
        });
    }

    /// Dot of one within-tile matrix row segment against an `x` block,
    /// W-chunked with the hardware's tree-reduction order. The matrix
    /// stream arrives through a chunked reader — the arithmetic order is
    /// identical to popping element-wise.
    fn row_dot<T: Scalar>(
        &self,
        a_rd: &mut ChunkReader<'_, T>,
        xblock: &[T],
    ) -> Result<T, SimError> {
        let mut acc = T::ZERO;
        let mut products = Vec::with_capacity(self.w);
        let mut j = 0;
        while j < xblock.len() {
            let take = (xblock.len() - j).min(self.w);
            products.clear();
            for x in &xblock[j..j + take] {
                products.push(a_rd.next()? * *x);
            }
            acc += tree_sum(&products);
            j += take;
        }
        Ok(acc)
    }

    fn run_row_streamed<T: Scalar>(
        &self,
        alpha: T,
        beta: T,
        ch_a: &Receiver<T>,
        ch_x: &Receiver<T>,
        ch_y_in: &Receiver<T>,
        ch_y_out: &Sender<T>,
    ) -> Result<(), SimError> {
        let mut a_rd = ChunkReader::new(ch_a);
        let mut ybuf: Vec<T> = Vec::with_capacity(self.tn);
        for bi in 0..self.tile_rows() {
            let rows = tile_extent(bi, self.tn, self.n);
            let y0 = ch_y_in.pop_n(rows)?;
            let mut acc = vec![T::ZERO; rows];
            for bj in 0..self.tile_cols() {
                let cols = tile_extent(bj, self.tm, self.m);
                let xblock = ch_x.pop_n(cols)?;
                for a in acc.iter_mut().take(rows) {
                    *a += self.row_dot(&mut a_rd, &xblock)?;
                }
            }
            // The whole y block is pushed before the next blocking read
            // (chunked relay; see fblas_hlssim::chunk docs).
            for i in 0..rows {
                ybuf.push(alpha.mul_add(acc[i], beta * y0[i]));
            }
            ch_y_out.push_chunk(&mut ybuf)?;
        }
        Ok(())
    }

    fn run_col_streamed<T: Scalar>(
        &self,
        alpha: T,
        beta: T,
        ch_a: &Receiver<T>,
        ch_x: &Receiver<T>,
        ch_y_in: &Receiver<T>,
        ch_y_out: &Sender<T>,
    ) -> Result<(), SimError> {
        let mut a_rd = ChunkReader::new(ch_a);
        for bj in 0..self.tile_cols() {
            let cols = tile_extent(bj, self.tm, self.m);
            let xblock = ch_x.pop_n(cols)?;
            for bi in 0..self.tile_rows() {
                let rows = tile_extent(bi, self.tn, self.n);
                let mut yp = ch_y_in.pop_n(rows)?;
                if bj == 0 {
                    for v in yp.iter_mut() {
                        *v *= beta;
                    }
                }
                for ypi in yp.iter_mut().take(rows) {
                    let acc = self.row_dot(&mut a_rd, &xblock)?;
                    *ypi = alpha.mul_add(acc, *ypi);
                }
                ch_y_out.push_slice(&yp)?;
            }
        }
        Ok(())
    }

    fn run_trans_row_streamed<T: Scalar>(
        &self,
        alpha: T,
        beta: T,
        ch_a: &Receiver<T>,
        ch_x: &Receiver<T>,
        ch_y_in: &Receiver<T>,
        ch_y_out: &Sender<T>,
    ) -> Result<(), SimError> {
        let mut a_rd = ChunkReader::new(ch_a);
        for bi in 0..self.tile_rows() {
            let rows = tile_extent(bi, self.tn, self.n);
            let xblock = ch_x.pop_n(rows)?;
            for bj in 0..self.tile_cols() {
                let cols = tile_extent(bj, self.tm, self.m);
                let mut yp = ch_y_in.pop_n(cols)?;
                if bi == 0 {
                    for v in yp.iter_mut() {
                        *v *= beta;
                    }
                }
                // Tile-local accumulation: tacc[j] = Σ_i a_ij·x_i.
                let mut tacc = vec![T::ZERO; cols];
                for xi in xblock.iter().take(rows) {
                    for t in tacc.iter_mut().take(cols) {
                        let a = a_rd.next()?;
                        *t = a.mul_add(*xi, *t);
                    }
                }
                for j in 0..cols {
                    yp[j] = alpha.mul_add(tacc[j], yp[j]);
                }
                ch_y_out.push_slice(&yp)?;
            }
        }
        Ok(())
    }

    fn run_trans_col_streamed<T: Scalar>(
        &self,
        alpha: T,
        beta: T,
        ch_a: &Receiver<T>,
        ch_x: &Receiver<T>,
        ch_y_in: &Receiver<T>,
        ch_y_out: &Sender<T>,
    ) -> Result<(), SimError> {
        let mut a_rd = ChunkReader::new(ch_a);
        let mut ybuf: Vec<T> = Vec::with_capacity(self.tm);
        for bj in 0..self.tile_cols() {
            let cols = tile_extent(bj, self.tm, self.m);
            let mut acc = vec![T::ZERO; cols];
            for bi in 0..self.tile_rows() {
                let rows = tile_extent(bi, self.tn, self.n);
                let xblock = ch_x.pop_n(rows)?;
                for xi in xblock.iter().take(rows) {
                    for a_j in acc.iter_mut().take(cols) {
                        let a = a_rd.next()?;
                        *a_j = a.mul_add(*xi, *a_j);
                    }
                }
            }
            let y0 = ch_y_in.pop_n(cols)?;
            for j in 0..cols {
                ybuf.push(alpha.mul_add(acc[j], beta * y0[j]));
            }
            ch_y_out.push_chunk(&mut ybuf)?;
        }
        Ok(())
    }

    /// Circuit resource estimate: the `W`-wide reduction datapath plus
    /// the on-chip tile buffers for the vector operands.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION)
            // x-block and y-block tile buffers.
            .with_buffer((self.tm + self.tn) as u64, T::PRECISION)
    }

    /// Pipeline cost: the matrix stream dominates — `M = ⌈N·M/W⌉`
    /// iterations at `I = 1`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let elems = self.n as u64 * self.m as u64;
        PipelineCost::pipelined(self.estimate::<T>().latency, elems.div_ceil(self.w as u64))
    }
}

/// Extent of tile `b` of size `t` over an axis of length `total`
/// (handles the ragged last tile).
fn tile_extent(b: usize, t: usize, total: usize) -> usize {
    let start = b * t;
    t.min(total - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::writers::{replay_vector_through_memory, write_vector};
    use crate::helpers::{read_matrix, read_vector_replayed};
    use crate::host::buffer::DeviceBuffer;
    use fblas_hlssim::channel;

    #[allow(clippy::too_many_arguments)]
    fn dense_gemv(
        trans: bool,
        n: usize,
        m: usize,
        alpha: f64,
        a: &[f64],
        x: &[f64],
        beta: f64,
        y: &[f64],
    ) -> Vec<f64> {
        if !trans {
            (0..n)
                .map(|i| {
                    let acc: f64 = (0..m).map(|j| a[i * m + j] * x[j]).sum();
                    alpha * acc + beta * y[i]
                })
                .collect()
        } else {
            (0..m)
                .map(|j| {
                    let acc: f64 = (0..n).map(|i| a[i * m + j] * x[i]).sum();
                    alpha * acc + beta * y[j]
                })
                .collect()
        }
    }

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.437).sin()).collect()
    }

    /// Run a full reader→gemv→writer pipeline and return y.
    fn run_gemv(cfg: Gemv, alpha: f64, beta: f64, a: &[f64], x: &[f64], y: &[f64]) -> Vec<f64> {
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a.to_vec(), 0);
        let x_buf = DeviceBuffer::from_vec("x", x.to_vec(), 0);
        let y_buf = DeviceBuffer::from_vec("y", y.to_vec(), 0);
        let out_buf = DeviceBuffer::<f64>::zeroed("y_out", cfg.y_len(), 0);

        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (txv, rxv) = channel(sim.ctx(), 64, "x");
        let (ty_in, ry_in) = channel(sim.ctx(), 64, "y_in");
        let (ty_out, ry_out) = channel(sim.ctx(), 64, "y_out");

        read_matrix(&mut sim, &a_buf, cfg.n, cfg.m, cfg.a_tiling(), ta, 1);
        read_vector_replayed(&mut sim, &x_buf, txv, cfg.x_repetitions());
        cfg.attach(&mut sim, alpha, beta, ra, rxv, ry_in, ty_out);
        if cfg.y_rounds() == 1 {
            crate::helpers::read_vector(&mut sim, &y_buf, ty_in);
            write_vector(&mut sim, &out_buf, cfg.y_len(), ry_out);
        } else {
            replay_vector_through_memory(
                &mut sim,
                &y_buf,
                &out_buf,
                cfg.y_len(),
                cfg.y_rounds(),
                ty_in,
                ry_out,
            );
        }
        sim.run().unwrap();
        out_buf.to_host()
    }

    fn check_variant(variant: GemvVariant, n: usize, m: usize, tn: usize, tm: usize, w: usize) {
        let cfg = Gemv::new(variant, n, m, tn, tm, w);
        let a = seq(n * m, 1.0);
        let x = seq(cfg.x_len(), 2.0);
        let y = seq(cfg.y_len(), 3.0);
        let (alpha, beta) = (1.3, 0.7);
        let got = run_gemv(cfg, alpha, beta, &a, &x, &y);
        let exp = dense_gemv(variant.transposed(), n, m, alpha, &a, &x, beta, &y);
        for i in 0..got.len() {
            assert!(
                (got[i] - exp[i]).abs() < 1e-9,
                "{variant:?} n={n} m={m} tn={tn} tm={tm} w={w} idx {i}: {} vs {}",
                got[i],
                exp[i]
            );
        }
    }

    #[test]
    fn row_streamed_exact_tiles() {
        check_variant(GemvVariant::RowStreamed, 8, 12, 4, 6, 2);
    }

    #[test]
    fn row_streamed_ragged_tiles() {
        check_variant(GemvVariant::RowStreamed, 7, 11, 3, 4, 4);
    }

    #[test]
    fn col_streamed_exact_and_ragged() {
        check_variant(GemvVariant::ColStreamed, 8, 12, 4, 6, 3);
        check_variant(GemvVariant::ColStreamed, 9, 10, 4, 3, 2);
    }

    #[test]
    fn trans_row_streamed() {
        check_variant(GemvVariant::TransRowStreamed, 8, 12, 4, 6, 2);
        check_variant(GemvVariant::TransRowStreamed, 7, 5, 3, 2, 1);
    }

    #[test]
    fn trans_col_streamed() {
        check_variant(GemvVariant::TransColStreamed, 8, 12, 4, 6, 4);
        check_variant(GemvVariant::TransColStreamed, 5, 9, 2, 4, 2);
    }

    #[test]
    fn single_tile_covers_whole_matrix() {
        check_variant(GemvVariant::RowStreamed, 6, 8, 6, 8, 2);
        check_variant(GemvVariant::ColStreamed, 6, 8, 6, 8, 2);
    }

    #[test]
    fn replay_counts_match_paper() {
        let g = Gemv::new(GemvVariant::RowStreamed, 1024, 2048, 256, 512, 16);
        assert_eq!(g.x_repetitions(), 4); // ⌈1024/256⌉
        assert_eq!(g.y_rounds(), 1);
        let g = Gemv::new(GemvVariant::ColStreamed, 1024, 2048, 256, 512, 16);
        assert_eq!(g.x_repetitions(), 1);
        assert_eq!(g.y_rounds(), 4); // ⌈2048/512⌉
    }

    #[test]
    fn io_complexities_match_section3b() {
        let (n, m, t) = (1024usize, 1024usize, 128usize);
        let row = Gemv::new(GemvVariant::RowStreamed, n, m, t, t, 16).io_ops();
        let col = Gemv::new(GemvVariant::ColStreamed, n, m, t, t, 16).io_ops();
        assert_eq!(row, (n * m + m * (n / t) + 2 * n) as u64);
        assert_eq!(col, (n * m + m + 2 * n * (m / t)) as u64);
    }

    #[test]
    fn estimate_includes_tile_buffers() {
        let g = Gemv::new(GemvVariant::RowStreamed, 4096, 4096, 1024, 1024, 16);
        let e = g.estimate::<f32>();
        assert!(
            e.resources.m20ks >= 4,
            "tile buffers in M20K: {}",
            e.resources.m20ks
        );
        assert_eq!(e.resources.dsps, 16);
    }

    #[test]
    fn cost_counts_matrix_stream() {
        let g = Gemv::new(GemvVariant::RowStreamed, 1024, 1024, 256, 256, 16);
        assert_eq!(g.cost::<f32>().iterations, 1024 * 1024 / 16);
    }

    #[test]
    fn a_tiling_orders() {
        assert!(Gemv::new(GemvVariant::RowStreamed, 4, 4, 2, 2, 1)
            .a_tiling()
            .order
            .tiles_by_rows());
        assert!(!Gemv::new(GemvVariant::ColStreamed, 4, 4, 2, 2, 1)
            .a_tiling()
            .order
            .tiles_by_rows());
    }
}
