//! Level-1 map-reduce modules: DOT, SDSDOT, NRM2, ASUM, IAMAX.
//!
//! These routines reduce their input (paper Sec. IV-A classifies them as
//! *map-reduce*): the `W`-wide unrolled inner loop forms a binary
//! reduction tree, so circuit work is `2W` and circuit depth grows
//! logarithmically in `W` — the DOT column of Table I. The simulated
//! numerics use the same tree order ([`tree_sum`]) the circuit would.

use fblas_arch::{estimate_circuit, CircuitClass, ResourceEstimate};
use fblas_hlssim::{ChunkReader, ModuleKind, PipelineCost, Receiver, Sender, Simulation};

use super::{outer_iterations, validate_width};
use crate::scalar::{tree_sum, InterleavedAccumulator, Scalar};

/// DOT: `res = xᵀy` through a `W`-wide multiply + adder tree
/// (paper Fig. 5).
///
/// ```
/// use fblas_core::routines::Dot;
/// use fblas_hlssim::{channel, ModuleKind, Simulation};
///
/// let mut sim = Simulation::new();
/// let (tx, rx) = channel(sim.ctx(), 16, "x");
/// let (ty, ry) = channel(sim.ctx(), 16, "y");
/// let (tr, rr) = channel(sim.ctx(), 1, "res");
/// sim.add_module("src_x", ModuleKind::Interface, move || tx.push_slice(&[1.0f32, 2.0, 3.0]));
/// sim.add_module("src_y", ModuleKind::Interface, move || ty.push_slice(&[4.0f32, 5.0, 6.0]));
///
/// let dot = Dot::new(3, 2);
/// dot.attach(&mut sim, rx, ry, tr);
/// sim.add_module("sink", ModuleKind::Interface, move || {
///     assert_eq!(rr.pop()?, 32.0);
///     Ok(())
/// });
/// sim.run().unwrap();
///
/// // The same configuration carries its space/time model:
/// assert_eq!(dot.estimate::<f32>().resources.dsps, 2);
/// assert_eq!(dot.cost::<f32>().iterations, 2); // ceil(3/2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dot {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Dot {
    /// Configure a DOT module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Dot { n, w }
    }

    /// Attach the module: pops `n` from each input, pushes one scalar.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_res: Sender<T>,
    ) {
        let Dot { n, w } = *self;
        sim.add_module("dot", ModuleKind::Compute, move || {
            // Native f32 accumulation is a single partial; f64 uses the
            // two-stage interleaved accumulator of Sec. III-A1.
            let mut res = InterleavedAccumulator::<T>::for_precision();
            let mut xs = ChunkReader::new(&ch_x);
            let mut ys = ChunkReader::new(&ch_y);
            let mut products = Vec::with_capacity(w);
            let mut remaining = n;
            while remaining > 0 {
                let take = remaining.min(w);
                products.clear();
                for _ in 0..take {
                    let x = xs.next()?;
                    let y = ys.next()?;
                    products.push(x * y);
                }
                // One outer iteration: the unrolled adder tree followed
                // by the running accumulation (`res += acc`, Fig. 5).
                res.add(tree_sum(&products));
                remaining -= take;
            }
            ch_res.push(res.finish())?;
            Ok(())
        });
    }

    /// Circuit resource estimate (Table I DOT coefficients).
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION)
    }

    /// Pipeline cost: `C = log2(W)·L_A + L_M + N/W` (Sec. IV-A).
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// SDSDOT: `res = sb + xᵀy` with higher-precision accumulation (the
/// BLAS routine accumulates an f32 dot product in f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sdsdot {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Sdsdot {
    /// Configure an SDSDOT module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Sdsdot { n, w }
    }

    /// Attach the module: pops `n` from each input, pushes `sb + xᵀy`
    /// accumulated in `f64` regardless of `T`.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        sb: T,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_res: Sender<T>,
    ) {
        let Sdsdot { n, w } = *self;
        sim.add_module("sdsdot", ModuleKind::Compute, move || {
            let mut res = sb.to_f64();
            let mut xs = ChunkReader::new(&ch_x);
            let mut ys = ChunkReader::new(&ch_y);
            let mut products = Vec::with_capacity(w);
            let mut remaining = n;
            while remaining > 0 {
                let take = remaining.min(w);
                products.clear();
                for _ in 0..take {
                    let x = xs.next()?;
                    let y = ys.next()?;
                    products.push(x.to_f64() * y.to_f64());
                }
                res += tree_sum(&products);
                remaining -= take;
            }
            ch_res.push(T::from_f64(res))?;
            Ok(())
        });
    }

    /// Circuit resource estimate: a double-precision reduction tree
    /// regardless of the stream precision.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapReduce { w: self.w as u64 },
            fblas_arch::Precision::Double,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// NRM2: Euclidean norm through a square + adder tree and a final square
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nrm2 {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Nrm2 {
    /// Configure an NRM2 module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Nrm2 { n, w }
    }

    /// Attach the module: pops `n`, pushes `sqrt(Σ xᵢ²)`.
    ///
    /// Note: the streaming circuit accumulates raw squares (no
    /// netlib-style rescaling — rescaling needs the running maximum,
    /// which breaks the II = 1 pipeline), so extreme values can
    /// overflow earlier than the CPU reference.
    pub fn attach<T: Scalar>(&self, sim: &mut Simulation, ch_x: Receiver<T>, ch_res: Sender<T>) {
        let Nrm2 { n, w } = *self;
        sim.add_module("nrm2", ModuleKind::Compute, move || {
            let mut ssq = InterleavedAccumulator::<T>::for_precision();
            let mut xs = ChunkReader::new(&ch_x);
            let mut squares = Vec::with_capacity(w);
            let mut remaining = n;
            while remaining > 0 {
                let take = remaining.min(w);
                squares.clear();
                for _ in 0..take {
                    let x = xs.next()?;
                    squares.push(x * x);
                }
                ssq.add(tree_sum(&squares));
                remaining -= take;
            }
            ch_res.push(ssq.finish().sqrt())?;
            Ok(())
        });
    }

    /// Circuit resource estimate: reduction tree plus one sqrt core.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let tree = estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION);
        let sq = fblas_arch::OpCosts::sqrt(T::PRECISION);
        ResourceEstimate {
            luts: tree.luts + sq.luts,
            resources: tree.resources
                + fblas_arch::Resources::from_luts(sq.luts, sq.ffs, 0, sq.dsps),
            latency: tree.latency + sq.latency,
        }
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// ASUM: `Σ|xᵢ|` through an abs + adder tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Asum {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Asum {
    /// Configure an ASUM module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Asum { n, w }
    }

    /// Attach the module: pops `n`, pushes `Σ|xᵢ|`.
    pub fn attach<T: Scalar>(&self, sim: &mut Simulation, ch_x: Receiver<T>, ch_res: Sender<T>) {
        let Asum { n, w } = *self;
        sim.add_module("asum", ModuleKind::Compute, move || {
            let mut res = InterleavedAccumulator::<T>::for_precision();
            let mut xs = ChunkReader::new(&ch_x);
            let mut absvals = Vec::with_capacity(w);
            let mut remaining = n;
            while remaining > 0 {
                let take = remaining.min(w);
                absvals.clear();
                for _ in 0..take {
                    absvals.push(xs.next()?.abs());
                }
                res.add(tree_sum(&absvals));
                remaining -= take;
            }
            ch_res.push(res.finish())?;
            Ok(())
        });
    }

    /// Circuit resource estimate: an adder tree (abs is free sign-bit
    /// logic on the FPGA).
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION)
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// IAMAX: index of the first element with maximum absolute value,
/// pushed on a dedicated index channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iamax {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Iamax {
    /// Configure an IAMAX module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Iamax { n, w }
    }

    /// Attach the module: pops `n` elements, pushes the 0-based index of
    /// the first maximum-magnitude element (pushes `0` for `n == 0`,
    /// matching the classic BLAS convention of returning an invalid
    /// first index for empty input).
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_x: Receiver<T>,
        ch_res: Sender<usize>,
    ) {
        let Iamax { n, w } = *self;
        sim.add_module("iamax", ModuleKind::Compute, move || {
            let mut best_idx = 0usize;
            let mut best_abs = T::ZERO;
            let mut first = true;
            let mut idx = 0usize;
            let mut xs = ChunkReader::new(&ch_x);
            let mut remaining = n;
            while remaining > 0 {
                let take = remaining.min(w);
                // The unrolled lane comparison tree reduces each W-block
                // to its (first) maximum, then the running best is
                // updated — strict `>` keeps the earliest index, matching
                // the netlib semantics.
                for _ in 0..take {
                    let a = xs.next()?.abs();
                    if first || a > best_abs {
                        best_abs = a;
                        best_idx = idx;
                        first = false;
                    }
                    idx += 1;
                }
                remaining -= take;
            }
            ch_res.push(best_idx)?;
            Ok(())
        });
    }

    /// Circuit resource estimate: comparison tree — reuse the reduce
    /// shape with no DSPs (comparators are soft logic).
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let mut e = estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION);
        e.resources.dsps = 0;
        e
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    fn feed<T: Scalar>(sim: &mut Simulation, name: &str, data: Vec<T>) -> Receiver<T> {
        let (tx, rx) = channel(sim.ctx(), 32, name);
        sim.add_module(format!("src_{name}"), ModuleKind::Interface, move || {
            tx.push_slice(&data)
        });
        rx
    }

    fn result<T: Scalar>(sim: Simulation, rx: Receiver<T>) -> T {
        let out = std::sync::Arc::new(parking_lot::Mutex::new(T::ZERO));
        let out2 = out.clone();
        let mut sim = sim;
        sim.add_module("res", ModuleKind::Interface, move || {
            *out2.lock() = rx.pop()?;
            Ok(())
        });
        sim.run().unwrap();
        let v = *out.lock();
        v
    }

    #[test]
    fn dot_various_widths() {
        for w in [1usize, 2, 4, 8, 16] {
            let mut sim = Simulation::new();
            let x: Vec<f64> = (1..=10).map(f64::from).collect();
            let y: Vec<f64> = (1..=10).map(|i| f64::from(i) * 0.5).collect();
            let rxx = feed(&mut sim, "x", x);
            let rxy = feed(&mut sim, "y", y);
            let (tr, rr) = channel(sim.ctx(), 1, "res");
            Dot::new(10, w).attach(&mut sim, rxx, rxy, tr);
            let r = result(sim, rr);
            assert!((r - 192.5).abs() < 1e-12, "w={w}: {r}");
        }
    }

    #[test]
    fn dot_zero_length_pushes_zero() {
        let mut sim = Simulation::new();
        let rxx = feed::<f32>(&mut sim, "x", vec![]);
        let rxy = feed::<f32>(&mut sim, "y", vec![]);
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        Dot::new(0, 4).attach(&mut sim, rxx, rxy, tr);
        assert_eq!(result(sim, rr), 0.0);
    }

    #[test]
    fn dot_uses_tree_accumulation_per_block() {
        // Within one W-block, catastrophic cancellation resolved by the
        // pairwise tree: (1e8 + -1e8) + (1 + 1) = 2 in f32.
        let mut sim = Simulation::new();
        let rxx = feed(&mut sim, "x", vec![1.0e8f32, -1.0e8, 1.0, 1.0]);
        let rxy = feed(&mut sim, "y", vec![1.0f32, 1.0, 1.0, 1.0]);
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        Dot::new(4, 4).attach(&mut sim, rxx, rxy, tr);
        assert_eq!(result(sim, rr), 2.0);
    }

    #[test]
    fn sdsdot_accumulates_in_double() {
        let mut sim = Simulation::new();
        let rxx = feed(&mut sim, "x", vec![1.0e7f32, 1.0, -1.0e7]);
        let rxy = feed(&mut sim, "y", vec![1.0f32, 1.0, 1.0]);
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        Sdsdot::new(3, 1).attach(&mut sim, 0.5, rxx, rxy, tr);
        assert_eq!(result(sim, rr), 1.5);
    }

    #[test]
    fn nrm2_computes_norm() {
        let mut sim = Simulation::new();
        let rxx = feed(&mut sim, "x", vec![3.0f64, 4.0]);
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        Nrm2::new(2, 2).attach(&mut sim, rxx, tr);
        assert!((result(sim, rr) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn asum_sums_magnitudes() {
        let mut sim = Simulation::new();
        let rxx = feed(&mut sim, "x", vec![-1.0f32, 2.0, -3.0, 4.0, -5.0]);
        let (tr, rr) = channel(sim.ctx(), 1, "res");
        Asum::new(5, 2).attach(&mut sim, rxx, tr);
        assert_eq!(result(sim, rr), 15.0);
    }

    #[test]
    fn iamax_finds_first_max() {
        let mut sim = Simulation::new();
        let rxx = feed(&mut sim, "x", vec![1.0f64, -7.0, 7.0, 3.0]);
        let (tr, rr) = channel::<usize>(sim.ctx(), 1, "res");
        Iamax::new(4, 2).attach(&mut sim, rxx, tr);
        let out = std::sync::Arc::new(parking_lot::Mutex::new(usize::MAX));
        let out2 = out.clone();
        sim.add_module("res", ModuleKind::Interface, move || {
            *out2.lock() = rr.pop()?;
            Ok(())
        });
        sim.run().unwrap();
        assert_eq!(*out.lock(), 1, "first of the tied |−7| and |7|");
    }

    #[test]
    fn dot_resources_match_table1_shape() {
        let e2 = Dot::new(100, 2).estimate::<f32>();
        let e64 = Dot::new(100, 64).estimate::<f32>();
        assert_eq!(e2.resources.dsps, 2);
        assert_eq!(e64.resources.dsps, 64);
        assert!(e64.latency > e2.latency, "depth grows with W");
        assert!(e64.latency - e2.latency <= 30, "but only logarithmically");
    }

    #[test]
    fn iamax_uses_no_dsps() {
        assert_eq!(Iamax::new(64, 8).estimate::<f32>().resources.dsps, 0);
    }

    #[test]
    fn nrm2_adds_sqrt_latency() {
        let d = Dot::new(64, 8).estimate::<f32>();
        let n = Nrm2::new(64, 8).estimate::<f32>();
        assert!(n.latency > d.latency);
        assert!(n.resources.dsps > d.resources.dsps);
    }

    #[test]
    fn cost_iterations_scale_inversely_with_width() {
        let c16 = Dot::new(1 << 20, 16).cost::<f32>();
        let c256 = Dot::new(1 << 20, 256).cost::<f32>();
        assert_eq!(c16.iterations, 1 << 16);
        assert_eq!(c256.iterations, 1 << 12);
        assert!(c256.cycles() < c16.cycles());
    }
}
