//! TRSV: streaming triangular solve.
//!
//! Solves `op(A)·x = b` for a stored `uplo` triangle, streaming the
//! triangle through the module once and emitting the solution as it is
//! produced. The four `(uplo, trans)` cases map onto two dataflow
//! shapes:
//!
//! * **forward** (Lower/No, Upper/Yes): rows arrive `0..n`; each solved
//!   `x` component either feeds the following rows' dots (direct form)
//!   or immediately updates the pending right-hand side (update form);
//! * **backward** (Upper/No, Lower/Yes): the interface module streams
//!   the triangle in *reverse row order* — the order of the stream, like
//!   all tiling decisions, is a property of the module interface
//!   (Sec. III-B) and the reader is configured to match.
//!
//! Unlike the map/map-reduce routines, TRSV carries a true sequential
//! dependency (each output needs the previous ones), so its cost model
//! includes a per-row divide latency on top of the streamed element
//! count.

use fblas_arch::{estimate_circuit, CircuitClass, OpCosts, ResourceEstimate};
use fblas_hlssim::{ModuleKind, PipelineCost, Receiver, Sender, Simulation};

use super::{validate_width, Diag, Trans, Uplo};
use crate::host::buffer::DeviceBuffer;
use crate::scalar::{tree_sum, Scalar};

/// Number of stored elements of an order-`n` triangle, `n(n+1)/2`.
pub fn triangle_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// A configured TRSV module of order `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trsv {
    /// Matrix order.
    pub n: usize,
    /// Vectorization width `W` (applies to the row-dot lanes).
    pub w: usize,
    /// Stored triangle.
    pub uplo: Uplo,
    /// Transpose flag.
    pub trans: Trans,
    /// Unit-diagonal flag.
    pub diag: Diag,
}

impl Trsv {
    /// Configure a TRSV module.
    pub fn new(n: usize, w: usize, uplo: Uplo, trans: Trans, diag: Diag) -> Self {
        validate_width(w);
        Trsv {
            n,
            w,
            uplo,
            trans,
            diag,
        }
    }

    /// Whether the triangle must be streamed in reverse row order.
    pub fn reverse_rows(&self) -> bool {
        matches!(
            (self.uplo, self.trans),
            (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
        )
    }

    /// Attach the module: `ch_a` carries the stored triangle row by row
    /// (reversed per [`reverse_rows`](Self::reverse_rows), elements in
    /// ascending column order), `ch_b` the right-hand side (natural
    /// order), `ch_x` receives the solution in natural index order.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_a: Receiver<T>,
        ch_b: Receiver<T>,
        ch_x: Sender<T>,
    ) {
        let cfg = *self;
        sim.add_module("trsv", ModuleKind::Compute, move || {
            let n = cfg.n;
            let mut b = ch_b.pop_n(n)?;
            let mut x = vec![T::ZERO; n];
            match (cfg.uplo, cfg.trans) {
                (Uplo::Lower, Trans::No) => {
                    // Forward, direct form: row i = l_i0..l_ii.
                    for i in 0..n {
                        let row = ch_a.pop_n(i + 1)?;
                        let acc = cfg.wide_dot(&row[..i], &x[..i]);
                        let num = b[i] - acc;
                        x[i] = match cfg.diag {
                            Diag::Unit => num,
                            Diag::NonUnit => num / row[i],
                        };
                        ch_x.push(x[i])?;
                    }
                }
                (Uplo::Upper, Trans::Yes) => {
                    // Forward, update form: row j = u_jj..u_j,n-1.
                    for j in 0..n {
                        let row = ch_a.pop_n(n - j)?;
                        let xj = match cfg.diag {
                            Diag::Unit => b[j],
                            Diag::NonUnit => b[j] / row[0],
                        };
                        for (off, u_jk) in row.iter().enumerate().skip(1) {
                            b[j + off] -= *u_jk * xj;
                        }
                        x[j] = xj;
                        ch_x.push(xj)?;
                    }
                }
                (Uplo::Upper, Trans::No) => {
                    // Backward, direct form: rows arrive n-1..0;
                    // row i = u_ii..u_i,n-1.
                    for i in (0..n).rev() {
                        let row = ch_a.pop_n(n - i)?;
                        let acc = cfg.wide_dot(&row[1..], &x[i + 1..]);
                        let num = b[i] - acc;
                        x[i] = match cfg.diag {
                            Diag::Unit => num,
                            Diag::NonUnit => num / row[0],
                        };
                    }
                    for xi in &x {
                        ch_x.push(*xi)?;
                    }
                }
                (Uplo::Lower, Trans::Yes) => {
                    // Backward, update form: rows arrive n-1..0;
                    // row j = l_j0..l_jj (diagonal last).
                    for j in (0..n).rev() {
                        let row = ch_a.pop_n(j + 1)?;
                        let xj = match cfg.diag {
                            Diag::Unit => b[j],
                            Diag::NonUnit => b[j] / row[j],
                        };
                        for (i, l_ji) in row.iter().enumerate().take(j) {
                            b[i] -= *l_ji * xj;
                        }
                        x[j] = xj;
                    }
                    for xi in &x {
                        ch_x.push(*xi)?;
                    }
                }
            }
            Ok(())
        });
    }

    /// W-chunked dot with the hardware tree-reduction order.
    fn wide_dot<T: Scalar>(&self, a: &[T], x: &[T]) -> T {
        debug_assert_eq!(a.len(), x.len());
        let mut acc = T::ZERO;
        let mut products = Vec::with_capacity(self.w);
        let mut j = 0;
        while j < a.len() {
            let take = (a.len() - j).min(self.w);
            products.clear();
            for k in j..j + take {
                products.push(a[k] * x[k]);
            }
            acc += tree_sum(&products);
            j += take;
        }
        acc
    }

    /// Circuit resource estimate: reduce datapath, a divider, and the
    /// on-chip `x`/`b` buffers.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        let tree = estimate_circuit(CircuitClass::MapReduce { w: self.w as u64 }, T::PRECISION);
        let div = OpCosts::div(T::PRECISION);
        let luts = tree.luts + div.luts;
        ResourceEstimate {
            luts,
            resources: tree.resources
                + fblas_arch::Resources::from_luts(div.luts, div.ffs, 0, div.dsps),
            latency: tree.latency + div.latency,
        }
        .with_buffer(2 * self.n as u64, T::PRECISION)
    }

    /// Pipeline cost: streamed triangle plus the sequential divide chain.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        let elems = triangle_len(self.n) as u64;
        let div_latency = OpCosts::div(T::PRECISION).latency;
        let iterations = elems.div_ceil(self.w as u64) + self.n as u64 * div_latency;
        PipelineCost::pipelined(self.estimate::<T>().latency, iterations)
    }
}

/// Add an interface module streaming the stored `uplo` triangle of an
/// `n × n` row-major matrix, row by row (reversed if `reverse_rows`),
/// elements in ascending column order — the stream [`Trsv::attach`]
/// expects.
pub fn read_triangle<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    n: usize,
    uplo: Uplo,
    reverse_rows: bool,
    tx: Sender<T>,
) {
    let buf = buf.clone();
    let name = format!("read_tri_{}", buf.name());
    sim.add_module(name.clone(), ModuleKind::Interface, move || {
        let data = buf.to_host();
        if data.len() != n * n {
            return Err(fblas_hlssim::SimError::module(
                name,
                format!(
                    "triangle source holds {} elements, expected {}",
                    data.len(),
                    n * n
                ),
            ));
        }
        let rows: Box<dyn Iterator<Item = usize>> = if reverse_rows {
            Box::new((0..n).rev())
        } else {
            Box::new(0..n)
        };
        for i in rows {
            let (lo, hi) = match uplo {
                Uplo::Lower => (0, i + 1),
                Uplo::Upper => (i, n),
            };
            for j in lo..hi {
                tx.push(data[i * n + j])?;
            }
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{read_vector, write_vector};
    use fblas_hlssim::channel;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.77).sin()).collect()
    }

    /// Build a well-conditioned triangular matrix (full storage).
    fn tri_matrix(n: usize, uplo: Uplo) -> Vec<f64> {
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let stored = match uplo {
                    Uplo::Upper => j >= i,
                    Uplo::Lower => j <= i,
                };
                if stored {
                    a[i * n + j] = 0.1 + 0.07 * ((i + 2 * j) as f64);
                }
            }
            a[i * n + i] += 2.0;
        }
        a
    }

    /// Dense op(A)·x for verification.
    fn tri_apply(n: usize, a: &[f64], x: &[f64], uplo: Uplo, trans: Trans, diag: Diag) -> Vec<f64> {
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                let stored = match uplo {
                    Uplo::Upper => j >= i,
                    Uplo::Lower => j <= i,
                };
                if !stored {
                    continue;
                }
                let mut v = a[i * n + j];
                if i == j && diag == Diag::Unit {
                    v = 1.0;
                }
                match trans {
                    Trans::No => b[i] += v * x[j],
                    Trans::Yes => b[j] += v * x[i],
                }
            }
        }
        b
    }

    fn run_case(n: usize, w: usize, uplo: Uplo, trans: Trans, diag: Diag) {
        let a = tri_matrix(n, uplo);
        let x_true = seq(n, 5.0);
        let b = tri_apply(n, &a, &x_true, uplo, trans, diag);

        let cfg = Trsv::new(n, w, uplo, trans, diag);
        let mut sim = Simulation::new();
        let a_buf = DeviceBuffer::from_vec("a", a, 0);
        let b_buf = DeviceBuffer::from_vec("b", b, 0);
        let x_buf = DeviceBuffer::<f64>::zeroed("x", n, 0);
        let (ta, ra) = channel(sim.ctx(), 64, "a");
        let (tb, rb) = channel(sim.ctx(), 64, "b");
        let (txc, rxc) = channel(sim.ctx(), 64, "x");
        read_triangle(&mut sim, &a_buf, n, uplo, cfg.reverse_rows(), ta);
        read_vector(&mut sim, &b_buf, tb);
        cfg.attach(&mut sim, ra, rb, txc);
        write_vector(&mut sim, &x_buf, n, rxc);
        sim.run().unwrap();

        let got = x_buf.to_host();
        for i in 0..n {
            assert!(
                (got[i] - x_true[i]).abs() < 1e-9,
                "{uplo:?}/{trans:?}/{diag:?} n={n} w={w} idx {i}: {} vs {}",
                got[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn all_four_solve_shapes() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                run_case(9, 2, uplo, trans, Diag::NonUnit);
            }
        }
    }

    #[test]
    fn unit_diagonal_variants() {
        for uplo in [Uplo::Upper, Uplo::Lower] {
            for trans in [Trans::No, Trans::Yes] {
                run_case(6, 4, uplo, trans, Diag::Unit);
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        run_case(1, 1, Uplo::Lower, Trans::No, Diag::NonUnit);
        run_case(2, 8, Uplo::Upper, Trans::Yes, Diag::NonUnit);
    }

    #[test]
    fn reverse_rows_flags() {
        assert!(Trsv::new(4, 1, Uplo::Upper, Trans::No, Diag::NonUnit).reverse_rows());
        assert!(Trsv::new(4, 1, Uplo::Lower, Trans::Yes, Diag::NonUnit).reverse_rows());
        assert!(!Trsv::new(4, 1, Uplo::Lower, Trans::No, Diag::NonUnit).reverse_rows());
        assert!(!Trsv::new(4, 1, Uplo::Upper, Trans::Yes, Diag::NonUnit).reverse_rows());
    }

    #[test]
    fn triangle_len_formula() {
        assert_eq!(triangle_len(1), 1);
        assert_eq!(triangle_len(4), 10);
        assert_eq!(triangle_len(0), 0);
    }

    #[test]
    fn estimate_includes_divider_and_buffers() {
        let t = Trsv::new(1024, 8, Uplo::Lower, Trans::No, Diag::NonUnit);
        let e = t.estimate::<f32>();
        assert!(e.resources.dsps > 8, "tree lanes + divider");
        assert!(e.resources.m20ks >= 2, "x/b buffers");
        // Sequential dependency shows in the cost model.
        let c = t.cost::<f32>();
        assert!(c.iterations > (triangle_len(1024) / 8) as u64);
    }
}
