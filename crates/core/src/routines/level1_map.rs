//! Level-1 map-class modules: SCAL, COPY, SWAP, AXPY, ROT, ROTM.
//!
//! These routines apply independent per-element operations (paper
//! Sec. IV-A classifies them as *map* computations): the inner loop is
//! unrolled `W`-wide into independent lanes, so circuit work grows
//! linearly in `W` while circuit depth stays constant — the SCAL column
//! of Table I.

use fblas_arch::{estimate_circuit, CircuitClass, ResourceEstimate};
use fblas_hlssim::{
    default_chunk, ChunkReader, ModuleKind, PipelineCost, Receiver, Sender, Simulation,
};

use super::{outer_iterations, validate_width};
use crate::scalar::Scalar;

/// SCAL: stream `x` through a `W`-lane multiplier, producing `α·x`
/// (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scal {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Scal {
    /// Configure a SCAL module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Scal { n, w }
    }

    /// Attach the module: pops `n` from `ch_x`, pushes `n` scaled values.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_x: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let Scal { n, .. } = *self;
        sim.add_module("scal", ModuleKind::Compute, move || {
            // Chunked relay: pop what's available, run it through the W
            // independent multiply lanes, push the whole result before
            // blocking on input again (see fblas_hlssim::chunk docs).
            let chunk = default_chunk();
            let mut inbuf: Vec<T> = Vec::with_capacity(chunk);
            let mut outbuf: Vec<T> = Vec::with_capacity(chunk);
            let mut remaining = n;
            while remaining > 0 {
                inbuf.clear();
                let got = ch_x.pop_chunk(&mut inbuf, remaining.min(chunk))?;
                for &x in &inbuf {
                    outbuf.push(alpha * x);
                }
                ch_out.push_chunk(&mut outbuf)?;
                remaining -= got;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate (Table I SCAL coefficients).
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::Map {
                w: self.w as u64,
                ops_per_lane: 1,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// COPY: forward `x` unchanged (used to preserve an input the classic
/// BLAS sequence would overwrite, e.g. in AXPYDOT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecCopy {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl VecCopy {
    /// Configure a COPY module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        VecCopy { n, w }
    }

    /// Attach the module: pops `n` elements, pushes them unchanged.
    pub fn attach<T: Scalar>(&self, sim: &mut Simulation, ch_x: Receiver<T>, ch_out: Sender<T>) {
        let n = self.n;
        sim.add_module("copy", ModuleKind::Compute, move || {
            let chunk = default_chunk();
            let mut buf: Vec<T> = Vec::with_capacity(chunk);
            let mut remaining = n;
            while remaining > 0 {
                buf.clear();
                let got = ch_x.pop_chunk(&mut buf, remaining.min(chunk))?;
                ch_out.push_chunk(&mut buf)?;
                remaining -= got;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: pure routing, no arithmetic lanes.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::Map {
                w: self.w as u64,
                ops_per_lane: 0,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// SWAP: exchange two streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swap {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Swap {
    /// Configure a SWAP module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Swap { n, w }
    }

    /// Attach the module: forwards `x` to `out_y` and `y` to `out_x`.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_out_x: Sender<T>,
        ch_out_y: Sender<T>,
    ) {
        let n = self.n;
        sim.add_module("swap", ModuleKind::Compute, move || {
            // Inputs are chunked; the two outputs stay element-wise and
            // interleaved — batching one output while the other's
            // consumer is starved can deadlock shallow FIFOs (see
            // fblas_hlssim::chunk docs).
            let mut xs = ChunkReader::new(&ch_x);
            let mut ys = ChunkReader::new(&ch_y);
            for _ in 0..n {
                let x = xs.next()?;
                let y = ys.next()?;
                ch_out_x.push(y)?;
                ch_out_y.push(x)?;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: routing only.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::Map {
                w: self.w as u64,
                ops_per_lane: 0,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// AXPY: `out = α·x + y`, one fused multiply-add lane per width unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Axpy {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Axpy {
    /// Configure an AXPY module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Axpy { n, w }
    }

    /// Attach the module: pops `n` from `x` and `y`, pushes `α·x + y`.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        alpha: T,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_out: Sender<T>,
    ) {
        let n = self.n;
        sim.add_module("axpy", ModuleKind::Compute, move || {
            // Chunked relay over a stream pair: take what `x` has, match
            // it exactly from `y`, push the fused result chunk before
            // blocking on input again.
            let chunk = default_chunk();
            let mut xbuf: Vec<T> = Vec::with_capacity(chunk);
            let mut ybuf: Vec<T> = Vec::with_capacity(chunk);
            let mut outbuf: Vec<T> = Vec::with_capacity(chunk);
            let mut remaining = n;
            while remaining > 0 {
                xbuf.clear();
                let got = ch_x.pop_chunk(&mut xbuf, remaining.min(chunk))?;
                ybuf.clear();
                while ybuf.len() < got {
                    let want = got - ybuf.len();
                    ch_y.pop_chunk(&mut ybuf, want)?;
                }
                for i in 0..got {
                    outbuf.push(alpha.mul_add(xbuf[i], ybuf[i]));
                }
                ch_out.push_chunk(&mut outbuf)?;
                remaining -= got;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: `W` fused mul-add lanes, one DSP each.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 1,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// ROT: apply a plane rotation to a pair of streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rot {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Rot {
    /// Configure a ROT module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Rot { n, w }
    }

    /// Attach the module: `x' = c·x + s·y`, `y' = c·y − s·x`.
    #[allow(clippy::too_many_arguments)]
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        c: T,
        s: T,
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_out_x: Sender<T>,
        ch_out_y: Sender<T>,
    ) {
        let n = self.n;
        sim.add_module("rot", ModuleKind::Compute, move || {
            // Dual-output: inputs chunked, outputs element-wise (see Swap).
            let mut xs = ChunkReader::new(&ch_x);
            let mut ys = ChunkReader::new(&ch_y);
            for _ in 0..n {
                let x = xs.next()?;
                let y = ys.next()?;
                ch_out_x.push(c.mul_add(x, s * y))?;
                ch_out_y.push(c.mul_add(y, -(s * x)))?;
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: two fused mul-add pairs per lane.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 2,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

/// ROTM: apply a modified Givens transformation (netlib `param`
/// encoding: `[flag, h11, h21, h12, h22]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotm {
    /// Vector length.
    pub n: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

/// Decode a netlib ROTM `param` array into the effective 2×2 matrix
/// `(h11, h12, h21, h22)`, or `None` for the identity flag.
pub fn decode_rotm_param<T: Scalar>(param: &[T; 5]) -> Option<(T, T, T, T)> {
    let flag = param[0].to_f64();
    if flag == -2.0 {
        None
    } else if flag == -1.0 {
        Some((param[1], param[3], param[2], param[4]))
    } else if flag == 0.0 {
        Some((T::ONE, param[3], param[2], T::ONE))
    } else {
        // flag == 1.0
        Some((param[1], T::ONE, -T::ONE, param[4]))
    }
}

impl Rotm {
    /// Configure a ROTM module.
    pub fn new(n: usize, w: usize) -> Self {
        validate_width(w);
        Rotm { n, w }
    }

    /// Attach the module: applies H to the `(x, y)` stream pair.
    pub fn attach<T: Scalar>(
        &self,
        sim: &mut Simulation,
        param: [T; 5],
        ch_x: Receiver<T>,
        ch_y: Receiver<T>,
        ch_out_x: Sender<T>,
        ch_out_y: Sender<T>,
    ) {
        let n = self.n;
        sim.add_module("rotm", ModuleKind::Compute, move || {
            // Dual-output: inputs chunked, outputs element-wise (see Swap).
            let mut xs = ChunkReader::new(&ch_x);
            let mut ys = ChunkReader::new(&ch_y);
            match decode_rotm_param(&param) {
                None => {
                    for _ in 0..n {
                        ch_out_x.push(xs.next()?)?;
                        ch_out_y.push(ys.next()?)?;
                    }
                }
                Some((h11, h12, h21, h22)) => {
                    for _ in 0..n {
                        let x = xs.next()?;
                        let y = ys.next()?;
                        ch_out_x.push(x * h11 + y * h12)?;
                        ch_out_y.push(x * h21 + y * h22)?;
                    }
                }
            }
            Ok(())
        });
    }

    /// Circuit resource estimate: two fused mul-add pairs per lane.
    pub fn estimate<T: Scalar>(&self) -> ResourceEstimate {
        estimate_circuit(
            CircuitClass::MapFused {
                w: self.w as u64,
                macs_per_lane: 2,
            },
            T::PRECISION,
        )
    }

    /// Pipeline cost: `C = L + ⌈N/W⌉`.
    pub fn cost<T: Scalar>(&self) -> PipelineCost {
        PipelineCost::pipelined(
            self.estimate::<T>().latency,
            outer_iterations(self.n, self.w),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    fn run_unary<T: Scalar>(
        n: usize,
        input: Vec<T>,
        attach: impl FnOnce(&mut Simulation, Receiver<T>, Sender<T>),
    ) -> Vec<T> {
        let mut sim = Simulation::new();
        let (tx_in, rx_in) = channel(sim.ctx(), 16, "in");
        let (tx_out, rx_out) = channel(sim.ctx(), 16, "out");
        sim.add_module("src", ModuleKind::Interface, move || {
            tx_in.push_slice(&input)
        });
        attach(&mut sim, rx_in, tx_out);
        let out = DeviceCollect::new(n);
        let sink = out.clone();
        sim.add_module("sink", ModuleKind::Interface, move || sink.fill(rx_out));
        sim.run().unwrap();
        out.take()
    }

    /// Small helper collecting module output in tests.
    #[derive(Clone)]
    struct DeviceCollect<T> {
        data: std::sync::Arc<parking_lot::Mutex<Vec<T>>>,
        n: usize,
    }

    impl<T: Scalar> DeviceCollect<T> {
        fn new(n: usize) -> Self {
            DeviceCollect {
                data: Default::default(),
                n,
            }
        }
        fn fill(&self, rx: Receiver<T>) -> Result<(), fblas_hlssim::SimError> {
            let v = rx.pop_n(self.n)?;
            *self.data.lock() = v;
            Ok(())
        }
        fn take(&self) -> Vec<T> {
            std::mem::take(&mut self.data.lock())
        }
    }

    #[test]
    fn scal_scales() {
        let out = run_unary(5, vec![1.0f32, 2.0, 3.0, 4.0, 5.0], |sim, rx, tx| {
            Scal::new(5, 2).attach(sim, 3.0, rx, tx);
        });
        assert_eq!(out, vec![3.0, 6.0, 9.0, 12.0, 15.0]);
    }

    #[test]
    fn scal_zero_length() {
        let out = run_unary(0, Vec::<f64>::new(), |sim, rx, tx| {
            Scal::new(0, 4).attach(sim, 2.0, rx, tx);
        });
        assert!(out.is_empty());
    }

    #[test]
    fn copy_forwards() {
        let out = run_unary(3, vec![1.5f64, -2.5, 0.0], |sim, rx, tx| {
            VecCopy::new(3, 8).attach(sim, rx, tx);
        });
        assert_eq!(out, vec![1.5, -2.5, 0.0]);
    }

    #[test]
    fn swap_crosses_streams() {
        let mut sim = Simulation::new();
        let (txx, rxx) = channel(sim.ctx(), 8, "x");
        let (txy, rxy) = channel(sim.ctx(), 8, "y");
        let (tox, rox) = channel(sim.ctx(), 8, "ox");
        let (toy, roy) = channel(sim.ctx(), 8, "oy");
        sim.add_module("sx", ModuleKind::Interface, move || {
            txx.push_slice(&[1.0f32, 2.0])
        });
        sim.add_module("sy", ModuleKind::Interface, move || {
            txy.push_slice(&[9.0f32, 8.0])
        });
        Swap::new(2, 1).attach(&mut sim, rxx, rxy, tox, toy);
        sim.add_module("cx", ModuleKind::Interface, move || {
            assert_eq!(rox.pop_n(2)?, vec![9.0, 8.0]);
            Ok(())
        });
        sim.add_module("cy", ModuleKind::Interface, move || {
            assert_eq!(roy.pop_n(2)?, vec![1.0, 2.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn axpy_fused() {
        let mut sim = Simulation::new();
        let (txx, rxx) = channel(sim.ctx(), 8, "x");
        let (txy, rxy) = channel(sim.ctx(), 8, "y");
        let (to, ro) = channel(sim.ctx(), 8, "o");
        sim.add_module("sx", ModuleKind::Interface, move || {
            txx.push_slice(&[1.0f64, 2.0, 3.0])
        });
        sim.add_module("sy", ModuleKind::Interface, move || {
            txy.push_slice(&[10.0f64, 20.0, 30.0])
        });
        Axpy::new(3, 2).attach(&mut sim, 2.0, rxx, rxy, to);
        sim.add_module("c", ModuleKind::Interface, move || {
            assert_eq!(ro.pop_n(3)?, vec![12.0, 24.0, 36.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn rot_preserves_norm() {
        let mut sim = Simulation::new();
        let theta = 0.6f64;
        let (c, s) = (theta.cos(), theta.sin());
        let (txx, rxx) = channel(sim.ctx(), 8, "x");
        let (txy, rxy) = channel(sim.ctx(), 8, "y");
        let (tox, rox) = channel(sim.ctx(), 8, "ox");
        let (toy, roy) = channel(sim.ctx(), 8, "oy");
        sim.add_module("sx", ModuleKind::Interface, move || {
            txx.push_slice(&[3.0f64])
        });
        sim.add_module("sy", ModuleKind::Interface, move || {
            txy.push_slice(&[4.0f64])
        });
        Rot::new(1, 1).attach(&mut sim, c, s, rxx, rxy, tox, toy);
        sim.add_module("check", ModuleKind::Interface, move || {
            let x = rox.pop()?;
            let y = roy.pop()?;
            assert!((x * x + y * y - 25.0).abs() < 1e-12);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn rotm_flag_variants() {
        // Identity flag forwards unchanged.
        assert_eq!(decode_rotm_param(&[-2.0f64, 1.0, 2.0, 3.0, 4.0]), None);
        // Full matrix uses all four entries.
        assert_eq!(
            decode_rotm_param(&[-1.0f64, 1.0, 2.0, 3.0, 4.0]),
            Some((1.0, 3.0, 2.0, 4.0))
        );
        // Off-diagonal has implicit ones.
        assert_eq!(
            decode_rotm_param(&[0.0f64, 9.0, 2.0, 3.0, 9.0]),
            Some((1.0, 3.0, 2.0, 1.0))
        );
        // Diagonal has implicit ±1 off-diagonal.
        assert_eq!(
            decode_rotm_param(&[1.0f64, 5.0, 9.0, 9.0, 6.0]),
            Some((5.0, 1.0, -1.0, 6.0))
        );
    }

    #[test]
    fn rotm_applies_full_matrix() {
        let mut sim = Simulation::new();
        let (txx, rxx) = channel(sim.ctx(), 8, "x");
        let (txy, rxy) = channel(sim.ctx(), 8, "y");
        let (tox, rox) = channel(sim.ctx(), 8, "ox");
        let (toy, roy) = channel(sim.ctx(), 8, "oy");
        sim.add_module("sx", ModuleKind::Interface, move || {
            txx.push_slice(&[1.0f64, 0.0])
        });
        sim.add_module("sy", ModuleKind::Interface, move || {
            txy.push_slice(&[0.0f64, 1.0])
        });
        // param = [-1, h11=1, h21=3, h12=2, h22=4].
        Rotm::new(2, 1).attach(&mut sim, [-1.0, 1.0, 3.0, 2.0, 4.0], rxx, rxy, tox, toy);
        sim.add_module("check", ModuleKind::Interface, move || {
            assert_eq!(rox.pop_n(2)?, vec![1.0, 2.0]); // columns of H
            assert_eq!(roy.pop_n(2)?, vec![3.0, 4.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn estimates_scale_with_width() {
        let small = Scal::new(1024, 4).estimate::<f32>();
        let big = Scal::new(1024, 16).estimate::<f32>();
        assert_eq!(big.resources.dsps, 4 * small.resources.dsps);
        assert_eq!(small.latency, big.latency, "map latency is W-independent");
        // AXPY uses one DSP per lane (fused mul-add).
        assert_eq!(Axpy::new(10, 8).estimate::<f32>().resources.dsps, 8);
        // Copy/Swap burn no DSPs.
        assert_eq!(VecCopy::new(10, 8).estimate::<f32>().resources.dsps, 0);
        assert_eq!(Swap::new(10, 8).estimate::<f64>().resources.dsps, 0);
    }

    #[test]
    fn costs_follow_c_equals_l_plus_m() {
        let scal = Scal::new(1000, 4);
        let cost = scal.cost::<f32>();
        assert_eq!(cost.iterations, 250);
        assert_eq!(cost.initiation_interval, 1);
        assert_eq!(cost.cycles(), scal.estimate::<f32>().latency + 250);
    }
}
