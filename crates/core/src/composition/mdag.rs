//! Module DAG construction and validity analysis.
//!
//! The paper's rules (Sec. V):
//!
//! * An **edge** between modules is valid iff the number of elements
//!   produced equals the number consumed, and in the same order (order
//!   compatibility is a property of the tiling configurations; here the
//!   caller records it as a boolean witness on the edge).
//! * A **multitree** MDAG (at most one path between any pair of
//!   vertices) with valid edges is always valid.
//! * A **non-multitree** MDAG can stall forever: when two vertex paths
//!   lead from `u` to `v`, data buffered along the short path must wait
//!   for the long path's production pattern — the composition only
//!   terminates if the channel can hold the burst produced before the
//!   consumer starts draining (the ATAX example needs depth ≥ N·T_N).
//!   Each edge therefore carries the `burst_before_consume` its producer
//!   may emit before the consumer pops, and validation demands
//!   `channel_depth ≥ burst` on non-multitree graphs.

use fblas_hlssim::ModuleKind;

/// Handle to a node of an [`Mdag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Handle to an edge of an [`Mdag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: ModuleKind,
}

#[derive(Debug, Clone)]
struct Edge {
    from: NodeId,
    to: NodeId,
    produced: u64,
    consumed: u64,
    order_compatible: bool,
    channel_depth: u64,
    burst_before_consume: u64,
}

/// Result of validating an MDAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The composition terminates.
    Valid,
    /// The graph has a cycle — not an MDAG at all.
    Cyclic,
    /// An edge's element counts disagree (condition 1 of Sec. V) or the
    /// producer/consumer orders are incompatible (condition 2).
    InvalidEdge {
        /// Offending edge.
        edge: EdgeId,
        /// Human-readable reason.
        reason: String,
    },
    /// The graph is not a multitree and a channel is too shallow for the
    /// burst its producer emits before the consumer drains: the
    /// composition stalls forever unless the channel is enlarged
    /// (paper Sec. V-B, ATAX).
    RequiresChannelDepth {
        /// Offending edge.
        edge: EdgeId,
        /// Minimal FIFO depth that makes the composition terminate.
        min_depth: u64,
    },
}

/// Read-only view of one edge, for analyses layered on top of the
/// MDAG (the rate analyzer, `fblas-lint`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Edge handle.
    pub id: EdgeId,
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Elements the producer emits on this edge.
    pub produced: u64,
    /// Elements the consumer drains from this edge.
    pub consumed: u64,
    /// Whether producer and consumer element orders agree.
    pub order_compatible: bool,
    /// FIFO depth of the channel realizing the edge.
    pub channel_depth: u64,
    /// Burst the producer emits before the consumer starts draining.
    pub burst_before_consume: u64,
}

/// A module DAG under construction/analysis.
#[derive(Debug, Clone, Default)]
pub struct Mdag {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Mdag {
    /// Empty MDAG.
    pub fn new() -> Self {
        Mdag::default()
    }

    /// Add an interface module (circle in the paper's figures).
    pub fn add_interface(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, ModuleKind::Interface)
    }

    /// Add a computational module (rectangle).
    pub fn add_compute(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, ModuleKind::Compute)
    }

    fn add_node(&mut self, name: impl Into<String>, kind: ModuleKind) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add an edge carrying `produced` elements from `from`, of which
    /// `to` consumes `consumed`, over a FIFO of `channel_depth` slots.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        produced: u64,
        consumed: u64,
        channel_depth: u64,
    ) -> EdgeId {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "node out of range"
        );
        self.edges.push(Edge {
            from,
            to,
            produced,
            consumed,
            order_compatible: true,
            channel_depth,
            burst_before_consume: 0,
        });
        EdgeId(self.edges.len() - 1)
    }

    /// Mark an edge's element orders as incompatible (mismatched tiling
    /// schemes between producer and consumer).
    pub fn set_order_incompatible(&mut self, edge: EdgeId) {
        self.edges[edge.0].order_compatible = false;
    }

    /// Record the burst the producer emits on `edge` before its consumer
    /// starts draining (relevant on non-multitree graphs).
    pub fn set_burst_before_consume(&mut self, edge: EdgeId, burst: u64) {
        self.edges[edge.0].burst_before_consume = burst;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Kind of a node (interface or compute).
    pub fn node_kind(&self, id: NodeId) -> ModuleKind {
        self.nodes[id.0].kind
    }

    /// All node handles in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Read-only view of one edge.
    pub fn edge_info(&self, id: EdgeId) -> EdgeInfo {
        let e = &self.edges[id.0];
        EdgeInfo {
            id,
            from: e.from,
            to: e.to,
            produced: e.produced,
            consumed: e.consumed,
            order_compatible: e.order_compatible,
            channel_depth: e.channel_depth,
            burst_before_consume: e.burst_before_consume,
        }
    }

    /// Read-only views of all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeInfo> + '_ {
        (0..self.edges.len()).map(|i| self.edge_info(EdgeId(i)))
    }

    /// Topological order, or `None` if cyclic.
    fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for e in &self.edges {
                if e.from.0 == u {
                    indeg[e.to.0] -= 1;
                    if indeg[e.to.0] == 0 {
                        queue.push(e.to.0);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Count distinct paths between every ordered pair of nodes
    /// (saturating at 2 — we only care about "more than one").
    fn path_counts(&self) -> Option<Vec<Vec<u8>>> {
        let order = self.topo_order()?;
        let n = self.nodes.len();
        let mut counts = vec![vec![0u8; n]; n];
        // Parallel edges between the same pair already mean two paths.
        for s in 0..n {
            // DP in topological order: paths[v] = Σ over edges (u→v) of
            // paths[u], seeded with paths[s] = 1.
            let mut paths = vec![0u8; n];
            paths[s] = 1;
            for &u in &order {
                if paths[u] == 0 {
                    continue;
                }
                for e in &self.edges {
                    if e.from.0 == u {
                        paths[e.to.0] = paths[e.to.0].saturating_add(paths[u]).min(2);
                    }
                }
            }
            paths[s] = 0;
            counts[s] = paths;
        }
        Some(counts)
    }

    /// Is the MDAG a multitree (at most one path between any pair)?
    /// Returns `None` for cyclic graphs.
    pub fn is_multitree(&self) -> Option<bool> {
        let counts = self.path_counts()?;
        Some(counts.iter().all(|row| row.iter().all(|&c| c <= 1)))
    }

    /// Ordered node pairs connected by more than one path.
    pub fn multipath_pairs(&self) -> Vec<(NodeId, NodeId)> {
        match self.path_counts() {
            None => Vec::new(),
            Some(counts) => {
                let mut out = Vec::new();
                for (u, row) in counts.iter().enumerate() {
                    for (v, &c) in row.iter().enumerate() {
                        if c >= 2 {
                            out.push((NodeId(u), NodeId(v)));
                        }
                    }
                }
                out
            }
        }
    }

    /// Validate the composition per the paper's rules.
    pub fn validate(&self) -> Validity {
        let Some(multitree) = self.is_multitree() else {
            return Validity::Cyclic;
        };
        for (i, e) in self.edges.iter().enumerate() {
            if e.produced != e.consumed {
                return Validity::InvalidEdge {
                    edge: EdgeId(i),
                    reason: format!(
                        "`{}` produces {} elements but `{}` consumes {}",
                        self.nodes[e.from.0].name, e.produced, self.nodes[e.to.0].name, e.consumed
                    ),
                };
            }
            if !e.order_compatible {
                return Validity::InvalidEdge {
                    edge: EdgeId(i),
                    reason: format!(
                        "element orders of `{}` and `{}` are incompatible (mismatched tiling)",
                        self.nodes[e.from.0].name, self.nodes[e.to.0].name
                    ),
                };
            }
        }
        if !multitree {
            for (i, e) in self.edges.iter().enumerate() {
                if e.burst_before_consume > e.channel_depth {
                    return Validity::RequiresChannelDepth {
                        edge: EdgeId(i),
                        min_depth: e.burst_before_consume,
                    };
                }
            }
        }
        Validity::Valid
    }

    /// Longest node-weighted path through the MDAG, producer to
    /// consumer — with per-module predicted cycles as weights this is
    /// the composition's critical path, the chain of modules that bounds
    /// `Σ L_i + max_i (I_i·M_i)` end to end. Returns node names in path
    /// order; `None` for cyclic graphs, `Some(vec![])` for empty ones.
    pub fn critical_path(&self, node_weight: impl Fn(NodeId) -> u64) -> Option<Vec<String>> {
        let order = self.topo_order()?;
        let n = self.nodes.len();
        if n == 0 {
            return Some(Vec::new());
        }
        let mut best = vec![0u64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for &u in &order {
            let mut inc = 0u64;
            let mut p = None;
            for e in &self.edges {
                if e.to.0 != u {
                    continue;
                }
                if p.is_none() || best[e.from.0] > inc {
                    inc = best[e.from.0];
                    p = Some(e.from.0);
                }
            }
            best[u] = node_weight(NodeId(u)) + inc;
            pred[u] = p;
        }
        // Invariant: callers only reach here with a non-empty graph.
        #[allow(clippy::disallowed_methods)]
        let mut at = (0..n).max_by_key(|&i| best[i]).expect("n > 0");
        let mut path = vec![at];
        while let Some(p) = pred[at] {
            path.push(p);
            at = p;
        }
        path.reverse();
        Some(
            path.into_iter()
                .map(|i| self.nodes[i].name.clone())
                .collect(),
        )
    }

    /// Total off-chip I/O operations: elements crossing edges incident
    /// to an interface module — the metric the paper uses to compare
    /// streaming against host-layer execution (e.g. AXPYDOT: 7N → 3N+1).
    pub fn interface_io_elements(&self) -> u64 {
        self.edges
            .iter()
            .filter(|e| {
                self.nodes[e.from.0].kind == ModuleKind::Interface
                    || self.nodes[e.to.0].kind == ModuleKind::Interface
            })
            .map(|e| e.produced)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The AXPYDOT streaming MDAG of paper Fig. 6.
    fn axpydot_mdag(n: u64) -> Mdag {
        let mut g = Mdag::new();
        let w = g.add_interface("read_w");
        let v = g.add_interface("read_v");
        let u = g.add_interface("read_u");
        let axpy = g.add_compute("axpy");
        let dot = g.add_compute("dot");
        let beta = g.add_interface("write_beta");
        g.add_edge(w, axpy, n, n, 16);
        g.add_edge(v, axpy, n, n, 16);
        g.add_edge(axpy, dot, n, n, 16);
        g.add_edge(u, dot, n, n, 16);
        g.add_edge(dot, beta, 1, 1, 1);
        g
    }

    #[test]
    fn axpydot_is_a_valid_multitree() {
        let g = axpydot_mdag(1000);
        assert_eq!(g.is_multitree(), Some(true));
        assert_eq!(g.validate(), Validity::Valid);
        // 3N + 1 interface I/O (paper Sec. V-A).
        assert_eq!(g.interface_io_elements(), 3001);
    }

    /// The BICG MDAG of paper Fig. 7: shared read of A feeding two GEMVs.
    #[test]
    fn bicg_shared_read_is_still_a_multitree() {
        let (n, m) = (64u64, 32u64);
        let mut g = Mdag::new();
        let a = g.add_interface("read_A");
        let p = g.add_interface("read_p");
        let r = g.add_interface("read_r");
        let g1 = g.add_compute("gemv");
        let g2 = g.add_compute("gemv_t");
        let q = g.add_interface("write_q");
        let s = g.add_interface("write_s");
        g.add_edge(a, g1, n * m, n * m, 16);
        g.add_edge(a, g2, n * m, n * m, 16);
        g.add_edge(p, g1, m, m, 16);
        g.add_edge(r, g2, n, n, 16);
        g.add_edge(g1, q, n, n, 16);
        g.add_edge(g2, s, m, m, 16);
        assert_eq!(g.is_multitree(), Some(true));
        assert_eq!(g.validate(), Validity::Valid);
        // A read once: NM + M + N + N + M.
        assert_eq!(g.interface_io_elements(), 2 * n * m + 2 * (n + m));
    }

    /// The ATAX MDAG of paper Fig. 8: NOT a multitree (two paths from
    /// read_A's sibling... from the shared interface to the second GEMV).
    fn atax_mdag(n: u64, m: u64, tn: u64, depth: u64) -> Mdag {
        let mut g = Mdag::new();
        let a = g.add_interface("read_A");
        let x = g.add_interface("read_x");
        let g1 = g.add_compute("gemv");
        let g2 = g.add_compute("gemv_t");
        let y = g.add_interface("write_y");
        g.add_edge(a, g1, n * m, n * m, 16);
        let e_a2 = g.add_edge(a, g2, n * m, n * m, depth);
        g.add_edge(x, g1, m, m, 16);
        let _t = g.add_edge(g1, g2, n, n, 16);
        g.add_edge(g2, y, m, m, 16);
        // The second GEMV cannot consume A until the first produces a
        // block of results: the A stream bursts N·T_N elements first.
        g.set_burst_before_consume(e_a2, n * tn);
        g
    }

    #[test]
    fn atax_detected_as_non_multitree_needing_depth() {
        // a→g2 and a→g1→g2 are two paths from read_A to the second GEMV.
        let g = atax_mdag(64, 32, 8, 16);
        assert_eq!(g.is_multitree(), Some(false));
        assert!(g
            .multipath_pairs()
            .iter()
            .any(|&(u, v)| g.node_name(u) == "read_A" && g.node_name(v) == "gemv_t"));
        match g.validate() {
            Validity::RequiresChannelDepth { min_depth, .. } => {
                assert_eq!(min_depth, 64 * 8);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn atax_valid_once_channel_is_sized() {
        // Paper's fix (a): set the channel size according to input size.
        let g = atax_mdag(64, 32, 8, 64 * 8);
        assert_eq!(g.validate(), Validity::Valid);
    }

    #[test]
    fn count_mismatch_is_invalid_edge() {
        let mut g = Mdag::new();
        let a = g.add_interface("src");
        let b = g.add_compute("sink");
        g.add_edge(a, b, 100, 50, 16);
        match g.validate() {
            Validity::InvalidEdge { reason, .. } => {
                assert!(reason.contains("100") && reason.contains("50"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn order_incompatibility_is_invalid_edge() {
        let mut g = Mdag::new();
        let a = g.add_compute("producer");
        let b = g.add_compute("consumer");
        let e = g.add_edge(a, b, 10, 10, 4);
        g.set_order_incompatible(e);
        match g.validate() {
            Validity::InvalidEdge { reason, .. } => assert!(reason.contains("tiling")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = Mdag::new();
        let a = g.add_compute("a");
        let b = g.add_compute("b");
        g.add_edge(a, b, 1, 1, 1);
        g.add_edge(b, a, 1, 1, 1);
        assert_eq!(g.validate(), Validity::Cyclic);
        assert_eq!(g.is_multitree(), None);
    }

    #[test]
    fn parallel_edges_count_as_two_paths() {
        let mut g = Mdag::new();
        let a = g.add_compute("a");
        let b = g.add_compute("b");
        g.add_edge(a, b, 5, 5, 4);
        g.add_edge(a, b, 7, 7, 4);
        assert_eq!(g.is_multitree(), Some(false));
    }

    #[test]
    fn critical_path_follows_the_heaviest_chain() {
        let g = axpydot_mdag(1000);
        let weight = |id: NodeId| match g.node_name(id) {
            "axpy" => 1030u64,
            "dot" => 1060,
            name if name.starts_with("read_") => 1000,
            _ => 1,
        };
        let path = g.critical_path(weight).unwrap();
        assert_eq!(path.last().unwrap(), "write_beta");
        assert!(path.contains(&"axpy".to_string()));
        assert!(path.contains(&"dot".to_string()));
        // The path enters through one of the reads feeding AXPY, not the
        // shorter read_u → dot hop.
        assert!(path.first().unwrap().starts_with("read_"));
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn critical_path_rejects_cycles_and_handles_empty_graphs() {
        let mut g = Mdag::new();
        assert_eq!(g.critical_path(|_| 1), Some(Vec::new()));
        let a = g.add_compute("a");
        let b = g.add_compute("b");
        g.add_edge(a, b, 1, 1, 1);
        g.add_edge(b, a, 1, 1, 1);
        assert_eq!(g.critical_path(|_| 1), None);
    }

    #[test]
    fn empty_graph_is_trivially_valid() {
        let g = Mdag::new();
        assert_eq!(g.validate(), Validity::Valid);
        assert_eq!(g.interface_io_elements(), 0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_views_expose_the_contract() {
        let g = atax_mdag(64, 32, 8, 16);
        let views: Vec<EdgeInfo> = g.edges().collect();
        assert_eq!(views.len(), g.edge_count());
        assert_eq!(views[1].burst_before_consume, 64 * 8);
        assert_eq!(views[1].channel_depth, 16);
        assert_eq!(g.node_kind(views[1].from), ModuleKind::Interface);
        assert_eq!(g.node_kind(views[1].to), ModuleKind::Compute);
        assert_eq!(g.node_ids().count(), g.node_count());
    }

    // ---- agreement between validate() and the rate analyzer ----------
    //
    // `fblas-lint` subsumes the multitree heuristic with an abstract
    // Kahn-network execution (`composition::rates`). These tests pin
    // the contract between the two analyses on the edge cases the
    // heuristic was known to be weak on, and on every paper fixture.

    use crate::composition::rates::{Outcome, RateGraph};

    fn verdicts_agree(g: &Mdag) {
        let accept_old = g.validate() == Validity::Valid;
        let accept_new = RateGraph::from_mdag(g).analyze().is_completed();
        assert_eq!(accept_old, accept_new, "validate() vs rate analysis");
    }

    #[test]
    fn fixtures_agree_between_old_and_new_analysis() {
        // AXPYDOT (Fig. 6) and BICG (Fig. 7): valid multitrees.
        verdicts_agree(&axpydot_mdag(1000));
        // ATAX (Fig. 8): shallow channel rejected by both, and both
        // derive the same minimum depth N·T_N; sized channel accepted.
        let shallow = atax_mdag(64, 32, 8, 16);
        verdicts_agree(&shallow);
        let old_min = match shallow.validate() {
            Validity::RequiresChannelDepth { min_depth, .. } => min_depth,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(
            RateGraph::from_mdag(&shallow).repair(),
            Some(vec![(1, old_min)])
        );
        verdicts_agree(&atax_mdag(64, 32, 8, 64 * 8));
    }

    /// The GEMVER schedule of paper Fig. 9: the first component
    /// (GER·GER·GEMV) is a multitree both analyses accept.
    #[test]
    fn gemver_component_agrees_between_analyses() {
        let (n, m) = (64u64, 48u64);
        let mut g = Mdag::new();
        let a = g.add_interface("read_A");
        let u1 = g.add_interface("read_u1");
        let v1 = g.add_interface("read_v1");
        let u2 = g.add_interface("read_u2");
        let v2 = g.add_interface("read_v2");
        let y = g.add_interface("read_y");
        let ger1 = g.add_compute("ger#0");
        let ger2 = g.add_compute("ger#1");
        let gemv = g.add_compute("gemv_t#2");
        let wb = g.add_interface("write_B");
        let wx = g.add_interface("write_x");
        g.add_edge(a, ger1, n * m, n * m, 16);
        g.add_edge(u1, ger1, n, n, 16);
        g.add_edge(v1, ger1, m, m, 16);
        g.add_edge(ger1, ger2, n * m, n * m, 16);
        g.add_edge(u2, ger2, n, n, 16);
        g.add_edge(v2, ger2, m, m, 16);
        g.add_edge(ger2, gemv, n * m, n * m, 16);
        g.add_edge(ger2, wb, n * m, n * m, 16);
        g.add_edge(y, gemv, n, n, 16);
        g.add_edge(gemv, wx, m, m, 16);
        assert_eq!(g.is_multitree(), Some(true));
        assert_eq!(g.validate(), Validity::Valid);
        verdicts_agree(&g);
    }

    #[test]
    fn self_loop_rejected_by_both_analyses() {
        let mut g = Mdag::new();
        let a = g.add_compute("a");
        g.add_edge(a, a, 8, 8, 4);
        // The heuristic calls a self-loop Cyclic; the abstract
        // execution agrees nothing can run (the node pops its own
        // output before producing it). Both reject.
        assert_eq!(g.validate(), Validity::Cyclic);
        assert!(matches!(
            RateGraph::from_mdag(&g).analyze(),
            Outcome::Deadlock { .. }
        ));
    }

    #[test]
    fn multi_edge_burst_agrees_on_min_depth() {
        // Two parallel edges a⇉b, one bursty and shallow: both
        // analyses reject and derive the same minimum depth.
        let build = |d0: u64, d1: u64| {
            let mut g = Mdag::new();
            let a = g.add_interface("a");
            let b = g.add_compute("b");
            g.add_edge(a, b, 48, 48, d0);
            let e1 = g.add_edge(a, b, 48, 48, d1);
            g.set_burst_before_consume(e1, 24);
            g
        };
        let shallow = build(16, 8);
        assert_eq!(shallow.is_multitree(), Some(false));
        match shallow.validate() {
            Validity::RequiresChannelDepth { edge, min_depth } => {
                assert_eq!(edge, EdgeId(1));
                assert_eq!(min_depth, 24);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // The rate analysis agrees on the bursty edge's depth (24) and
        // additionally discovers what the heuristic cannot see: the
        // producer interleaves both streams, so the sibling edge backs
        // up to the same 24 while the consumer waits for the burst.
        assert_eq!(
            RateGraph::from_mdag(&shallow).repair(),
            Some(vec![(0, 24), (1, 24)])
        );
        verdicts_agree(&shallow);
        verdicts_agree(&build(24, 24));
    }

    /// A diamond whose long arm delays production: the case the
    /// linter catches and the multitree heuristic provably cannot.
    ///
    /// `a` feeds `c` directly (burst 4, depth 4) and through relay `b`
    /// whose edge to `c` carries a large burst (32): `c` drains nothing
    /// until `b` has produced 32 elements, which requires `a` to have
    /// pushed 32 into *both* arms — so the short arm's channel needs
    /// depth ≈ 32, far beyond its own burst. `validate()` checks each
    /// edge against its own burst only and calls this Valid; the
    /// abstract execution finds the deadlock and the exact repair.
    #[test]
    fn diamond_with_unequal_path_latency_caught_only_by_rates() {
        let n = 64u64; // ≤ WEAVE_ROUNDS, so the abstract run is element-exact
        let mut g = Mdag::new();
        let a = g.add_interface("a");
        let b = g.add_compute("b");
        let c = g.add_compute("c");
        let sink = g.add_interface("sink");
        g.add_edge(a, b, n, n, 16);
        let e_short = g.add_edge(a, c, n, n, 4);
        g.set_burst_before_consume(e_short, 4);
        let e_long = g.add_edge(b, c, n, n, 32);
        g.set_burst_before_consume(e_long, 32);
        g.add_edge(c, sink, n, n, 16);

        // Old analysis: every burst fits its channel, so "valid".
        assert_eq!(g.is_multitree(), Some(false));
        assert_eq!(g.validate(), Validity::Valid);

        // New analysis: deadlock, fixed exactly by deepening the short
        // arm. `a` emits element-by-element into both arms; it blocks
        // once the short arm holds depth+1 elements... strictly: after
        // pushing k to each arm it blocks at k = depth+1, so releasing
        // the long arm's burst (32) needs depth 31.
        let rg = RateGraph::from_mdag(&g);
        assert!(matches!(rg.analyze(), Outcome::Deadlock { .. }));
        assert_eq!(rg.repair(), Some(vec![(e_short.0, 31)]));

        // Self-consistency of the derived depth: 31 completes, 30
        // deadlocks — the exactness contract the differential property
        // suite checks against the real simulator.
        let mut fixed = RateGraph::from_mdag(&g);
        fixed.set_capacity(e_short.0, 31);
        assert!(fixed.analyze().is_completed());
        let mut under = RateGraph::from_mdag(&g);
        under.set_capacity(e_short.0, 30);
        assert!(matches!(under.analyze(), Outcome::Deadlock { .. }));
    }
}
