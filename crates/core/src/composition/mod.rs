//! Streaming composition analysis (paper Sec. V).
//!
//! Computations are modeled as *module DAGs* (MDAGs): vertices are
//! hardware modules (interface or computational), edges are FIFO
//! channels. [`mdag`] implements the paper's validity analysis — edge
//! validity, multitree detection, channel-depth requirements for
//! non-multitree graphs — plus the I/O-volume accounting used to reason
//! about the benefit of streaming compositions. [`rates`] generalizes
//! that analysis to arbitrary graphs: an abstract Kahn-network
//! execution over per-module push/pop programs that decides
//! deadlock-freedom and computes exact minimum channel depths; the
//! planner routes its channel-sizing decisions through it and
//! `fblas-lint` builds its verdicts on it.

mod abft;
pub mod executor;
pub mod mdag;
pub mod planner;
pub mod rates;

pub use executor::{
    execute_plan, execute_plan_audited, execute_plan_traced, execute_plan_with_recovery,
    AttemptRecord, ExecError, ExecOutcome, RecoveryError, RecoveryReport, RetryPolicy,
};
pub use mdag::{EdgeId, EdgeInfo, Mdag, NodeId, Validity};
pub use planner::{
    interpret, plan, ContractCause, Op, Plan, PlanError, PlanNote, PlannedComponent, PlannerConfig,
    Program,
};
pub use rates::{Outcome as RateOutcome, RateGraph, Step as RateStep};
