//! Streaming composition analysis (paper Sec. V).
//!
//! Computations are modeled as *module DAGs* (MDAGs): vertices are
//! hardware modules (interface or computational), edges are FIFO
//! channels. [`mdag`] implements the paper's validity analysis — edge
//! validity, multitree detection, channel-depth requirements for
//! non-multitree graphs — plus the I/O-volume accounting used to reason
//! about the benefit of streaming compositions. [`rates`] generalizes
//! that analysis to arbitrary graphs: an abstract Kahn-network
//! execution over per-module push/pop programs that decides
//! deadlock-freedom and computes exact minimum channel depths; the
//! planner routes its channel-sizing decisions through it and
//! `fblas-lint` builds its verdicts on it.

mod abft;
pub mod dataflow;
pub mod executor;
pub mod fused;
pub mod fusion;
pub mod mdag;
pub mod planner;
pub mod rates;

pub use executor::{
    execute_plan, execute_plan_audited, execute_plan_audited_with_backend, execute_plan_fused,
    execute_plan_fused_audited, execute_plan_fused_traced, execute_plan_fused_with_recovery,
    execute_plan_traced, execute_plan_with_backend, execute_plan_with_recovery,
    execute_plan_with_recovery_backend, AttemptRecord, ExecError, ExecOutcome, RecoveryError,
    RecoveryErrorKind, RecoveryReport, RetryPolicy,
};
pub use fused::{fusion_plan_for_component, Backend};
pub use fusion::{
    analyze_fusion, apply_elementwise, apply_elementwise_t, build_evaluator, check_obligations,
    infer_sems, sems_for_component, verify_witnesses, BoundaryChannel, FusedEvaluator, FusedRegion,
    FusedRun, FusionPlan, FusionRejection, FusionStats, ModuleSem, Obligation, FUSION_PLAN_SCHEMA,
};
pub use mdag::{EdgeId, EdgeInfo, Mdag, NodeId, Validity};
pub use planner::{
    interpret, plan, ContractCause, Op, Plan, PlanError, PlanNote, PlannedComponent, PlannerConfig,
    Program,
};
pub use rates::{Outcome as RateOutcome, RateGraph, Step as RateStep};
