//! Streaming composition analysis (paper Sec. V).
//!
//! Computations are modeled as *module DAGs* (MDAGs): vertices are
//! hardware modules (interface or computational), edges are FIFO
//! channels. [`mdag`] implements the paper's validity analysis — edge
//! validity, multitree detection, channel-depth requirements for
//! non-multitree graphs — plus the I/O-volume accounting used to reason
//! about the benefit of streaming compositions.

pub mod executor;
pub mod mdag;
pub mod planner;

pub use executor::{
    execute_plan, execute_plan_audited, execute_plan_traced, ExecError, ExecOutcome,
};
pub use mdag::{EdgeId, Mdag, NodeId, Validity};
pub use planner::{interpret, plan, Op, Plan, PlanError, PlannedComponent, PlannerConfig, Program};
