//! Fusion legality analysis and the `FusionPlan` artifact.
//!
//! ROADMAP item 1 (a fused compiled backend) needs a static answer to
//! one question: *which module chains of a validated MDAG may be
//! collapsed into a single loop without changing observable values?*
//! This module computes that answer. A **fusable region** is a maximal
//! set of stateless 1:1-rate relay modules (`copy`, `scal`, `axpy`)
//! connected producer-to-single-consumer, plus the interface reads and
//! writes it absorbs. Everything else — reductions (reassociation!),
//! stateful tiles, rate changes, fanout, bursts, paths that leave and
//! re-enter the region — is a **rejection** carrying a witness that
//! names the blocking module or channel.
//!
//! The output is a serializable [`FusionPlan`] (schema
//! `fblas-fusion-plan-v1`): regions with boundary channels and a
//! machine-checkable proof-obligation list, rejections with witnesses,
//! and summary stats. [`check_obligations`] and [`verify_witnesses`]
//! re-verify a plan against the graph it claims to describe — the
//! contract the differential keystone test enforces — and
//! [`FusedEvaluator`] executes a region as the straight-line
//! per-element loop the future backend would emit, sharing
//! [`apply_elementwise`] with the threaded value harness so fused and
//! unfused runs are bit-identical by construction.

use std::collections::BTreeMap;

use fblas_hlssim::ModuleKind;
use serde::{Deserialize, Serialize};

use super::dataflow::{solve, ExternalReach, FlowGraph};
use super::{EdgeInfo, Mdag, Op};
use crate::scalar::Scalar;

/// Version tag of the artifact schema.
pub const FUSION_PLAN_SCHEMA: &str = "fblas-fusion-plan-v1";

// ---------------------------------------------------------------------
// Module semantics.
// ---------------------------------------------------------------------

/// What a module *does*, as far as fusion legality is concerned.
///
/// Scalars are `Option<f64>` because graph documents name modules but
/// carry no coefficients: an unknown α still fuses (legality does not
/// depend on its value), it just disables the α = 1 pass-through lint
/// and requires the caller of the evaluator to supply concrete
/// semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleSem {
    /// Interface source: replays one stream into each out-edge.
    Read,
    /// Interface sink: drains its single in-edge.
    Write,
    /// `out = x` — stateless 1:1 relay.
    Copy,
    /// `out = α·x` — stateless 1:1 relay.
    Scal {
        /// Scaling factor, when known.
        alpha: Option<f64>,
    },
    /// `out = α·x + y` — stateless 2-in/1-out relay.
    Axpy {
        /// Scaling factor, when known.
        alpha: Option<f64>,
    },
    /// Broadcast relay (the planner's `dup_*` nodes) — fanout.
    Dup,
    /// W-way reduction (`dot`): `W > 1` reassociates the sum.
    Reduce {
        /// Vectorization width of the adder tree.
        width: usize,
    },
    /// Keeps state across elements (`gemv`, `ger` tiles).
    Stateful,
    /// Unknown semantics — never fused.
    Opaque,
}

impl ModuleSem {
    /// Is this a stateless elementwise relay fusion may absorb?
    pub fn is_relay(&self) -> bool {
        matches!(
            self,
            ModuleSem::Copy | ModuleSem::Scal { .. } | ModuleSem::Axpy { .. }
        )
    }

    /// Number of input streams a relay consumes.
    pub fn relay_arity(&self) -> Option<usize> {
        match self {
            ModuleSem::Copy | ModuleSem::Scal { .. } => Some(1),
            ModuleSem::Axpy { .. } => Some(2),
            _ => None,
        }
    }
}

/// Infer per-node semantics from module names and kinds — the best a
/// raw `graph` document offers. Compute nodes are classified by base
/// name (up to `#`); interfaces by whether they source or sink.
pub fn infer_sems(g: &Mdag, width: usize) -> Vec<ModuleSem> {
    let n = g.node_count();
    let mut has_in = vec![false; n];
    let mut has_out = vec![false; n];
    for e in g.edges() {
        has_out[e.from.0] = true;
        has_in[e.to.0] = true;
    }
    g.node_ids()
        .map(|id| {
            let name = g.node_name(id);
            let base = name.split('#').next().unwrap_or(name);
            match g.node_kind(id) {
                ModuleKind::Interface => {
                    if has_out[id.0] && !has_in[id.0] {
                        ModuleSem::Read
                    } else if has_in[id.0] && !has_out[id.0] {
                        ModuleSem::Write
                    } else {
                        ModuleSem::Opaque
                    }
                }
                ModuleKind::Compute => {
                    if base.starts_with("dup") {
                        ModuleSem::Dup
                    } else if base.starts_with("copy") {
                        ModuleSem::Copy
                    } else if base.starts_with("scal") {
                        ModuleSem::Scal { alpha: None }
                    } else if base.starts_with("axpy") {
                        ModuleSem::Axpy { alpha: None }
                    } else if base.starts_with("sdsdot") || base.starts_with("dot") {
                        ModuleSem::Reduce { width }
                    } else if base.starts_with("gemv") || base.starts_with("ger") {
                        ModuleSem::Stateful
                    } else {
                        ModuleSem::Opaque
                    }
                }
            }
        })
        .collect()
}

/// Per-node semantics of a planned component: node names carry the
/// program op index (`scal#3`), so coefficients are exact.
pub fn sems_for_component(g: &Mdag, ops: &[Op], width: usize) -> Vec<ModuleSem> {
    let base = infer_sems(g, width);
    g.node_ids()
        .map(|id| {
            let name = g.node_name(id);
            if let Some((_, idx)) = name.rsplit_once('#') {
                if let Ok(oi) = idx.parse::<usize>() {
                    if let Some(op) = ops.get(oi) {
                        return match op {
                            Op::Copy { .. } => ModuleSem::Copy,
                            Op::Scal { alpha, .. } => ModuleSem::Scal {
                                alpha: Some(*alpha),
                            },
                            Op::Axpy { alpha, .. } => ModuleSem::Axpy {
                                alpha: Some(*alpha),
                            },
                            Op::Dot { .. } => ModuleSem::Reduce { width },
                            Op::Gemv { .. } | Op::Ger { .. } => ModuleSem::Stateful,
                        };
                    }
                }
            }
            base[id.0].clone()
        })
        .collect()
}

// ---------------------------------------------------------------------
// The artifact.
// ---------------------------------------------------------------------

/// A channel crossing the region boundary, with its instantiated depth
/// (fusion must preserve boundary depths — only internal channels
/// collapse).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryChannel {
    /// Channel name, `producer->consumer`.
    pub channel: String,
    /// Instantiated FIFO depth.
    pub depth: u64,
}

/// One machine-checkable condition the fused backend may assume and a
/// verifier must re-establish before trusting the region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obligation {
    /// Stable kind tag (e.g. `uniform-rate`, `convex`).
    pub kind: String,
    /// Human-readable statement of the condition.
    pub detail: String,
}

/// A maximal legally-fusable region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedRegion {
    /// Region name (`fuse0`, `fuse1`, …).
    pub name: String,
    /// Member modules in topological order, including absorbed
    /// interface reads and writes.
    pub modules: Vec<String>,
    /// Channels entering the region from outside.
    pub inputs: Vec<BoundaryChannel>,
    /// Channel leaving the region, if its tail feeds an external
    /// consumer (`None` when the tail drains into an absorbed write).
    pub output: Option<BoundaryChannel>,
    /// Elements every channel of the region carries.
    pub elements: u64,
    /// Proof obligations the region was admitted under.
    pub obligations: Vec<Obligation>,
}

/// A chain (or single module) that cannot be fused, with the witness
/// that blocks it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionRejection {
    /// Modules of the rejected chain.
    pub modules: Vec<String>,
    /// Stable reason tag (`stateful`, `reassociation`, `fanout`,
    /// `rate-change`, `burst`, `order-mismatch`, `arity-mismatch`,
    /// `feedback`, `recovery-guards`, `singleton`,
    /// `unknown-semantics`).
    pub reason: String,
    /// The blocking module, when one exists in the graph.
    pub witness_module: Option<String>,
    /// The blocking channel (`producer->consumer`), when one exists.
    pub witness_channel: Option<String>,
}

/// Summary counters for the bench artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionStats {
    /// Chains examined: fused regions plus rejections.
    pub chains_found: u64,
    /// Regions admitted.
    pub fused: u64,
    /// Rejection counts keyed by reason tag.
    pub rejected: BTreeMap<String, u64>,
}

/// The serializable analysis result — the exact input the future fused
/// backend consumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionPlan {
    /// Schema tag ([`FUSION_PLAN_SCHEMA`]).
    pub schema: String,
    /// Source file (programs append `#c<i>` per component).
    pub file: String,
    /// Admitted regions.
    pub regions: Vec<FusedRegion>,
    /// Rejected chains with witnesses.
    pub rejections: Vec<FusionRejection>,
    /// Summary counters.
    pub stats: FusionStats,
}

impl FusionPlan {
    /// Pretty JSON. Field order is struct order and all maps are
    /// ordered, so serialization is byte-stable across round trips.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// Parse a plan back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

// ---------------------------------------------------------------------
// Region discovery.
// ---------------------------------------------------------------------

/// What a relay node looks like from the fusion analysis: its uniform
/// rate, its (at most one) forwarding edge, and the write-sink tees it
/// may keep.
struct RelayShape {
    rate: u64,
    main_out: Option<usize>,
    sink_outs: Vec<usize>,
}

enum RelayVerdict {
    Fusable(RelayShape),
    Blocked {
        reason: &'static str,
        channel: Option<usize>,
    },
}

fn channel_name(g: &Mdag, e: &EdgeInfo) -> String {
    format!("{}->{}", g.node_name(e.from), g.node_name(e.to))
}

fn relay_shape(
    _g: &Mdag,
    sems: &[ModuleSem],
    edges: &[EdgeInfo],
    in_edges: &[Vec<usize>],
    out_edges: &[Vec<usize>],
    node: usize,
) -> RelayVerdict {
    let arity = match sems[node].relay_arity() {
        Some(a) => a,
        None => {
            return RelayVerdict::Blocked {
                reason: "unknown-semantics",
                channel: None,
            }
        }
    };
    if in_edges[node].len() != arity {
        return RelayVerdict::Blocked {
            reason: "arity-mismatch",
            channel: in_edges[node].first().copied(),
        };
    }
    let mut rate = None;
    for &ei in in_edges[node].iter().chain(&out_edges[node]) {
        let e = &edges[ei];
        if e.produced != e.consumed {
            return RelayVerdict::Blocked {
                reason: "rate-change",
                channel: Some(ei),
            };
        }
        if e.burst_before_consume > 0 {
            return RelayVerdict::Blocked {
                reason: "burst",
                channel: Some(ei),
            };
        }
        if !e.order_compatible {
            return RelayVerdict::Blocked {
                reason: "order-mismatch",
                channel: Some(ei),
            };
        }
        match rate {
            None => rate = Some(e.produced),
            Some(r) if r != e.produced => {
                return RelayVerdict::Blocked {
                    reason: "rate-change",
                    channel: Some(ei),
                }
            }
            Some(_) => {}
        }
    }
    // Partition outputs: tees into single-writer interface sinks ride
    // along (the planner tees every op output to a `write_*` node);
    // anything else is the forwarding edge, of which a relay may have
    // at most one ("single computational consumer").
    let mut main_out = None;
    let mut sink_outs = Vec::new();
    for &ei in &out_edges[node] {
        let t = edges[ei].to.0;
        if sems[t] == ModuleSem::Write && in_edges[t].len() == 1 {
            sink_outs.push(ei);
        } else if main_out.is_none() {
            main_out = Some(ei);
        } else {
            return RelayVerdict::Blocked {
                reason: "fanout",
                channel: Some(ei),
            };
        }
    }
    RelayVerdict::Fusable(RelayShape {
        rate: rate.unwrap_or(0),
        main_out,
        sink_outs,
    })
}

fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

fn region_obligations(elements: u64) -> Vec<Obligation> {
    let mk = |kind: &str, detail: String| Obligation {
        kind: kind.to_string(),
        detail,
    };
    vec![
        mk(
            "uniform-rate",
            format!("every channel incident to the region carries exactly {elements} elements"),
        ),
        mk(
            "spsc",
            "each fused channel has exactly one producer and one computational consumer"
                .to_string(),
        ),
        mk(
            "no-burst",
            "no channel incident to the region carries a burst-before-consume annotation"
                .to_string(),
        ),
        mk(
            "convex",
            "no path leaves the region and re-enters it (fusing cannot deadlock a bypass)"
                .to_string(),
        ),
        mk(
            "elementwise",
            "every fused compute module is a stateless 1:1 relay (copy/scal/axpy)".to_string(),
        ),
        mk(
            "no-reassociation",
            "the region contains no W-way reduction; fused order equals streamed order".to_string(),
        ),
        mk(
            "no-recovery-hooks",
            "no fault hook or retry guard is armed over the region's channels".to_string(),
        ),
        mk(
            "boundary-depths-preserved",
            "channels crossing the region boundary keep their instantiated depths".to_string(),
        ),
    ]
}

/// Run the fusion legality analysis over one MDAG.
///
/// `recovery_armed` marks graphs executed under retry/fault guards
/// (`retry_max > 1`, or a live [`fblas_hlssim::SimContext`] with
/// `faults_armed()`): fusing would collapse the channels the guards
/// observe, so every candidate region is rejected with a
/// `recovery-guards` witness instead.
pub fn analyze_fusion(
    g: &Mdag,
    sems: &[ModuleSem],
    file: &str,
    recovery_armed: bool,
) -> FusionPlan {
    let n = g.node_count();
    let edges: Vec<EdgeInfo> = g.edges().collect();
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        out_edges[e.from.0].push(ei);
        in_edges[e.to.0].push(ei);
    }

    let verdicts: Vec<Option<RelayVerdict>> = (0..n)
        .map(|i| {
            sems[i]
                .is_relay()
                .then(|| relay_shape(g, sems, &edges, &in_edges, &out_edges, i))
        })
        .collect();
    let shape = |i: usize| match &verdicts[i] {
        Some(RelayVerdict::Fusable(s)) => Some(s),
        _ => None,
    };

    // Union relay-ok nodes along forwarding edges into in-tree regions.
    let mut parent: Vec<usize> = (0..n).collect();
    for i in 0..n {
        if let Some(s) = shape(i) {
            if let Some(ei) = s.main_out {
                let v = edges[ei].to.0;
                if shape(v).is_some() {
                    let (ri, rv) = (find(&mut parent, i), find(&mut parent, v));
                    parent[ri.max(rv)] = ri.min(rv);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        if shape(i).is_some() {
            groups.entry(find(&mut parent, i)).or_default().push(i);
        }
    }

    let fg = FlowGraph::from_mdag(g);
    let mut regions: Vec<FusedRegion> = Vec::new();
    let mut rejections: Vec<FusionRejection> = Vec::new();
    let mut fused_node = vec![false; n];

    for members in groups.values() {
        let names = |set: &[usize]| -> Vec<String> {
            set.iter()
                .map(|&i| g.node_name(super::NodeId(i)).to_string())
                .collect()
        };
        if members.len() < 2 {
            rejections.push(FusionRejection {
                modules: names(members),
                reason: "singleton".to_string(),
                witness_module: names(members).into_iter().next(),
                witness_channel: None,
            });
            continue;
        }
        let member_set: Vec<bool> = {
            let mut v = vec![false; n];
            for &i in members {
                v[i] = true;
            }
            v
        };
        let rate = members
            .first()
            .and_then(|&i| shape(i))
            .map(|s| s.rate)
            .unwrap_or(0);

        // Absorb interface reads whose every output feeds the region at
        // the region rate, and the write sinks the relays tee into.
        let mut in_region = member_set.clone();
        for r in 0..n {
            if sems[r] != ModuleSem::Read || out_edges[r].is_empty() {
                continue;
            }
            let all_in = out_edges[r].iter().all(|&ei| {
                let e = &edges[ei];
                member_set[e.to.0]
                    && e.produced == e.consumed
                    && e.produced == rate
                    && e.burst_before_consume == 0
                    && e.order_compatible
            });
            if all_in {
                in_region[r] = true;
            }
        }
        let mut output = None;
        for &i in members {
            if let Some(s) = shape(i) {
                for &ei in &s.sink_outs {
                    in_region[edges[ei].to.0] = true;
                }
                // The tail's forwarding edge either leaves the region
                // (boundary output) or drains into an absorbable sink.
                if let Some(ei) = s.main_out {
                    let t = edges[ei].to.0;
                    if !member_set[t] {
                        if sems[t] == ModuleSem::Write && in_edges[t].len() == 1 {
                            in_region[t] = true;
                        } else {
                            output = Some(BoundaryChannel {
                                channel: channel_name(g, &edges[ei]),
                                depth: edges[ei].channel_depth,
                            });
                        }
                    }
                }
            }
        }

        // Convexity: a path that exits through any member and re-enters
        // the region would deadlock against the collapsed channels.
        let seeded: Vec<bool> = (0..n)
            .map(|i| !in_region[i] && fg.preds(i).iter().any(|&p| in_region[p]))
            .collect();
        let sol = solve(
            &fg,
            &ExternalReach {
                in_region: &in_region,
                seeded: &seeded,
            },
        );
        let reentry = (0..n).find(|&i| in_region[i] && sol.facts_in[i]);
        if let Some(v) = reentry {
            let witness = in_edges[v]
                .iter()
                .map(|&ei| &edges[ei])
                .find(|e| !in_region[e.from.0] && sol.facts_out[e.from.0]);
            rejections.push(FusionRejection {
                modules: names(members),
                reason: "feedback".to_string(),
                witness_module: Some(g.node_name(super::NodeId(v)).to_string()),
                witness_channel: witness.map(|e| channel_name(g, e)),
            });
            continue;
        }
        if recovery_armed {
            rejections.push(FusionRejection {
                modules: names(members),
                reason: "recovery-guards".to_string(),
                witness_module: names(members).into_iter().next(),
                witness_channel: None,
            });
            continue;
        }

        // Topological order over the region-induced subgraph.
        let mut indeg = vec![0usize; n];
        for e in &edges {
            if in_region[e.from.0] && in_region[e.to.0] {
                indeg[e.to.0] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| in_region[i] && indeg[i] == 0).collect();
        queue.sort_unstable();
        queue.reverse();
        let mut topo = Vec::new();
        while let Some(u) = queue.pop() {
            topo.push(u);
            for &ei in &out_edges[u] {
                let v = edges[ei].to.0;
                if in_region[v] {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        queue.push(v);
                        queue.sort_unstable();
                        queue.reverse();
                    }
                }
            }
        }

        let mut inputs = Vec::new();
        for &i in members {
            for &ei in &in_edges[i] {
                let e = &edges[ei];
                if !in_region[e.from.0] {
                    inputs.push(BoundaryChannel {
                        channel: channel_name(g, e),
                        depth: e.channel_depth,
                    });
                }
            }
        }

        for &i in &topo {
            fused_node[i] = true;
        }
        regions.push(FusedRegion {
            name: format!("fuse{}", regions.len()),
            modules: names(&topo),
            inputs,
            output,
            elements: rate,
            obligations: region_obligations(rate),
        });
    }

    // Every compute module outside a fused region carries a rejection
    // witness — the record of *why* the backend must keep it threaded.
    for i in 0..n {
        if fused_node[i] {
            continue;
        }
        let name = g.node_name(super::NodeId(i)).to_string();
        let (reason, channel) = match (&sems[i], &verdicts[i]) {
            (_, Some(RelayVerdict::Blocked { reason, channel })) => (*reason, *channel),
            (_, Some(RelayVerdict::Fusable(_))) => continue, // singleton, already recorded
            (ModuleSem::Reduce { width }, _) if *width > 1 => ("reassociation", None),
            (ModuleSem::Reduce { .. }, _) => ("rate-change", None),
            (ModuleSem::Stateful, _) => ("stateful", None),
            (ModuleSem::Dup, _) => ("fanout", None),
            (ModuleSem::Opaque, _) if g.node_kind(super::NodeId(i)) == ModuleKind::Compute => {
                ("unknown-semantics", None)
            }
            _ => continue, // interface reads/writes need no witness
        };
        rejections.push(FusionRejection {
            modules: vec![name.clone()],
            reason: reason.to_string(),
            witness_module: Some(name),
            witness_channel: channel.map(|ei| channel_name(g, &edges[ei])),
        });
    }

    let mut rejected: BTreeMap<String, u64> = BTreeMap::new();
    for r in &rejections {
        *rejected.entry(r.reason.clone()).or_insert(0) += 1;
    }
    let stats = FusionStats {
        chains_found: (regions.len() + rejections.len()) as u64,
        fused: regions.len() as u64,
        rejected,
    };
    FusionPlan {
        schema: FUSION_PLAN_SCHEMA.to_string(),
        file: file.to_string(),
        regions,
        rejections,
        stats,
    }
}

// ---------------------------------------------------------------------
// Plan re-verification (the keystone's contract).
// ---------------------------------------------------------------------

fn node_by_name(g: &Mdag, name: &str) -> Option<usize> {
    g.node_ids()
        .find(|&id| g.node_name(id) == name)
        .map(|id| id.0)
}

fn edge_by_name(g: &Mdag, name: &str) -> Option<EdgeInfo> {
    g.edges().find(|e| channel_name(g, e) == name)
}

/// Re-establish every obligation of every region against the graph.
/// Returns one message per violated (or unknown) obligation; an empty
/// vector means the plan is trustworthy.
pub fn check_obligations(
    plan: &FusionPlan,
    g: &Mdag,
    sems: &[ModuleSem],
    recovery_armed: bool,
) -> Vec<String> {
    let mut errs = Vec::new();
    let n = g.node_count();
    let edges: Vec<EdgeInfo> = g.edges().collect();
    let fg = FlowGraph::from_mdag(g);
    for region in &plan.regions {
        let mut in_region = vec![false; n];
        let mut members = Vec::new();
        for m in &region.modules {
            match node_by_name(g, m) {
                Some(i) => {
                    in_region[i] = true;
                    members.push(i);
                }
                None => {
                    errs.push(format!("{}: module `{m}` not in graph", region.name));
                }
            }
        }
        let relays: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&i| sems[i].is_relay())
            .collect();
        for ob in &region.obligations {
            let fail = |errs: &mut Vec<String>, msg: String| {
                errs.push(format!("{}: obligation `{}`: {msg}", region.name, ob.kind));
            };
            match ob.kind.as_str() {
                "uniform-rate" => {
                    for e in edges
                        .iter()
                        .filter(|e| relays.contains(&e.from.0) || relays.contains(&e.to.0))
                    {
                        if e.produced != e.consumed || e.produced != region.elements {
                            fail(
                                &mut errs,
                                format!(
                                    "channel `{}` carries {}/{} elements, expected {}",
                                    channel_name(g, e),
                                    e.produced,
                                    e.consumed,
                                    region.elements
                                ),
                            );
                        }
                    }
                }
                "spsc" => {
                    for &i in &relays {
                        let fanout = edges
                            .iter()
                            .filter(|e| {
                                e.from.0 == i
                                    && !(sems[e.to.0] == ModuleSem::Write && in_region[e.to.0])
                            })
                            .count();
                        if fanout > 1 {
                            fail(
                                &mut errs,
                                format!(
                                    "`{}` fans out to {fanout} computational consumers",
                                    g.node_name(super::NodeId(i))
                                ),
                            );
                        }
                    }
                }
                "no-burst" => {
                    for e in edges
                        .iter()
                        .filter(|e| relays.contains(&e.from.0) || relays.contains(&e.to.0))
                    {
                        if e.burst_before_consume > 0 {
                            fail(
                                &mut errs,
                                format!("channel `{}` bursts", channel_name(g, e)),
                            );
                        }
                    }
                }
                "convex" => {
                    let seeded: Vec<bool> = (0..n)
                        .map(|i| !in_region[i] && fg.preds(i).iter().any(|&p| in_region[p]))
                        .collect();
                    let sol = solve(
                        &fg,
                        &ExternalReach {
                            in_region: &in_region,
                            seeded: &seeded,
                        },
                    );
                    if let Some(v) = (0..n).find(|&i| in_region[i] && sol.facts_in[i]) {
                        fail(
                            &mut errs,
                            format!(
                                "external path re-enters at `{}`",
                                g.node_name(super::NodeId(v))
                            ),
                        );
                    }
                }
                "elementwise" => {
                    for &i in &members {
                        if !sems[i].is_relay()
                            && !matches!(sems[i], ModuleSem::Read | ModuleSem::Write)
                        {
                            fail(
                                &mut errs,
                                format!(
                                    "`{}` is not a stateless relay",
                                    g.node_name(super::NodeId(i))
                                ),
                            );
                        }
                    }
                }
                "no-reassociation" => {
                    for &i in &members {
                        if matches!(sems[i], ModuleSem::Reduce { .. }) {
                            fail(
                                &mut errs,
                                format!("`{}` reduces", g.node_name(super::NodeId(i))),
                            );
                        }
                    }
                }
                "no-recovery-hooks" => {
                    if recovery_armed {
                        fail(&mut errs, "a recovery guard is armed".to_string());
                    }
                }
                "boundary-depths-preserved" => {
                    for bc in region.inputs.iter().chain(region.output.as_ref()) {
                        match edge_by_name(g, &bc.channel) {
                            Some(e) if e.channel_depth == bc.depth => {}
                            Some(e) => fail(
                                &mut errs,
                                format!(
                                    "boundary `{}` has depth {}, plan says {}",
                                    bc.channel, e.channel_depth, bc.depth
                                ),
                            ),
                            None => {
                                fail(&mut errs, format!("boundary `{}` not in graph", bc.channel))
                            }
                        }
                    }
                }
                other => fail(&mut errs, format!("unknown obligation kind `{other}`")),
            }
        }
    }
    errs
}

/// Check every rejection's witness against the graph: the named
/// modules and channels must exist. Returns one message per dangling
/// witness.
pub fn verify_witnesses(plan: &FusionPlan, g: &Mdag) -> Vec<String> {
    let mut errs = Vec::new();
    for (ri, rej) in plan.rejections.iter().enumerate() {
        for m in rej.modules.iter().chain(rej.witness_module.as_ref()) {
            if node_by_name(g, m).is_none() {
                errs.push(format!(
                    "rejection #{ri} ({}): module `{m}` not in graph",
                    rej.reason
                ));
            }
        }
        if let Some(ch) = &rej.witness_channel {
            if edge_by_name(g, ch).is_none() {
                errs.push(format!(
                    "rejection #{ri} ({}): channel `{ch}` not in graph",
                    rej.reason
                ));
            }
        }
        if rej.witness_module.is_none() && rej.witness_channel.is_none() {
            errs.push(format!("rejection #{ri} ({}): no witness", rej.reason));
        }
    }
    errs
}

// ---------------------------------------------------------------------
// Straight-line evaluation of a fused region.
// ---------------------------------------------------------------------

/// The single floating-point semantics both execution styles share.
/// The threaded value harness applies this per element per module; the
/// fused evaluator applies it per element per step. One function, one
/// operation order — bit-identity between the two is by construction,
/// which is exactly why fusing a relay chain is legal and fusing a
/// W-way reduction (whose order *does* change) is not.
pub fn apply_elementwise(sem: &ModuleSem, ins: &[f32]) -> Option<f32> {
    apply_elementwise_t::<f32>(sem, ins)
}

/// Generic form of [`apply_elementwise`]: the exact operations the
/// production routine modules perform per element — `scal` multiplies
/// (`α·x`), `axpy` uses a fused multiply-add (`α.mul_add(x, y)`), and
/// `copy` forwards. Both the fused backend and the threaded harness
/// route through this one function.
pub fn apply_elementwise_t<T: Scalar>(sem: &ModuleSem, ins: &[T]) -> Option<T> {
    match (sem, ins) {
        (ModuleSem::Copy, [x, ..]) => Some(*x),
        (ModuleSem::Scal { alpha }, [x, ..]) => Some(T::from_f64(alpha.unwrap_or(1.0)) * *x),
        (ModuleSem::Axpy { alpha }, [x, y, ..]) => {
            Some(T::from_f64(alpha.unwrap_or(1.0)).mul_add(*x, *y))
        }
        _ => None,
    }
}

/// Where a step reads a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// An earlier step's result.
    Slot(usize),
    /// An input stream (index into [`FusedEvaluator::inputs`]).
    Input(usize),
}

/// One fused relay application.
#[derive(Debug, Clone)]
pub struct FusedStep {
    /// Result slot.
    pub slot: usize,
    /// Relay semantics.
    pub sem: ModuleSem,
    /// Operand sources, in the module's input-channel order.
    pub srcs: Vec<Src>,
}

/// One absorbed write sink.
#[derive(Debug, Clone)]
pub struct FusedSink {
    /// Sink module name (keys the output map).
    pub module: String,
    /// Value the sink drains.
    pub src: Src,
}

/// The straight-line per-element program a fused region compiles to.
#[derive(Debug, Clone)]
pub struct FusedEvaluator {
    /// Input stream keys: absorbed read module names, then boundary
    /// channel names.
    pub inputs: Vec<String>,
    /// Relay applications in topological order.
    pub steps: Vec<FusedStep>,
    /// Absorbed write sinks.
    pub sinks: Vec<FusedSink>,
    /// Value forwarded on the region's output channel, if any.
    pub output: Option<Src>,
    /// Elements to process.
    pub elements: u64,
}

/// Outputs of one fused run.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRun {
    /// Values drained by each absorbed write, keyed by module name.
    pub sinks: BTreeMap<String, Vec<f32>>,
    /// Values forwarded on the region output channel.
    pub output: Vec<f32>,
}

/// Compile a [`FusedRegion`] against its graph into a straight-line
/// evaluator. `sems` must carry concrete coefficients for the region's
/// relays.
pub fn build_evaluator(
    g: &Mdag,
    sems: &[ModuleSem],
    region: &FusedRegion,
) -> Result<FusedEvaluator, String> {
    let edges: Vec<EdgeInfo> = g.edges().collect();
    let n = g.node_count();
    let mut in_region = vec![false; n];
    let mut nodes = Vec::new();
    for m in &region.modules {
        let i = node_by_name(g, m).ok_or_else(|| format!("module `{m}` not in graph"))?;
        in_region[i] = true;
        nodes.push(i);
    }

    let mut inputs: Vec<String> = nodes
        .iter()
        .filter(|&&i| sems[i] == ModuleSem::Read)
        .map(|&i| g.node_name(super::NodeId(i)).to_string())
        .collect();
    inputs.extend(region.inputs.iter().map(|bc| bc.channel.clone()));
    let input_index = |key: &str| -> Option<usize> { inputs.iter().position(|k| k == key) };

    let mut slot_of: Vec<Option<usize>> = vec![None; n];
    let mut steps = Vec::new();
    for &i in &nodes {
        if !sems[i].is_relay() {
            continue;
        }
        let mut srcs = Vec::new();
        for e in edges.iter().filter(|e| e.to.0 == i) {
            let f = e.from.0;
            let src = if in_region[f] && sems[f].is_relay() {
                Src::Slot(
                    slot_of[f]
                        .ok_or_else(|| "region modules out of topological order".to_string())?,
                )
            } else if in_region[f] && sems[f] == ModuleSem::Read {
                Src::Input(
                    input_index(g.node_name(e.from))
                        .ok_or_else(|| "absorbed read missing from inputs".to_string())?,
                )
            } else {
                let name = channel_name(g, e);
                Src::Input(
                    input_index(&name)
                        .ok_or_else(|| format!("boundary channel `{name}` missing from plan"))?,
                )
            };
            srcs.push(src);
        }
        let slot = steps.len();
        slot_of[i] = Some(slot);
        steps.push(FusedStep {
            slot,
            sem: sems[i].clone(),
            srcs,
        });
    }

    let mut sinks = Vec::new();
    for &w in nodes.iter().filter(|&&i| sems[i] == ModuleSem::Write) {
        let feeder = edges
            .iter()
            .find(|e| e.to.0 == w)
            .ok_or_else(|| "absorbed write has no feeder".to_string())?;
        let slot = slot_of[feeder.from.0]
            .ok_or_else(|| "absorbed write fed from outside the region".to_string())?;
        sinks.push(FusedSink {
            module: g.node_name(super::NodeId(w)).to_string(),
            src: Src::Slot(slot),
        });
    }

    let output = match &region.output {
        None => None,
        Some(bc) => {
            let e = edge_by_name(g, &bc.channel)
                .ok_or_else(|| format!("output channel `{}` not in graph", bc.channel))?;
            Some(Src::Slot(slot_of[e.from.0].ok_or_else(|| {
                "output channel fed from outside the region".to_string()
            })?))
        }
    };

    Ok(FusedEvaluator {
        inputs,
        steps,
        sinks,
        output,
        elements: region.elements,
    })
}

impl FusedEvaluator {
    /// Execute the straight-line loop on named input streams.
    pub fn run(&self, streams: &BTreeMap<String, Vec<f32>>) -> Result<FusedRun, String> {
        let mut ins: Vec<&[f32]> = Vec::with_capacity(self.inputs.len());
        for key in &self.inputs {
            let s = streams
                .get(key)
                .ok_or_else(|| format!("missing input stream `{key}`"))?;
            if (s.len() as u64) < self.elements {
                return Err(format!(
                    "input `{key}` has {} elements, region needs {}",
                    s.len(),
                    self.elements
                ));
            }
            ins.push(s);
        }
        let mut sinks: BTreeMap<String, Vec<f32>> = self
            .sinks
            .iter()
            .map(|s| (s.module.clone(), Vec::with_capacity(self.elements as usize)))
            .collect();
        let mut output = Vec::new();
        let mut slots = vec![0.0f32; self.steps.len()];
        // `t` indexes every input stream at once, not one iterable.
        #[allow(clippy::needless_range_loop)]
        for t in 0..self.elements as usize {
            let read = |slots: &[f32], src: Src| -> f32 {
                match src {
                    Src::Slot(i) => slots[i],
                    Src::Input(i) => ins[i][t],
                }
            };
            for step in &self.steps {
                let vals: Vec<f32> = step.srcs.iter().map(|&s| read(&slots, s)).collect();
                slots[step.slot] = apply_elementwise(&step.sem, &vals)
                    .ok_or_else(|| format!("slot {}: non-relay semantics", step.slot))?;
            }
            for sink in &self.sinks {
                let v = read(&slots, sink.src);
                if let Some(buf) = sinks.get_mut(&sink.module) {
                    buf.push(v);
                }
            }
            if let Some(src) = self.output {
                output.push(read(&slots, src));
            }
        }
        Ok(FusedRun { sinks, output })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// read_x, read_y → scal → axpy → write_z, with a tee from scal to
    /// write_t: the canonical two-relay fusable chain.
    fn chain_graph() -> (Mdag, Vec<ModuleSem>) {
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let ry = g.add_interface("read_y");
        let scal = g.add_compute("scal#0");
        let axpy = g.add_compute("axpy#1");
        let wt = g.add_interface("write_t");
        let wz = g.add_interface("write_z");
        g.add_edge(rx, scal, 64, 64, 16);
        g.add_edge(scal, axpy, 64, 64, 16);
        g.add_edge(ry, axpy, 64, 64, 16);
        g.add_edge(scal, wt, 64, 64, 16);
        g.add_edge(axpy, wz, 64, 64, 16);
        let mut sems = infer_sems(&g, 1);
        sems[scal.0] = ModuleSem::Scal { alpha: Some(3.0) };
        sems[axpy.0] = ModuleSem::Axpy { alpha: Some(-2.0) };
        (g, sems)
    }

    #[test]
    fn relay_chain_fuses_with_absorbed_interfaces() {
        let (g, sems) = chain_graph();
        let plan = analyze_fusion(&g, &sems, "chain", false);
        assert_eq!(plan.stats.fused, 1, "{}", plan.to_json());
        let region = &plan.regions[0];
        assert_eq!(region.elements, 64);
        // Both reads, both relays and both writes are absorbed.
        assert_eq!(region.modules.len(), 6);
        assert!(region.inputs.is_empty(), "all producers absorbed");
        assert!(region.output.is_none(), "tail drains into write_z");
        assert_eq!(region.obligations.len(), 8);
        assert!(check_obligations(&plan, &g, &sems, false).is_empty());
        assert!(verify_witnesses(&plan, &g).is_empty());
    }

    #[test]
    fn evaluator_matches_hand_computation() {
        let (g, sems) = chain_graph();
        let plan = analyze_fusion(&g, &sems, "chain", false);
        let eval = build_evaluator(&g, &sems, &plan.regions[0]).unwrap();
        let mut streams = BTreeMap::new();
        streams.insert("read_x".to_string(), vec![1.0f32; 64]);
        streams.insert("read_y".to_string(), vec![0.5f32; 64]);
        let run = eval.run(&streams).unwrap();
        // scal: 3·1 = 3; axpy: −2·3 + 0.5 = −5.5.
        assert_eq!(run.sinks["write_t"][0], 3.0);
        assert_eq!(run.sinks["write_z"][0], -5.5);
        assert!(run.output.is_empty());
    }

    #[test]
    fn fanout_to_compute_blocks_the_relay() {
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let scal = g.add_compute("scal#0");
        let c1 = g.add_compute("copy#1");
        let c2 = g.add_compute("copy#2");
        let w1 = g.add_interface("write_a");
        let w2 = g.add_interface("write_b");
        g.add_edge(rx, scal, 8, 8, 4);
        g.add_edge(scal, c1, 8, 8, 4);
        g.add_edge(scal, c2, 8, 8, 4);
        g.add_edge(c1, w1, 8, 8, 4);
        g.add_edge(c2, w2, 8, 8, 4);
        let sems = infer_sems(&g, 1);
        let plan = analyze_fusion(&g, &sems, "fanout", false);
        assert_eq!(plan.stats.fused, 0);
        assert!(plan
            .rejections
            .iter()
            .any(|r| r.reason == "fanout" && r.witness_module.as_deref() == Some("scal#0")));
        assert!(verify_witnesses(&plan, &g).is_empty());
    }

    #[test]
    fn wide_reduction_is_rejected_for_reassociation() {
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let ry = g.add_interface("read_y");
        let dot = g.add_compute("dot#0");
        let w = g.add_interface("write_d");
        g.add_edge(rx, dot, 64, 64, 16);
        g.add_edge(ry, dot, 64, 64, 16);
        g.add_edge(dot, w, 1, 1, 1);
        let sems = infer_sems(&g, 16);
        let plan = analyze_fusion(&g, &sems, "dot", false);
        assert!(plan.rejections.iter().any(|r| r.reason == "reassociation"));
        // At W = 1 the reduction no longer reassociates but still
        // changes the rate (N in, 1 out).
        let sems1 = infer_sems(&g, 1);
        let plan1 = analyze_fusion(&g, &sems1, "dot", false);
        assert!(plan1.rejections.iter().any(|r| r.reason == "rate-change"));
    }

    #[test]
    fn bypass_path_rejects_the_region_as_feedback() {
        // scal → copy directly and through an opaque stage: fusing
        // {scal, copy} would deadlock the bypass.
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let scal = g.add_compute("scal#0");
        let mid = g.add_compute("mystery");
        let copy = g.add_compute("copy#1");
        let w = g.add_interface("write_y");
        g.add_edge(rx, scal, 8, 8, 4);
        g.add_edge(scal, copy, 8, 8, 4);
        g.add_edge(scal, mid, 8, 8, 4);
        g.add_edge(mid, copy, 8, 8, 4);
        g.add_edge(copy, w, 8, 8, 4);
        let sems = infer_sems(&g, 1);
        let plan = analyze_fusion(&g, &sems, "bypass", false);
        // scal fans out to two computes, so the chain never forms; the
        // copy has two inputs (arity mismatch for a 1-in relay).
        assert_eq!(plan.stats.fused, 0);
        assert!(verify_witnesses(&plan, &g).is_empty());
    }

    #[test]
    fn recovery_guards_reject_otherwise_fusable_regions() {
        let (g, sems) = chain_graph();
        let plan = analyze_fusion(&g, &sems, "chain", true);
        assert_eq!(plan.stats.fused, 0);
        assert!(plan
            .rejections
            .iter()
            .any(|r| r.reason == "recovery-guards"));
        assert!(verify_witnesses(&plan, &g).is_empty());
    }

    #[test]
    fn plan_round_trips_byte_stably() {
        let (g, sems) = chain_graph();
        let plan = analyze_fusion(&g, &sems, "chain", false);
        let json = plan.to_json();
        let back = FusionPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), json, "round trip must be byte-stable");
    }

    #[test]
    fn corrupted_plans_fail_reverification() {
        let (g, sems) = chain_graph();
        let mut plan = analyze_fusion(&g, &sems, "chain", false);
        plan.regions[0].elements += 1;
        assert!(!check_obligations(&plan, &g, &sems, false).is_empty());
        let mut plan2 = analyze_fusion(&g, &sems, "chain", false);
        plan2.rejections.push(FusionRejection {
            modules: vec!["ghost".to_string()],
            reason: "stateful".to_string(),
            witness_module: Some("ghost".to_string()),
            witness_channel: None,
        });
        assert!(!verify_witnesses(&plan2, &g).is_empty());
    }

    #[test]
    fn singleton_relay_is_recorded_not_fused() {
        let mut g = Mdag::new();
        let rx = g.add_interface("read_x");
        let scal = g.add_compute("scal");
        let w = g.add_interface("write_y");
        g.add_edge(rx, scal, 8, 8, 4);
        g.add_edge(scal, w, 8, 8, 4);
        let sems = infer_sems(&g, 1);
        let plan = analyze_fusion(&g, &sems, "single", false);
        assert_eq!(plan.stats.fused, 0);
        assert!(plan.rejections.iter().any(|r| r.reason == "singleton"));
        assert_eq!(plan.stats.chains_found, 1);
    }

    #[test]
    fn sems_for_component_reads_coefficients_from_ops() {
        let mut g = Mdag::new();
        g.add_compute("scal#1");
        let ops = vec![
            Op::Copy {
                x: "a".into(),
                out: "b".into(),
            },
            Op::Scal {
                alpha: 2.5,
                x: "b".into(),
                out: "c".into(),
            },
        ];
        let sems = sems_for_component(&g, &ops, 16);
        assert_eq!(sems[0], ModuleSem::Scal { alpha: Some(2.5) });
    }
}
