//! Static rate analysis of streaming compositions.
//!
//! This is the engine behind `fblas-lint`'s deadlock-freedom verdicts,
//! generalizing [`Mdag::validate`]'s multitree heuristic to arbitrary
//! graphs. The model is an SDF-AP-style abstraction (PAPERS.md:
//! *High-Level Synthesis using SDF-AP*): each module is a sequential
//! *actor* — a fixed program of blocking [`Step::Push`]/[`Step::Pop`]
//! operations on bounded channels. Because actors are sequential
//! programs over blocking SPSC FIFOs, the composition is a Kahn process
//! network: whether it runs to completion, and the exact channel
//! occupancies along the way, are independent of scheduling order. One
//! deterministic abstract execution therefore *decides* termination —
//! the property the simulator otherwise discovers by stalling at
//! runtime — and [`RateGraph::min_depth`] makes the verdict
//! constructive by computing the exact FIFO depth at which a deadlock
//! disappears.
//!
//! Two front ends feed the engine:
//!
//! * [`RateGraph::from_mdag`] converts an [`Mdag`] using the paper's
//!   Sec. V edge contract — per-edge produced/consumed counts plus the
//!   `burst_before_consume` witness. A bursty edge gets a capacity-1
//!   *trigger* channel: the consumer may not drain the edge until the
//!   producer has emitted the burst, which is exactly the paper's ATAX
//!   condition (`depth ≥ N·T_N`) and extends it to cascaded shapes the
//!   multitree check cannot see. Fidelity at this level is bounded by
//!   the burst annotations, like `validate()` — but unlike it, the
//!   scheduler propagates backpressure through diamonds and chains.
//! * The lint differential harness builds actor programs directly, so
//!   its push/pop patterns are element-exact and the abstract verdict
//!   can be compared 1:1 against an `hlssim` run of the same graph.

use super::mdag::Mdag;

/// Abstract-execution budget: total token advances before the analyzer
/// gives up with [`Outcome::Budget`] (guards hostile or absurd inputs;
/// every planner-sized graph fits comfortably).
pub const MAX_ADVANCES: u64 = 200_000_000;

/// Rounds the MDAG front end weaves a node's per-edge traffic into.
/// Totals ≤ `WEAVE_ROUNDS` are modeled element-exact; larger totals
/// move in `ceil(total / WEAVE_ROUNDS)` chunks.
pub const WEAVE_ROUNDS: u64 = 64;

/// One blocking channel operation of an actor program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Push `count` elements into `channel` (blocks while full).
    Push {
        /// Channel index.
        channel: usize,
        /// Elements to push.
        count: u64,
    },
    /// Pop `count` elements from `channel` (blocks while empty).
    Pop {
        /// Channel index.
        channel: usize,
        /// Elements to pop.
        count: u64,
    },
}

/// Which side of a channel an operation is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Producer side (push).
    Push,
    /// Consumer side (pop).
    Pop,
}

/// A bounded FIFO of the abstract graph.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Display name (for diagnostics).
    pub name: String,
    /// FIFO capacity in elements. Capacity 0 never passes a token.
    pub capacity: u64,
    /// Known-good depth to try first when repairing (e.g. the MDAG
    /// `burst_before_consume` witness), before binary search.
    pub depth_hint: Option<u64>,
}

/// A sequential actor: a fixed program of blocking channel operations.
#[derive(Debug, Clone)]
pub struct ActorSpec {
    /// Display name (for diagnostics).
    pub name: String,
    /// The program, executed in order.
    pub steps: Vec<Step>,
}

/// An actor stuck on a channel operation when the graph quiesced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedOp {
    /// Actor index.
    pub actor: usize,
    /// Channel index.
    pub channel: usize,
    /// Operation direction.
    pub dir: PortDir,
}

/// Verdict of one abstract execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every actor ran its program to the end.
    Completed {
        /// Peak occupancy observed per channel.
        max_occupancy: Vec<u64>,
    },
    /// No actor can make progress but some are unfinished — the
    /// composition stalls forever (the simulator's `SimError::Stall`).
    Deadlock {
        /// The blocked operations, one per unfinished actor.
        blocked: Vec<BlockedOp>,
    },
    /// An actor touched a channel whose opposite endpoint already
    /// finished: a pop from an empty channel with no live producer, or
    /// a push toward a finished consumer (the simulator's
    /// `SimError::Disconnected`).
    Disconnected {
        /// Actor that hit the dead endpoint.
        actor: usize,
        /// Channel involved.
        channel: usize,
        /// Direction of the failing operation.
        dir: PortDir,
    },
    /// [`MAX_ADVANCES`] exceeded before quiescence — no verdict.
    Budget,
}

impl Outcome {
    /// Whether this outcome is [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

/// A channel whose pushed and popped totals disagree — the paper's
/// Sec. V condition 1 (produced ≠ consumed) at the actor level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Imbalance {
    /// Channel index.
    pub channel: usize,
    /// Total elements pushed by all actors.
    pub pushed: u64,
    /// Total elements popped by all actors.
    pub popped: u64,
}

/// The abstract composition: channels plus actor programs.
#[derive(Debug, Clone, Default)]
pub struct RateGraph {
    channels: Vec<ChannelSpec>,
    actors: Vec<ActorSpec>,
}

impl RateGraph {
    /// Empty graph.
    pub fn new() -> Self {
        RateGraph::default()
    }

    /// Add a channel; returns its index.
    pub fn add_channel(&mut self, name: impl Into<String>, capacity: u64) -> usize {
        self.channels.push(ChannelSpec {
            name: name.into(),
            capacity,
            depth_hint: None,
        });
        self.channels.len() - 1
    }

    /// Add a channel carrying a repair hint; returns its index.
    pub fn add_channel_hinted(
        &mut self,
        name: impl Into<String>,
        capacity: u64,
        hint: u64,
    ) -> usize {
        let id = self.add_channel(name, capacity);
        self.channels[id].depth_hint = Some(hint);
        id
    }

    /// Add an actor program; returns its index. Steps must reference
    /// existing channels.
    pub fn add_actor(&mut self, name: impl Into<String>, steps: Vec<Step>) -> usize {
        for s in &steps {
            let (Step::Push { channel, .. } | Step::Pop { channel, .. }) = s;
            assert!(*channel < self.channels.len(), "channel out of range");
        }
        self.actors.push(ActorSpec {
            name: name.into(),
            steps,
        });
        self.actors.len() - 1
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Channel display name.
    pub fn channel_name(&self, ch: usize) -> &str {
        &self.channels[ch].name
    }

    /// Channel capacity.
    pub fn capacity(&self, ch: usize) -> u64 {
        self.channels[ch].capacity
    }

    /// Replace a channel's capacity.
    pub fn set_capacity(&mut self, ch: usize, capacity: u64) {
        self.channels[ch].capacity = capacity;
    }

    /// Actor display name.
    pub fn actor_name(&self, a: usize) -> &str {
        &self.actors[a].name
    }

    /// Actor program (for harnesses that execute the same graph on a
    /// real simulator).
    pub fn actor_steps(&self, a: usize) -> &[Step] {
        &self.actors[a].steps
    }

    /// Per-channel (pushed, popped) totals across all actor programs.
    pub fn totals(&self) -> Vec<(u64, u64)> {
        let mut t = vec![(0u64, 0u64); self.channels.len()];
        for a in &self.actors {
            for s in &a.steps {
                match *s {
                    Step::Push { channel, count } => t[channel].0 += count,
                    Step::Pop { channel, count } => t[channel].1 += count,
                }
            }
        }
        t
    }

    /// Channels whose pushed/popped totals disagree (rate imbalance —
    /// such a graph cannot complete cleanly regardless of depths).
    pub fn imbalances(&self) -> Vec<Imbalance> {
        self.totals()
            .iter()
            .enumerate()
            .filter(|(_, (pu, po))| pu != po)
            .map(|(channel, &(pushed, popped))| Imbalance {
                channel,
                pushed,
                popped,
            })
            .collect()
    }

    /// Abstract execution with the configured capacities.
    pub fn analyze(&self) -> Outcome {
        let caps: Vec<u64> = self.channels.iter().map(|c| c.capacity).collect();
        self.analyze_with(&caps)
    }

    /// Abstract execution with capacity overrides (`caps[i]` replaces
    /// channel `i`'s configured capacity).
    pub fn analyze_with(&self, caps: &[u64]) -> Outcome {
        self.analyze_with_budget(caps, MAX_ADVANCES)
    }

    /// Abstract execution with capacity overrides and an explicit
    /// advance budget (see [`MAX_ADVANCES`]).
    ///
    /// Event-driven: each actor runs until it blocks; a blocked pusher
    /// is woken by the channel's next pop and vice versa, so the cost is
    /// proportional to tokens moved, not polling rounds.
    pub fn analyze_with_budget(&self, caps: &[u64], budget: u64) -> Outcome {
        assert_eq!(caps.len(), self.channels.len(), "capacity vector length");
        let nch = self.channels.len();
        let nact = self.actors.len();

        // Endpoint maps: which actors ever push/pop each channel.
        let mut pushers: Vec<Vec<usize>> = vec![Vec::new(); nch];
        let mut poppers: Vec<Vec<usize>> = vec![Vec::new(); nch];
        for (ai, a) in self.actors.iter().enumerate() {
            for s in &a.steps {
                match *s {
                    Step::Push { channel, .. } if !pushers[channel].contains(&ai) => {
                        pushers[channel].push(ai)
                    }
                    Step::Pop { channel, .. } if !poppers[channel].contains(&ai) => {
                        poppers[channel].push(ai)
                    }
                    _ => {}
                }
            }
        }

        let mut occ = vec![0u64; nch];
        let mut max_occ = vec![0u64; nch];
        // Per-actor cursor: (step index, tokens already moved in it).
        let mut cursor = vec![(0usize, 0u64); nact];
        let mut done = vec![false; nact];
        // Blocked registries: at most one waiter per side (SPSC).
        let mut wait_push: Vec<Option<usize>> = vec![None; nch];
        let mut wait_pop: Vec<Option<usize>> = vec![None; nch];

        let mut ready: std::collections::VecDeque<usize> = (0..nact).collect();
        let mut queued = vec![true; nact];
        let mut advances: u64 = 0;

        let all_done =
            |done: &[bool], set: &[usize]| set.iter().all(|&a| done[a]) || set.is_empty();

        while let Some(a) = ready.pop_front() {
            queued[a] = false;
            if done[a] {
                continue;
            }
            let steps = &self.actors[a].steps;
            // Run actor `a` until it blocks or finishes.
            loop {
                let (si, moved) = cursor[a];
                let Some(step) = steps.get(si) else {
                    done[a] = true;
                    // Dropping endpoints can unblock (or disconnect)
                    // the other side: wake every waiter on a channel
                    // this actor touched.
                    for (ch, w) in wait_pop.iter_mut().enumerate() {
                        if pushers[ch].contains(&a) {
                            if let Some(p) = w.take() {
                                if !queued[p] {
                                    queued[p] = true;
                                    ready.push_back(p);
                                }
                            }
                        }
                    }
                    for (ch, w) in wait_push.iter_mut().enumerate() {
                        if poppers[ch].contains(&a) {
                            if let Some(p) = w.take() {
                                if !queued[p] {
                                    queued[p] = true;
                                    ready.push_back(p);
                                }
                            }
                        }
                    }
                    break;
                };
                match *step {
                    Step::Push { channel, count } => {
                        let remaining = count - moved;
                        if remaining == 0 {
                            cursor[a] = (si + 1, 0);
                            continue;
                        }
                        // A finished consumer means the receiver is
                        // dropped: pushing errors even with space free.
                        if all_done(&done, &poppers[channel]) {
                            return Outcome::Disconnected {
                                actor: a,
                                channel,
                                dir: PortDir::Push,
                            };
                        }
                        let space = caps[channel].saturating_sub(occ[channel]);
                        if space == 0 {
                            wait_push[channel] = Some(a);
                            break;
                        }
                        let adv = remaining.min(space);
                        occ[channel] += adv;
                        max_occ[channel] = max_occ[channel].max(occ[channel]);
                        cursor[a] = (si, moved + adv);
                        advances += 1;
                        if advances > budget {
                            return Outcome::Budget;
                        }
                        if let Some(p) = wait_pop[channel].take() {
                            if !queued[p] {
                                queued[p] = true;
                                ready.push_back(p);
                            }
                        }
                    }
                    Step::Pop { channel, count } => {
                        let remaining = count - moved;
                        if remaining == 0 {
                            cursor[a] = (si + 1, 0);
                            continue;
                        }
                        if occ[channel] == 0 {
                            // Queued data survives a dropped sender;
                            // an empty channel with no live producer
                            // does not.
                            if all_done(&done, &pushers[channel]) {
                                return Outcome::Disconnected {
                                    actor: a,
                                    channel,
                                    dir: PortDir::Pop,
                                };
                            }
                            wait_pop[channel] = Some(a);
                            break;
                        }
                        let adv = remaining.min(occ[channel]);
                        occ[channel] -= adv;
                        cursor[a] = (si, moved + adv);
                        advances += 1;
                        if advances > budget {
                            return Outcome::Budget;
                        }
                        if let Some(p) = wait_push[channel].take() {
                            if !queued[p] {
                                queued[p] = true;
                                ready.push_back(p);
                            }
                        }
                    }
                }
            }
        }

        if done.iter().all(|&d| d) {
            return Outcome::Completed {
                max_occupancy: max_occ,
            };
        }
        let mut blocked = Vec::new();
        for (ch, w) in wait_push.iter().enumerate() {
            if let Some(a) = w {
                blocked.push(BlockedOp {
                    actor: *a,
                    channel: ch,
                    dir: PortDir::Push,
                });
            }
        }
        for (ch, w) in wait_pop.iter().enumerate() {
            if let Some(a) = w {
                blocked.push(BlockedOp {
                    actor: *a,
                    channel: ch,
                    dir: PortDir::Pop,
                });
            }
        }
        blocked.sort_by_key(|b| b.actor);
        Outcome::Deadlock { blocked }
    }

    /// Capacities that let every channel absorb its whole traffic —
    /// the "unbounded FIFO" proxy used to test repairability.
    fn unbounded_caps(&self) -> Vec<u64> {
        self.totals()
            .iter()
            .map(|&(pu, po)| pu.max(po).max(1))
            .collect()
    }

    /// Exact minimum capacity of `ch` (all other channels at their
    /// configured capacities) for which the graph completes. `None` if
    /// no capacity works — the deadlock is not fixable by deepening
    /// this channel alone. Completion is monotone in capacity (a deeper
    /// FIFO only ever permits more schedules), so binary search is
    /// sound; the channel's `depth_hint` is probed first to make the
    /// common case (the MDAG burst witness is exact) two runs.
    pub fn min_depth(&self, ch: usize) -> Option<u64> {
        let caps: Vec<u64> = self.channels.iter().map(|c| c.capacity).collect();
        let completes = |d: u64| {
            let mut c = caps.clone();
            c[ch] = d;
            self.analyze_with(&c).is_completed()
        };
        let hi = self.unbounded_caps()[ch];
        if let Some(h) = self.channels[ch].depth_hint {
            if h >= 1 && completes(h) && (h == 1 || !completes(h - 1)) {
                return Some(h);
            }
        }
        if !completes(hi) {
            return None;
        }
        let (mut lo, mut hi) = (1u64, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if completes(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Repair a deadlocking graph by deepening channels: returns the
    /// channels that must grow and their exact minimum depths (each
    /// minimized with the others held at their repaired values), or
    /// `None` if no finite depths help (a structural deadlock —
    /// actors waiting on each other with no full channel to blame).
    /// `Some(vec![])` means the graph already completes as configured.
    ///
    /// Strategy is Parks' demand-driven scheduling: execute with the
    /// configured capacities; on an artificial deadlock (some actor
    /// blocked *pushing* a full channel), deepen the smallest such
    /// channel — to its `depth_hint` when one is ahead, else doubling —
    /// and re-execute. Once the graph completes, each raised channel is
    /// tightened back to its exact minimum (hint probe first, then
    /// binary search), holding the others at their repaired values.
    pub fn repair(&self) -> Option<Vec<(usize, u64)>> {
        let orig: Vec<u64> = self.channels.iter().map(|c| c.capacity).collect();
        let totals = self.totals();
        let mut caps = orig.clone();
        loop {
            match self.analyze_with(&caps) {
                Outcome::Completed { .. } => break,
                Outcome::Deadlock { blocked } => {
                    // Grow the smallest full channel; a deadlock with
                    // no full channel cannot be fixed by depth.
                    let grow = blocked
                        .iter()
                        .filter(|b| b.dir == PortDir::Push && caps[b.channel] < totals[b.channel].0)
                        .map(|b| b.channel)
                        .min_by_key(|&c| caps[c])?;
                    let hint = self.channels[grow].depth_hint.unwrap_or(0);
                    let doubled = caps[grow].saturating_mul(2).max(1);
                    caps[grow] = hint.max(doubled).min(totals[grow].0);
                }
                Outcome::Disconnected { .. } | Outcome::Budget => return None,
            }
        }
        // Tighten each raised channel (monotone per channel ⇒ binary
        // search; the depth hint usually answers in two runs).
        for ch in 0..caps.len() {
            if caps[ch] <= orig[ch] {
                continue;
            }
            let completes = |d: u64, caps: &[u64]| {
                let mut c = caps.to_vec();
                c[ch] = d;
                self.analyze_with(&c).is_completed()
            };
            if let Some(h) = self.channels[ch].depth_hint {
                if h >= orig[ch].max(1)
                    && h <= caps[ch]
                    && completes(h, &caps)
                    && (h <= 1 || !completes(h - 1, &caps))
                {
                    caps[ch] = h;
                    continue;
                }
            }
            let (mut lo, mut hi) = (orig[ch].max(1), caps[ch]);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if completes(mid, &caps) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            caps[ch] = lo;
        }
        Some(
            caps.iter()
                .zip(&orig)
                .enumerate()
                .filter(|(_, (p, o))| p > o)
                .map(|(ch, (&p, _))| (ch, p))
                .collect(),
        )
    }

    /// Build the abstract graph of an [`Mdag`] under the paper's Sec. V
    /// edge contract. Channel `i` corresponds to `EdgeId(i)`; trigger
    /// channels for bursty edges are appended after all edge channels.
    ///
    /// Each node becomes one actor weaving its per-edge traffic in
    /// [`WEAVE_ROUNDS`] rounds (pops before pushes within a round — a
    /// module consumes inputs to produce outputs). A bursty edge's
    /// consumer first pops a capacity-1 trigger that the producer sends
    /// only once its cumulative pushes on that edge reach the burst:
    /// the consumer provably cannot drain the edge before the burst is
    /// buffered, which is the paper's ATAX stall condition.
    pub fn from_mdag(g: &Mdag) -> RateGraph {
        let mut rg = RateGraph::new();
        let edges: Vec<_> = g.edges().collect();
        for e in &edges {
            let name = format!("{}->{}", g.node_name(e.from), g.node_name(e.to));
            let burst = e.burst_before_consume.min(e.produced);
            if burst > 0 {
                rg.add_channel_hinted(name, e.channel_depth, burst);
            } else {
                rg.add_channel(name, e.channel_depth);
            }
        }
        // Trigger channels, one per bursty edge.
        let mut trigger: Vec<Option<usize>> = vec![None; edges.len()];
        for (i, e) in edges.iter().enumerate() {
            if e.burst_before_consume.min(e.produced) > 0 {
                trigger[i] = Some(rg.add_channel(format!("trig:{}", rg.channel_name(i)), 1));
            }
        }
        for node in g.node_ids() {
            let ins: Vec<usize> = (0..edges.len()).filter(|&i| edges[i].to == node).collect();
            let outs: Vec<usize> = (0..edges.len())
                .filter(|&i| edges[i].from == node)
                .collect();
            let mut steps = Vec::new();
            // Wait for every bursty input's trigger before consuming.
            for &i in &ins {
                if let Some(t) = trigger[i] {
                    steps.push(Step::Pop {
                        channel: t,
                        count: 1,
                    });
                }
            }
            let chunk = |total: u64| total.div_ceil(WEAVE_ROUNDS).max(1);
            let mut in_rem: Vec<u64> = ins.iter().map(|&i| edges[i].consumed).collect();
            let mut out_rem: Vec<u64> = outs.iter().map(|&i| edges[i].produced).collect();
            let mut out_sent: Vec<u64> = vec![0; outs.len()];
            while in_rem.iter().any(|&r| r > 0) || out_rem.iter().any(|&r| r > 0) {
                for (k, &i) in ins.iter().enumerate() {
                    if in_rem[k] == 0 {
                        continue;
                    }
                    let take = chunk(edges[i].consumed).min(in_rem[k]);
                    in_rem[k] -= take;
                    steps.push(Step::Pop {
                        channel: i,
                        count: take,
                    });
                }
                for (k, &i) in outs.iter().enumerate() {
                    if out_rem[k] == 0 {
                        continue;
                    }
                    let take = chunk(edges[i].produced).min(out_rem[k]);
                    out_rem[k] -= take;
                    steps.push(Step::Push {
                        channel: i,
                        count: take,
                    });
                    let before = out_sent[k];
                    out_sent[k] += take;
                    if let Some(t) = trigger[i] {
                        let burst = edges[i].burst_before_consume.min(edges[i].produced);
                        if before < burst && out_sent[k] >= burst {
                            steps.push(Step::Push {
                                channel: t,
                                count: 1,
                            });
                        }
                    }
                }
            }
            rg.add_actor(g.node_name(node).to_string(), steps);
        }
        rg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(channel: usize, count: u64) -> Step {
        Step::Push { channel, count }
    }
    fn pop(channel: usize, count: u64) -> Step {
        Step::Pop { channel, count }
    }

    #[test]
    fn straight_pipe_completes() {
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 4);
        g.add_actor("src", vec![push(c, 100)]);
        g.add_actor("snk", vec![pop(c, 100)]);
        match g.analyze() {
            Outcome::Completed { max_occupancy } => assert_eq!(max_occupancy[c], 4),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(g.imbalances().is_empty());
    }

    #[test]
    fn pop_before_push_cycle_deadlocks() {
        let mut g = RateGraph::new();
        let ab = g.add_channel("ab", 2);
        let ba = g.add_channel("ba", 2);
        g.add_actor("a", vec![pop(ba, 1), push(ab, 1)]);
        g.add_actor("b", vec![pop(ab, 1), push(ba, 1)]);
        match g.analyze() {
            Outcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked.iter().all(|b| b.dir == PortDir::Pop));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Structural: no depth fixes a wait cycle with no tokens.
        assert_eq!(g.repair(), None);
    }

    #[test]
    fn imbalance_is_reported_and_ends_in_disconnect() {
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 4);
        g.add_actor("src", vec![push(c, 3)]);
        g.add_actor("snk", vec![pop(c, 5)]);
        assert_eq!(
            g.imbalances(),
            vec![Imbalance {
                channel: c,
                pushed: 3,
                popped: 5
            }]
        );
        match g.analyze() {
            Outcome::Disconnected { channel, dir, .. } => {
                assert_eq!(channel, c);
                assert_eq!(dir, PortDir::Pop);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn push_to_finished_consumer_disconnects() {
        // Capacity 1 forces the producer to observe the sink's exit:
        // after the sink pops its one token and finishes, the next
        // push has nobody left to drain it.
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 1);
        g.add_actor("snk", vec![pop(c, 1)]);
        g.add_actor("src", vec![push(c, 3)]);
        match g.analyze() {
            Outcome::Disconnected { channel, dir, .. } => {
                assert_eq!(channel, c);
                assert_eq!(dir, PortDir::Push);
            }
            other => panic!("unexpected: {other:?}"),
        }

        // With capacity for the surplus the producer finishes before
        // the sink exits — that run completes (matching hlssim, where
        // a sender that drains before the receiver drops never errors)
        // and the leftover tokens show up as an imbalance instead.
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 8);
        g.add_actor("snk", vec![pop(c, 1)]);
        g.add_actor("src", vec![push(c, 3)]);
        assert!(g.analyze().is_completed());
        assert_eq!(g.imbalances().len(), 1);
    }

    /// The deadlock the multitree heuristic exists for: a producer must
    /// emit a burst into one diamond arm before the join can drain it.
    fn burst_diamond(depth: u64, burst: u64, total: u64) -> RateGraph {
        let mut g = RateGraph::new();
        let direct = g.add_channel_hinted("direct", depth, burst);
        let via = g.add_channel("via", 16);
        let relay = g.add_channel("relay", 16);
        let trig = g.add_channel("trig", 1);
        // src feeds the join directly and through a relay; the join
        // refuses to drain the direct arm until the trigger (sent after
        // `burst` elements) arrives.
        let mut src = Vec::new();
        let mut sent = 0;
        while sent < total {
            let take = 4.min(total - sent);
            src.push(push(direct, take));
            let before = sent;
            sent += take;
            if before < burst && sent >= burst {
                src.push(push(trig, 1));
            }
            src.push(push(via, take));
        }
        g.add_actor("src", src);
        let mut rl = Vec::new();
        let mut jn = vec![pop(trig, 1)];
        let mut moved = 0;
        while moved < total {
            let take = 4.min(total - moved);
            rl.push(pop(via, take));
            rl.push(push(relay, take));
            jn.push(pop(direct, take));
            jn.push(pop(relay, take));
            moved += take;
        }
        g.add_actor("relay", rl);
        g.add_actor("join", jn);
        g
    }

    #[test]
    fn burst_diamond_min_depth_is_exact() {
        let g = burst_diamond(8, 40, 96);
        assert!(matches!(g.analyze(), Outcome::Deadlock { .. }));
        assert_eq!(g.min_depth(0), Some(40));
        let repairs = g.repair().expect("repairable by depth");
        assert_eq!(repairs, vec![(0, 40)]);

        let fixed = burst_diamond(40, 40, 96);
        assert!(fixed.analyze().is_completed());
        let almost = burst_diamond(39, 40, 96);
        assert!(matches!(almost.analyze(), Outcome::Deadlock { .. }));
    }

    #[test]
    fn min_depth_without_hint_binary_searches() {
        let mut g = burst_diamond(8, 40, 96);
        g.channels[0].depth_hint = None;
        assert_eq!(g.min_depth(0), Some(40));
    }

    #[test]
    fn capacity_zero_channel_deadlocks() {
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 0);
        g.add_actor("src", vec![push(c, 1)]);
        g.add_actor("snk", vec![pop(c, 1)]);
        assert!(matches!(g.analyze(), Outcome::Deadlock { .. }));
        assert_eq!(g.min_depth(c), Some(1));
    }

    #[test]
    fn budget_guard_trips_on_absurd_traffic() {
        let mut g = RateGraph::new();
        let c = g.add_channel("c", 1);
        g.add_actor("src", vec![push(c, 1 << 40)]);
        g.add_actor("snk", vec![pop(c, 1 << 40)]);
        assert_eq!(g.analyze_with_budget(&[1], 1_000), Outcome::Budget);
    }

    // ---- MDAG front end -------------------------------------------------

    fn atax_mdag(n: u64, m: u64, tn: u64, depth: u64) -> Mdag {
        let mut g = Mdag::new();
        let a = g.add_interface("read_A");
        let x = g.add_interface("read_x");
        let g1 = g.add_compute("gemv");
        let g2 = g.add_compute("gemv_t");
        let y = g.add_interface("write_y");
        g.add_edge(a, g1, n * m, n * m, 16);
        let e_a2 = g.add_edge(a, g2, n * m, n * m, depth);
        g.add_edge(x, g1, m, m, 16);
        g.add_edge(g1, g2, n, n, 16);
        g.add_edge(g2, y, m, m, 16);
        g.set_burst_before_consume(e_a2, n * tn);
        g
    }

    #[test]
    fn atax_mdag_deadlocks_shallow_and_completes_at_burst() {
        let g = RateGraph::from_mdag(&atax_mdag(64, 32, 8, 16));
        assert!(matches!(g.analyze(), Outcome::Deadlock { .. }));
        // EdgeId(1) is the read_A -> gemv_t edge; channel index matches.
        assert_eq!(g.min_depth(1), Some(64 * 8));
        assert_eq!(g.repair(), Some(vec![(1, 64 * 8)]));

        let sized = RateGraph::from_mdag(&atax_mdag(64, 32, 8, 64 * 8));
        assert!(sized.analyze().is_completed());
        let under = RateGraph::from_mdag(&atax_mdag(64, 32, 8, 64 * 8 - 1));
        assert!(matches!(under.analyze(), Outcome::Deadlock { .. }));
    }

    #[test]
    fn multitree_mdags_complete_with_default_depths() {
        // AXPYDOT (paper Fig. 6).
        let mut g = Mdag::new();
        let w = g.add_interface("read_w");
        let v = g.add_interface("read_v");
        let u = g.add_interface("read_u");
        let axpy = g.add_compute("axpy");
        let dot = g.add_compute("dot");
        let beta = g.add_interface("write_beta");
        let n = 1000;
        g.add_edge(w, axpy, n, n, 16);
        g.add_edge(v, axpy, n, n, 16);
        g.add_edge(axpy, dot, n, n, 16);
        g.add_edge(u, dot, n, n, 16);
        g.add_edge(dot, beta, 1, 1, 1);
        assert!(RateGraph::from_mdag(&g).analyze().is_completed());
    }

    #[test]
    fn self_loop_mdag_deadlocks() {
        let mut g = Mdag::new();
        let a = g.add_compute("a");
        g.add_edge(a, a, 8, 8, 4);
        // validate() calls this Cyclic; the scheduler agrees it can
        // never run (the node pops its own output before pushing it).
        assert!(matches!(
            RateGraph::from_mdag(&g).analyze(),
            Outcome::Deadlock { .. }
        ));
    }
}
