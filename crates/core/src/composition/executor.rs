//! Execution of planner-derived compositions.
//!
//! [`execute_plan`] closes the loop on the planner: each
//! [`PlannedComponent`](super::planner::PlannedComponent) is instantiated
//! as a real dataflow simulation — interface readers with the right
//! replay counts and tile orders, the computational modules with the
//! planner's GEMV variants, fan-out stages where an output has several
//! sinks, DRAM-replay loops for the partial-result variants, and deep
//! FIFOs where the plan derived them — and run to completion. Components
//! execute sequentially, communicating through the operand buffers,
//! exactly as the paper's Fig. 9 schedule does.
//!
//! Every operand the program names must be bound to a
//! [`DeviceBuffer`] of matching shape; outputs are written back to their
//! buffers (so later components and the host read them), and DOT results
//! are returned in the outcome's scalar map.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use fblas_audit::{AuditReport, AuditSpec, ModulePrediction};
use fblas_hlssim::{
    channel, FaultHook, GuardReport, ModuleKind, Receiver, Sender, SimError, Simulation,
};
use fblas_trace::{ModuleScope, Tracer};
use parking_lot::Mutex;
use serde::Serialize;

use super::abft;
use super::fused::{self, Backend};
use super::planner::{
    ContractCause, Op, Plan, PlanError, PlannedComponent, PlannerConfig, Program,
};
use crate::helpers::fanout::duplicate_many;
use crate::helpers::{read_matrix, read_vector_replayed, write_matrix, write_vector};
use crate::host::buffer::DeviceBuffer;
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::{Axpy, Dot, Ger, Scal, VecCopy};
use crate::scalar::Scalar;

/// Errors raised while executing a plan.
#[derive(Debug)]
pub enum ExecError {
    /// The plan or program is malformed.
    Plan(PlanError),
    /// A named operand has no bound buffer.
    MissingBuffer(String),
    /// A bound buffer's length disagrees with the declared shape.
    WrongLength {
        /// Operand name.
        operand: String,
        /// Declared element count.
        expected: usize,
        /// Buffer element count.
        got: usize,
    },
    /// The dataflow simulation failed.
    Sim(SimError),
    /// A component's results failed an integrity check — a channel
    /// digest guard or an ABFT checksum identity — after the simulation
    /// itself completed. Raised only by the recovery path, and only
    /// after the retry budget is exhausted; the caller's buffers still
    /// hold the last committed (pre-component) state.
    Corrupt {
        /// Index of the component in the plan's schedule.
        component: usize,
        /// What tripped: the dirty channels or the violated identity.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "plan error: {e}"),
            ExecError::MissingBuffer(n) => write!(f, "no buffer bound for operand `{n}`"),
            ExecError::WrongLength {
                operand,
                expected,
                got,
            } => {
                write!(
                    f,
                    "buffer for `{operand}` holds {got} elements, expected {expected}"
                )
            }
            ExecError::Sim(e) => write!(f, "simulation error: {e}"),
            ExecError::Corrupt { component, detail } => {
                write!(
                    f,
                    "component {component} produced corrupt results: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

/// Result of executing a plan.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome<T> {
    /// DOT results by scalar operand name.
    pub scalars: HashMap<String, T>,
}

/// Execute every component of `plan` sequentially on the dataflow
/// simulator. Vector/matrix operands are read from and written to
/// `buffers`; scalar results are returned.
pub fn execute_plan<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
) -> Result<ExecOutcome<T>, ExecError> {
    execute_plan_traced(program, plan, cfg, buffers, None)
}

/// [`execute_plan`] with an optional tracer attached to every component's
/// simulation: each component gets its own span lane (`component:<index>`)
/// on the executing thread, every module inside it gets a trace lane, and
/// the watchdog samples channel occupancies. Pass `None` for the
/// zero-overhead untraced path.
pub fn execute_plan_traced<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    tracer: Option<&Tracer>,
) -> Result<ExecOutcome<T>, ExecError> {
    execute_plan_with_backend(program, plan, cfg, buffers, tracer, Backend::resolve())
}

/// [`execute_plan`] forcing the fused compiled backend regardless of the
/// `FBLAS_BACKEND` environment knob. Fusion remains *best-effort*:
/// regions whose proof obligations do not re-verify (and everything that
/// is not a legal region) still run threaded.
pub fn execute_plan_fused<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
) -> Result<ExecOutcome<T>, ExecError> {
    execute_plan_with_backend(program, plan, cfg, buffers, None, Backend::Fused)
}

/// [`execute_plan_traced`] forcing the fused backend.
pub fn execute_plan_fused_traced<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    tracer: Option<&Tracer>,
) -> Result<ExecOutcome<T>, ExecError> {
    execute_plan_with_backend(program, plan, cfg, buffers, tracer, Backend::Fused)
}

/// [`execute_plan_traced`] with an explicit backend selection instead of
/// the `FBLAS_BACKEND` environment resolution — the form in-process
/// comparisons (differential tests, benchmarks) use so both backends can
/// run side by side without environment races.
pub fn execute_plan_with_backend<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    tracer: Option<&Tracer>,
    backend: Backend,
) -> Result<ExecOutcome<T>, ExecError> {
    cfg.validate()?;
    check_bindings(program, buffers)?;
    propagate_run_id(tracer);
    if let Some(t) = tracer {
        t.set_backend(backend.as_str());
    }
    let metrics = ExecMetrics::arm();

    let scalars: Arc<Mutex<HashMap<String, T>>> = Arc::new(Mutex::new(HashMap::new()));
    let router = BufRouter::direct(buffers);
    let opts = ComponentOptions::default();
    for (ix, component) in plan.components.iter().enumerate() {
        // One span lane per component on this thread; module lanes are
        // created inside the simulation's worker threads.
        let _component_span = ModuleScope::enter(&format!("component:{ix}"), tracer);
        if let Some(t) = tracer {
            t.metrics().counter_add("exec.components", 1);
        }
        let comp_t0 = metrics.as_ref().map(|_| std::time::Instant::now());
        dispatch_component(
            backend, program, cfg, component, &router, &scalars, tracer, None, &opts,
        )?;
        if let (Some(m), Some(t0)) = (&metrics, comp_t0) {
            m.component_done(t0);
        }
    }
    let scalars = Arc::try_unwrap(scalars)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    Ok(ExecOutcome { scalars })
}

/// [`execute_plan`] with a performance audit of every component: each
/// component runs under its own [`Tracer`], the pipeline costs of the
/// computational modules it instantiates are recorded as they are
/// attached, and after the run the predicted and measured sides are
/// joined into one [`AuditReport`] per component (in schedule order).
///
/// `freq_hz` is the modeled clock the predictions are stated at (use
/// [`crate::perf::estimate_time`]'s achieved frequency for a device-
/// accurate figure) and `tolerance` the busy-share drift beyond which a
/// module is flagged.
pub fn execute_plan_audited<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    freq_hz: f64,
    tolerance: f64,
) -> Result<(ExecOutcome<T>, Vec<AuditReport>), ExecError> {
    execute_plan_audited_with_backend(
        program,
        plan,
        cfg,
        buffers,
        freq_hz,
        tolerance,
        Backend::resolve(),
    )
}

/// [`execute_plan_audited`] forcing the fused backend. A fused region
/// appears in the measured side as a *single* compute lane
/// (`fused:<name>`) — there are no channels inside a region, so there is
/// no per-channel stall ledger to attribute; the predicted side still
/// carries the per-op analytic model, which is backend-invariant.
pub fn execute_plan_fused_audited<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    freq_hz: f64,
    tolerance: f64,
) -> Result<(ExecOutcome<T>, Vec<AuditReport>), ExecError> {
    execute_plan_audited_with_backend(
        program,
        plan,
        cfg,
        buffers,
        freq_hz,
        tolerance,
        Backend::Fused,
    )
}

/// [`execute_plan_audited`] with an explicit backend selection.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_audited_with_backend<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    freq_hz: f64,
    tolerance: f64,
    backend: Backend,
) -> Result<(ExecOutcome<T>, Vec<AuditReport>), ExecError> {
    cfg.validate()?;
    check_bindings(program, buffers)?;

    let scalars: Arc<Mutex<HashMap<String, T>>> = Arc::new(Mutex::new(HashMap::new()));
    let router = BufRouter::direct(buffers);
    let opts = ComponentOptions::default();
    let mut reports = Vec::with_capacity(plan.components.len());
    for component in &plan.components {
        // A fresh tracer per component keeps each audit's lanes (and the
        // busy-share normalization over them) scoped to the modules that
        // actually ran together.
        let tracer = Tracer::new();
        tracer.set_backend(backend.as_str());
        let mut predictions: Vec<ModulePrediction> = Vec::new();
        dispatch_component(
            backend,
            program,
            cfg,
            component,
            &router,
            &scalars,
            Some(&tracer),
            Some(&mut predictions),
            &opts,
        )?;
        let mut spec = AuditSpec::new(freq_hz).with_tolerance(tolerance);
        spec.predictions = merge_predictions(predictions);
        reports.push(fblas_audit::report::audit_tracer(&spec, &tracer));
    }
    let scalars = Arc::try_unwrap(scalars)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    Ok((ExecOutcome { scalars }, reports))
}

/// Retry discipline for [`execute_plan_with_recovery`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per component before giving up (≥ 1). The default is
    /// read from `FBLAS_RETRY_MAX` via [`fblas_hlssim::env::retry_max`].
    pub max_attempts: u32,
    /// Wall-clock deadline per attempt, enforced by the simulator's
    /// watchdog ([`Simulation::set_deadline`]). Catches hung modules
    /// that are live but make no progress — a plain stall check never
    /// fires for those. `None` leaves only stall detection.
    pub deadline: Option<Duration>,
    /// Base delay before a retry; attempt `k` waits `backoff · 2^(k-1)`.
    /// `Duration::ZERO` (the default) retries immediately, which keeps
    /// recovery runs deterministic in time-free reports.
    pub backoff: Duration,
    /// Whether to evaluate the ABFT checksum identities
    /// ([`super::abft`]) on the staged results before committing.
    pub abft: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: fblas_hlssim::env::retry_max(),
            deadline: None,
            backoff: Duration::ZERO,
            abft: true,
        }
    }
}

/// Normalized failure kind of one recovery attempt — the stable
/// vocabulary the serving layer (and any future client) maps to
/// response codes without string matching. Serializes to the same
/// snake-case names `AttemptRecord` has always carried
/// (`"stall"`, `"deadline"`, `"module_panic"`, `"poisoned"`,
/// `"disconnect"`, `"corruption"`, `"plan"`, `"error"`), so seeded
/// recovery reports stay byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryErrorKind {
    /// The watchdog declared the composition deadlocked.
    Stall,
    /// The per-attempt wall-clock deadline expired.
    Deadline,
    /// A module thread panicked.
    ModulePanic,
    /// A peer observed the context poisoned by a dying module.
    Poisoned,
    /// A channel endpoint disconnected mid-stream.
    Disconnect,
    /// A digest guard or ABFT checksum identity failed after the
    /// simulation completed.
    Corruption,
    /// The plan or program was malformed.
    Plan,
    /// Any other execution error (missing/mis-sized buffer bindings).
    Error,
}

impl RecoveryErrorKind {
    /// Every kind, in a stable order (useful for exhaustive client-side
    /// dispatch tables and tests).
    pub const ALL: [RecoveryErrorKind; 8] = [
        RecoveryErrorKind::Stall,
        RecoveryErrorKind::Deadline,
        RecoveryErrorKind::ModulePanic,
        RecoveryErrorKind::Poisoned,
        RecoveryErrorKind::Disconnect,
        RecoveryErrorKind::Corruption,
        RecoveryErrorKind::Plan,
        RecoveryErrorKind::Error,
    ];

    /// Classify an [`ExecError`].
    pub fn of(e: &ExecError) -> RecoveryErrorKind {
        match e {
            ExecError::Sim(SimError::Stall { .. }) => RecoveryErrorKind::Stall,
            ExecError::Sim(SimError::Deadline { .. }) => RecoveryErrorKind::Deadline,
            ExecError::Sim(SimError::Module { .. }) => RecoveryErrorKind::ModulePanic,
            ExecError::Sim(SimError::Poisoned { .. }) => RecoveryErrorKind::Poisoned,
            ExecError::Sim(SimError::Disconnected { .. }) => RecoveryErrorKind::Disconnect,
            ExecError::Corrupt { .. } => RecoveryErrorKind::Corruption,
            ExecError::Plan(_) => RecoveryErrorKind::Plan,
            _ => RecoveryErrorKind::Error,
        }
    }

    /// The stable snake-case name this kind serializes to.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryErrorKind::Stall => "stall",
            RecoveryErrorKind::Deadline => "deadline",
            RecoveryErrorKind::ModulePanic => "module_panic",
            RecoveryErrorKind::Poisoned => "poisoned",
            RecoveryErrorKind::Disconnect => "disconnect",
            RecoveryErrorKind::Corruption => "corruption",
            RecoveryErrorKind::Plan => "plan",
            RecoveryErrorKind::Error => "error",
        }
    }

    /// Parse a stable name back into the kind.
    pub fn parse(s: &str) -> Option<RecoveryErrorKind> {
        RecoveryErrorKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Whether this kind counts against a plan-shape circuit breaker:
    /// integrity and liveness failures indicate the *shape* (or the
    /// faults chasing it) is sick; `plan`/`error` are caller mistakes
    /// that fail deterministically up front and need no breaker.
    pub fn trips_breaker(self) -> bool {
        !matches!(self, RecoveryErrorKind::Plan | RecoveryErrorKind::Error)
    }
}

impl std::fmt::Display for RecoveryErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Manual impls pin the wire names independently of variant spelling.
impl Serialize for RecoveryErrorKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for RecoveryErrorKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::DeError::custom("expected recovery error kind string"))?;
        RecoveryErrorKind::parse(s)
            .ok_or_else(|| serde::DeError::custom(format!("unknown recovery error kind `{s}`")))
    }
}

/// One component attempt in a [`RecoveryReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AttemptRecord {
    /// Component index in the plan's schedule.
    pub component: usize,
    /// 1-based attempt number.
    pub attempt: u32,
    /// `None` on success; otherwise the normalized failure kind. Kinds —
    /// not raw messages — so two runs of the same seeded fault plan
    /// serialize identically.
    pub error: Option<RecoveryErrorKind>,
    /// Whether a channel digest guard was dirty on this attempt.
    pub guard_flagged: bool,
    /// Whether an ABFT checksum identity failed on this attempt.
    pub abft_flagged: bool,
    /// True on the succeeding attempt of a component that failed at
    /// least once.
    pub recovered: bool,
}

/// Structured outcome of a recovery-enabled execution. Contains only
/// deterministic fields (no wall times): with a seeded fault plan, two
/// runs produce byte-identical serializations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryReport {
    /// Components in the schedule.
    pub components: usize,
    /// Every attempt, in execution order.
    pub attempts: Vec<AttemptRecord>,
    /// Components that failed at least once and then succeeded.
    pub recovered: usize,
    /// Total retries across all components.
    pub retries: u64,
    /// Correlation run ID (16 lowercase hex digits) captured from the
    /// live [`fblas_metrics::RunScope`], if any. Under
    /// `RunScope::seeded`, two runs of the same seed carry the same ID,
    /// so seeded recovery reports stay byte-stable.
    pub run_id: Option<String>,
}

/// Terminal failure of [`execute_plan_with_recovery`]: the last error
/// plus the full attempt history up to it.
#[derive(Debug)]
pub struct RecoveryError {
    /// The error that exhausted the retry budget (or failed up front).
    pub error: ExecError,
    /// Attempt history, including the failing attempts.
    pub report: RecoveryReport,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovery exhausted after {} attempt(s): {}",
            self.report.attempts.len(),
            self.error
        )
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Global-metrics handles for one plan execution, resolved once per run
/// when the metrics runtime is armed (`None` when disarmed: the hot
/// path then pays one `Option` branch per component). Dropping the
/// value records the plan's wall latency into `fblas_plan_us`, so the
/// histogram covers failed runs too.
struct ExecMetrics {
    reg: Arc<fblas_metrics::Registry>,
    plan_t0: std::time::Instant,
}

impl ExecMetrics {
    fn arm() -> Option<ExecMetrics> {
        fblas_metrics::registry().map(|reg| ExecMetrics {
            reg,
            plan_t0: std::time::Instant::now(),
        })
    }

    fn component_done(&self, t0: std::time::Instant) {
        self.reg.counter("fblas_exec_components_total", &[]).inc();
        self.reg
            .histogram("fblas_component_us", &[])
            .record(fblas_metrics::elapsed_us(t0));
    }
}

impl Drop for ExecMetrics {
    fn drop(&mut self) {
        self.reg
            .histogram("fblas_plan_us", &[])
            .record(fblas_metrics::elapsed_us(self.plan_t0));
    }
}

/// Stamp the live [`fblas_metrics::RunScope`]'s ID onto the tracer so
/// the Perfetto export carries the same correlation key as the metrics
/// snapshot and the recovery report.
fn propagate_run_id(tracer: Option<&Tracer>) {
    if let (Some(t), Some(id)) = (tracer, fblas_metrics::current_run_id()) {
        t.set_run_id(id.to_string());
    }
}

/// Publish the authoritative flight-recorder bundle when a retry budget
/// is exhausted. Attempt-level captures were suppressed, so this is the
/// only bundle the run emits; it carries the full [`RecoveryReport`]
/// and, for sim-level deaths, the watchdog's wait-for graph.
fn capture_exhaustion_postmortem(
    err: &ExecError,
    report: &RecoveryReport,
    guards: Option<serde::Value>,
) {
    if !fblas_metrics::flight::armed() {
        return;
    }
    let culprit = match err {
        ExecError::Sim(SimError::Poisoned { by }) => by.clone(),
        ExecError::Sim(SimError::Module { module, .. }) => Some(module.clone()),
        ExecError::Sim(SimError::Disconnected { channel }) => Some(channel.clone()),
        ExecError::Corrupt { component, .. } => Some(format!("component:{component}")),
        _ => None,
    };
    let stall = match err {
        ExecError::Sim(SimError::Stall { report })
        | ExecError::Sim(SimError::Deadline { report }) => serde_json::to_value(report).ok(),
        _ => None,
    };
    fblas_hlssim::postmortem::capture(
        fblas_metrics::flight::Trigger {
            kind: RecoveryErrorKind::of(err).as_str().to_string(),
            detail: err.to_string(),
            culprit,
        },
        stall,
        guards,
        serde_json::to_value(report).ok(),
        None,
    );
}

/// [`execute_plan`] with transactional write-back, fault detection, and
/// retry.
///
/// Each component's output buffers are **staged**: the simulation writes
/// into per-attempt scratch copies, and only a fully verified attempt is
/// committed to `buffers` (DOT results are merged the same way). On
/// failure — stall, deadline, module panic, poisoned or disconnected
/// channels, a dirty channel digest guard, or a violated ABFT checksum
/// identity — the attempt's writes are discarded and the component is
/// re-run from the last committed state, up to
/// [`RetryPolicy::max_attempts`] times with exponential backoff.
///
/// `hook` is armed on every attempt's simulation context; a one-shot
/// fault plan (e.g. `fblas-chaos`'s `FaultPlan`) therefore injects on
/// the first attempt and lets the retry run clean — the transient-fault
/// model. Because a fresh scratch is cut per attempt, replay is sound
/// even when a faulted attempt completed the simulation and wrote
/// garbage.
///
/// On success returns the outcome plus a [`RecoveryReport`]; on
/// exhaustion returns [`RecoveryError`] with the error and the attempt
/// history, leaving `buffers` at the last committed state.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_with_recovery<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    policy: &RetryPolicy,
    hook: Option<Arc<dyn FaultHook>>,
    tracer: Option<&Tracer>,
) -> Result<(ExecOutcome<T>, RecoveryReport), Box<RecoveryError>> {
    execute_plan_with_recovery_backend(
        program,
        plan,
        cfg,
        buffers,
        policy,
        hook,
        tracer,
        Backend::resolve(),
    )
}

/// [`execute_plan_with_recovery`] forcing the fused backend. When `hook`
/// is armed the fusion analysis rejects every region (`recovery-guards`
/// obligation), so fault-injected attempts run fully threaded and the
/// resulting [`RecoveryReport`] is identical to the threaded backend's
/// by construction; hook-free runs fuse as usual, with staged write-back
/// unchanged.
pub fn execute_plan_fused_with_recovery<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    policy: &RetryPolicy,
    hook: Option<Arc<dyn FaultHook>>,
    tracer: Option<&Tracer>,
) -> Result<(ExecOutcome<T>, RecoveryReport), Box<RecoveryError>> {
    execute_plan_with_recovery_backend(
        program,
        plan,
        cfg,
        buffers,
        policy,
        hook,
        tracer,
        Backend::Fused,
    )
}

/// [`execute_plan_with_recovery`] with an explicit backend selection.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_with_recovery_backend<T: Scalar>(
    program: &Program,
    plan: &Plan,
    cfg: &PlannerConfig,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    policy: &RetryPolicy,
    hook: Option<Arc<dyn FaultHook>>,
    tracer: Option<&Tracer>,
    backend: Backend,
) -> Result<(ExecOutcome<T>, RecoveryReport), Box<RecoveryError>> {
    let mut report = RecoveryReport {
        components: plan.components.len(),
        run_id: fblas_metrics::current_run_id().map(|id| id.to_string()),
        ..RecoveryReport::default()
    };
    propagate_run_id(tracer);
    if let Some(t) = tracer {
        t.set_backend(backend.as_str());
    }
    if let Err(e) = cfg.validate() {
        return Err(Box::new(RecoveryError {
            error: e.into(),
            report,
        }));
    }
    if let Err(e) = check_bindings(program, buffers) {
        return Err(Box::new(RecoveryError { error: e, report }));
    }

    let metrics = ExecMetrics::arm();
    let mut committed: HashMap<String, T> = HashMap::new();
    let max = policy.max_attempts.max(1);
    for (ix, component) in plan.components.iter().enumerate() {
        let _component_span = ModuleScope::enter(&format!("component:{ix}"), tracer);
        if let Some(t) = tracer {
            t.metrics().counter_add("exec.components", 1);
        }
        let comp_t0 = metrics.as_ref().map(|_| std::time::Instant::now());
        // Operands this component writes; each attempt stages them.
        let mut out_names: Vec<&str> = component
            .ops
            .iter()
            .map(|&oi| program.ops()[oi].output())
            .collect();
        out_names.sort_unstable();
        out_names.dedup();

        let mut recovered_here = false;
        for attempt in 1..=max {
            // Fresh scratch per attempt, cut from the committed state:
            // a faulted attempt that ran to completion left garbage in
            // the *previous* scratch, never in `buffers`.
            let staged: HashMap<String, DeviceBuffer<T>> = out_names
                .iter()
                .filter_map(|&name| {
                    buffers.get(name).map(|real| {
                        (
                            name.to_string(),
                            DeviceBuffer::from_vec(real.name(), real.to_host(), real.bank()),
                        )
                    })
                })
                .collect();
            let attempt_scalars: Arc<Mutex<HashMap<String, T>>> =
                Arc::new(Mutex::new(HashMap::new()));
            // Fused schedules split a component into sequential units
            // that hand values off through the operand buffers, so a
            // later unit must *read* what an earlier unit staged. The
            // overlay map resolves reads staged-first (buffer handles
            // clone shallowly — the overlay aliases the scratch
            // storage); the threaded backend keeps reading committed
            // state only, since its in-component traffic never touches
            // buffers.
            let merged: Option<HashMap<String, DeviceBuffer<T>>> =
                backend.fused_allowed().then(|| {
                    let mut m = buffers.clone();
                    for (k, v) in &staged {
                        m.insert(k.clone(), v.clone());
                    }
                    m
                });
            let router = BufRouter {
                inputs: merged.as_ref().unwrap_or(buffers),
                outputs: Some(&staged),
            };
            let opts = ComponentOptions {
                hook: hook.clone(),
                deadline: policy.deadline,
            };
            // Suppress sim-level postmortem capture for the attempt: a
            // retried failure is not terminal, and on exhaustion the
            // executor publishes the one authoritative bundle (with the
            // recovery history attached) below.
            let result = {
                let _supp = fblas_metrics::flight::suppress_capture();
                dispatch_component(
                    backend,
                    program,
                    cfg,
                    component,
                    &router,
                    &attempt_scalars,
                    tracer,
                    None,
                    &opts,
                )
            };

            let mut attempt_guards: Option<serde::Value> = None;
            let mut guard_flagged = false;
            let mut abft_flagged = false;
            let failure: Option<ExecError> = match result {
                Ok(guards) => {
                    if fblas_metrics::flight::armed() {
                        attempt_guards = serde_json::to_value(&guards).ok();
                    }
                    guard_flagged = guards.iter().any(|g| !g.clean());
                    let abft_detail = if policy.abft {
                        let snapshot = attempt_scalars.lock().clone();
                        abft::verify_component(program, &component.ops, &staged, buffers, &snapshot)
                            .err()
                    } else {
                        None
                    };
                    abft_flagged = abft_detail.is_some();
                    if guard_flagged {
                        let dirty: Vec<String> = guards
                            .iter()
                            .filter(|g| !g.clean())
                            .map(|g| g.channel.clone())
                            .collect();
                        Some(ExecError::Corrupt {
                            component: ix,
                            detail: format!(
                                "channel integrity guard(s) tripped on: {}",
                                dirty.join(", ")
                            ),
                        })
                    } else {
                        abft_detail.map(|detail| ExecError::Corrupt {
                            component: ix,
                            detail,
                        })
                    }
                }
                Err(e) => Some(e),
            };

            if let Some(m) = &metrics {
                m.reg.counter("fblas_exec_attempts_total", &[]).inc();
                if guard_flagged {
                    m.reg.counter("fblas_exec_guard_trips_total", &[]).inc();
                }
                if abft_flagged {
                    m.reg.counter("fblas_exec_abft_failures_total", &[]).inc();
                }
            }

            match failure {
                None => {
                    report.attempts.push(AttemptRecord {
                        component: ix,
                        attempt,
                        error: None,
                        guard_flagged: false,
                        abft_flagged: false,
                        recovered: attempt > 1,
                    });
                    recovered_here = attempt > 1;
                    // Commit: publish the verified scratch to the
                    // caller's buffers, merge the scalar results.
                    for (name, scratch) in &staged {
                        if let Some(real) = buffers.get(name) {
                            real.from_host(&scratch.to_host());
                        }
                    }
                    for (k, v) in attempt_scalars.lock().iter() {
                        committed.insert(k.clone(), *v);
                    }
                    if let (Some(m), Some(t0)) = (&metrics, comp_t0) {
                        m.component_done(t0);
                    }
                    break;
                }
                Some(err) => {
                    let kind = RecoveryErrorKind::of(&err);
                    report.attempts.push(AttemptRecord {
                        component: ix,
                        attempt,
                        error: Some(kind),
                        guard_flagged,
                        abft_flagged,
                        recovered: false,
                    });
                    if let Some(t) = tracer {
                        t.record_sample(
                            &format!("recovery:component:{ix}"),
                            t.now_us(),
                            attempt as f64,
                        );
                        t.metrics().counter_add("recovery.failures", 1);
                    }
                    if attempt == max {
                        capture_exhaustion_postmortem(&err, &report, attempt_guards.take());
                        return Err(Box::new(RecoveryError { error: err, report }));
                    }
                    report.retries += 1;
                    if let Some(t) = tracer {
                        t.metrics().counter_add("recovery.retries", 1);
                    }
                    if let Some(m) = &metrics {
                        m.reg.counter("fblas_exec_retries_total", &[]).inc();
                    }
                    if !policy.backoff.is_zero() {
                        let shift = (attempt - 1).min(16);
                        std::thread::sleep(policy.backoff * (1u32 << shift));
                    }
                }
            }
        }
        if recovered_here {
            report.recovered += 1;
            if let Some(m) = &metrics {
                m.reg.counter("fblas_exec_recovered_total", &[]).inc();
            }
        }
    }
    Ok((ExecOutcome { scalars: committed }, report))
}

/// Shape-check every operand binding up front.
fn check_bindings<T: Scalar>(
    program: &Program,
    buffers: &HashMap<String, DeviceBuffer<T>>,
) -> Result<(), ExecError> {
    for op in program.ops() {
        for name in op_operands(op) {
            if let Ok(l) = program.vec_len(name) {
                check_buffer(buffers, name, l)?;
            } else if let Ok((n, m)) = program.mat_dims(name) {
                check_buffer(buffers, name, n * m)?;
            }
            // Scalars need no buffer.
        }
    }
    Ok(())
}

/// Collapse predictions sharing a module name into one entry — two ops
/// of the same kind in one component run on identically named modules,
/// and their trace lanes aggregate the same way. Latencies and
/// iteration counts add (all modules here are `I = 1`).
fn merge_predictions(preds: Vec<ModulePrediction>) -> Vec<ModulePrediction> {
    let mut out: Vec<ModulePrediction> = Vec::new();
    for p in preds {
        if let Some(q) = out.iter_mut().find(|q| q.module == p.module) {
            q.cost.latency += p.cost.latency;
            q.cost.iterations += p.cost.iterations;
            q.elements += p.elements;
        } else {
            out.push(p);
        }
    }
    out
}

fn op_operands(op: &Op) -> Vec<&str> {
    let mut v: Vec<&str> = match op {
        Op::Copy { x, out } | Op::Scal { x, out, .. } => vec![x, out],
        Op::Axpy { x, y, out, .. } => vec![x, y, out],
        Op::Dot { x, y, .. } => vec![x, y],
        Op::Gemv { a, x, y, out, .. } => {
            let mut v = vec![a.as_str(), x.as_str(), out.as_str()];
            if let Some(y) = y {
                v.push(y);
            }
            v
        }
        Op::Ger { a, x, y, out, .. } => vec![a, x, y, out],
    };
    v.dedup();
    v
}

fn check_buffer<T: Scalar>(
    buffers: &HashMap<String, DeviceBuffer<T>>,
    name: &str,
    expected: usize,
) -> Result<(), ExecError> {
    let buf = buffers
        .get(name)
        .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))?;
    if buf.len() != expected {
        return Err(ExecError::WrongLength {
            operand: name.to_string(),
            expected,
            got: buf.len(),
        });
    }
    Ok(())
}

fn get_buf<'b, T: Scalar>(
    buffers: &'b HashMap<String, DeviceBuffer<T>>,
    name: &str,
) -> Result<&'b DeviceBuffer<T>, ExecError> {
    buffers
        .get(name)
        .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))
}

/// Routes a component's buffer accesses. The direct router reads and
/// writes the caller's buffers, exactly as [`execute_plan`] always has;
/// the recovery path overlays a scratch map so every *write* target
/// resolves to a staged copy while *reads* keep hitting the committed
/// state (in-component producer→consumer traffic flows through
/// channels, never buffers, so reads never need the overlay).
pub(super) struct BufRouter<'a, T> {
    inputs: &'a HashMap<String, DeviceBuffer<T>>,
    outputs: Option<&'a HashMap<String, DeviceBuffer<T>>>,
}

impl<'a, T: Scalar> BufRouter<'a, T> {
    /// Reads and writes both hit `buffers` (non-transactional).
    fn direct(buffers: &'a HashMap<String, DeviceBuffer<T>>) -> Self {
        BufRouter {
            inputs: buffers,
            outputs: None,
        }
    }

    /// Buffer a module streams *from*.
    pub(super) fn input(&self, name: &str) -> Result<&DeviceBuffer<T>, ExecError> {
        get_buf(self.inputs, name)
    }

    /// Buffer a module writes *into* (staged copy when overlaid).
    pub(super) fn output(&self, name: &str) -> Result<&DeviceBuffer<T>, ExecError> {
        if let Some(staged) = self.outputs {
            if let Some(b) = staged.get(name) {
                return Ok(b);
            }
        }
        get_buf(self.inputs, name)
    }
}

/// Per-run extras for a component's simulation.
#[derive(Default)]
pub(super) struct ComponentOptions {
    /// Fault hook armed on the simulation context before the run.
    pub(super) hook: Option<Arc<dyn FaultHook>>,
    /// Watchdog wall-clock deadline for the run.
    pub(super) deadline: Option<Duration>,
}

/// Route one planned component to its backend: the fused dispatcher
/// when the backend allows fusion (it degrades to threaded per
/// component when fusion is not provably safe), the plain threaded
/// simulation otherwise.
#[allow(clippy::too_many_arguments)]
fn dispatch_component<T: Scalar>(
    backend: Backend,
    program: &Program,
    cfg: &PlannerConfig,
    component: &PlannedComponent,
    router: &BufRouter<'_, T>,
    scalars: &Arc<Mutex<HashMap<String, T>>>,
    tracer: Option<&Tracer>,
    predictions: Option<&mut Vec<ModulePrediction>>,
    opts: &ComponentOptions,
) -> Result<Vec<GuardReport>, ExecError> {
    if backend.fused_allowed() {
        fused::run_component_fused(
            program,
            cfg,
            component,
            router,
            scalars,
            tracer,
            predictions,
            opts,
        )
    } else {
        run_component(
            program,
            cfg,
            &component.ops,
            &component.gemv_variants,
            router,
            scalars,
            tracer,
            predictions,
            opts,
        )
    }
}

#[allow(clippy::too_many_arguments)]
pub(super) fn run_component<T: Scalar>(
    program: &Program,
    cfg: &PlannerConfig,
    ops: &[usize],
    variants: &HashMap<usize, GemvVariant>,
    router: &BufRouter<'_, T>,
    scalars: &Arc<Mutex<HashMap<String, T>>>,
    tracer: Option<&Tracer>,
    mut predictions: Option<&mut Vec<ModulePrediction>>,
    opts: &ComponentOptions,
) -> Result<Vec<GuardReport>, ExecError> {
    let mut sim = Simulation::new();
    if let Some(t) = tracer {
        sim.set_tracer(t.clone());
    }
    if let Some(hook) = &opts.hook {
        sim.ctx().arm_faults(hook.clone());
    }
    if let Some(deadline) = opts.deadline {
        sim.set_deadline(deadline);
    }
    let depth = cfg.default_depth as usize;

    // Producer map restricted to this component.
    let mut in_comp: HashMap<&str, usize> = HashMap::new();
    for &oi in ops {
        in_comp.insert(program.ops()[oi].output(), oi);
    }

    // 1. Vector replay multiplicity each consumer needs from its reader.
    let x_reps = |oi: usize| -> usize {
        match (&program.ops()[oi], variants.get(&oi)) {
            (Op::Gemv { .. }, Some(GemvVariant::RowStreamed)) => {
                let (n, _) = gemv_dims(program, oi);
                n.div_ceil(cfg.tn)
            }
            (Op::Gemv { .. }, Some(GemvVariant::TransColStreamed)) => {
                let (_, m) = gemv_dims(program, oi);
                m.div_ceil(cfg.tm)
            }
            _ => 1,
        }
    };

    // 2. In-component consumer lists per produced operand.
    let mut consumers: HashMap<&str, Vec<usize>> = HashMap::new();
    for &oi in ops {
        for inp in op_inputs(&program.ops()[oi]) {
            if in_comp.contains_key(inp) {
                consumers.entry(inp).or_default().push(oi);
            }
        }
    }

    // 3. Shared *source* matrices: one read + a duplicator.
    let mut matrix_source_consumers: HashMap<&str, Vec<usize>> = HashMap::new();
    for &oi in ops {
        if let Op::Gemv { a, .. } | Op::Ger { a, .. } = &program.ops()[oi] {
            if !in_comp.contains_key(a.as_str()) {
                matrix_source_consumers
                    .entry(a.as_str())
                    .or_default()
                    .push(oi);
            }
        }
    }

    // Incoming channel per (consumer, operand): receivers the op attach
    // step will take.
    let mut incoming: HashMap<(usize, String), Receiver<T>> = HashMap::new();

    for (mat, cons) in &matrix_source_consumers {
        let (n, m) = program.mat_dims(mat)?;
        if cons.len() == 1 {
            // Sole consumer: the reader adopts that consumer's tile
            // order (a ColStreamed GEMV expects tiles by columns).
            let oi = cons[0];
            let tiling = consumer_tiling(program, cfg, oi, variants);
            let d = edge_depth(program, cfg, oi, mat, &in_comp);
            let (tx, rx) = channel(sim.ctx(), d, format!("{mat}->{oi}"));
            read_matrix(&mut sim, router.input(mat)?, n, m, tiling, tx, 1);
            incoming.insert((oi, (*mat).to_string()), rx);
        } else {
            // Shared stream: the planner guarantees all consumers agree
            // on tiles-by-rows.
            let tiling = crate::tiling::Tiling::new(
                cfg.tn.min(n.max(1)),
                cfg.tm.min(m.max(1)),
                crate::tiling::TileOrder::RowTilesRowMajor,
            );
            let (tx, rx) = channel(sim.ctx(), depth, format!("read_{mat}"));
            read_matrix(&mut sim, router.input(mat)?, n, m, tiling, tx, 1);
            let mut sinks = Vec::new();
            for &oi in cons.iter() {
                let d = edge_depth(program, cfg, oi, mat, &in_comp);
                let (ctx_tx, ctx_rx) = channel(sim.ctx(), d, format!("{mat}->{oi}"));
                sinks.push(ctx_tx);
                incoming.insert((oi, (*mat).to_string()), ctx_rx);
            }
            duplicate_many(&mut sim, format!("dup_{mat}"), n * m, rx, sinks);
        }
    }

    // 4. Attach ops in component order, building source readers and
    //    output fan-out as we go.
    for &oi in ops {
        let op = &program.ops()[oi];

        // --- inputs ---
        let mut take_input =
            |sim: &mut Simulation, name: &str, reps: usize| -> Result<Receiver<T>, ExecError> {
                if let Some(rx) = incoming.remove(&(oi, name.to_string())) {
                    return Ok(rx);
                }
                // Source vector (or scalar-free) read from DRAM.
                program.vec_len(name)?;
                let (tx, rx) = channel(sim.ctx(), depth, format!("{name}->{oi}"));
                read_vector_replayed(sim, router.input(name)?, tx, reps);
                Ok(rx)
            };

        // --- output sinks ---
        // Every vector/matrix output is written to its buffer; outputs
        // consumed in-component additionally fan out to those consumers.
        let out_name = op.output().to_string();
        let out_consumers = consumers
            .get(out_name.as_str())
            .cloned()
            .unwrap_or_default();

        match op {
            Op::Copy { x, .. } | Op::Scal { x, .. } => {
                let n = program.vec_len(x)?;
                let rx = take_input(&mut sim, x, 1)?;
                let tx = vector_output(
                    &mut sim,
                    program,
                    cfg,
                    router,
                    &mut incoming,
                    &out_name,
                    &out_consumers,
                )?;
                match op {
                    Op::Scal { alpha, .. } => {
                        let w = cfg.tm.clamp(1, 16);
                        let s = Scal::new(n, w);
                        if let Some(preds) = predictions.as_deref_mut() {
                            preds.push(ModulePrediction::compute(
                                "scal",
                                s.cost::<T>(),
                                n as u64,
                                w as u64,
                            ));
                        }
                        s.attach(&mut sim, T::from_f64(*alpha), rx, tx);
                    }
                    _ => {
                        let c = VecCopy::new(n, 16);
                        if let Some(preds) = predictions.as_deref_mut() {
                            preds.push(ModulePrediction::compute(
                                "copy",
                                c.cost::<T>(),
                                n as u64,
                                16,
                            ));
                        }
                        c.attach(&mut sim, rx, tx);
                    }
                }
            }
            Op::Axpy { alpha, x, y, .. } => {
                let n = program.vec_len(x)?;
                let rx = take_input(&mut sim, x, 1)?;
                let ry = take_input(&mut sim, y, 1)?;
                let tx = vector_output(
                    &mut sim,
                    program,
                    cfg,
                    router,
                    &mut incoming,
                    &out_name,
                    &out_consumers,
                )?;
                let a = Axpy::new(n, 16);
                if let Some(preds) = predictions.as_deref_mut() {
                    preds.push(ModulePrediction::compute(
                        "axpy",
                        a.cost::<T>(),
                        n as u64,
                        16,
                    ));
                }
                a.attach(&mut sim, T::from_f64(*alpha), rx, ry, tx);
            }
            Op::Dot { x, y, out } => {
                let n = program.vec_len(x)?;
                let rx = take_input(&mut sim, x, 1)?;
                let ry = take_input(&mut sim, y, 1)?;
                let (tr, rr) = channel(sim.ctx(), 1, format!("{out}_res"));
                let d = Dot::new(n, 16);
                if let Some(preds) = predictions.as_deref_mut() {
                    preds.push(ModulePrediction::compute(
                        "dot",
                        d.cost::<T>(),
                        n as u64,
                        16,
                    ));
                }
                d.attach(&mut sim, rx, ry, tr);
                let out = out.clone();
                let scalars = scalars.clone();
                sim.add_module(format!("store_{out}"), ModuleKind::Interface, move || {
                    let v = rr.pop()?;
                    scalars.lock().insert(out.clone(), v);
                    Ok(())
                });
            }
            Op::Gemv {
                alpha,
                beta,
                a,
                x,
                y,
                ..
            } => {
                let (n, m) = program.mat_dims(a)?;
                let variant = variants[&oi];
                let g = Gemv::new(
                    variant,
                    n,
                    m,
                    cfg.tn.min(n.max(1)),
                    cfg.tm.min(m.max(1)),
                    16,
                );
                if let Some(preds) = predictions.as_deref_mut() {
                    let name = if variant.transposed() {
                        "gemv_t"
                    } else {
                        "gemv"
                    };
                    preds.push(ModulePrediction::compute(
                        name,
                        g.cost::<T>(),
                        (n * m) as u64,
                        16,
                    ));
                }
                let ra = take_input(&mut sim, a, 1)?;
                let rxv = take_input(&mut sim, x, x_reps(oi))?;
                // Effective beta: 0 when no y operand is given.
                let eff_beta = if y.is_some() {
                    T::from_f64(*beta)
                } else {
                    T::ZERO
                };
                let y_len = g.y_len();
                let zeros =
                    DeviceBuffer::from_vec(format!("{out_name}_zero"), vec![T::ZERO; y_len], 0);

                if g.y_rounds() == 1 {
                    let ryi = match y {
                        Some(yn) => take_input(&mut sim, yn, 1)?,
                        None => {
                            let (tyi, ryi) = channel(sim.ctx(), depth, format!("{out_name}_y_in"));
                            read_vector_replayed(&mut sim, &zeros, tyi, 1);
                            ryi
                        }
                    };
                    let tx = vector_output(
                        &mut sim,
                        program,
                        cfg,
                        router,
                        &mut incoming,
                        &out_name,
                        &out_consumers,
                    )?;
                    g.attach(&mut sim, T::from_f64(*alpha), eff_beta, ra, rxv, ryi, tx);
                } else {
                    // The replay initial is read from DRAM by an
                    // interface module; an in-component producer for it
                    // is not a valid streaming plan.
                    if let Some(yn) = y {
                        if in_comp.contains_key(yn.as_str()) {
                            return Err(ExecError::Plan(PlanError::Contract(
                                ContractCause::ReplayFromComputationalProducer {
                                    operand: yn.clone(),
                                    op_index: oi,
                                },
                            )));
                        }
                    }
                    let initial = match y {
                        Some(yn) => router.input(yn)?.clone(),
                        None => zeros,
                    };
                    // Partial replay through DRAM, with a tap for
                    // in-component consumers of the final round.
                    let (tyi, ryi) = channel(sim.ctx(), depth, format!("{out_name}_y_in"));
                    let (tyo, ryo) = channel(sim.ctx(), depth, format!("{out_name}_y_out"));
                    g.attach(&mut sim, T::from_f64(*alpha), eff_beta, ra, rxv, ryi, tyo);
                    let taps =
                        consumer_channels(&mut sim, cfg, &mut incoming, &out_name, &out_consumers);
                    replay_with_taps(
                        &mut sim,
                        &initial,
                        router.output(&out_name)?,
                        y_len,
                        g.y_rounds(),
                        tyi,
                        ryo,
                        taps,
                    );
                }
            }
            Op::Ger { alpha, a, x, y, .. } => {
                let (n, m) = program.mat_dims(a)?;
                let g = Ger::new(n, m, cfg.tn.min(n.max(1)), cfg.tm.min(m.max(1)), 16);
                if let Some(preds) = predictions.as_deref_mut() {
                    preds.push(ModulePrediction::compute(
                        "ger",
                        g.cost::<T>(),
                        (n * m) as u64,
                        16,
                    ));
                }
                let ra = take_input(&mut sim, a, 1)?;
                let rxv = take_input(&mut sim, x, 1)?;
                let ryv = take_input(&mut sim, y, g.y_repetitions())?;
                let tx = matrix_output(
                    &mut sim,
                    cfg,
                    router,
                    &mut incoming,
                    &out_name,
                    n,
                    m,
                    &out_consumers,
                )?;
                g.attach(&mut sim, T::from_f64(*alpha), ra, rxv, ryv, tx);
            }
        }
    }

    // Guard reports outlive the simulation through the shared context.
    let ctx = sim.ctx().clone();
    sim.run()?;
    Ok(ctx.guard_reports())
}

fn op_inputs(op: &Op) -> Vec<&str> {
    match op {
        Op::Copy { x, .. } | Op::Scal { x, .. } => vec![x],
        Op::Axpy { x, y, .. } | Op::Dot { x, y, .. } => vec![x, y],
        Op::Gemv { a, x, y, .. } => {
            let mut v = vec![a.as_str(), x.as_str()];
            if let Some(y) = y {
                v.push(y);
            }
            v
        }
        Op::Ger { a, x, y, .. } => vec![a, x, y],
    }
}

// Invariant: every op's matrix operand was shape-checked by plan().
#[allow(clippy::disallowed_methods)]
fn gemv_dims(program: &Program, oi: usize) -> (usize, usize) {
    match &program.ops()[oi] {
        Op::Gemv { a, .. } => program.mat_dims(a).expect("checked during planning"),
        _ => unreachable!("x_reps only queried for GEMV"),
    }
}

/// Tile order the matrix reader must use for consumer `oi`.
// Invariant: matrix shapes were checked by plan().
#[allow(clippy::disallowed_methods)]
fn consumer_tiling(
    program: &Program,
    cfg: &PlannerConfig,
    oi: usize,
    variants: &HashMap<usize, GemvVariant>,
) -> crate::tiling::Tiling {
    match &program.ops()[oi] {
        Op::Gemv { a, .. } => {
            let (n, m) = program.mat_dims(a).expect("checked during planning");
            Gemv::new(
                variants[&oi],
                n,
                m,
                cfg.tn.min(n.max(1)),
                cfg.tm.min(m.max(1)),
                16,
            )
            .a_tiling()
        }
        Op::Ger { a, .. } => {
            let (n, m) = program.mat_dims(a).expect("checked during planning");
            crate::tiling::Tiling::new(
                cfg.tn.min(n.max(1)),
                cfg.tm.min(m.max(1)),
                crate::tiling::TileOrder::RowTilesRowMajor,
            )
        }
        _ => unreachable!("only matrix consumers query tiling"),
    }
}

/// FIFO depth for a matrix edge into `oi`: deep when the consumer also
/// waits for an in-component vector (the ATAX burst), default otherwise.
// Invariant: matrix shapes were checked by plan().
#[allow(clippy::disallowed_methods)]
fn edge_depth(
    program: &Program,
    cfg: &PlannerConfig,
    oi: usize,
    mat: &str,
    in_comp: &HashMap<&str, usize>,
) -> usize {
    if let Op::Gemv { a, x, .. } = &program.ops()[oi] {
        if a == mat && in_comp.contains_key(x.as_str()) {
            let (_, m) = program.mat_dims(a).expect("checked during planning");
            return cfg.tn * m + 64;
        }
    }
    cfg.default_depth as usize
}

/// Create the consumer-side channels for an operand and register them.
fn consumer_channels<T: Scalar>(
    sim: &mut Simulation,
    cfg: &PlannerConfig,
    incoming: &mut HashMap<(usize, String), Receiver<T>>,
    name: &str,
    out_consumers: &[usize],
) -> Vec<Sender<T>> {
    let mut sinks = Vec::new();
    for &ci in out_consumers {
        let (tx, rx) = channel(
            sim.ctx(),
            cfg.default_depth as usize,
            format!("{name}->{ci}"),
        );
        incoming.insert((ci, name.to_string()), rx);
        sinks.push(tx);
    }
    sinks
}

/// Output plumbing for a streamed-once vector: writer + consumers behind
/// a fan-out stage when needed. Returns the sender the op pushes into.
fn vector_output<T: Scalar>(
    sim: &mut Simulation,
    program: &Program,
    cfg: &PlannerConfig,
    router: &BufRouter<'_, T>,
    incoming: &mut HashMap<(usize, String), Receiver<T>>,
    name: &str,
    out_consumers: &[usize],
) -> Result<Sender<T>, ExecError> {
    let n = program.vec_len(name)?;
    let (w_tx, w_rx) = channel(
        sim.ctx(),
        cfg.default_depth as usize,
        format!("write_{name}"),
    );
    write_vector(sim, router.output(name)?, n, w_rx);
    let mut sinks = consumer_channels(sim, cfg, incoming, name, out_consumers);
    if sinks.is_empty() {
        return Ok(w_tx);
    }
    sinks.push(w_tx);
    let (tx, rx) = channel(
        sim.ctx(),
        cfg.default_depth as usize,
        format!("{name}_fanout"),
    );
    duplicate_many(sim, format!("dup_{name}"), n, rx, sinks);
    Ok(tx)
}

/// Output plumbing for a matrix stream (GER results).
#[allow(clippy::too_many_arguments)]
fn matrix_output<T: Scalar>(
    sim: &mut Simulation,
    cfg: &PlannerConfig,
    router: &BufRouter<'_, T>,
    incoming: &mut HashMap<(usize, String), Receiver<T>>,
    name: &str,
    n: usize,
    m: usize,
    out_consumers: &[usize],
) -> Result<Sender<T>, ExecError> {
    let tiling = crate::tiling::Tiling::new(
        cfg.tn.min(n.max(1)),
        cfg.tm.min(m.max(1)),
        crate::tiling::TileOrder::RowTilesRowMajor,
    );
    let (w_tx, w_rx) = channel(
        sim.ctx(),
        cfg.default_depth as usize,
        format!("write_{name}"),
    );
    write_matrix(sim, router.output(name)?, n, m, tiling, w_rx);
    let mut sinks = consumer_channels(sim, cfg, incoming, name, out_consumers);
    if sinks.is_empty() {
        return Ok(w_tx);
    }
    sinks.push(w_tx);
    let (tx, rx) = channel(
        sim.ctx(),
        cfg.default_depth as usize,
        format!("{name}_fanout"),
    );
    duplicate_many(sim, format!("dup_{name}"), n * m, rx, sinks);
    Ok(tx)
}

/// DRAM-replay loop with taps: like
/// [`replay_vector_through_memory`](crate::helpers::writers), but the
/// final round is additionally fanned out to in-component consumers.
#[allow(clippy::too_many_arguments)]
fn replay_with_taps<T: Scalar>(
    sim: &mut Simulation,
    initial: &DeviceBuffer<T>,
    result: &DeviceBuffer<T>,
    n: usize,
    rounds: usize,
    to_module: Sender<T>,
    from_module: Receiver<T>,
    taps: Vec<Sender<T>>,
) {
    let (loop_tx, loop_rx) = channel::<T>(
        sim.ctx(),
        n.max(1),
        format!("replay_{}_dram", initial.name()),
    );
    let init = initial.clone();
    sim.add_module(
        format!("replay_{}_read", init.name()),
        ModuleKind::Interface,
        move || {
            to_module.push_slice(&init.to_host())?;
            for _ in 0..rounds - 1 {
                for _ in 0..n {
                    to_module.push(loop_rx.pop()?)?;
                }
            }
            Ok(())
        },
    );
    let result = result.clone();
    sim.add_module(
        format!("replay_{}_write", result.name()),
        ModuleKind::Interface,
        move || {
            for _ in 0..rounds - 1 {
                for _ in 0..n {
                    loop_tx.push(from_module.pop()?)?;
                }
            }
            let final_vals = from_module.pop_n(n)?;
            result.from_host(&final_vals);
            for tap in &taps {
                tap.push_slice(&final_vals)?;
            }
            Ok(())
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::{plan, PlannerConfig};
    use fblas_refblas as refblas;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.357).sin()).collect()
    }

    fn bind(entries: Vec<(&str, Vec<f64>)>) -> HashMap<String, DeviceBuffer<f64>> {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (name, data))| (name.to_string(), DeviceBuffer::from_vec(name, data, i % 4)))
            .collect()
    }

    #[test]
    fn executes_axpydot_plan() {
        let n = 97;
        let mut p = Program::new();
        p.vector("w", n)
            .vector("v", n)
            .vector("u", n)
            .vector("z", n)
            .scalar("beta");
        p.op(Op::Axpy {
            alpha: -0.8,
            x: "v".into(),
            y: "w".into(),
            out: "z".into(),
        });
        p.op(Op::Dot {
            x: "z".into(),
            y: "u".into(),
            out: "beta".into(),
        });
        let cfg = PlannerConfig {
            tn: 8,
            tm: 8,
            ..Default::default()
        };
        let thep = plan(&p, &cfg).unwrap();

        let wv = seq(n, 0.0);
        let vv = seq(n, 1.0);
        let uv = seq(n, 2.0);
        let bufs = bind(vec![
            ("w", wv.clone()),
            ("v", vv.clone()),
            ("u", uv.clone()),
            ("z", vec![0.0; n]),
        ]);
        let out = execute_plan::<f64>(&p, &thep, &cfg, &bufs).unwrap();

        let (z_ref, beta_ref) = refblas::apps::axpydot(&wv, &vv, &uv, 0.8);
        let z = bufs["z"].to_host();
        for i in 0..n {
            assert!((z[i] - z_ref[i]).abs() < 1e-12, "z[{i}]");
        }
        assert!((out.scalars["beta"] - beta_ref).abs() < 1e-9);
    }

    #[test]
    fn executes_bicg_plan_with_shared_matrix() {
        let (n, m) = (26, 18);
        let mut p = Program::new();
        p.matrix("A", n, m)
            .vector("p", m)
            .vector("r", n)
            .vector("q", n)
            .vector("s", m);
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: false,
            x: "p".into(),
            y: None,
            out: "q".into(),
        });
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: true,
            x: "r".into(),
            y: None,
            out: "s".into(),
        });
        let cfg = PlannerConfig {
            tn: 7,
            tm: 5,
            ..Default::default()
        };
        let thep = plan(&p, &cfg).unwrap();
        assert_eq!(thep.components.len(), 1);

        let av = seq(n * m, 0.0);
        let pv = seq(m, 1.0);
        let rv = seq(n, 2.0);
        let bufs = bind(vec![
            ("A", av.clone()),
            ("p", pv.clone()),
            ("r", rv.clone()),
            ("q", vec![0.0; n]),
            ("s", vec![0.0; m]),
        ]);
        execute_plan::<f64>(&p, &thep, &cfg, &bufs).unwrap();

        let (q_ref, s_ref) = refblas::apps::bicg(n, m, &av, &pv, &rv);
        let q = bufs["q"].to_host();
        let s = bufs["s"].to_host();
        for i in 0..n {
            assert!((q[i] - q_ref[i]).abs() < 1e-9, "q[{i}]");
        }
        for j in 0..m {
            assert!((s[j] - s_ref[j]).abs() < 1e-9, "s[{j}]");
        }
    }

    #[test]
    fn executes_atax_in_both_planner_modes() {
        let (n, m) = (24, 15);
        let build = || {
            let mut p = Program::new();
            p.matrix("A", n, m)
                .vector("x", m)
                .vector("t", n)
                .vector("y", m);
            p.op(Op::Gemv {
                alpha: 1.0,
                beta: 0.0,
                a: "A".into(),
                transposed: false,
                x: "x".into(),
                y: None,
                out: "t".into(),
            });
            p.op(Op::Gemv {
                alpha: 1.0,
                beta: 0.0,
                a: "A".into(),
                transposed: true,
                x: "t".into(),
                y: None,
                out: "y".into(),
            });
            p
        };
        let av = seq(n * m, 3.0);
        let xv = seq(m, 4.0);
        let y_ref = refblas::apps::atax(n, m, &av, &xv);

        for allow_deep in [false, true] {
            let p = build();
            let cfg = PlannerConfig {
                tn: 6,
                tm: 5,
                allow_deep_channels: allow_deep,
                ..Default::default()
            };
            let thep = plan(&p, &cfg).unwrap();
            assert_eq!(thep.components.len(), if allow_deep { 1 } else { 2 });
            let bufs = bind(vec![
                ("A", av.clone()),
                ("x", xv.clone()),
                ("t", vec![0.0; n]),
                ("y", vec![0.0; m]),
            ]);
            execute_plan::<f64>(&p, &thep, &cfg, &bufs).unwrap();
            let y = bufs["y"].to_host();
            for j in 0..m {
                assert!(
                    (y[j] - y_ref[j]).abs() < 1e-9,
                    "allow_deep={allow_deep} y[{j}]: {} vs {}",
                    y[j],
                    y_ref[j]
                );
            }
        }
    }

    #[test]
    fn executes_gemver_two_component_plan() {
        let n = 14;
        let mut p = Program::new();
        p.matrix("A", n, n).matrix("B1", n, n).matrix("B", n, n);
        for v in ["u1", "v1", "u2", "v2", "y", "z", "x", "w"] {
            p.vector(v, n);
        }
        let (alpha, beta) = (1.2, 0.7);
        p.op(Op::Ger {
            alpha: 1.0,
            a: "A".into(),
            x: "u1".into(),
            y: "v1".into(),
            out: "B1".into(),
        });
        p.op(Op::Ger {
            alpha: 1.0,
            a: "B1".into(),
            x: "u2".into(),
            y: "v2".into(),
            out: "B".into(),
        });
        p.op(Op::Gemv {
            alpha: beta,
            beta: 1.0,
            a: "B".into(),
            transposed: true,
            x: "y".into(),
            y: Some("z".into()),
            out: "x".into(),
        });
        p.op(Op::Gemv {
            alpha,
            beta: 0.0,
            a: "B".into(),
            transposed: false,
            x: "x".into(),
            y: None,
            out: "w".into(),
        });
        let cfg = PlannerConfig {
            tn: 4,
            tm: 4,
            ..Default::default()
        };
        let thep = plan(&p, &cfg).unwrap();
        assert_eq!(thep.components.len(), 2, "{}", thep.describe(&p));

        let av = seq(n * n, 0.0);
        let u1 = seq(n, 1.0);
        let v1 = seq(n, 2.0);
        let u2 = seq(n, 3.0);
        let v2 = seq(n, 4.0);
        let yv = seq(n, 5.0);
        let zv = seq(n, 6.0);
        let bufs = bind(vec![
            ("A", av.clone()),
            ("B1", vec![0.0; n * n]),
            ("B", vec![0.0; n * n]),
            ("u1", u1.clone()),
            ("v1", v1.clone()),
            ("u2", u2.clone()),
            ("v2", v2.clone()),
            ("y", yv.clone()),
            ("z", zv.clone()),
            ("x", vec![0.0; n]),
            ("w", vec![0.0; n]),
        ]);
        execute_plan::<f64>(&p, &thep, &cfg, &bufs).unwrap();

        let r = refblas::apps::gemver(n, alpha, beta, &av, &u1, &v1, &u2, &v2, &yv, &zv);
        let b = bufs["B"].to_host();
        let x = bufs["x"].to_host();
        let w = bufs["w"].to_host();
        for i in 0..n * n {
            assert!((b[i] - r.b[i]).abs() < 1e-9, "B[{i}]");
        }
        for i in 0..n {
            assert!(
                (x[i] - r.x[i]).abs() < 1e-9,
                "x[{i}]: {} vs {}",
                x[i],
                r.x[i]
            );
            assert!((w[i] - r.w[i]).abs() < 1e-9, "w[{i}]");
        }
    }

    #[test]
    fn audited_execution_reports_per_component_predictions() {
        let n = 257;
        let mut p = Program::new();
        p.vector("w", n)
            .vector("v", n)
            .vector("u", n)
            .vector("z", n)
            .scalar("beta");
        p.op(Op::Axpy {
            alpha: -0.8,
            x: "v".into(),
            y: "w".into(),
            out: "z".into(),
        });
        p.op(Op::Dot {
            x: "z".into(),
            y: "u".into(),
            out: "beta".into(),
        });
        let cfg = PlannerConfig {
            tn: 8,
            tm: 8,
            ..Default::default()
        };
        let thep = plan(&p, &cfg).unwrap();

        let wv = seq(n, 0.0);
        let vv = seq(n, 1.0);
        let uv = seq(n, 2.0);
        let bufs = bind(vec![
            ("w", wv.clone()),
            ("v", vv.clone()),
            ("u", uv.clone()),
            ("z", vec![0.0; n]),
        ]);
        // A wide tolerance: this checks plumbing, not timing fidelity —
        // wall-clock shares on a loaded test host are not the subject.
        let (out, reports) =
            execute_plan_audited::<f64>(&p, &thep, &cfg, &bufs, 200.0e6, 1.0).unwrap();

        let (_, beta_ref) = refblas::apps::axpydot(&wv, &vv, &uv, 0.8);
        assert!((out.scalars["beta"] - beta_ref).abs() < 1e-9);

        assert_eq!(reports.len(), thep.components.len());
        let all: Vec<&fblas_audit::ModuleAudit> =
            reports.iter().flat_map(|r| r.modules.iter()).collect();
        for routine in ["axpy", "dot"] {
            let row = all
                .iter()
                .find(|m| m.module == routine)
                .unwrap_or_else(|| panic!("no audit row for {routine}"));
            assert!(row.predicted_cycles.is_some(), "{routine} not predicted");
            assert!(row.run_us > 0, "{routine} lane never ran");
        }
        for r in &reports {
            assert!(r.predicted_cycles > 0);
            assert!(r.bottleneck.is_some(), "no bottleneck named");
            assert!(!r.memory_bound);
        }
    }

    /// One-shot fault hook for recovery tests: fires a single channel
    /// or module fault on its first match, then stays quiet — the
    /// transient-fault model a retry must absorb.
    struct OneShot {
        channel: Option<(
            fblas_hlssim::FaultSite,
            String,
            u64,
            fblas_hlssim::FaultAction,
        )>,
        module: Option<(String, fblas_hlssim::ModuleFault)>,
        spent: Mutex<bool>,
    }

    impl OneShot {
        fn corrupt(channel: &str, index: u64, bit: u32) -> Arc<Self> {
            Arc::new(OneShot {
                channel: Some((
                    fblas_hlssim::FaultSite::Push,
                    channel.to_string(),
                    index,
                    fblas_hlssim::FaultAction::Corrupt { bit },
                )),
                module: None,
                spent: Mutex::new(false),
            })
        }

        fn crash(module: &str) -> Arc<Self> {
            Arc::new(OneShot {
                channel: None,
                module: Some((module.to_string(), fblas_hlssim::ModuleFault::Crash)),
                spent: Mutex::new(false),
            })
        }
    }

    impl FaultHook for OneShot {
        fn on_channel(
            &self,
            site: fblas_hlssim::FaultSite,
            channel: &str,
            index: u64,
        ) -> Option<fblas_hlssim::FaultAction> {
            let (s, c, i, a) = self.channel.as_ref()?;
            let mut spent = self.spent.lock();
            if !*spent && *s == site && c == channel && *i == index {
                *spent = true;
                return Some(*a);
            }
            None
        }

        fn on_module_start(&self, module: &str) -> Option<fblas_hlssim::ModuleFault> {
            let (m, f) = self.module.as_ref()?;
            let mut spent = self.spent.lock();
            if !*spent && m == module {
                *spent = true;
                return Some(*f);
            }
            None
        }
    }

    fn axpydot_setup() -> (
        Program,
        PlannerConfig,
        HashMap<String, DeviceBuffer<f64>>,
        f64,
    ) {
        let n = 97;
        let mut p = Program::new();
        p.vector("w", n)
            .vector("v", n)
            .vector("u", n)
            .vector("z", n)
            .scalar("beta");
        p.op(Op::Axpy {
            alpha: -0.8,
            x: "v".into(),
            y: "w".into(),
            out: "z".into(),
        });
        p.op(Op::Dot {
            x: "z".into(),
            y: "u".into(),
            out: "beta".into(),
        });
        let cfg = PlannerConfig {
            tn: 8,
            tm: 8,
            ..Default::default()
        };
        let wv = seq(n, 0.0);
        let vv = seq(n, 1.0);
        let uv = seq(n, 2.0);
        let (_, beta_ref) = fblas_refblas::apps::axpydot(&wv, &vv, &uv, 0.8);
        let bufs = bind(vec![("w", wv), ("v", vv), ("u", uv), ("z", vec![0.0; n])]);
        (p, cfg, bufs, beta_ref)
    }

    #[test]
    fn recovery_without_faults_matches_plain_execution() {
        let (p, cfg, bufs, beta_ref) = axpydot_setup();
        let thep = plan(&p, &cfg).unwrap();
        let (out, report) = execute_plan_with_recovery::<f64>(
            &p,
            &thep,
            &cfg,
            &bufs,
            &RetryPolicy::default(),
            None,
            None,
        )
        .unwrap();
        assert!((out.scalars["beta"] - beta_ref).abs() < 1e-9);
        assert_eq!(report.retries, 0);
        assert_eq!(report.recovered, 0);
        assert_eq!(report.attempts.len(), thep.components.len());
        assert!(report.attempts.iter().all(|a| a.error.is_none()));
    }

    #[test]
    fn corrupt_channel_fault_is_detected_and_retried_to_success() {
        let (p, cfg, bufs, beta_ref) = axpydot_setup();
        let thep = plan(&p, &cfg).unwrap();
        // Flip the exponent of one element as it enters the write-back
        // channel for z.
        let hook = OneShot::corrupt("write_z", 11, 62);
        let (out, report) = execute_plan_with_recovery::<f64>(
            &p,
            &thep,
            &cfg,
            &bufs,
            &RetryPolicy::default(),
            Some(hook),
            None,
        )
        .unwrap();
        assert!((out.scalars["beta"] - beta_ref).abs() < 1e-9);
        assert_eq!(report.retries, 1);
        assert_eq!(report.recovered, 1);
        let failed = &report.attempts[0];
        assert_eq!(failed.error, Some(RecoveryErrorKind::Corruption));
        assert!(failed.guard_flagged, "digest guard should have tripped");
        let healed = report
            .attempts
            .iter()
            .find(|a| a.recovered)
            .expect("a recovered attempt");
        assert!(healed.error.is_none());
    }

    #[test]
    fn injected_crash_is_retried_and_buffers_commit_once() {
        let (p, cfg, bufs, beta_ref) = axpydot_setup();
        let thep = plan(&p, &cfg).unwrap();
        let hook = OneShot::crash("axpy");
        let (out, report) = execute_plan_with_recovery::<f64>(
            &p,
            &thep,
            &cfg,
            &bufs,
            &RetryPolicy::default(),
            Some(hook),
            None,
        )
        .unwrap();
        assert!((out.scalars["beta"] - beta_ref).abs() < 1e-9);
        assert_eq!(report.retries, 1);
        let failed = &report.attempts[0];
        assert!(
            matches!(
                failed.error,
                Some(RecoveryErrorKind::ModulePanic) | Some(RecoveryErrorKind::Poisoned)
            ),
            "unexpected kind: {:?}",
            failed.error
        );
    }

    #[test]
    fn exhausted_retries_leave_buffers_untouched() {
        let (p, cfg, bufs, _) = axpydot_setup();
        let thep = plan(&p, &cfg).unwrap();
        let z_before = bufs["z"].to_host();
        let hook = OneShot::corrupt("write_z", 3, 60);
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let err =
            execute_plan_with_recovery::<f64>(&p, &thep, &cfg, &bufs, &policy, Some(hook), None)
                .unwrap_err();
        assert!(
            matches!(err.error, ExecError::Corrupt { component: 0, .. }),
            "got: {}",
            err.error
        );
        assert_eq!(err.report.attempts.len(), 1);
        // Transactional: the corrupted attempt never reached the
        // caller's buffer.
        assert_eq!(bufs["z"].to_host(), z_before);
    }

    #[test]
    fn missing_and_misshapen_buffers_are_reported() {
        let mut p = Program::new();
        p.vector("x", 8).vector("o", 8);
        p.op(Op::Scal {
            alpha: 2.0,
            x: "x".into(),
            out: "o".into(),
        });
        let cfg = PlannerConfig::default();
        let thep = plan(&p, &cfg).unwrap();

        let empty: HashMap<String, DeviceBuffer<f64>> = HashMap::new();
        assert!(matches!(
            execute_plan::<f64>(&p, &thep, &cfg, &empty),
            Err(ExecError::MissingBuffer(n)) if n == "x" || n == "o"
        ));

        let bad = bind(vec![("x", vec![0.0; 8]), ("o", vec![0.0; 3])]);
        assert!(matches!(
            execute_plan::<f64>(&p, &thep, &cfg, &bad),
            Err(ExecError::WrongLength { .. })
        ));
    }
}
