//! Algorithm-based fault tolerance (ABFT) checksum guards.
//!
//! Each BLAS routine satisfies a cheap numeric identity relating the
//! checksum of its output to checksums of its inputs — the classic
//! Huang–Abraham construction specialized to the streamed operator set:
//!
//! * `copy`: `Σout = Σx`
//! * `scal`: `Σout = α·Σx`
//! * `axpy`: `Σout = α·Σx + Σy`
//! * `dot`:  the scalar result equals the `f64` recomputation
//! * `gemv`: `Σout = α·Σⱼ colsumⱼ(A)·xⱼ + β·Σy` (row sums when
//!   transposed)
//! * `ger`:  `ΣA' = ΣA + α·(Σx)(Σy)`
//!
//! The recovery layer ([`super::executor::execute_plan_with_recovery`])
//! evaluates these identities against the *staged* write-back buffers
//! before committing, so a corrupted result never reaches the caller's
//! device memory. Identities are evaluated in `f64` regardless of the
//! element type, with a tolerance scaled by the element epsilon, the
//! operation's flop count, and the magnitude of the data — wide enough
//! for legitimate reassociation, tight enough that any fault touching
//! an exponent or high-mantissa bit trips it. (Low-mantissa flips below
//! numeric noise are the channel digest guards' job: those are exact.)

use std::collections::HashMap;

use super::planner::{Op, Program};
use crate::host::buffer::DeviceBuffer;
use crate::scalar::Scalar;

/// Machine epsilon of the element type, in `f64`.
fn eps<T: Scalar>() -> f64 {
    if std::mem::size_of::<T>() == 4 {
        f32::EPSILON as f64
    } else {
        f64::EPSILON
    }
}

/// Sum and absolute-value sum of a buffer, in `f64`.
fn sums(v: &[f64]) -> (f64, f64) {
    v.iter().fold((0.0, 0.0), |(s, a), &x| (s + x, a + x.abs()))
}

/// Tolerance for an identity over `work` flops at magnitude `scale`.
fn tol<T: Scalar>(work: usize, scale: f64) -> f64 {
    eps::<T>() * 8.0 * (work as f64 + 16.0) * scale.max(1.0)
}

/// Check every op of a component against its checksum identity.
///
/// Operand values are resolved *staged-preferred*: an operand this
/// component wrote is read from the staged scratch buffer (the value
/// the downstream ops actually consumed and the commit would publish),
/// anything else from the caller's buffers, which still hold the
/// pre-component state because writes are staged. `scalars` holds the
/// attempt's DOT results. Returns the first violated identity as a
/// human-readable detail string.
pub(crate) fn verify_component<T: Scalar>(
    program: &Program,
    ops: &[usize],
    staged: &HashMap<String, DeviceBuffer<T>>,
    buffers: &HashMap<String, DeviceBuffer<T>>,
    scalars: &HashMap<String, T>,
) -> Result<(), String> {
    let resolve = |name: &str| -> Option<Vec<f64>> {
        staged
            .get(name)
            .or_else(|| buffers.get(name))
            .map(|b| b.to_host().iter().map(|v| v.to_f64()).collect())
    };
    for &oi in ops {
        let op = &program.ops()[oi];
        check_op::<T>(program, oi, op, &resolve, scalars)?;
    }
    Ok(())
}

fn check_op<T: Scalar>(
    program: &Program,
    oi: usize,
    op: &Op,
    resolve: &dyn Fn(&str) -> Option<Vec<f64>>,
    scalars: &HashMap<String, T>,
) -> Result<(), String> {
    let need = |name: &str| -> Result<Vec<f64>, String> {
        resolve(name).ok_or_else(|| format!("abft: op {oi}: operand `{name}` has no buffer"))
    };
    let verdict = |routine: &str, out: &str, got: f64, want: f64, work: usize, scale: f64| {
        let t = tol::<T>(work, scale);
        if (got - want).abs() <= t {
            Ok(())
        } else {
            Err(format!(
                "abft: op {oi} ({routine}): checksum of `{out}` is {got:.9e}, \
                 identity predicts {want:.9e} (|Δ| = {:.3e} > tol {t:.3e})",
                (got - want).abs()
            ))
        }
    };
    match op {
        Op::Copy { x, out } => {
            let (sx, ax) = sums(&need(x)?);
            let (so, _) = sums(&need(out)?);
            verdict("copy", out, so, sx, need(x)?.len(), ax)
        }
        Op::Scal { alpha, x, out } => {
            let xs = need(x)?;
            let (sx, ax) = sums(&xs);
            let (so, _) = sums(&need(out)?);
            verdict("scal", out, so, alpha * sx, xs.len(), alpha.abs() * ax)
        }
        Op::Axpy { alpha, x, y, out } => {
            let xs = need(x)?;
            let (sx, ax) = sums(&xs);
            let (sy, ay) = sums(&need(y)?);
            let (so, _) = sums(&need(out)?);
            verdict(
                "axpy",
                out,
                so,
                alpha * sx + sy,
                xs.len(),
                alpha.abs() * ax + ay,
            )
        }
        Op::Dot { x, y, out } => {
            let xs = need(x)?;
            let ys = need(y)?;
            let got = scalars
                .get(out)
                .map(|v| v.to_f64())
                .ok_or_else(|| format!("abft: op {oi} (dot): no result stored for `{out}`"))?;
            let (want, scale) = xs.iter().zip(&ys).fold((0.0, 0.0), |(s, a), (&xi, &yi)| {
                (xi.mul_add(yi, s), a + (xi * yi).abs())
            });
            verdict("dot", out, got, want, xs.len(), scale)
        }
        Op::Gemv {
            alpha,
            beta,
            a,
            transposed,
            x,
            y,
            out,
        } => {
            let (n, m) = program
                .mat_dims(a)
                .map_err(|e| format!("abft: op {oi} (gemv): {e}"))?;
            let av = need(a)?;
            let xs = need(x)?;
            // Checksum along the dimension the products collapse over:
            // column sums of A pair with x for the plain product, row
            // sums for the transposed one.
            let (mut want, mut scale) = (0.0f64, 0.0f64);
            if *transposed {
                for i in 0..n {
                    let (rs, ra) = sums(&av[i * m..(i + 1) * m]);
                    want += rs * xs[i];
                    scale += ra * xs[i].abs();
                }
            } else {
                for j in 0..m {
                    let (mut cs, mut ca) = (0.0, 0.0);
                    for i in 0..n {
                        cs += av[i * m + j];
                        ca += av[i * m + j].abs();
                    }
                    want += cs * xs[j];
                    scale += ca * xs[j].abs();
                }
            }
            want *= alpha;
            scale *= alpha.abs();
            // The executor zeroes the accumulator when no y is bound.
            if let Some(yn) = y {
                let (sy, ay) = sums(&need(yn)?);
                want += beta * sy;
                scale += beta.abs() * ay;
            }
            let (so, _) = sums(&need(out)?);
            verdict("gemv", out, so, want, n * m, scale)
        }
        Op::Ger {
            alpha,
            a,
            x,
            y,
            out,
        } => {
            let (sa, aa) = sums(&need(a)?);
            let (sx, ax) = sums(&need(x)?);
            let (sy, ay) = sums(&need(y)?);
            let (so, _) = sums(&need(out)?);
            let (n, m) = program
                .mat_dims(a)
                .map_err(|e| format!("abft: op {oi} (ger): {e}"))?;
            verdict(
                "ger",
                out,
                so,
                sa + alpha * sx * sy,
                n * m,
                aa + alpha.abs() * ax * ay,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(name: &str, data: Vec<f64>) -> (String, DeviceBuffer<f64>) {
        (name.to_string(), DeviceBuffer::from_vec(name, data, 0))
    }

    #[test]
    fn axpy_identity_accepts_clean_and_rejects_corrupt() {
        let n = 33;
        let mut p = Program::new();
        p.vector("x", n).vector("y", n).vector("z", n);
        p.op(Op::Axpy {
            alpha: 1.5,
            x: "x".into(),
            y: "y".into(),
            out: "z".into(),
        });
        let xv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let yv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let zv: Vec<f64> = xv.iter().zip(&yv).map(|(a, b)| 1.5 * a + b).collect();
        let buffers: HashMap<_, _> = [buf("x", xv), buf("y", yv)].into();
        let staged: HashMap<_, _> = [buf("z", zv.clone())].into();
        let scalars = HashMap::new();
        assert!(verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_ok());

        // Flip the sign bit of one element: a gross corruption the
        // checksum must catch.
        let mut bad = zv;
        bad[7] = -bad[7] - 1.0;
        let staged: HashMap<_, _> = [buf("z", bad)].into();
        let err = verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).unwrap_err();
        assert!(err.contains("axpy"), "{err}");
    }

    #[test]
    fn dot_identity_checks_the_scalar_map() {
        let n = 21;
        let mut p = Program::new();
        p.vector("x", n).vector("y", n).scalar("r");
        p.op(Op::Dot {
            x: "x".into(),
            y: "y".into(),
            out: "r".into(),
        });
        let xv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let yv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let r: f64 = xv.iter().zip(&yv).map(|(a, b)| a * b).sum();
        let buffers: HashMap<_, _> = [buf("x", xv), buf("y", yv)].into();
        let staged = HashMap::new();
        let mut scalars = HashMap::new();
        scalars.insert("r".to_string(), r);
        assert!(verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_ok());
        scalars.insert("r".to_string(), r + 0.5);
        assert!(verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_err());
        scalars.clear();
        let err = verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).unwrap_err();
        assert!(err.contains("no result"), "{err}");
    }

    #[test]
    fn gemv_identity_handles_both_orientations_and_beta() {
        let (n, m) = (9, 7);
        let av: Vec<f64> = (0..n * m).map(|i| (i as f64 * 0.13).sin()).collect();
        for transposed in [false, true] {
            let (xl, ol) = if transposed { (n, m) } else { (m, n) };
            let mut p = Program::new();
            p.matrix("A", n, m)
                .vector("x", xl)
                .vector("y", ol)
                .vector("o", ol);
            p.op(Op::Gemv {
                alpha: 0.9,
                beta: 0.4,
                a: "A".into(),
                transposed,
                x: "x".into(),
                y: Some("y".into()),
                out: "o".into(),
            });
            let xv: Vec<f64> = (0..xl).map(|i| (i as f64 * 0.21).cos()).collect();
            let yv: Vec<f64> = (0..ol).map(|i| (i as f64 * 0.17).sin()).collect();
            let mut ov = vec![0.0; ol];
            for i in 0..n {
                for j in 0..m {
                    let (oi, xi) = if transposed { (j, i) } else { (i, j) };
                    ov[oi] += 0.9 * av[i * m + j] * xv[xi];
                }
            }
            for (o, y) in ov.iter_mut().zip(&yv) {
                *o += 0.4 * y;
            }
            let buffers: HashMap<_, _> = [buf("A", av.clone()), buf("x", xv), buf("y", yv)].into();
            let staged: HashMap<_, _> = [buf("o", ov.clone())].into();
            let scalars = HashMap::new();
            assert!(
                verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_ok(),
                "transposed={transposed}"
            );
            let mut bad = ov;
            bad[0] += 1e-3;
            let staged: HashMap<_, _> = [buf("o", bad)].into();
            assert!(
                verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_err(),
                "transposed={transposed} corruption missed"
            );
        }
    }

    #[test]
    fn ger_identity_uses_the_pre_update_matrix() {
        let (n, m) = (6, 5);
        let mut p = Program::new();
        p.matrix("A", n, m)
            .matrix("B", n, m)
            .vector("x", n)
            .vector("y", m);
        p.op(Op::Ger {
            alpha: 1.1,
            a: "A".into(),
            x: "x".into(),
            y: "y".into(),
            out: "B".into(),
        });
        let av: Vec<f64> = (0..n * m).map(|i| (i as f64 * 0.41).sin()).collect();
        let xv: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos()).collect();
        let yv: Vec<f64> = (0..m).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut bv = av.clone();
        for i in 0..n {
            for j in 0..m {
                bv[i * m + j] += 1.1 * xv[i] * yv[j];
            }
        }
        let buffers: HashMap<_, _> = [
            buf("A", av),
            buf("x", xv),
            buf("y", yv),
            buf("B", vec![0.0; n * m]),
        ]
        .into();
        let staged: HashMap<_, _> = [buf("B", bv.clone())].into();
        let scalars = HashMap::new();
        assert!(verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_ok());
        // Exponent-bit flip on one element.
        let mut bad = bv;
        bad[3] *= 2.0;
        bad[3] += 0.7;
        let staged: HashMap<_, _> = [buf("B", bad)].into();
        assert!(verify_component::<f64>(&p, &[0], &staged, &buffers, &scalars).is_err());
    }

    #[test]
    fn f32_tolerance_admits_rounding_but_not_high_bit_flips() {
        let n = 257;
        let mut p = Program::new();
        p.vector("x", n).vector("y", n).vector("z", n);
        p.op(Op::Axpy {
            alpha: -0.8,
            x: "x".into(),
            y: "y".into(),
            out: "z".into(),
        });
        let xv: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let yv: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        // Compute in f32 exactly as the module would.
        let zv: Vec<f32> = xv
            .iter()
            .zip(&yv)
            .map(|(a, b)| (-0.8f32).mul_add(*a, *b))
            .collect();
        let b32 = |name: &str, d: Vec<f32>| (name.to_string(), DeviceBuffer::from_vec(name, d, 0));
        let buffers: HashMap<_, _> = [b32("x", xv), b32("y", yv)].into();
        let staged: HashMap<_, _> = [b32("z", zv.clone())].into();
        let scalars = HashMap::new();
        assert!(verify_component::<f32>(&p, &[0], &staged, &buffers, &scalars).is_ok());
        let mut bad = zv;
        bad[100] = f32::from_bits(bad[100].to_bits() ^ (1 << 27));
        let staged: HashMap<_, _> = [b32("z", bad)].into();
        assert!(verify_component::<f32>(&p, &[0], &staged, &buffers, &scalars).is_err());
    }
}
