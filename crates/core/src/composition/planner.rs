//! Automatic derivation of valid streaming compositions.
//!
//! The paper leaves "a full general case analysis of MDAGs, that could
//! help the user in deriving valid FBLAS compositions" as future work
//! (Sec. V, Sec. VIII). This module implements that analysis for
//! programs over the Level-1/Level-2 streaming ops:
//!
//! 1. the program's data-dependency DAG is built from operand names;
//! 2. each GEMV picks the streaming variant compatible with where its
//!    vector operands come from (a computational producer cannot replay,
//!    so e.g. `x` produced on-chip forces the tiles-by-columns variant)
//!    and with the tiling order of matrix streams it shares;
//! 3. the resulting MDAG is checked with [`Mdag::validate`]; a
//!    non-multitree composition either gets its channel depth derived
//!    (the ATAX fix (a)) or — when deep channels are not allowed — the
//!    program is *split into sequential multitree components* that
//!    communicate through DRAM (fix (b), the paper's GEMVER schedule of
//!    Fig. 9).
//!
//! The output is a [`Plan`]: per component, the ops it runs, the chosen
//! GEMV variants, the validated MDAG, and the off-chip I/O volume —
//! everything needed to instantiate the simulation or to compare
//! streaming against host-layer execution analytically.

use std::collections::HashMap;

use serde::Serialize;

use super::mdag::{Mdag, NodeId, Validity};
use super::rates::{Outcome as RateOutcome, RateGraph};
use crate::routines::gemv::GemvVariant;

/// A named operand with known shape.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    Vector(usize),
    Matrix(usize, usize),
    Scalar,
}

/// One streaming operation of a [`Program`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `out = x` (COPY).
    Copy {
        /// Input vector.
        x: String,
        /// Output vector.
        out: String,
    },
    /// `out = α·x` (SCAL).
    Scal {
        /// Scaling factor.
        alpha: f64,
        /// Input vector.
        x: String,
        /// Output vector.
        out: String,
    },
    /// `out = α·x + y` (AXPY).
    Axpy {
        /// Scaling factor on `x`.
        alpha: f64,
        /// Input vector.
        x: String,
        /// Input vector.
        y: String,
        /// Output vector.
        out: String,
    },
    /// `out = xᵀy` (DOT; `out` is a scalar).
    Dot {
        /// Input vector.
        x: String,
        /// Input vector.
        y: String,
        /// Output scalar.
        out: String,
    },
    /// `out = α·op(A)·x + β·y` (GEMV).
    Gemv {
        /// Scaling factor on the product.
        alpha: f64,
        /// Scaling factor on `y` (ignored when `y` is `None`).
        beta: f64,
        /// Matrix operand.
        a: String,
        /// Transposition flag.
        transposed: bool,
        /// Input vector.
        x: String,
        /// Optional `y` input (β side); `None` means β = 0.
        y: Option<String>,
        /// Output vector.
        out: String,
    },
    /// `out = α·x·yᵀ + A` (GER; matrix in, matrix out).
    Ger {
        /// Scaling factor.
        alpha: f64,
        /// Matrix input.
        a: String,
        /// Column operand.
        x: String,
        /// Row operand.
        y: String,
        /// Matrix output.
        out: String,
    },
}

impl Op {
    pub(crate) fn inputs(&self) -> Vec<&str> {
        match self {
            Op::Copy { x, .. } | Op::Scal { x, .. } => vec![x],
            Op::Axpy { x, y, .. } | Op::Dot { x, y, .. } => vec![x, y],
            Op::Gemv { a, x, y, .. } => {
                let mut v = vec![a.as_str(), x.as_str()];
                if let Some(y) = y {
                    v.push(y);
                }
                v
            }
            Op::Ger { a, x, y, .. } => vec![a, x, y],
        }
    }

    pub(crate) fn output(&self) -> &str {
        match self {
            Op::Copy { out, .. }
            | Op::Scal { out, .. }
            | Op::Axpy { out, .. }
            | Op::Dot { out, .. }
            | Op::Gemv { out, .. }
            | Op::Ger { out, .. } => out,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Op::Copy { .. } => "copy",
            Op::Scal { .. } => "scal",
            Op::Axpy { .. } => "axpy",
            Op::Dot { .. } => "dot",
            Op::Gemv {
                transposed: false, ..
            } => "gemv",
            Op::Gemv {
                transposed: true, ..
            } => "gemv_t",
            Op::Ger { .. } => "ger",
        }
    }
}

/// A linear-algebra program over named operands.
#[derive(Debug, Clone, Default)]
pub struct Program {
    shapes: HashMap<String, Shape>,
    ops: Vec<Op>,
}

/// A structured stream-contract violation: *why* a candidate component
/// cannot stream as one piece. These are the machine-readable causes
/// `fblas-lint` turns into diagnostics; before they existed a rejected
/// program surfaced only as a reason string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ContractCause {
    /// An operand that must be replayed (consumed once per row of
    /// tiles) is produced by a computational module in the same
    /// component — only interface modules can replay (Sec. III-B).
    ReplayFromComputationalProducer {
        /// The operand that would need replaying.
        operand: String,
        /// The op that consumes it.
        op_index: usize,
    },
    /// A tiles-by-columns GEMV consumes a matrix produced in-component:
    /// producers emit tiles by rows and a compute module cannot
    /// re-order its output stream.
    OnChipMatrixColStreamed {
        /// The matrix operand.
        matrix: String,
        /// The consuming op.
        op_index: usize,
    },
    /// Consumers of a shared matrix stream disagree on tile order
    /// (paper Sec. V condition 2: order incompatibility).
    TilingOrderConflict {
        /// The shared matrix operand.
        matrix: String,
        /// The disagreeing consumer ops.
        op_indices: Vec<usize>,
    },
    /// An MDAG edge violates the element-count or order contract.
    InvalidEdge {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The composition deadlocks unless a channel is deepened
    /// (non-multitree, the ATAX condition) — carries the exact minimum
    /// depth derived by the rate analyzer.
    NeedsChannelDepth {
        /// The channel (named `producer->consumer`).
        channel: String,
        /// Exact minimum FIFO depth at which the deadlock disappears.
        depth: u64,
    },
    /// The rate analyzer found a deadlock that no finite channel depth
    /// fixes, or could not reach a verdict within budget.
    Unschedulable {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for ContractCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractCause::ReplayFromComputationalProducer { operand, op_index } => write!(
                f,
                "operand `{operand}` of op #{op_index} must replay from DRAM, \
                 but is produced by a computational module in the same component"
            ),
            ContractCause::OnChipMatrixColStreamed { matrix, op_index } => write!(
                f,
                "op #{op_index} would stream matrix `{matrix}` by columns, \
                 but an in-component producer emits it by rows"
            ),
            ContractCause::TilingOrderConflict { matrix, op_indices } => write!(
                f,
                "ops {op_indices:?} consume shared matrix `{matrix}` with \
                 incompatible tile orders"
            ),
            ContractCause::InvalidEdge { reason } => write!(f, "invalid edge: {reason}"),
            ContractCause::NeedsChannelDepth { channel, depth } => write!(
                f,
                "channel `{channel}` deadlocks unless its depth is at least {depth}"
            ),
            ContractCause::Unschedulable { detail } => write!(f, "unschedulable: {detail}"),
        }
    }
}

/// Errors raised while building or planning a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An op references an operand that was never declared.
    UnknownOperand(String),
    /// An operand has the wrong shape for its use.
    ShapeMismatch {
        /// The offending operand.
        operand: String,
        /// Description of the expectation.
        expected: String,
    },
    /// Two ops write the same operand (static single assignment is
    /// required; reuse a new name instead).
    MultipleWriters(String),
    /// The data dependencies are cyclic.
    Cyclic,
    /// A stream-contract violation with a structured cause.
    Contract(ContractCause),
    /// The planner configuration is unusable (zero tile or depth).
    InvalidConfig(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownOperand(n) => write!(f, "unknown operand `{n}`"),
            PlanError::ShapeMismatch { operand, expected } => {
                write!(f, "operand `{operand}`: expected {expected}")
            }
            PlanError::MultipleWriters(n) => write!(f, "operand `{n}` written more than once"),
            PlanError::Cyclic => write!(f, "cyclic data dependencies"),
            PlanError::Contract(cause) => write!(f, "stream contract violation: {cause}"),
            PlanError::InvalidConfig(reason) => write!(f, "invalid planner config: {reason}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declare a vector operand of length `len` (inputs and outputs).
    pub fn vector(&mut self, name: impl Into<String>, len: usize) -> &mut Self {
        self.shapes.insert(name.into(), Shape::Vector(len));
        self
    }

    /// Declare an `n × m` matrix operand.
    pub fn matrix(&mut self, name: impl Into<String>, n: usize, m: usize) -> &mut Self {
        self.shapes.insert(name.into(), Shape::Matrix(n, m));
        self
    }

    /// Declare a scalar operand (DOT results).
    pub fn scalar(&mut self, name: impl Into<String>) -> &mut Self {
        self.shapes.insert(name.into(), Shape::Scalar);
        self
    }

    /// Append an operation.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The operations, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn vec_len(&self, name: &str) -> Result<usize, PlanError> {
        match self.shapes.get(name) {
            Some(Shape::Vector(l)) => Ok(*l),
            Some(_) => Err(PlanError::ShapeMismatch {
                operand: name.to_string(),
                expected: "a vector".into(),
            }),
            None => Err(PlanError::UnknownOperand(name.to_string())),
        }
    }

    pub(crate) fn mat_dims(&self, name: &str) -> Result<(usize, usize), PlanError> {
        match self.shapes.get(name) {
            Some(Shape::Matrix(n, m)) => Ok((*n, *m)),
            Some(_) => Err(PlanError::ShapeMismatch {
                operand: name.to_string(),
                expected: "a matrix".into(),
            }),
            None => Err(PlanError::UnknownOperand(name.to_string())),
        }
    }

    fn validate_shapes(&self) -> Result<(), PlanError> {
        for op in &self.ops {
            match op {
                Op::Copy { x, out } | Op::Scal { x, out, .. } => {
                    let a = self.vec_len(x)?;
                    let b = self.vec_len(out)?;
                    if a != b {
                        return Err(PlanError::ShapeMismatch {
                            operand: out.clone(),
                            expected: format!("a vector of length {a}"),
                        });
                    }
                }
                Op::Axpy { x, y, out, .. } => {
                    let a = self.vec_len(x)?;
                    if self.vec_len(y)? != a || self.vec_len(out)? != a {
                        return Err(PlanError::ShapeMismatch {
                            operand: out.clone(),
                            expected: format!("vectors of length {a}"),
                        });
                    }
                }
                Op::Dot { x, y, out } => {
                    let a = self.vec_len(x)?;
                    if self.vec_len(y)? != a {
                        return Err(PlanError::ShapeMismatch {
                            operand: y.clone(),
                            expected: format!("a vector of length {a}"),
                        });
                    }
                    if !matches!(self.shapes.get(out), Some(Shape::Scalar)) {
                        return Err(PlanError::ShapeMismatch {
                            operand: out.clone(),
                            expected: "a scalar".into(),
                        });
                    }
                }
                Op::Gemv {
                    a,
                    transposed,
                    x,
                    y,
                    out,
                    ..
                } => {
                    let (n, m) = self.mat_dims(a)?;
                    let (xl, yl) = if *transposed { (n, m) } else { (m, n) };
                    if self.vec_len(x)? != xl {
                        return Err(PlanError::ShapeMismatch {
                            operand: x.clone(),
                            expected: format!("a vector of length {xl}"),
                        });
                    }
                    if let Some(y) = y {
                        if self.vec_len(y)? != yl {
                            return Err(PlanError::ShapeMismatch {
                                operand: y.clone(),
                                expected: format!("a vector of length {yl}"),
                            });
                        }
                    }
                    if self.vec_len(out)? != yl {
                        return Err(PlanError::ShapeMismatch {
                            operand: out.clone(),
                            expected: format!("a vector of length {yl}"),
                        });
                    }
                }
                Op::Ger { a, x, y, out, .. } => {
                    let (n, m) = self.mat_dims(a)?;
                    if self.vec_len(x)? != n || self.vec_len(y)? != m {
                        return Err(PlanError::ShapeMismatch {
                            operand: a.clone(),
                            expected: format!("x of length {n} and y of length {m}"),
                        });
                    }
                    if self.mat_dims(out)? != (n, m) {
                        return Err(PlanError::ShapeMismatch {
                            operand: out.clone(),
                            expected: format!("a {n}x{m} matrix"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Single writer per operand; returns producer index per name.
    fn producers(&self) -> Result<HashMap<&str, usize>, PlanError> {
        let mut map: HashMap<&str, usize> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            if map.insert(op.output(), i).is_some() {
                return Err(PlanError::MultipleWriters(op.output().to_string()));
            }
        }
        Ok(map)
    }

    /// Topological order of op indices.
    fn topo_order(&self) -> Result<Vec<usize>, PlanError> {
        let producers = self.producers()?;
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            for inp in op.inputs() {
                if let Some(&p) = producers.get(inp) {
                    succs[p].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            return Err(PlanError::Cyclic);
        }
        // Stable-ish: sort ready sets by index for determinism.
        Ok(order)
    }
}

/// Reference interpretation of a program: evaluate every op with plain
/// sequential arithmetic over `f64` values. This is the semantic oracle
/// the executor is tested against; it ignores streaming entirely.
///
/// Returns the final value of every operand (vectors and matrices as
/// flat `Vec<f64>`, scalars as single-element vectors).
pub fn interpret(
    program: &Program,
    inputs: &HashMap<String, Vec<f64>>,
) -> Result<HashMap<String, Vec<f64>>, PlanError> {
    program.validate_shapes()?;
    let order = program.topo_order()?;
    let mut env: HashMap<String, Vec<f64>> = inputs.clone();
    let fetch = |env: &HashMap<String, Vec<f64>>, name: &str| -> Result<Vec<f64>, PlanError> {
        env.get(name)
            .cloned()
            .ok_or_else(|| PlanError::UnknownOperand(name.to_string()))
    };
    for oi in order {
        match &program.ops[oi] {
            Op::Copy { x, out } => {
                let v = fetch(&env, x)?;
                env.insert(out.clone(), v);
            }
            Op::Scal { alpha, x, out } => {
                let v = fetch(&env, x)?.iter().map(|v| alpha * v).collect();
                env.insert(out.clone(), v);
            }
            Op::Axpy { alpha, x, y, out } => {
                let xv = fetch(&env, x)?;
                let yv = fetch(&env, y)?;
                let v = xv.iter().zip(&yv).map(|(a, b)| alpha * a + b).collect();
                env.insert(out.clone(), v);
            }
            Op::Dot { x, y, out } => {
                let xv = fetch(&env, x)?;
                let yv = fetch(&env, y)?;
                let d: f64 = xv.iter().zip(&yv).map(|(a, b)| a * b).sum();
                env.insert(out.clone(), vec![d]);
            }
            Op::Gemv {
                alpha,
                beta,
                a,
                transposed,
                x,
                y,
                out,
            } => {
                let (n, m) = program.mat_dims(a)?;
                let av = fetch(&env, a)?;
                let xv = fetch(&env, x)?;
                let out_len = if *transposed { m } else { n };
                let mut acc = vec![0.0f64; out_len];
                for i in 0..n {
                    for j in 0..m {
                        if *transposed {
                            acc[j] += av[i * m + j] * xv[i];
                        } else {
                            acc[i] += av[i * m + j] * xv[j];
                        }
                    }
                }
                let yv = match y {
                    Some(yn) => fetch(&env, yn)?,
                    None => vec![0.0; out_len],
                };
                let eff_beta = if y.is_some() { *beta } else { 0.0 };
                let v = acc
                    .iter()
                    .zip(&yv)
                    .map(|(p, q)| alpha * p + eff_beta * q)
                    .collect();
                env.insert(out.clone(), v);
            }
            Op::Ger {
                alpha,
                a,
                x,
                y,
                out,
            } => {
                let (n, m) = program.mat_dims(a)?;
                let mut av = fetch(&env, a)?;
                let xv = fetch(&env, x)?;
                let yv = fetch(&env, y)?;
                for i in 0..n {
                    for j in 0..m {
                        av[i * m + j] += alpha * xv[i] * yv[j];
                    }
                }
                env.insert(out.clone(), av);
            }
        }
    }
    Ok(env)
}

/// Planner configuration: the tiling every Level-2 op will use, and
/// whether oversized FIFOs may be instantiated for non-multitree graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Tile height `T_N`.
    pub tn: usize,
    /// Tile width `T_M`.
    pub tm: usize,
    /// Allow deep channels (the ATAX fix (a)). When false, non-multitree
    /// graphs are split into sequential components (fix (b)).
    pub allow_deep_channels: bool,
    /// FIFO depth of ordinary channels.
    pub default_depth: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            tn: 1024,
            tm: 1024,
            allow_deep_channels: false,
            default_depth: 64,
        }
    }
}

impl PlannerConfig {
    /// Reject configurations that cannot instantiate hardware: zero
    /// tiles divide by zero in the tiling math, and a zero-depth FIFO
    /// is not constructible (`hlssim` channels need capacity ≥ 1).
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.tn == 0 || self.tm == 0 {
            return Err(PlanError::InvalidConfig(format!(
                "tile sizes must be >= 1 (tn={}, tm={})",
                self.tn, self.tm
            )));
        }
        if self.default_depth == 0 {
            return Err(PlanError::InvalidConfig(
                "default channel depth must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One sequential component of a plan: a valid multitree (or
/// deep-channel-annotated) MDAG over a subset of the program's ops.
#[derive(Debug)]
pub struct PlannedComponent {
    /// Indices into the program's op list, in execution order.
    pub ops: Vec<usize>,
    /// Chosen GEMV variant per op index (entries only for GEMV ops).
    pub gemv_variants: HashMap<usize, GemvVariant>,
    /// The validated module DAG.
    pub mdag: Mdag,
    /// Off-chip I/O elements of this component.
    pub io_elements: u64,
    /// Operands this component materializes to DRAM for later
    /// components (beyond the program's natural outputs).
    pub materialized: Vec<String>,
    /// Channel depths above the default that validity required
    /// (operand name → depth).
    pub deep_channels: Vec<(String, u64)>,
}

/// A structured planning decision worth surfacing to the user — the
/// machine-readable record `fblas-lint` renders as notes. Each one
/// explains *why* the plan looks the way it does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PlanNote {
    /// The greedy partition sealed a component because adding `before_op`
    /// violated a stream contract; the violation is recorded verbatim.
    Split {
        /// The op (program index) that could not join the component.
        before_op: usize,
        /// Why it could not.
        cause: ContractCause,
    },
    /// A component streams as one piece only because a channel was
    /// deepened beyond the default (the ATAX fix (a)).
    DeepChannel {
        /// Index of the component in the plan.
        component: usize,
        /// The channel, named `producer->consumer`.
        channel: String,
        /// The instantiated depth.
        depth: u64,
    },
    /// A maximal run of elementwise ops (copy/scal/axpy) each feeding
    /// the next: a fused backend could collapse their modules into one
    /// loop. Advisory — `fblas-lint` derives the full legality proof
    /// (obligations and witnesses) as its `FusionPlan` artifact.
    FusableChain {
        /// Index of the component in the plan.
        component: usize,
        /// Module names, producer to consumer.
        modules: Vec<String>,
    },
}

impl std::fmt::Display for PlanNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanNote::Split { before_op, cause } => {
                write!(f, "split before op #{before_op}: {cause}")
            }
            PlanNote::DeepChannel {
                component,
                channel,
                depth,
            } => write!(
                f,
                "component {} deepens channel `{channel}` to {depth}",
                component + 1
            ),
            PlanNote::FusableChain { component, modules } => write!(
                f,
                "component {} has a fusable chain: {}",
                component + 1,
                modules.join(" -> ")
            ),
        }
    }
}

/// A complete plan: sequential components, each internally streaming.
#[derive(Debug)]
pub struct Plan {
    /// The components, in execution order.
    pub components: Vec<PlannedComponent>,
    /// Structured diagnostics explaining splits and deep channels.
    pub notes: Vec<PlanNote>,
}

impl Plan {
    /// Total off-chip I/O elements across components.
    pub fn io_elements(&self) -> u64 {
        self.components.iter().map(|c| c.io_elements).sum()
    }

    /// Human-readable summary.
    pub fn describe(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (ci, c) in self.components.iter().enumerate() {
            let _ = writeln!(s, "component {}:", ci + 1);
            for &oi in &c.ops {
                let op = &program.ops[oi];
                let variant = c
                    .gemv_variants
                    .get(&oi)
                    .map(|v| format!(" [{v:?}]"))
                    .unwrap_or_default();
                let _ = writeln!(s, "  {} -> {}{}", op.name(), op.output(), variant);
            }
            if !c.materialized.is_empty() {
                let _ = writeln!(s, "  materializes: {}", c.materialized.join(", "));
            }
            for (name, depth) in &c.deep_channels {
                let _ = writeln!(s, "  deep channel on `{name}`: depth {depth}");
            }
            let _ = writeln!(s, "  off-chip I/O: {} elements", c.io_elements);
        }
        for note in &self.notes {
            let _ = writeln!(s, "note: {note}");
        }
        s
    }
}

/// Derive a valid streaming plan for `program`.
///
/// ```
/// use fblas_core::composition::{plan, Op, PlannerConfig, Program};
///
/// // AXPYDOT: z = w - alpha*v; beta = z'u (paper Sec. V-A).
/// let mut p = Program::new();
/// p.vector("w", 1024).vector("v", 1024).vector("u", 1024)
///  .vector("z", 1024).scalar("beta");
/// p.op(Op::Axpy { alpha: -1.0, x: "v".into(), y: "w".into(), out: "z".into() });
/// p.op(Op::Dot { x: "z".into(), y: "u".into(), out: "beta".into() });
///
/// let plan = plan(&p, &PlannerConfig::default()).unwrap();
/// assert_eq!(plan.components.len(), 1, "a multitree streams whole");
/// ```
pub fn plan(program: &Program, cfg: &PlannerConfig) -> Result<Plan, PlanError> {
    cfg.validate()?;
    program.validate_shapes()?;
    let order = program.topo_order()?;
    let producers = program.producers()?;

    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut notes: Vec<PlanNote> = Vec::new();

    // Greedy partition: add ops in topological order; when the candidate
    // component stops validating (and deep channels are not allowed),
    // seal the current component and start a new one.
    for &oi in &order {
        let mut candidate = current.clone();
        candidate.push(oi);
        let built = build_component(program, &producers, &candidate, cfg);
        let (ok, cause) = match built {
            Ok(ref c) if c.deep_channels.is_empty() || cfg.allow_deep_channels => (true, None),
            Ok(ref c) => {
                // Streamable, but only with a deep channel the config
                // forbids — record the need that forced the split.
                let cause = c.deep_channels.first().map(|(channel, depth)| {
                    ContractCause::NeedsChannelDepth {
                        channel: channel.clone(),
                        depth: *depth,
                    }
                });
                (false, cause)
            }
            Err(PlanError::Contract(cause)) => (false, Some(cause)),
            Err(e) => (
                false,
                Some(ContractCause::Unschedulable {
                    detail: e.to_string(),
                }),
            ),
        };
        if ok {
            current = candidate;
        } else {
            if !current.is_empty() {
                components.push(std::mem::take(&mut current));
                if let Some(cause) = cause {
                    notes.push(PlanNote::Split {
                        before_op: oi,
                        cause,
                    });
                }
            }
            current.push(oi);
        }
    }
    if !current.is_empty() {
        components.push(current);
    }

    let mut planned = Vec::with_capacity(components.len());
    let all: Vec<usize> = components.iter().flatten().copied().collect();
    for (ci, ops) in components.iter().enumerate() {
        let mut c = build_component(program, &producers, ops, cfg)?;
        for (channel, depth) in &c.deep_channels {
            notes.push(PlanNote::DeepChannel {
                component: ci,
                channel: channel.clone(),
                depth: *depth,
            });
        }
        // Operands produced here and consumed by later components must
        // be materialized (they already are — every component output is
        // written to DRAM — but record the ones later components read).
        let later: Vec<usize> = all
            .iter()
            .copied()
            .filter(|oi| components[ci + 1..].iter().flatten().any(|l| l == oi))
            .collect();
        for &oi in ops {
            let out = program.ops[oi].output();
            if later
                .iter()
                .any(|&l| program.ops[l].inputs().contains(&out))
            {
                c.materialized.push(out.to_string());
            }
        }
        planned.push(c);
    }

    // Surface maximal elementwise producer→consumer runs as advisory
    // fusable-chain notes (the linter re-derives them with proofs).
    for (ci, c) in planned.iter().enumerate() {
        let mut run: Vec<usize> = Vec::new();
        let flush = |run: &mut Vec<usize>, notes: &mut Vec<PlanNote>| {
            if run.len() >= 2 {
                notes.push(PlanNote::FusableChain {
                    component: ci,
                    modules: run
                        .iter()
                        .map(|&oi| format!("{}#{}", program.ops[oi].name(), oi))
                        .collect(),
                });
            }
            run.clear();
        };
        for &oi in &c.ops {
            let op = &program.ops[oi];
            let elementwise = matches!(op, Op::Copy { .. } | Op::Scal { .. } | Op::Axpy { .. });
            let extends = elementwise
                && run
                    .last()
                    .is_some_and(|&prev| op.inputs().contains(&program.ops[prev].output()));
            if !extends {
                flush(&mut run, &mut notes);
            }
            if elementwise {
                run.push(oi);
            }
        }
        flush(&mut run, &mut notes);
    }

    Ok(Plan {
        components: planned,
        notes,
    })
}

/// Choose variants, build and validate the MDAG for one candidate
/// component. Returns the component unless shapes/graph are broken;
/// non-multitree needs are reported through `deep_channels`.
fn build_component(
    program: &Program,
    producers: &HashMap<&str, usize>,
    ops: &[usize],
    cfg: &PlannerConfig,
) -> Result<PlannedComponent, PlanError> {
    let in_component =
        |name: &str| -> Option<usize> { producers.get(name).copied().filter(|p| ops.contains(p)) };

    // 1. GEMV variant selection.
    //    - x produced in-component cannot be replayed: transposed ops
    //      take TransRowStreamed (x consumed once); non-transposed take
    //      ColStreamed (x once, y replayed through DRAM).
    //    - x from DRAM: prefer the y-streamed-once variants, keeping
    //      every matrix stream in tiles-by-rows so shared reads stay
    //      order-compatible (the BICG adjustment).
    let mut variants: HashMap<usize, GemvVariant> = HashMap::new();
    for &oi in ops {
        match &program.ops[oi] {
            Op::Gemv { transposed, x, .. } => {
                let x_onchip = in_component(x).is_some();
                let v = match (transposed, x_onchip) {
                    (false, false) => GemvVariant::RowStreamed,
                    (false, true) => GemvVariant::ColStreamed,
                    (true, _) => GemvVariant::TransRowStreamed,
                };
                variants.insert(oi, v);
            }
            // GER replays its row operand once per row of tiles — only
            // an interface module may replay, so an in-component
            // producer forces a component split.
            Op::Ger { y, .. } if in_component(y).is_some() => {
                return Err(PlanError::Contract(
                    ContractCause::ReplayFromComputationalProducer {
                        operand: y.clone(),
                        op_index: oi,
                    },
                ));
            }
            _ => {}
        }
    }

    // 1b. A tiles-by-columns GEMV cannot consume a matrix produced
    //     in-component: GER chains emit tiles by rows, and a compute
    //     module cannot re-order its output stream (Sec. III-B). The
    //     rejection forces a split, after which `x` comes from DRAM and
    //     the row-streamed variant applies.
    for &oi in ops {
        if let Op::Gemv { a, .. } = &program.ops[oi] {
            if variants.get(&oi) == Some(&GemvVariant::ColStreamed) && in_component(a).is_some() {
                return Err(PlanError::Contract(
                    ContractCause::OnChipMatrixColStreamed {
                        matrix: a.clone(),
                        op_index: oi,
                    },
                ));
            }
        }
    }

    // 2. Matrix sharing: consumers of the same in-DRAM matrix must agree
    //    on the tile order. RowStreamed/TransRowStreamed agree (rows);
    //    ColStreamed does not — if a conflict arises the component is
    //    rejected by reporting an impossible deep-channel need.
    let mut matrix_consumers: HashMap<&str, Vec<usize>> = HashMap::new();
    for &oi in ops {
        match &program.ops[oi] {
            Op::Gemv { a, .. } | Op::Ger { a, .. } => {
                matrix_consumers.entry(a.as_str()).or_default().push(oi)
            }
            _ => continue,
        };
    }
    for (mat, consumers) in &matrix_consumers {
        if consumers.len() > 1 {
            let mut orders: Vec<bool> = Vec::new(); // true = by rows
            for &oi in consumers {
                let by_rows = match variants.get(&oi) {
                    Some(GemvVariant::ColStreamed) => false,
                    _ => true, // GER and row-streamed GEMVs
                };
                orders.push(by_rows);
            }
            if orders.iter().any(|&o| o != orders[0]) {
                // Incompatible tiling schemes on a shared stream.
                return Err(PlanError::Contract(ContractCause::TilingOrderConflict {
                    matrix: (*mat).to_string(),
                    op_indices: consumers.clone(),
                }));
            }
        }
    }

    // 3. Build the MDAG.
    let mut g = Mdag::new();
    let mut op_nodes: HashMap<usize, NodeId> = HashMap::new();
    for &oi in ops {
        op_nodes.insert(
            oi,
            g.add_compute(format!("{}#{oi}", program.ops[oi].name())),
        );
    }
    let mut source_nodes: HashMap<&str, NodeId> = HashMap::new();
    let mut deep_channels: Vec<(String, u64)> = Vec::new();

    // A DRAM matrix with several in-component consumers is read once and
    // fanned out by a duplicator (the BICG pattern): the interface edge
    // is counted once, the dup→consumer edges are on-chip.
    let mut dup_nodes: HashMap<&str, NodeId> = HashMap::new();
    for (mat, consumers) in &matrix_consumers {
        if consumers.len() > 1 && in_component(mat).is_none() {
            let (n, m) = program.mat_dims(mat)?;
            let src = g.add_interface(format!("read_{mat}"));
            let dup = g.add_compute(format!("dup_{mat}"));
            g.add_edge(src, dup, (n * m) as u64, (n * m) as u64, cfg.default_depth);
            source_nodes.insert(mat, src);
            dup_nodes.insert(mat, dup);
        }
    }

    for &oi in ops {
        let op = &program.ops[oi];
        let node = op_nodes[&oi];
        for inp in op.inputs() {
            let elems = match program.shapes.get(inp) {
                Some(Shape::Vector(l)) => *l as u64,
                Some(Shape::Matrix(n, m)) => (*n * *m) as u64,
                Some(Shape::Scalar) => 1,
                None => return Err(PlanError::UnknownOperand(inp.to_string())),
            };
            // Replay multiplicity: GEMV's DRAM-side x replay.
            let reps = match (op, program.shapes.get(inp)) {
                (Op::Gemv { a, x, .. }, Some(Shape::Vector(_))) if x == inp => {
                    let (n, m) = program.mat_dims(a)?;
                    match variants[&oi] {
                        GemvVariant::RowStreamed => n.div_ceil(cfg.tn) as u64,
                        GemvVariant::TransColStreamed => m.div_ceil(cfg.tm) as u64,
                        _ => 1,
                    }
                }
                (Op::Ger { y, .. }, Some(Shape::Vector(_))) if y == inp => {
                    let (n, _) = program.mat_dims(match op {
                        Op::Ger { a, .. } => a,
                        _ => unreachable!(),
                    })?;
                    n.div_ceil(cfg.tn) as u64
                }
                _ => 1,
            };
            let from = match (in_component(inp), dup_nodes.get(inp)) {
                (Some(p), _) => op_nodes[&p],
                (None, Some(&dup)) => dup,
                (None, None) => *source_nodes
                    .entry(inp)
                    .or_insert_with(|| g.add_interface(format!("read_{inp}"))),
            };
            let edge = g.add_edge(from, node, elems * reps, elems * reps, cfg.default_depth);
            // Burst annotation: a matrix stream whose consumer also
            // waits for an in-component vector (the ATAX pattern) must
            // buffer a full row of tiles before the consumer starts.
            if let Op::Gemv { a, x, .. } = op {
                if inp == a && in_component(x).is_some() {
                    let (_, m) = program.mat_dims(a)?;
                    g.set_burst_before_consume(edge, (cfg.tn * m) as u64);
                }
            }
        }
    }
    // Outputs: components always write their results to DRAM (later
    // components or the host read them from there).
    for &oi in ops {
        let op = &program.ops[oi];
        let out = op.output();
        let elems = match program.shapes.get(out) {
            Some(Shape::Vector(l)) => *l as u64,
            Some(Shape::Matrix(n, m)) => (*n * *m) as u64,
            Some(Shape::Scalar) => 1,
            None => return Err(PlanError::UnknownOperand(out.to_string())),
        };
        // y-replay variants write/re-read partials; count the extra I/O.
        let write_mult = match (op, variants.get(&oi)) {
            (Op::Gemv { a, .. }, Some(GemvVariant::ColStreamed)) => {
                let (_, m) = program.mat_dims(a)?;
                (2 * m.div_ceil(cfg.tm) - 1) as u64
            }
            (Op::Gemv { a, .. }, Some(GemvVariant::TransRowStreamed)) => {
                let (n, _) = program.mat_dims(a)?;
                (2 * n.div_ceil(cfg.tn) - 1) as u64
            }
            _ => 1,
        };
        let sink = g.add_interface(format!("write_{out}"));
        g.add_edge(
            op_nodes[&oi],
            sink,
            elems * write_mult,
            elems * write_mult,
            cfg.default_depth,
        );
    }

    match g.validate() {
        Validity::Valid => {}
        Validity::RequiresChannelDepth { .. } => {
            // Non-multitree: the heuristic only says "some channel must
            // deepen". Route through the rate analyzer for a verdict on
            // the *actual* depths — it replays the abstract Kahn-network
            // execution and, on deadlock, derives the exact minimum
            // depth per channel (or proves none exists).
            let rg = RateGraph::from_mdag(&g);
            match rg.analyze() {
                RateOutcome::Completed { .. } => {
                    // Default depths already suffice; no deep channel.
                }
                RateOutcome::Deadlock { .. } => match rg.repair() {
                    Some(fixes) => {
                        for (ch, depth) in fixes {
                            deep_channels.push((rg.channel_name(ch).to_string(), depth));
                        }
                    }
                    None => {
                        return Err(PlanError::Contract(ContractCause::Unschedulable {
                            detail: "no finite channel depth removes the deadlock".into(),
                        }))
                    }
                },
                RateOutcome::Disconnected { .. } | RateOutcome::Budget => {
                    return Err(PlanError::Contract(ContractCause::Unschedulable {
                        detail: "rate analysis could not certify the composition".into(),
                    }))
                }
            }
        }
        Validity::InvalidEdge { reason, .. } => {
            return Err(PlanError::Contract(ContractCause::InvalidEdge { reason }))
        }
        Validity::Cyclic => return Err(PlanError::Cyclic),
    }

    let io = g.interface_io_elements();
    Ok(PlannedComponent {
        ops: ops.to_vec(),
        gemv_variants: variants,
        mdag: g,
        io_elements: io,
        materialized: Vec::new(),
        deep_channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpydot_program(n: usize) -> Program {
        let mut p = Program::new();
        p.vector("w", n)
            .vector("v", n)
            .vector("u", n)
            .vector("z", n)
            .scalar("beta");
        p.op(Op::Axpy {
            alpha: -1.0,
            x: "v".into(),
            y: "w".into(),
            out: "z".into(),
        });
        p.op(Op::Dot {
            x: "z".into(),
            y: "u".into(),
            out: "beta".into(),
        });
        p
    }

    #[test]
    fn axpydot_plans_as_one_component() {
        let p = axpydot_program(4096);
        let plan = plan(&p, &PlannerConfig::default()).unwrap();
        assert_eq!(plan.components.len(), 1);
        let c = &plan.components[0];
        assert!(c.deep_channels.is_empty());
        // w, v, u in + z out + beta out = 4N + 1... the planner
        // materializes z (its consumer is in-component, but the output
        // edge is still written): 3N in + N (z) + 1 (beta).
        assert_eq!(c.io_elements, 4 * 4096 + 1);
        let desc = plan.describe(&p);
        assert!(desc.contains("axpy"));
        assert!(desc.contains("dot"));
    }

    fn bicg_program(n: usize, m: usize) -> Program {
        let mut p = Program::new();
        p.matrix("A", n, m)
            .vector("p", m)
            .vector("r", n)
            .vector("q", n)
            .vector("s", m);
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: false,
            x: "p".into(),
            y: None,
            out: "q".into(),
        });
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: true,
            x: "r".into(),
            y: None,
            out: "s".into(),
        });
        p
    }

    #[test]
    fn bicg_shares_the_matrix_in_one_component() {
        let p = bicg_program(2048, 2048);
        let plan = plan(&p, &PlannerConfig::default()).unwrap();
        assert_eq!(plan.components.len(), 1, "{}", plan.describe(&p));
        let c = &plan.components[0];
        // The planner must pick tiles-by-rows for both so A streams once.
        assert_eq!(c.gemv_variants[&0], GemvVariant::RowStreamed);
        assert_eq!(c.gemv_variants[&1], GemvVariant::TransRowStreamed);
        assert!(c.deep_channels.is_empty());
    }

    fn atax_program(n: usize, m: usize) -> Program {
        let mut p = Program::new();
        p.matrix("A", n, m)
            .vector("x", m)
            .vector("t", n)
            .vector("y", m);
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: false,
            x: "x".into(),
            y: None,
            out: "t".into(),
        });
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "A".into(),
            transposed: true,
            x: "t".into(),
            y: None,
            out: "y".into(),
        });
        p
    }

    #[test]
    fn atax_splits_without_deep_channels() {
        let p = atax_program(4096, 4096);
        let cfg = PlannerConfig {
            allow_deep_channels: false,
            ..Default::default()
        };
        let plan = plan(&p, &cfg).unwrap();
        assert_eq!(plan.components.len(), 2, "{}", plan.describe(&p));
        assert_eq!(plan.components[0].materialized, vec!["t".to_string()]);
        // The split carries its structured cause: the transposed GEMV
        // could not join because a channel would need deepening.
        assert!(plan.notes.iter().any(|n| matches!(
            n,
            PlanNote::Split {
                before_op: 1,
                cause: ContractCause::NeedsChannelDepth { .. },
            }
        )));
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let p = axpydot_program(64);
        for bad in [
            PlannerConfig {
                tn: 0,
                ..Default::default()
            },
            PlannerConfig {
                tm: 0,
                ..Default::default()
            },
            PlannerConfig {
                default_depth: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(plan(&p, &bad), Err(PlanError::InvalidConfig(_))));
        }
    }

    #[test]
    fn ger_replay_violation_reports_structured_cause() {
        // scal -> y; ger replays y: with y produced in-component the
        // sole-op component itself is invalid, so planning fails with
        // the structured replay cause rather than a reason string.
        let n = 32;
        let mut p = Program::new();
        p.matrix("A", n, n).matrix("B", n, n);
        p.vector("u", n).vector("y0", n).vector("y", n);
        p.op(Op::Scal {
            alpha: 2.0,
            x: "y0".into(),
            out: "y".into(),
        });
        p.op(Op::Ger {
            alpha: 1.0,
            a: "A".into(),
            x: "u".into(),
            y: "y".into(),
            out: "B".into(),
        });
        let plan = plan(&p, &PlannerConfig::default()).unwrap();
        // The planner recovers by splitting; the cause is recorded.
        assert_eq!(plan.components.len(), 2, "{}", plan.describe(&p));
        assert!(plan.notes.iter().any(|n| matches!(
            n,
            PlanNote::Split {
                before_op: 1,
                cause: ContractCause::ReplayFromComputationalProducer { .. },
            }
        )));
    }

    #[test]
    fn atax_single_component_with_deep_channel() {
        let p = atax_program(4096, 4096);
        let cfg = PlannerConfig {
            allow_deep_channels: true,
            ..Default::default()
        };
        let plan = plan(&p, &cfg).unwrap();
        assert_eq!(plan.components.len(), 1, "{}", plan.describe(&p));
        let c = &plan.components[0];
        // The dominant fix is the paper's: the matrix stream into the
        // transposed GEMV must hold a full row of tiles, T_N * M
        // (Sec. V-B). The rate analysis names the channel and also
        // derives the smaller depth the t-vector edge needs while the
        // consumer waits out the burst.
        let max = c.deep_channels.iter().map(|(_, d)| *d).max().unwrap();
        assert_eq!(max, 1024 * 4096);
        assert!(c
            .deep_channels
            .iter()
            .any(|(name, d)| name.contains("gemv_t") && *d == 1024 * 4096));
        // Every deep channel surfaces as a structured note.
        assert_eq!(
            plan.notes
                .iter()
                .filter(|n| matches!(n, PlanNote::DeepChannel { .. }))
                .count(),
            c.deep_channels.len()
        );
        // Deep-channel plan moves less data than the split plan.
        let split = plan_split_io(&p);
        assert!(c.io_elements < split);
    }

    fn plan_split_io(p: &Program) -> u64 {
        let cfg = PlannerConfig {
            allow_deep_channels: false,
            ..Default::default()
        };
        plan(p, &cfg).unwrap().io_elements()
    }

    #[test]
    fn elementwise_runs_surface_as_fusable_chain_notes() {
        // t = 2w, z = v - t, beta = z·u: the scal→axpy prefix is a
        // maximal elementwise run; the dot ends it.
        let mut p = Program::new();
        p.vector("w", 256)
            .vector("v", 256)
            .vector("u", 256)
            .vector("t", 256)
            .vector("z", 256)
            .scalar("beta");
        p.op(Op::Scal {
            alpha: 2.0,
            x: "w".into(),
            out: "t".into(),
        });
        p.op(Op::Axpy {
            alpha: -1.0,
            x: "v".into(),
            y: "t".into(),
            out: "z".into(),
        });
        p.op(Op::Dot {
            x: "z".into(),
            y: "u".into(),
            out: "beta".into(),
        });
        let planned = plan(&p, &PlannerConfig::default()).unwrap();
        let chains: Vec<_> = planned
            .notes
            .iter()
            .filter_map(|n| match n {
                PlanNote::FusableChain { component, modules } => Some((component, modules)),
                _ => None,
            })
            .collect();
        assert_eq!(chains.len(), 1, "{}", planned.describe(&p));
        let (component, modules) = &chains[0];
        assert_eq!(**component, 0);
        assert_eq!(modules.as_slice(), ["scal#0", "axpy#1"]);
        // A single elementwise op is not a chain; unrelated ops never
        // join one.
        let mut q = Program::new();
        q.vector("x", 64).vector("y", 64).vector("s", 64);
        q.op(Op::Scal {
            alpha: 3.0,
            x: "x".into(),
            out: "s".into(),
        });
        q.op(Op::Dot {
            x: "s".into(),
            y: "y".into(),
            out: "beta".into(),
        });
        q.scalar("beta");
        let plan2 = plan(&q, &PlannerConfig::default()).unwrap();
        assert!(
            !plan2
                .notes
                .iter()
                .any(|n| matches!(n, PlanNote::FusableChain { .. })),
            "{}",
            plan2.describe(&q)
        );
    }

    fn gemver_program(n: usize) -> Program {
        let mut p = Program::new();
        p.matrix("A", n, n).matrix("B1", n, n).matrix("B", n, n);
        for v in ["u1", "v1", "u2", "v2", "y", "z", "x", "w"] {
            p.vector(v, n);
        }
        p.op(Op::Ger {
            alpha: 1.0,
            a: "A".into(),
            x: "u1".into(),
            y: "v1".into(),
            out: "B1".into(),
        });
        p.op(Op::Ger {
            alpha: 1.0,
            a: "B1".into(),
            x: "u2".into(),
            y: "v2".into(),
            out: "B".into(),
        });
        p.op(Op::Gemv {
            alpha: 0.9,
            beta: 1.0,
            a: "B".into(),
            transposed: true,
            x: "y".into(),
            y: Some("z".into()),
            out: "x".into(),
        });
        p.op(Op::Gemv {
            alpha: 1.1,
            beta: 0.0,
            a: "B".into(),
            transposed: false,
            x: "x".into(),
            y: None,
            out: "w".into(),
        });
        p
    }

    #[test]
    fn gemver_reproduces_the_fig9_schedule() {
        let p = gemver_program(4096);
        let cfg = PlannerConfig {
            allow_deep_channels: false,
            ..Default::default()
        };
        let plan = plan(&p, &cfg).unwrap();
        // Fig. 9: component 1 = GER, GER, GEMVt; component 2 = GEMV.
        assert_eq!(plan.components.len(), 2, "{}", plan.describe(&p));
        assert_eq!(plan.components[0].ops, vec![0, 1, 2]);
        assert_eq!(plan.components[1].ops, vec![3]);
        // B and x cross the component boundary through DRAM.
        let mut mat = plan.components[0].materialized.clone();
        mat.sort();
        assert_eq!(mat, vec!["B".to_string(), "x".to_string()]);
    }

    #[test]
    fn col_streamed_consumer_of_onchip_matrix_forces_split() {
        // ger -> B; scal -> s; gemv(B, x = s): with both B and s
        // produced on-chip the GEMV would need tiles-by-columns on a
        // tiles-by-rows stream — the planner must split instead.
        let n = 64;
        let mut p = Program::new();
        p.matrix("A", n, n).matrix("B", n, n);
        p.vector("u", n)
            .vector("v", n)
            .vector("x0", n)
            .vector("s", n)
            .vector("out", n);
        p.op(Op::Ger {
            alpha: 1.0,
            a: "A".into(),
            x: "u".into(),
            y: "v".into(),
            out: "B".into(),
        });
        p.op(Op::Scal {
            alpha: 2.0,
            x: "x0".into(),
            out: "s".into(),
        });
        p.op(Op::Gemv {
            alpha: 1.0,
            beta: 0.0,
            a: "B".into(),
            transposed: false,
            x: "s".into(),
            y: None,
            out: "out".into(),
        });
        let cfg = PlannerConfig {
            tn: 16,
            tm: 16,
            ..Default::default()
        };
        let plan = plan(&p, &cfg).unwrap();
        assert!(plan.components.len() >= 2, "{}", plan.describe(&p));
        // The GEMV lands in a later component where both operands come
        // from DRAM, so it row-streams.
        let last = plan.components.last().unwrap();
        let gemv_variant = last.gemv_variants.values().next();
        assert_eq!(gemv_variant, Some(&GemvVariant::RowStreamed));
    }

    #[test]
    fn shape_errors_are_caught() {
        let mut p = Program::new();
        p.vector("x", 8).vector("y", 9).scalar("d");
        p.op(Op::Dot {
            x: "x".into(),
            y: "y".into(),
            out: "d".into(),
        });
        assert!(matches!(
            plan(&p, &PlannerConfig::default()),
            Err(PlanError::ShapeMismatch { .. })
        ));

        let mut p = Program::new();
        p.vector("x", 8);
        p.op(Op::Scal {
            alpha: 2.0,
            x: "x".into(),
            out: "missing".into(),
        });
        assert!(matches!(
            plan(&p, &PlannerConfig::default()),
            Err(PlanError::UnknownOperand(_))
        ));
    }

    #[test]
    fn multiple_writers_rejected() {
        let mut p = Program::new();
        p.vector("x", 8).vector("o", 8);
        p.op(Op::Copy {
            x: "x".into(),
            out: "o".into(),
        });
        p.op(Op::Scal {
            alpha: 2.0,
            x: "x".into(),
            out: "o".into(),
        });
        assert!(matches!(
            plan(&p, &PlannerConfig::default()),
            Err(PlanError::MultipleWriters(n)) if n == "o"
        ));
    }

    #[test]
    fn empty_program_plans_to_nothing() {
        let p = Program::new();
        let plan = plan(&p, &PlannerConfig::default()).unwrap();
        assert!(plan.components.is_empty());
        assert_eq!(plan.io_elements(), 0);
    }
}
