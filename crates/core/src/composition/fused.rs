//! The fused compiled execution backend (ROADMAP item 1).
//!
//! PR 4 measured that *transport*, not compute, dominates the threaded
//! simulator's wall clock, and the fusion analysis ([`super::fusion`])
//! proves which module chains of a planned component may legally
//! collapse. This module closes the loop: a component whose
//! [`FusionPlan`] admits regions is split into **execution units** —
//! fused regions run as straight-line single-threaded loops over
//! chunked slices (no channels, no locks, no thread spawns), and every
//! other module keeps running on the threaded hlssim path via
//! [`run_component`]. Units hand off through the operand
//! [`DeviceBuffer`]s, which is exactly the boundary the threaded
//! executor already uses: every op output is teed to its buffer, and a
//! consumer whose producer is absent from the simulation reads the
//! buffer back. Splitting therefore changes *where* values travel, not
//! *what* they are.
//!
//! Safety posture: the backend re-verifies every region's proof
//! obligations with [`check_obligations`] at execution time and
//! degrades to the plain threaded path whenever anything — obligations,
//! evaluator compilation, an unexpected module name — does not check
//! out. An armed fault hook rejects all regions (`recovery-guards`),
//! so chaos/recovery runs under injection are *identical* to the
//! threaded backend by construction. Value bit-identity of the fused
//! loop itself is by shared semantics: the per-element function
//! ([`super::fusion::apply_elementwise_t`]) performs exactly the
//! multiply / fused-multiply-add the production `scal` / `axpy`
//! modules perform.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use fblas_audit::ModulePrediction;
use fblas_hlssim::GuardReport;
use fblas_trace::{ModuleScope, Tracer};
use parking_lot::Mutex;

use super::executor::{run_component, BufRouter, ComponentOptions, ExecError};
use super::fusion::{
    analyze_fusion, apply_elementwise_t, build_evaluator, check_obligations, sems_for_component,
    FusedEvaluator, FusionPlan, ModuleSem, Src,
};
use super::planner::{Op, PlannedComponent, PlannerConfig, Program};
use crate::routines::gemv::Gemv;
use crate::routines::{Axpy, Scal, VecCopy};
use crate::scalar::Scalar;

/// Vectorization width the executor instantiates reductions at; keeps
/// the fusion semantics aligned with `run_component`'s `Dot::new(n, 16)`.
const EXEC_WIDTH: usize = 16;

/// Which execution path a plan runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Every module on the threaded hlssim simulator (the PR-1 path).
    Threaded,
    /// Fuse legally fusable regions into single-loop kernels; fall back
    /// to threaded for everything else. Identical to [`Backend::Auto`]
    /// in behavior — the distinct variant records the caller's intent.
    Fused,
    /// Fuse when legal (the default): bit-identical to `Threaded` by
    /// the differential keystone, so there is no reason not to.
    Auto,
}

impl Backend {
    /// Resolve the backend from the `FBLAS_BACKEND` environment knob
    /// (re-read every call; `auto` when unset or invalid).
    pub fn resolve() -> Backend {
        match fblas_hlssim::env::backend() {
            "threaded" => Backend::Threaded,
            "fused" => Backend::Fused,
            _ => Backend::Auto,
        }
    }

    /// Stable lowercase name (metric labels, trace metadata).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Threaded => "threaded",
            Backend::Fused => "fused",
            Backend::Auto => "auto",
        }
    }

    /// Whether this backend may run fused regions.
    pub fn fused_allowed(self) -> bool {
        !matches!(self, Backend::Threaded)
    }
}

/// The fusion analysis of one planned component, exactly as the fused
/// backend consumes it: semantics from the component's op list (so
/// coefficients are concrete) and the legality verdict over its MDAG.
/// `recovery_armed` must be true when a fault hook is armed over the
/// run — every region is then rejected with a `recovery-guards`
/// witness and execution stays fully threaded.
pub fn fusion_plan_for_component(
    program: &Program,
    component: &PlannedComponent,
    recovery_armed: bool,
) -> (Vec<ModuleSem>, FusionPlan) {
    let sems = sems_for_component(&component.mdag, program.ops(), EXEC_WIDTH);
    let plan = analyze_fusion(&component.mdag, &sems, "exec", recovery_armed);
    (sems, plan)
}

/// One schedulable unit of a split component.
enum Unit {
    /// Program op indices run together on one threaded simulation.
    Threaded(Vec<usize>),
    /// Index into [`Schedule::regions`].
    Fused(usize),
}

/// A fused region compiled against the component, with every name
/// already resolved to operand buffers.
struct CompiledRegion {
    /// Region name (`fuse0`, …) for the trace lane.
    name: String,
    /// The straight-line per-element program.
    eval: FusedEvaluator,
    /// Operand name backing each evaluator input stream, in order.
    input_operands: Vec<String>,
    /// Operand name each absorbed write sink drains into, in order.
    sink_operands: Vec<String>,
    /// Program op indices fused into this region.
    ops: Vec<usize>,
    /// Program op indices the region's boundary inputs depend on.
    deps: Vec<usize>,
}

/// The unit schedule of one component.
struct Schedule {
    units: Vec<Unit>,
    regions: Vec<CompiledRegion>,
}

/// Operand a channel-producer node resolves to: `read_<v>` sources and
/// `<op>#<oi>` compute nodes both tee/stream their operand's buffer.
fn node_operand(program: &Program, node: &str) -> Option<String> {
    if let Some(v) = node.strip_prefix("read_") {
        return Some(v.to_string());
    }
    let (_, idx) = node.rsplit_once('#')?;
    let oi: usize = idx.parse().ok()?;
    Some(program.ops().get(oi)?.output().to_string())
}

/// Program op index a module name carries (`scal#3` → 3).
fn node_op_index(node: &str) -> Option<usize> {
    node.rsplit_once('#').and_then(|(_, idx)| idx.parse().ok())
}

/// Compile the component's fusion plan into a unit schedule. `None`
/// means "run the whole component threaded" — the safe fallback for
/// anything this backend does not fully understand.
fn compile_schedule(
    program: &Program,
    cfg: &PlannerConfig,
    component: &PlannedComponent,
    sems: &[ModuleSem],
    plan: &FusionPlan,
) -> Option<Schedule> {
    if plan.regions.is_empty() {
        return None;
    }
    let comp_ops: HashSet<usize> = component.ops.iter().copied().collect();
    let mut producer: HashMap<&str, usize> = HashMap::new();
    for &oi in &component.ops {
        producer.insert(program.ops()[oi].output(), oi);
    }

    let mut regions = Vec::new();
    let mut region_of_op: HashMap<usize, usize> = HashMap::new();
    for (ri, region) in plan.regions.iter().enumerate() {
        let eval = build_evaluator(&component.mdag, sems, region).ok()?;
        // Fused op set: the relay compute members.
        let mut ops = Vec::new();
        for m in &region.modules {
            if let Some(oi) = node_op_index(m) {
                if !comp_ops.contains(&oi) || region_of_op.contains_key(&oi) {
                    return None;
                }
                region_of_op.insert(oi, ri);
                ops.push(oi);
            }
        }
        if ops.is_empty() {
            return None;
        }
        // Every input stream and sink must resolve to a bound vector
        // operand of the program.
        let mut input_operands = Vec::new();
        let mut deps = Vec::new();
        for key in &eval.inputs {
            let node = key.split_once("->").map(|(f, _)| f).unwrap_or(key);
            let operand = node_operand(program, node)?;
            program.vec_len(&operand).ok()?;
            if let Some(oi) = node_op_index(node) {
                deps.push(oi);
            }
            input_operands.push(operand);
        }
        let mut sink_operands = Vec::new();
        for s in &eval.sinks {
            let operand = s.module.strip_prefix("write_")?.to_string();
            program.vec_len(&operand).ok()?;
            sink_operands.push(operand);
        }
        // A boundary output's values must survive through a sink tee
        // (the planner always tees op outputs to `write_*`); without
        // one the forwarded stream would be lost.
        if let Some(out) = eval.output {
            if !eval.sinks.iter().any(|s| s.src == out) {
                return None;
            }
        }
        regions.push(CompiledRegion {
            name: region.name.clone(),
            eval,
            input_operands,
            sink_operands,
            ops,
            deps,
        });
    }

    // A multi-round GEMV replays its y initial from DRAM; the threaded
    // executor rejects an in-component producer for it (a replay
    // contract violation). Splitting must not mask that error by
    // pulling the producer into a fused region, so bail out.
    for &oi in &component.ops {
        if let Op::Gemv { a, y: Some(yn), .. } = &program.ops()[oi] {
            if let (Ok((n, m)), Some(variant)) =
                (program.mat_dims(a), component.gemv_variants.get(&oi))
            {
                let g = Gemv::new(
                    *variant,
                    n,
                    m,
                    cfg.tn.min(n.max(1)),
                    cfg.tm.min(m.max(1)),
                    EXEC_WIDTH,
                );
                if g.y_rounds() > 1 {
                    if let Some(p) = producer.get(yn.as_str()) {
                        if region_of_op.contains_key(p) {
                            return None;
                        }
                    }
                }
            }
        }
    }

    // In-component dependencies of each threaded op.
    let threaded: Vec<usize> = component
        .ops
        .iter()
        .copied()
        .filter(|oi| !region_of_op.contains_key(oi))
        .collect();
    let op_deps = |oi: usize| -> Vec<usize> {
        program.ops()[oi]
            .inputs()
            .iter()
            .filter_map(|inp| producer.get(*inp).copied())
            .filter(|p| *p != oi)
            .collect()
    };

    // Alternating fixpoint: a maximal closed batch of ready threaded
    // ops (they stream to each other through channels, exactly as the
    // unsplit component would), then every ready region, until done.
    let mut done: HashSet<usize> = HashSet::new();
    let mut pending: Vec<usize> = threaded;
    let mut region_done = vec![false; regions.len()];
    let mut units = Vec::new();
    loop {
        let mut batch: Vec<usize> = Vec::new();
        let mut grew = true;
        while grew {
            grew = false;
            for &oi in &pending {
                if batch.contains(&oi) {
                    continue;
                }
                let ready = op_deps(oi)
                    .iter()
                    .all(|d| done.contains(d) || batch.contains(d));
                if ready {
                    batch.push(oi);
                    grew = true;
                }
            }
        }
        let batched = !batch.is_empty();
        if batched {
            // Preserve the component's op order inside the batch.
            batch.sort_by_key(|oi| component.ops.iter().position(|c| c == oi));
            done.extend(batch.iter().copied());
            pending.retain(|oi| !batch.contains(oi));
            units.push(Unit::Threaded(batch));
        }
        let mut launched = false;
        for (ri, region) in regions.iter().enumerate() {
            if !region_done[ri] && region.deps.iter().all(|d| done.contains(d)) {
                region_done[ri] = true;
                done.extend(region.ops.iter().copied());
                units.push(Unit::Fused(ri));
                launched = true;
            }
        }
        if pending.is_empty() && region_done.iter().all(|d| *d) {
            break;
        }
        if !batched && !launched {
            // No progress — a dependency shape this scheduler does not
            // model. Run the whole component threaded.
            return None;
        }
    }
    Some(Schedule { units, regions })
}

/// The cycle-model prediction the threaded executor would emit for a
/// relay op — fused execution must predict identically, because the
/// analytic `C = L + I·M` model is a property of the *plan*, not of
/// the backend that runs it.
fn prediction_for_op<T: Scalar>(
    program: &Program,
    cfg: &PlannerConfig,
    oi: usize,
) -> Result<ModulePrediction, ExecError> {
    match &program.ops()[oi] {
        Op::Scal { x, .. } => {
            let n = program.vec_len(x)?;
            let w = cfg.tm.clamp(1, 16);
            let s = Scal::new(n, w);
            Ok(ModulePrediction::compute(
                "scal",
                s.cost::<T>(),
                n as u64,
                w as u64,
            ))
        }
        Op::Copy { x, .. } => {
            let n = program.vec_len(x)?;
            let c = VecCopy::new(n, EXEC_WIDTH);
            Ok(ModulePrediction::compute(
                "copy",
                c.cost::<T>(),
                n as u64,
                16,
            ))
        }
        Op::Axpy { x, .. } => {
            let n = program.vec_len(x)?;
            let a = Axpy::new(n, EXEC_WIDTH);
            Ok(ModulePrediction::compute(
                "axpy",
                a.cost::<T>(),
                n as u64,
                16,
            ))
        }
        _ => unreachable!("fused regions contain only relay ops"),
    }
}

/// Execute one compiled region as a straight-line loop over chunked
/// slices of the operand buffers: gather input streams, apply the
/// per-element step program, write the absorbed sinks back. The
/// boundary output (if any) needs no action — its values are the tail
/// relay's, which the absorbed `write_*` tee already persists, and the
/// downstream unit reads them from that buffer.
fn run_region<T: Scalar>(
    region: &CompiledRegion,
    router: &BufRouter<'_, T>,
    tracer: Option<&Tracer>,
) -> Result<(), ExecError> {
    let _span = ModuleScope::enter(&format!("fused:{}", region.name), tracer);
    let reg = fblas_metrics::registry();
    let t0 = reg.as_ref().map(|_| std::time::Instant::now());

    let elements = region.eval.elements as usize;
    let mut streams: Vec<Vec<T>> = Vec::with_capacity(region.input_operands.len());
    for operand in &region.input_operands {
        let data = router.input(operand)?.to_host();
        if data.len() < elements {
            return Err(ExecError::WrongLength {
                operand: operand.clone(),
                expected: elements,
                got: data.len(),
            });
        }
        streams.push(data);
    }

    let mut sink_vals: Vec<Vec<T>> = region
        .sink_operands
        .iter()
        .map(|_| Vec::with_capacity(elements))
        .collect();
    let mut slots = vec![T::ZERO; region.eval.steps.len()];
    let chunk = fblas_hlssim::env::chunk().max(1);
    let mut t = 0usize;
    while t < elements {
        let end = (t + chunk).min(elements);
        for i in t..end {
            for step in &region.eval.steps {
                let mut vals = [T::ZERO; 2];
                for (k, src) in step.srcs.iter().enumerate().take(2) {
                    vals[k] = match *src {
                        Src::Slot(j) => slots[j],
                        Src::Input(j) => streams[j][i],
                    };
                }
                slots[step.slot] = match apply_elementwise_t(&step.sem, &vals[..step.srcs.len()]) {
                    Some(v) => v,
                    None => unreachable!("fused steps carry relay semantics"),
                };
            }
            for (si, sink) in region.eval.sinks.iter().enumerate() {
                let v = match sink.src {
                    Src::Slot(j) => slots[j],
                    Src::Input(j) => streams[j][i],
                };
                sink_vals[si].push(v);
            }
        }
        t = end;
    }

    for (si, operand) in region.sink_operands.iter().enumerate() {
        router.output(operand)?.from_host(&sink_vals[si]);
    }

    if let (Some(reg), Some(t0)) = (reg, t0) {
        reg.counter("fblas_fused_regions_total", &[]).inc();
        reg.counter("fblas_fused_elems_total", &[])
            .add(elements as u64);
        reg.histogram("fblas_fused_region_us", &[])
            .record(fblas_metrics::elapsed_us(t0));
    }
    Ok(())
}

/// Run one component on the fused backend: analyze, re-verify the
/// obligations, split into units, and execute — or degrade to one
/// plain threaded [`run_component`] call whenever fusion is not
/// provably safe. Audit predictions come out in the component's op
/// order regardless of unit interleaving, so `merge_predictions` sees
/// the same sequence both backends.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_component_fused<T: Scalar>(
    program: &Program,
    cfg: &PlannerConfig,
    component: &PlannedComponent,
    router: &BufRouter<'_, T>,
    scalars: &Arc<Mutex<HashMap<String, T>>>,
    tracer: Option<&Tracer>,
    predictions: Option<&mut Vec<ModulePrediction>>,
    opts: &ComponentOptions,
) -> Result<Vec<GuardReport>, ExecError> {
    let recovery_armed = opts.hook.is_some();
    let (sems, plan) = fusion_plan_for_component(program, component, recovery_armed);
    let schedule = if plan.regions.is_empty()
        || !check_obligations(&plan, &component.mdag, &sems, recovery_armed).is_empty()
    {
        None
    } else {
        compile_schedule(program, cfg, component, &sems, &plan)
    };
    let Some(schedule) = schedule else {
        return run_component(
            program,
            cfg,
            &component.ops,
            &component.gemv_variants,
            router,
            scalars,
            tracer,
            predictions,
            opts,
        );
    };

    let mut guards = Vec::new();
    let mut tagged: Vec<(usize, ModulePrediction)> = Vec::new();
    for unit in &schedule.units {
        match unit {
            Unit::Threaded(ops) => {
                let mut unit_preds = predictions.as_ref().map(|_| Vec::new());
                let g = run_component(
                    program,
                    cfg,
                    ops,
                    &component.gemv_variants,
                    router,
                    scalars,
                    tracer,
                    unit_preds.as_mut(),
                    opts,
                )?;
                guards.extend(g);
                if let Some(ps) = unit_preds {
                    // `run_component` emits exactly one prediction per
                    // op, in its ops order.
                    tagged.extend(ops.iter().copied().zip(ps));
                }
            }
            Unit::Fused(ri) => {
                let region = &schedule.regions[*ri];
                run_region(region, router, tracer)?;
                if predictions.is_some() {
                    for &oi in &region.ops {
                        tagged.push((oi, prediction_for_op::<T>(program, cfg, oi)?));
                    }
                }
            }
        }
    }
    if let Some(out) = predictions {
        let pos: HashMap<usize, usize> = component
            .ops
            .iter()
            .enumerate()
            .map(|(i, &oi)| (oi, i))
            .collect();
        tagged.sort_by_key(|(oi, _)| pos.get(oi).copied().unwrap_or(usize::MAX));
        out.extend(tagged.into_iter().map(|(_, p)| p));
    }
    Ok(guards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::{execute_plan_with_backend, plan, Op, Plan, PlannerConfig, Program};
    use crate::host::buffer::DeviceBuffer;

    /// `b = 1.5·x; c = -0.75·b + y; d = c` — a three-relay chain, the
    /// canonical fusable shape.
    fn chain_program(n: usize) -> Program {
        let mut p = Program::new();
        p.vector("x", n)
            .vector("y", n)
            .vector("b", n)
            .vector("c", n)
            .vector("d", n);
        p.op(Op::Scal {
            alpha: 1.5,
            x: "x".into(),
            out: "b".into(),
        });
        p.op(Op::Axpy {
            alpha: -0.75,
            x: "b".into(),
            y: "y".into(),
            out: "c".into(),
        });
        p.op(Op::Copy {
            x: "c".into(),
            out: "d".into(),
        });
        p
    }

    fn bind(n: usize) -> HashMap<String, DeviceBuffer<f32>> {
        let mut bufs = HashMap::new();
        for (i, name) in ["x", "y", "b", "c", "d"].iter().enumerate() {
            let data: Vec<f32> = (0..n)
                .map(|j| ((j as f32 + i as f32 * 13.0) * 0.173).sin())
                .collect();
            bufs.insert(name.to_string(), DeviceBuffer::from_vec(*name, data, i % 4));
        }
        bufs
    }

    fn planned(p: &Program, cfg: &PlannerConfig) -> Plan {
        plan(p, cfg).unwrap()
    }

    #[test]
    fn relay_chain_fuses_into_one_region_and_schedules() {
        let p = chain_program(64);
        let cfg = PlannerConfig::default();
        let thep = planned(&p, &cfg);
        assert_eq!(thep.components.len(), 1);
        let comp = &thep.components[0];
        let (sems, fplan) = fusion_plan_for_component(&p, comp, false);
        assert_eq!(fplan.regions.len(), 1, "{:?}", fplan.rejections);
        assert!(check_obligations(&fplan, &comp.mdag, &sems, false).is_empty());
        let schedule = compile_schedule(&p, &cfg, comp, &sems, &fplan).expect("schedulable");
        assert_eq!(schedule.regions.len(), 1);
        assert!(schedule.units.iter().any(|u| matches!(u, Unit::Fused(_))));
        // All three relay ops live in the region; nothing runs threaded.
        assert_eq!(schedule.regions[0].ops.len(), 3);
        assert!(!schedule
            .units
            .iter()
            .any(|u| matches!(u, Unit::Threaded(_))));
        // Every intermediate is drained to its buffer by an absorbed tee.
        let mut sinks = schedule.regions[0].sink_operands.clone();
        sinks.sort();
        assert_eq!(sinks, vec!["b", "c", "d"]);
    }

    #[test]
    fn recovery_armed_rejects_all_regions() {
        let p = chain_program(32);
        let cfg = PlannerConfig::default();
        let thep = planned(&p, &cfg);
        let (_, fplan) = fusion_plan_for_component(&p, &thep.components[0], true);
        assert!(fplan.regions.is_empty());
    }

    #[test]
    fn fused_backend_is_bit_identical_to_threaded_on_the_chain() {
        let n = 257; // not a multiple of any chunk size
        let p = chain_program(n);
        let cfg = PlannerConfig::default();
        let thep = planned(&p, &cfg);

        let bufs_t = bind(n);
        let bufs_f = bind(n);
        execute_plan_with_backend::<f32>(&p, &thep, &cfg, &bufs_t, None, Backend::Threaded)
            .unwrap();
        execute_plan_with_backend::<f32>(&p, &thep, &cfg, &bufs_f, None, Backend::Fused).unwrap();
        for name in ["b", "c", "d"] {
            let t = bufs_t[name].to_host();
            let f = bufs_f[name].to_host();
            assert_eq!(t.len(), f.len());
            for i in 0..t.len() {
                assert_eq!(
                    t[i].to_bits(),
                    f[i].to_bits(),
                    "operand {name}[{i}]: threaded {} vs fused {}",
                    t[i],
                    f[i]
                );
            }
        }
    }

    #[test]
    fn backend_resolves_from_env_knob() {
        // Resolution reads the environment on every call; don't leave
        // state behind for other tests.
        std::env::remove_var("FBLAS_BACKEND");
        assert_eq!(Backend::resolve(), Backend::Auto);
        std::env::set_var("FBLAS_BACKEND", "threaded");
        assert_eq!(Backend::resolve(), Backend::Threaded);
        std::env::set_var("FBLAS_BACKEND", "fused");
        assert_eq!(Backend::resolve(), Backend::Fused);
        std::env::remove_var("FBLAS_BACKEND");
        assert!(Backend::Auto.fused_allowed());
        assert!(Backend::Fused.fused_allowed());
        assert!(!Backend::Threaded.fused_allowed());
    }
}
