//! Generic forward/backward worklist dataflow engine over module DAGs.
//!
//! The rate analyzer ([`super::rates`]) answers *does
//! this composition run to completion* by abstract execution. The
//! passes layered on top of it — fusion legality, channel liveness,
//! dead-module elimination — are classic dataflow problems: facts
//! attached to nodes, propagated along (or against) the edges of the
//! module DAG to a fixpoint. This module is the engine they share: a
//! direction-agnostic worklist solver over a [`FlowGraph`], with a
//! small [`BitSet`] fact domain for the set-valued analyses.
//!
//! The solver assumes monotone transfer functions over a finite-height
//! lattice (every analysis in this crate uses unions of finite sets or
//! booleans). A visit budget guards against a non-monotone analysis
//! looping forever; hitting it is reported via
//! [`Solution::converged`] rather than by panicking, so a lint pass
//! can degrade to "no verdict" instead of taking the CLI down.

use super::Mdag;

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from producers to consumers (along edges).
    Forward,
    /// Facts flow from consumers to producers (against edges).
    Backward,
}

/// Adjacency view of an [`Mdag`] for the solver: nodes are indexed
/// `0..node_count`, parallel edges deduplicated (a fact propagates the
/// same way over one edge or five).
#[derive(Debug, Clone)]
pub struct FlowGraph {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl FlowGraph {
    /// Build the adjacency view of a module DAG.
    pub fn from_mdag(g: &Mdag) -> Self {
        let n = g.node_count();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in g.edges() {
            let (u, v) = (e.from.0, e.to.0);
            if !succs[u].contains(&v) {
                succs[u].push(v);
                preds[v].push(u);
            }
        }
        FlowGraph { succs, preds }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Distinct successors of `n`.
    pub fn succs(&self, n: usize) -> &[usize] {
        &self.succs[n]
    }

    /// Distinct predecessors of `n`.
    pub fn preds(&self, n: usize) -> &[usize] {
        &self.preds[n]
    }
}

/// One dataflow analysis: a fact lattice, a transfer function, and a
/// direction. `join` must be monotone (only ever grow the fact) for the
/// solver to terminate within its budget.
pub trait Analysis {
    /// The fact attached to every node.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The fact a node starts with before anything has propagated —
    /// the boundary condition (e.g. "a write sink is live at itself").
    fn boundary(&self, node: usize) -> Self::Fact;

    /// Merge `from` into `into`; return `true` iff `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The fact a node propagates onward, given the joined incoming
    /// fact (which includes its boundary).
    fn transfer(&self, node: usize, incoming: &Self::Fact) -> Self::Fact;
}

/// Fixpoint of one analysis over one graph.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Joined incoming fact per node (boundary ⊔ dependencies' output).
    pub facts_in: Vec<F>,
    /// Outgoing fact per node (`transfer` applied to `facts_in`).
    pub facts_out: Vec<F>,
    /// Total node visits the worklist performed.
    pub visits: u64,
    /// `false` iff the visit budget ran out before the fixpoint.
    pub converged: bool,
}

/// Run `analysis` over `graph` to a fixpoint with a worklist.
///
/// Dependencies are predecessors for a forward analysis and successors
/// for a backward one; a node re-enters the worklist whenever a
/// dependency's outgoing fact changes. On DAGs the initial seeding in
/// index order makes this close to one sweep; on cyclic graphs (lint
/// sees those before the cycle check rejects them) the budget of
/// `8·(n+2)²` visits bounds the damage.
pub fn solve<A: Analysis>(graph: &FlowGraph, analysis: &A) -> Solution<A::Fact> {
    let n = graph.node_count();
    let forward = matches!(analysis.direction(), Direction::Forward);
    let deps = |i: usize| {
        if forward {
            graph.preds(i)
        } else {
            graph.succs(i)
        }
    };
    let users = |i: usize| {
        if forward {
            graph.succs(i)
        } else {
            graph.preds(i)
        }
    };

    let mut facts_in: Vec<A::Fact> = (0..n).map(|i| analysis.boundary(i)).collect();
    let mut facts_out: Vec<A::Fact> = facts_in
        .iter()
        .enumerate()
        .map(|(i, f)| analysis.transfer(i, f))
        .collect();

    let mut queued = vec![true; n];
    let mut worklist: std::collections::VecDeque<usize> = (0..n).collect();
    let budget = 8 * ((n as u64) + 2) * ((n as u64) + 2);
    let mut visits = 0u64;

    while let Some(i) = worklist.pop_front() {
        queued[i] = false;
        visits += 1;
        if visits > budget {
            return Solution {
                facts_in,
                facts_out,
                visits,
                converged: false,
            };
        }
        let mut incoming = analysis.boundary(i);
        for &d in deps(i) {
            analysis.join(&mut incoming, &facts_out[d]);
        }
        if incoming == facts_in[i] && visits > n as u64 {
            continue;
        }
        let out = analysis.transfer(i, &incoming);
        let changed = out != facts_out[i];
        facts_in[i] = incoming;
        facts_out[i] = out;
        if changed {
            for &u in users(i) {
                if !queued[u] {
                    queued[u] = true;
                    worklist.push_back(u);
                }
            }
        }
    }

    Solution {
        facts_in,
        facts_out,
        visits,
        converged: true,
    }
}

/// Dense bit set over node (or sink) indices — the fact domain for the
/// set-valued analyses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Empty set able to hold indices `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert `i`; returns `true` iff it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Union `other` into `self`; returns `true` iff `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Indices of the set bits, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Backward liveness: which *sink* nodes (interface writes) observe
/// each node's results. A compute node whose fixpoint fact is empty is
/// dead — its values are produced and discarded.
pub struct LiveSinks<'a> {
    /// `sink_index[n] = Some(k)` when node `n` is the `k`-th live sink.
    pub sink_index: &'a [Option<usize>],
}

impl Analysis for LiveSinks<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, node: usize) -> BitSet {
        let mut f = BitSet::new(self.sink_index.len());
        if let Some(k) = self.sink_index[node] {
            f.insert(k);
        }
        f
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, _node: usize, incoming: &BitSet) -> BitSet {
        incoming.clone()
    }
}

/// Forward reachability-from-a-region through *external* nodes only:
/// the convexity check for fusion. A region node absorbs the fact
/// (paths end there); an external node whose predecessor set touches
/// the region seeds it. A region node whose joined incoming fact is
/// `true` is re-entered by a path that left the region — fusing the
/// region would deadlock that path against the collapsed channels.
pub struct ExternalReach<'a> {
    /// `in_region[n]` marks the region being tested.
    pub in_region: &'a [bool],
    /// Precomputed seed: external node with ≥1 predecessor in-region.
    pub seeded: &'a [bool],
}

impl Analysis for ExternalReach<'_> {
    type Fact = bool;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, node: usize) -> bool {
        !self.in_region[node] && self.seeded[node]
    }

    fn join(&self, into: &mut bool, from: &bool) -> bool {
        let grew = *from && !*into;
        *into |= *from;
        grew
    }

    fn transfer(&self, node: usize, incoming: &bool) -> bool {
        // Region nodes terminate external paths; they never propagate.
        *incoming && !self.in_region[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> FlowGraph {
        let mut g = Mdag::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_compute(format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 8, 8, 4);
        }
        FlowGraph::from_mdag(&g)
    }

    #[test]
    fn backward_liveness_reaches_the_whole_chain() {
        let fg = chain(5);
        let mut sink_index = vec![None; 5];
        sink_index[4] = Some(0);
        let sol = solve(
            &fg,
            &LiveSinks {
                sink_index: &sink_index,
            },
        );
        assert!(sol.converged);
        for i in 0..5 {
            assert!(sol.facts_out[i].contains(0), "node {i} must be live");
        }
    }

    #[test]
    fn dead_branch_has_empty_liveness_fact() {
        // 0 -> 1 -> 2(sink), 0 -> 3 -> 4 (no sink below).
        let mut g = Mdag::new();
        let n: Vec<_> = (0..5).map(|i| g.add_compute(format!("n{i}"))).collect();
        g.add_edge(n[0], n[1], 8, 8, 4);
        g.add_edge(n[1], n[2], 8, 8, 4);
        g.add_edge(n[0], n[3], 8, 8, 4);
        g.add_edge(n[3], n[4], 8, 8, 4);
        let fg = FlowGraph::from_mdag(&g);
        let mut sink_index = vec![None; 5];
        sink_index[2] = Some(0);
        let sol = solve(
            &fg,
            &LiveSinks {
                sink_index: &sink_index,
            },
        );
        assert!(sol.facts_out[0].contains(0));
        assert!(sol.facts_out[3].is_empty(), "branch 3 is dead");
        assert!(sol.facts_out[4].is_empty(), "branch 4 is dead");
    }

    #[test]
    fn external_reach_flags_a_path_around_the_region() {
        // Region {1, 2}; 1 -> 3 (external) -> 2 re-enters the region.
        let mut g = Mdag::new();
        let n: Vec<_> = (0..4).map(|i| g.add_compute(format!("n{i}"))).collect();
        g.add_edge(n[0], n[1], 8, 8, 4);
        g.add_edge(n[1], n[2], 8, 8, 4);
        g.add_edge(n[1], n[3], 8, 8, 4);
        g.add_edge(n[3], n[2], 8, 8, 4);
        let fg = FlowGraph::from_mdag(&g);
        let in_region = vec![false, true, true, false];
        let mut seeded = vec![false; 4];
        for i in 0..4 {
            seeded[i] = !in_region[i] && fg.preds(i).iter().any(|&p| in_region[p]);
        }
        let sol = solve(
            &fg,
            &ExternalReach {
                in_region: &in_region,
                seeded: &seeded,
            },
        );
        assert!(sol.converged);
        // Node 2 (in-region) sees the external fact arriving from 3.
        assert!(sol.facts_in[2], "external path 1->3->2 must be detected");
        // Node 1 does not: nothing external flows back into it.
        assert!(!sol.facts_in[1]);
    }

    #[test]
    fn solver_terminates_on_cycles() {
        let mut g = Mdag::new();
        let a = g.add_compute("a");
        let b = g.add_compute("b");
        g.add_edge(a, b, 8, 8, 4);
        g.add_edge(b, a, 8, 8, 4);
        let fg = FlowGraph::from_mdag(&g);
        let mut sink_index = vec![None; 2];
        sink_index[1] = Some(0);
        let sol = solve(
            &fg,
            &LiveSinks {
                sink_index: &sink_index,
            },
        );
        assert!(sol.converged, "monotone facts reach a fixpoint on cycles");
        assert!(sol.facts_out[0].contains(0));
    }

    #[test]
    fn bitset_ops() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        let mut t = BitSet::new(130);
        t.insert(64);
        assert!(s.union_with(&t));
        assert!(!s.union_with(&t));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }
}
