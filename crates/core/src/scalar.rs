//! Scalar abstraction tying numerics to the architecture model.
//!
//! FBLAS routines are generated per precision (the `s`/`d` prefix); here a
//! single generic implementation is instantiated at `f32` or `f64`, with
//! [`Scalar::PRECISION`] carrying the cost-model consequences (element
//! size, DSPs per operation, logic factor — see
//! [`fblas_arch::Precision`]).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use fblas_arch::Precision;

/// A floating-point element type usable in FBLAS streaming modules.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
    + Send
    + Sync
    + 'static
{
    /// The architecture-model precision of this element type.
    const PRECISION: Precision;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self·a + b` — one DSP initiation per cycle in
    /// the modeled hardware.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Copysign.
    fn copysign(self, sign: Self) -> Self;
}

impl Scalar for f32 {
    const PRECISION: Precision = Precision::Single;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn copysign(self, sign: Self) -> Self {
        f32::copysign(self, sign)
    }
}

impl Scalar for f64 {
    const PRECISION: Precision = Precision::Double;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn copysign(self, sign: Self) -> Self {
        f64::copysign(self, sign)
    }
}

/// Sum a slice with a binary-tree reduction — the accumulation shape of a
/// fully unrolled `W`-wide adder tree (paper Fig. 5). This is the order
/// in which a synthesized circuit combines the `W` products of one
/// iteration, and differs from left-to-right summation in floating point;
/// routines use it so the simulated numerics match the hardware's.
pub fn tree_sum<T: Scalar>(values: &[T]) -> T {
    match values.len() {
        0 => T::ZERO,
        1 => values[0],
        n => {
            let mid = n.div_ceil(2);
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

/// Running accumulator with the dependence structure of the synthesized
/// circuit.
///
/// Single precision accumulates natively on the DSP (one partial).
/// Double precision has no hardened accumulation on the modeled devices:
/// to keep II = 1 the paper applies *accumulation interleaving*
/// (Sec. III-A1) — a ring of `L_A` partial sums, one per adder-latency
/// slot, combined by a final reduction when the stream ends. The
/// floating-point grouping therefore differs from a sequential sum, and
/// this type reproduces exactly that grouping.
#[derive(Debug, Clone)]
pub struct InterleavedAccumulator<T> {
    partials: Vec<T>,
    idx: usize,
}

impl<T: Scalar> InterleavedAccumulator<T> {
    /// Accumulator with an explicit interleaving depth (≥ 1).
    pub fn with_depth(depth: usize) -> Self {
        assert!(depth >= 1, "interleaving depth must be at least 1");
        InterleavedAccumulator {
            partials: vec![T::ZERO; depth],
            idx: 0,
        }
    }

    /// Accumulator with the depth the hardware needs for `T`: 1 when the
    /// DSPs accumulate natively, the adder latency otherwise.
    pub fn for_precision() -> Self {
        let depth = if T::PRECISION.native_accumulation() {
            1
        } else {
            fblas_arch::estimator::ADD_LATENCY as usize
        };
        Self::with_depth(depth)
    }

    /// Number of partial sums (the interleaving depth).
    pub fn depth(&self) -> usize {
        self.partials.len()
    }

    /// Feed one value (one clock cycle of the accumulation stage).
    pub fn add(&mut self, v: T) {
        self.partials[self.idx] += v;
        self.idx = (self.idx + 1) % self.partials.len();
    }

    /// Combine the partials with the final reduction tree.
    pub fn finish(&self) -> T {
        tree_sum(&self.partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_constants() {
        assert_eq!(<f32 as Scalar>::PRECISION, Precision::Single);
        assert_eq!(<f64 as Scalar>::PRECISION, Precision::Double);
        assert_eq!(<f32 as Scalar>::PRECISION.elem_bytes(), 4);
    }

    #[test]
    fn tree_sum_matches_sequential_for_exact_values() {
        let v: Vec<f64> = (1..=16).map(f64::from).collect();
        assert_eq!(tree_sum(&v), 136.0);
        assert_eq!(tree_sum::<f64>(&[]), 0.0);
        assert_eq!(tree_sum(&[42.0f32]), 42.0);
        // Non-power-of-two widths.
        let v: Vec<f64> = (1..=7).map(f64::from).collect();
        assert_eq!(tree_sum(&v), 28.0);
    }

    #[test]
    fn tree_sum_is_pairwise_not_sequential() {
        // Construct values where the reduction order matters in f32; the
        // tree must combine (a+b) and (c+d), not ((a+b)+c)+d.
        let a = 1.0e8f32;
        let b = -1.0e8f32;
        let c = 1.0f32;
        let d = 1.0f32;
        assert_eq!(tree_sum(&[a, b, c, d]), 2.0);
    }

    #[test]
    fn interleaved_accumulator_depths() {
        assert_eq!(InterleavedAccumulator::<f32>::for_precision().depth(), 1);
        assert_eq!(
            InterleavedAccumulator::<f64>::for_precision().depth(),
            fblas_arch::estimator::ADD_LATENCY as usize,
            "f64 needs one partial per adder-latency slot"
        );
    }

    #[test]
    fn interleaved_accumulator_sums_exactly_for_integers() {
        let mut acc = InterleavedAccumulator::<f64>::with_depth(6);
        for i in 1..=100 {
            acc.add(f64::from(i));
        }
        assert_eq!(acc.finish(), 5050.0);
        // Depth 1 degenerates to plain accumulation.
        let mut acc = InterleavedAccumulator::<f32>::with_depth(1);
        acc.add(2.0);
        acc.add(3.0);
        assert_eq!(acc.finish(), 5.0);
    }

    #[test]
    fn interleaving_changes_fp_grouping_as_hardware_does() {
        // Values chosen so sequential summation loses the small terms
        // but the 2-way interleaved partials keep them.
        let vals = [1.0e16f64, 1.0, -1.0e16, 1.0];
        let sequential: f64 = vals.iter().sum();
        let mut acc = InterleavedAccumulator::<f64>::with_depth(2);
        for v in vals {
            acc.add(v);
        }
        // partial0 = 1e16 - 1e16 = 0; partial1 = 1 + 1 = 2.
        assert_eq!(acc.finish(), 2.0);
        assert_ne!(acc.finish(), sequential);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = InterleavedAccumulator::<f32>::with_depth(0);
    }

    #[test]
    fn scalar_ops_generic() {
        fn f<T: Scalar>() -> T {
            T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE)
        }
        assert_eq!(f::<f32>(), 7.0);
        assert_eq!(f::<f64>(), 7.0);
        assert_eq!((-2.5f64).abs(), 2.5);
        assert_eq!(4.0f32.sqrt(), 2.0);
        assert_eq!(3.0f64.copysign(-0.0), -3.0);
    }
}
