//! Stream duplication.
//!
//! "In many cases, the output of a computational or interface module is
//! shared between two (or more) computational modules" (paper Sec. V-A) —
//! BICG's two GEMV modules both consume the single read of `A`. In
//! hardware this is a small forwarding circuit; here it is a module that
//! pops once and pushes to every subscriber.

use fblas_hlssim::{ChunkReader, ModuleKind, Receiver, Sender, Simulation};

use crate::scalar::Scalar;

/// Add a module duplicating `count` elements from `rx` to both `tx1` and
/// `tx2`.
///
/// The input is read in chunks; the outputs stay element-wise and
/// interleaved — batching one branch while the other's consumer is
/// starved can deadlock shallow FIFOs (see `fblas_hlssim::chunk` docs).
pub fn duplicate<T: Scalar>(
    sim: &mut Simulation,
    name: impl Into<String>,
    count: usize,
    rx: Receiver<T>,
    tx1: Sender<T>,
    tx2: Sender<T>,
) {
    sim.add_module(name.into(), ModuleKind::Compute, move || {
        let mut rd = ChunkReader::new(&rx);
        for _ in 0..count {
            let v = rd.next()?;
            tx1.push(v)?;
            tx2.push(v)?;
        }
        Ok(())
    });
}

/// Add a module duplicating `count` elements from `rx` to an arbitrary
/// set of output channels (chunked input, interleaved element-wise
/// outputs — see [`duplicate`]).
pub fn duplicate_many<T: Scalar>(
    sim: &mut Simulation,
    name: impl Into<String>,
    count: usize,
    rx: Receiver<T>,
    txs: Vec<Sender<T>>,
) {
    sim.add_module(name.into(), ModuleKind::Compute, move || {
        let mut rd = ChunkReader::new(&rx);
        for _ in 0..count {
            let v = rd.next()?;
            for tx in &txs {
                tx.push(v)?;
            }
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    #[test]
    fn duplicate_feeds_both_consumers() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 4, "in");
        let (t1, r1) = channel(sim.ctx(), 4, "out1");
        let (t2, r2) = channel(sim.ctx(), 4, "out2");
        sim.add_module("src", ModuleKind::Interface, move || {
            tx.push_slice(&[1.0f32, 2.0, 3.0])
        });
        duplicate(&mut sim, "dup", 3, rx, t1, t2);
        sim.add_module("c1", ModuleKind::Compute, move || {
            assert_eq!(r1.pop_n(3)?, vec![1.0, 2.0, 3.0]);
            Ok(())
        });
        sim.add_module("c2", ModuleKind::Compute, move || {
            assert_eq!(r2.pop_n(3)?, vec![1.0, 2.0, 3.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn duplicate_many_fans_out() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 4, "in");
        let mut receivers = Vec::new();
        let mut senders = Vec::new();
        for i in 0..4 {
            let (t, r) = channel(sim.ctx(), 4, format!("out{i}"));
            senders.push(t);
            receivers.push(r);
        }
        sim.add_module("src", ModuleKind::Interface, move || {
            tx.push_slice(&[5.0f64, 6.0])
        });
        duplicate_many(&mut sim, "dup", 2, rx, senders);
        for (i, r) in receivers.into_iter().enumerate() {
            sim.add_module(format!("c{i}"), ModuleKind::Compute, move || {
                assert_eq!(r.pop_n(2)?, vec![5.0, 6.0]);
                Ok(())
            });
        }
        sim.run().unwrap();
    }
}
