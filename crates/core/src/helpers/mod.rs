//! Interface modules (paper Sec. II-C, V).
//!
//! HLS modules work purely on streaming interfaces; when operands live in
//! DRAM, dedicated *helper kernels* read and inject the data and write
//! results back. These are the circle-shaped interface nodes of the
//! paper's MDAG figures. This module provides:
//!
//! * [`readers`] — vector readers (with replay), matrix readers for every
//!   tile order;
//! * [`writers`] — vector/matrix/scalar writers, and the replay-through-
//!   memory loop needed by tiles-by-columns GEMV;
//! * [`fanout`] — stream duplication (one producer feeding two consumers,
//!   as BICG's shared read of `A`);
//! * [`generators`] — on-chip data generators, used by the paper to
//!   benchmark memory-bound modules beyond the testbed's DRAM bandwidth
//!   (Sec. VI-B).

pub mod fanout;
pub mod generators;
pub mod readers;
pub mod writers;

pub use fanout::duplicate;
pub use generators::{generate_vector, generate_vector_repeated};
pub use readers::{read_matrix, read_vector, read_vector_replayed};
pub use writers::{replay_vector_through_memory, sink, write_matrix, write_scalar, write_vector};
