//! DRAM-writing interface modules.

use fblas_hlssim::{default_chunk, ChunkReader, ModuleKind, Receiver, Sender, Simulation};

use crate::host::buffer::DeviceBuffer;
use crate::scalar::Scalar;
use crate::tiling::Tiling;

/// Add an interface module popping `count` elements into `buf`.
///
/// The module fails if the buffer does not hold exactly `count` elements.
pub fn write_vector<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    count: usize,
    rx: Receiver<T>,
) {
    let buf = buf.clone();
    let name = format!("write_{}", buf.name());
    sim.add_module(name.clone(), ModuleKind::Interface, move || {
        if buf.len() != count {
            return Err(fblas_hlssim::SimError::module(
                name,
                format!(
                    "output buffer holds {} elements, expected {count}",
                    buf.len()
                ),
            ));
        }
        let data = rx.pop_n(count)?;
        buf.from_host(&data);
        Ok(())
    });
}

/// Add an interface module popping a single scalar result into `buf[0]`.
pub fn write_scalar<T: Scalar>(sim: &mut Simulation, buf: &DeviceBuffer<T>, rx: Receiver<T>) {
    let buf = buf.clone();
    let name = format!("write_{}", buf.name());
    sim.add_module(name, ModuleKind::Interface, move || {
        let v = rx.pop()?;
        buf.with_write(|d| d[0] = v);
        Ok(())
    });
}

/// Add an interface module popping an `n × m` matrix in the element order
/// of `tiling` and scattering it into the row-major `buf`.
pub fn write_matrix<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    n: usize,
    m: usize,
    tiling: Tiling,
    rx: Receiver<T>,
) {
    let buf = buf.clone();
    let name = format!("write_{}", buf.name());
    sim.add_module(name.clone(), ModuleKind::Interface, move || {
        if buf.len() != n * m {
            return Err(fblas_hlssim::SimError::module(
                name,
                format!(
                    "matrix buffer holds {} elements, expected {}",
                    buf.len(),
                    n * m
                ),
            ));
        }
        let order = tiling.stream_indices(n, m);
        let mut out = vec![T::ZERO; n * m];
        let mut rd = ChunkReader::new(&rx);
        for &(r, c) in &order {
            out[r * m + c] = rd.next()?;
        }
        buf.from_host(&out);
        Ok(())
    });
}

/// Add an interface module consuming and discarding `count` elements —
/// a sink for streams whose values are not needed (scaling studies with
/// generated data, Sec. VI-B).
pub fn sink<T: Scalar>(
    sim: &mut Simulation,
    name: impl Into<String>,
    count: usize,
    rx: Receiver<T>,
) {
    sim.add_module(name.into(), ModuleKind::Interface, move || {
        let chunk = default_chunk();
        let mut buf: Vec<T> = Vec::with_capacity(chunk);
        let mut remaining = count;
        while remaining > 0 {
            buf.clear();
            remaining -= rx.pop_chunk(&mut buf, remaining.min(chunk))?;
        }
        Ok(())
    });
}

/// Replay an updated vector through DRAM: the interface pattern of
/// tiles-by-columns GEMV, where `y` "must be replayed: since each block
/// is updated multiple times, we need to output it and re-read it
/// ⌈M/T_M⌉ times" (paper Sec. III-B).
///
/// The interface streams `initial` once into `to_module`; then
/// `rounds − 1` times re-sends the updated elements arriving on
/// `from_module`; the final round's `n` elements land in `result`.
/// With `rounds == 1` it degenerates to a read-then-write pair.
///
/// DRAM does not backpressure the way a FIFO does: a partial written in
/// round `r` is available for the round-`r+1` read as soon as it lands,
/// element by element. The helper therefore consists of *two* interface
/// modules (the write side and the read side) joined by an internal
/// channel of capacity `n` — the DRAM staging buffer. A single
/// push-everything-then-drain module would deadlock against a consumer
/// that interleaves its pops and pushes block-wise (as the
/// tiles-by-columns GEMV does).
pub fn replay_vector_through_memory<T: Scalar>(
    sim: &mut Simulation,
    initial: &DeviceBuffer<T>,
    result: &DeviceBuffer<T>,
    n: usize,
    rounds: usize,
    to_module: Sender<T>,
    from_module: Receiver<T>,
) {
    assert!(rounds >= 1, "replay needs at least one round");
    let initial = initial.clone();
    let result = result.clone();
    let base = format!("replay_{}", initial.name());
    let (loop_tx, loop_rx) = crate_channel::<T>(sim, n.max(1), format!("{base}_dram"));

    let name_in = format!("{base}_read");
    let init2 = initial.clone();
    sim.add_module(name_in.clone(), ModuleKind::Interface, move || {
        if init2.len() != n {
            return Err(fblas_hlssim::SimError::module(
                name_in,
                format!(
                    "replay initial buffer must hold {n} elements (got {})",
                    init2.len()
                ),
            ));
        }
        to_module.push_slice(&init2.to_host())?;
        // Chunked relay: each popped chunk is forwarded immediately, so
        // no element is withheld from the feedback loop while blocked.
        let chunk = default_chunk();
        let mut buf: Vec<T> = Vec::with_capacity(chunk);
        for _ in 0..rounds - 1 {
            let mut i = 0;
            while i < n {
                buf.clear();
                let got = loop_rx.pop_chunk(&mut buf, (n - i).min(chunk))?;
                to_module.push_chunk(&mut buf)?;
                i += got;
            }
        }
        Ok(())
    });

    let name_out = format!("{base}_write");
    sim.add_module(name_out.clone(), ModuleKind::Interface, move || {
        if result.len() != n {
            return Err(fblas_hlssim::SimError::module(
                name_out,
                format!(
                    "replay result buffer must hold {n} elements (got {})",
                    result.len()
                ),
            ));
        }
        let chunk = default_chunk();
        let mut buf: Vec<T> = Vec::with_capacity(chunk);
        for _ in 0..rounds - 1 {
            let mut i = 0;
            while i < n {
                buf.clear();
                let got = from_module.pop_chunk(&mut buf, (n - i).min(chunk))?;
                loop_tx.push_chunk(&mut buf)?;
                i += got;
            }
        }
        let final_vals = from_module.pop_n(n)?;
        result.from_host(&final_vals);
        Ok(())
    });
}

/// Create a channel against a simulation's context (local alias to keep
/// the helper self-contained).
fn crate_channel<T: Send + 'static>(
    sim: &Simulation,
    capacity: usize,
    name: String,
) -> (Sender<T>, Receiver<T>) {
    fblas_hlssim::channel(sim.ctx(), capacity, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::TileOrder;
    use fblas_hlssim::channel;

    #[test]
    fn vector_writer_stores_stream() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::<f32>::zeroed("out", 3, 0);
        let (tx, rx) = channel(sim.ctx(), 4, "ch");
        sim.add_module("src", ModuleKind::Compute, move || {
            tx.push_slice(&[1.0, 2.0, 3.0])
        });
        write_vector(&mut sim, &buf, 3, rx);
        sim.run().unwrap();
        assert_eq!(buf.to_host(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_writer_stores_one_value() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::<f64>::zeroed("res", 1, 0);
        let (tx, rx) = channel(sim.ctx(), 1, "ch");
        sim.add_module("src", ModuleKind::Compute, move || tx.push(42.0));
        write_scalar(&mut sim, &buf, rx);
        sim.run().unwrap();
        assert_eq!(buf.get(0), 42.0);
    }

    #[test]
    fn matrix_writer_inverts_reader_order() {
        let mut sim = Simulation::new();
        let tiling = Tiling::new(1, 1, TileOrder::ColTilesRowMajor);
        let buf = DeviceBuffer::<f32>::zeroed("a", 4, 0);
        let (tx, rx) = channel(sim.ctx(), 4, "ch");
        // Column-order stream of [[1,2],[3,4]] is 1,3,2,4.
        sim.add_module("src", ModuleKind::Compute, move || {
            tx.push_slice(&[1.0, 3.0, 2.0, 4.0])
        });
        write_matrix(&mut sim, &buf, 2, 2, tiling, rx);
        sim.run().unwrap();
        assert_eq!(buf.to_host(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn replay_round_trips_updates() {
        // A compute module that increments every element each round;
        // after 3 rounds the result should be initial + 3.
        let n = 4;
        let rounds = 3;
        let mut sim = Simulation::new();
        let initial = DeviceBuffer::from_vec("y", vec![10.0f64, 20.0, 30.0, 40.0], 0);
        let result = DeviceBuffer::<f64>::zeroed("y_out", n, 0);
        let (tx_in, rx_in) = channel(sim.ctx(), 4, "to_mod");
        let (tx_out, rx_out) = channel(sim.ctx(), 4, "from_mod");
        sim.add_module("incr", ModuleKind::Compute, move || {
            for _ in 0..rounds {
                for _ in 0..n {
                    let v: f64 = rx_in.pop()?;
                    tx_out.push(v + 1.0)?;
                }
            }
            Ok(())
        });
        replay_vector_through_memory(&mut sim, &initial, &result, n, rounds, tx_in, rx_out);
        sim.run().unwrap();
        assert_eq!(result.to_host(), vec![13.0, 23.0, 33.0, 43.0]);
    }

    #[test]
    fn sink_discards() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 2, "ch");
        sim.add_module("src", ModuleKind::Compute, move || {
            tx.push_iter((0..10).map(|i| i as f32))
        });
        sink(&mut sim, "sink", 10, rx);
        sim.run().unwrap();
    }

    #[test]
    fn wrong_output_size_is_module_error() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::<f32>::zeroed("out", 2, 0);
        let (tx, rx) = channel::<f32>(sim.ctx(), 4, "ch");
        drop(tx);
        write_vector(&mut sim, &buf, 5, rx);
        match sim.run() {
            Err(fblas_hlssim::SimError::Module { detail, .. }) => {
                assert!(detail.contains("expected 5"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
