//! On-chip data generators.
//!
//! For the module-scaling study (paper Sec. VI-B), "input data is
//! generated directly on the FPGA, to test the scaling behavior of the
//! memory bound applications DOT and GEMV, considering vectorization
//! widths that can exploit memory interfaces faster than the one offered
//! by the testbed". These modules produce synthetic streams without
//! touching DRAM.

use fblas_hlssim::{ModuleKind, Sender, Simulation};

use crate::scalar::Scalar;

/// Add an interface module generating `n` elements as `f(i)`.
pub fn generate_vector<T: Scalar>(
    sim: &mut Simulation,
    name: impl Into<String>,
    n: usize,
    f: impl Fn(usize) -> T + Send + 'static,
    tx: Sender<T>,
) {
    generate_vector_repeated(sim, name, n, f, tx, 1);
}

/// Add an interface module generating `n` elements as `f(i)`, repeated
/// `repetitions` times (generator-side replay).
pub fn generate_vector_repeated<T: Scalar>(
    sim: &mut Simulation,
    name: impl Into<String>,
    n: usize,
    f: impl Fn(usize) -> T + Send + 'static,
    tx: Sender<T>,
    repetitions: usize,
) {
    sim.add_module(name.into(), ModuleKind::Interface, move || {
        for _ in 0..repetitions {
            for i in 0..n {
                tx.push(f(i))?;
            }
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_hlssim::channel;

    #[test]
    fn generator_produces_f_of_i() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 8, "g");
        generate_vector(&mut sim, "gen", 5, |i| i as f32 * 2.0, tx);
        sim.add_module("check", ModuleKind::Compute, move || {
            assert_eq!(rx.pop_n(5)?, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn repeated_generator_replays() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel(sim.ctx(), 2, "g");
        generate_vector_repeated(&mut sim, "gen", 2, |i| i as f64, tx, 2);
        sim.add_module("check", ModuleKind::Compute, move || {
            assert_eq!(rx.pop_n(4)?, vec![0.0, 1.0, 0.0, 1.0]);
            Ok(())
        });
        sim.run().unwrap();
    }
}
