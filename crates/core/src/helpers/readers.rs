//! DRAM-reading interface modules.

use fblas_hlssim::{ModuleKind, Sender, Simulation};

use crate::host::buffer::DeviceBuffer;
use crate::scalar::Scalar;
use crate::tiling::Tiling;

/// Add an interface module streaming the contents of `buf` once.
pub fn read_vector<T: Scalar>(sim: &mut Simulation, buf: &DeviceBuffer<T>, tx: Sender<T>) {
    read_vector_replayed(sim, buf, tx, 1);
}

/// Add an interface module streaming the contents of `buf` `repetitions`
/// times back to back.
///
/// Replaying from DRAM is how a vector operand is re-sent when a routine's
/// tiling requires it (e.g. `x` in tiles-by-rows GEMV is replayed
/// `⌈N/T_N⌉` times, Sec. III-B). Only *interface* modules may replay —
/// a computational module cannot re-produce its own output stream
/// (Sec. V, edge-validity condition 1).
pub fn read_vector_replayed<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    tx: Sender<T>,
    repetitions: usize,
) {
    let buf = buf.clone();
    let name = format!("read_{}", buf.name());
    sim.add_module(name, ModuleKind::Interface, move || {
        let data = buf.to_host();
        for _ in 0..repetitions {
            tx.push_slice(&data)?;
        }
        Ok(())
    });
}

/// Add an interface module streaming an `n × m` row-major matrix from
/// `buf` in the element order of `tiling`, `repetitions` times.
///
/// # Panics (inside the module)
/// The module fails if `buf` does not hold exactly `n·m` elements.
pub fn read_matrix<T: Scalar>(
    sim: &mut Simulation,
    buf: &DeviceBuffer<T>,
    n: usize,
    m: usize,
    tiling: Tiling,
    tx: Sender<T>,
    repetitions: usize,
) {
    let buf = buf.clone();
    let name = format!("read_{}", buf.name());
    sim.add_module(name.clone(), ModuleKind::Interface, move || {
        let data = buf.to_host();
        if data.len() != n * m {
            return Err(fblas_hlssim::SimError::module(
                name,
                format!(
                    "matrix buffer holds {} elements, expected {}",
                    data.len(),
                    n * m
                ),
            ));
        }
        let order = tiling.stream_indices(n, m);
        // Source module: gather each chunk from the tile order and push
        // it in one batched transfer.
        let chunk = fblas_hlssim::default_chunk();
        let mut buf: Vec<T> = Vec::with_capacity(chunk);
        for _ in 0..repetitions {
            for &(r, c) in &order {
                buf.push(data[r * m + c]);
                if buf.len() == chunk {
                    tx.push_chunk(&mut buf)?;
                }
            }
            tx.push_chunk(&mut buf)?;
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::TileOrder;
    use fblas_hlssim::channel;

    #[test]
    fn vector_reader_streams_contents() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::from_vec("x", vec![1.0f32, 2.0, 3.0], 0);
        let (tx, rx) = channel(sim.ctx(), 8, "ch");
        read_vector(&mut sim, &buf, tx);
        sim.add_module("check", ModuleKind::Compute, move || {
            assert_eq!(rx.pop_n(3)?, vec![1.0, 2.0, 3.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn replay_sends_multiple_rounds() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::from_vec("x", vec![7.0f64, 8.0], 0);
        let (tx, rx) = channel(sim.ctx(), 2, "ch");
        read_vector_replayed(&mut sim, &buf, tx, 3);
        sim.add_module("check", ModuleKind::Compute, move || {
            assert_eq!(rx.pop_n(6)?, vec![7.0, 8.0, 7.0, 8.0, 7.0, 8.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn matrix_reader_respects_tile_order() {
        let mut sim = Simulation::new();
        // 2x2 matrix [[1,2],[3,4]] streamed with 1x1 tiles by columns:
        // 1, 3, 2, 4.
        let buf = DeviceBuffer::from_vec("a", vec![1.0f32, 2.0, 3.0, 4.0], 0);
        let (tx, rx) = channel(sim.ctx(), 4, "ch");
        read_matrix(
            &mut sim,
            &buf,
            2,
            2,
            Tiling::new(1, 1, TileOrder::ColTilesRowMajor),
            tx,
            1,
        );
        sim.add_module("check", ModuleKind::Compute, move || {
            assert_eq!(rx.pop_n(4)?, vec![1.0, 3.0, 2.0, 4.0]);
            Ok(())
        });
        sim.run().unwrap();
    }

    #[test]
    fn wrong_matrix_size_is_module_error() {
        let mut sim = Simulation::new();
        let buf = DeviceBuffer::from_vec("a", vec![1.0f32; 3], 0);
        let (tx, rx) = channel::<f32>(sim.ctx(), 4, "ch");
        read_matrix(
            &mut sim,
            &buf,
            2,
            2,
            Tiling::new(2, 2, TileOrder::RowTilesRowMajor),
            tx,
            1,
        );
        drop(rx);
        match sim.run() {
            Err(fblas_hlssim::SimError::Module { detail, .. }) => {
                assert!(detail.contains("expected 4"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
