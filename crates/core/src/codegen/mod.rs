//! The code-generator analog (paper Sec. II-C).
//!
//! FBLAS ships a template-based generator: the programmer writes a JSON
//! *routines specification file* naming the routines to instantiate and
//! their functional parameters (transposition, triangle) and
//! non-functional parameters (vectorization width, tile sizes); the
//! generator emits synthesizable OpenCL kernels plus the helper kernels
//! that read/write DRAM.
//!
//! Here the same JSON dialect is parsed ([`spec`]) and validated, and
//! for each routine the generator ([`generator`]) produces
//!
//! * the checked module configuration (the structs of
//!   [`crate::routines`], ready to attach to a simulation), and
//! * a pseudo-OpenCL listing of the kernel that would be synthesized —
//!   the human-inspectable artifact of the original tool.

pub mod generator;
pub mod spec;

pub use generator::{generate, generate_spec_file, CodegenError, GeneratedKernel, RoutineKind};
pub use spec::{RoutineSpec, SpecFile};
