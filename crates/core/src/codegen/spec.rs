//! The JSON routines-specification dialect.
//!
//! A specification file lists routine instantiations, e.g.:
//!
//! ```json
//! {
//!   "routines": [
//!     { "blas_name": "sdot", "user_name": "my_dot", "width": 32 },
//!     { "blas_name": "dgemv", "width": 16, "tile_n": 1024,
//!       "tile_m": 1024, "transposed": false, "tiles_by": "rows" },
//!     { "blas_name": "sgemm", "systolic_rows": 32, "systolic_cols": 32,
//!       "tile_n": 128, "tile_m": 128 }
//!   ]
//! }
//! ```
//!
//! `blas_name` follows the classical convention: precision prefix
//! (`s`/`d`) plus routine name. Functional parameters (`transposed`,
//! `uplo`, …) change the routine's semantics; non-functional parameters
//! (`width`, tiles, systolic shape) trade resources for performance
//! (paper Sec. II-C).

use serde::{Deserialize, Serialize};

/// Default vectorization width when the spec omits it.
pub fn default_width() -> usize {
    16
}

/// A routines specification file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecFile {
    /// Routine instantiations to generate.
    pub routines: Vec<RoutineSpec>,
}

impl SpecFile {
    /// Parse a specification file from its JSON text.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serialize back to pretty JSON.
    // Invariant: the spec is plain data; serde_json cannot fail on it.
    #[allow(clippy::disallowed_methods)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization cannot fail")
    }
}

/// One routine instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutineSpec {
    /// Classical BLAS name with precision prefix (`sdot`, `dgemv`, …).
    pub blas_name: String,
    /// Optional user-facing kernel name (defaults to `blas_name`).
    #[serde(default)]
    pub user_name: Option<String>,
    /// Vectorization width `W` (non-functional).
    #[serde(default = "default_width")]
    pub width: usize,
    /// Tile height `T_N` (Level 2/3; non-functional).
    #[serde(default)]
    pub tile_n: Option<usize>,
    /// Tile width `T_M` (Level 2/3; non-functional).
    #[serde(default)]
    pub tile_m: Option<usize>,
    /// Transposition flag (functional, Level-2/3 routines).
    #[serde(default)]
    pub transposed: Option<bool>,
    /// Referenced triangle, `"upper"`/`"lower"` (functional).
    #[serde(default)]
    pub uplo: Option<String>,
    /// Unit-diagonal flag (functional, triangular solves).
    #[serde(default)]
    pub unit_diag: Option<bool>,
    /// Factor side for TRSM, `"left"`/`"right"` (functional).
    #[serde(default)]
    pub side: Option<String>,
    /// Matrix streaming order, `"rows"`/`"cols"` (GEMV variants).
    #[serde(default)]
    pub tiles_by: Option<String>,
    /// Systolic array rows `P_R` (GEMM-family).
    #[serde(default)]
    pub systolic_rows: Option<usize>,
    /// Systolic array columns `P_C` (GEMM-family).
    #[serde(default)]
    pub systolic_cols: Option<usize>,
}

impl RoutineSpec {
    /// A minimal spec with defaults for everything but the name.
    pub fn named(blas_name: impl Into<String>) -> Self {
        RoutineSpec {
            blas_name: blas_name.into(),
            user_name: None,
            width: default_width(),
            tile_n: None,
            tile_m: None,
            transposed: None,
            uplo: None,
            unit_diag: None,
            side: None,
            tiles_by: None,
            systolic_rows: None,
            systolic_cols: None,
        }
    }

    /// The kernel name the generator will emit.
    pub fn kernel_name(&self) -> &str {
        self.user_name.as_deref().unwrap_or(&self.blas_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let json = r#"{
          "routines": [
            { "blas_name": "sdot", "user_name": "my_dot", "width": 32 },
            { "blas_name": "dgemv", "width": 16, "tile_n": 1024,
              "tile_m": 1024, "transposed": false, "tiles_by": "rows" },
            { "blas_name": "sgemm", "systolic_rows": 32, "systolic_cols": 32,
              "tile_n": 128, "tile_m": 128 }
          ]
        }"#;
        let spec = SpecFile::from_json(json).unwrap();
        assert_eq!(spec.routines.len(), 3);
        assert_eq!(spec.routines[0].kernel_name(), "my_dot");
        assert_eq!(spec.routines[0].width, 32);
        assert_eq!(spec.routines[1].tile_n, Some(1024));
        assert_eq!(spec.routines[1].transposed, Some(false));
        assert_eq!(spec.routines[2].systolic_rows, Some(32));
    }

    #[test]
    fn width_defaults_to_16() {
        let spec = SpecFile::from_json(r#"{"routines":[{"blas_name":"saxpy"}]}"#).unwrap();
        assert_eq!(spec.routines[0].width, 16);
        assert_eq!(spec.routines[0].kernel_name(), "saxpy");
    }

    #[test]
    fn round_trips_through_json() {
        let mut spec = RoutineSpec::named("strsv");
        spec.uplo = Some("lower".into());
        spec.unit_diag = Some(true);
        let file = SpecFile {
            routines: vec![spec],
        };
        let back = SpecFile::from_json(&file.to_json()).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(SpecFile::from_json("{not json").is_err());
        assert!(SpecFile::from_json(r#"{"routines": 3}"#).is_err());
    }
}
