//! Spec validation and kernel generation.

use fblas_arch::{Precision, ResourceEstimate};

use super::spec::{RoutineSpec, SpecFile};
use crate::routines::gemm::SystolicShape;
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::level3::Side;
use crate::routines::{
    Asum, Axpy, Diag, Dot, Ger, Iamax, Nrm2, Rot, Rotg, Rotm, Rotmg, Scal, Sdsdot, Swap, Syr, Syr2,
    Syr2k, Syrk, Trans, Trsm, Trsv, Uplo, VecCopy,
};

/// Errors produced while validating a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The JSON could not be parsed.
    Json(String),
    /// The `blas_name` is not one of the 22 offered routines (with an
    /// `s`/`d` prefix).
    UnknownRoutine(String),
    /// A parameter is invalid for the named routine.
    Invalid {
        /// The routine being generated.
        routine: String,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Json(e) => write!(f, "specification JSON error: {e}"),
            CodegenError::UnknownRoutine(n) => write!(f, "unknown routine `{n}`"),
            CodegenError::Invalid { routine, reason } => {
                write!(f, "invalid spec for `{routine}`: {reason}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// The routine a spec instantiates (precision carried separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RoutineKind {
    Rotg,
    Rotmg,
    Rot,
    Rotm,
    Swap,
    Scal,
    Copy,
    Axpy,
    Dot,
    Sdsdot,
    Nrm2,
    Asum,
    Iamax,
    Gemv,
    Trsv,
    Ger,
    Syr,
    Syr2,
    Gemm,
    Syrk,
    Syr2k,
    Trsm,
}

impl RoutineKind {
    /// All 22 routines of the FBLAS release (paper Sec. VI).
    pub const ALL: [RoutineKind; 22] = [
        RoutineKind::Rotg,
        RoutineKind::Rotmg,
        RoutineKind::Rot,
        RoutineKind::Rotm,
        RoutineKind::Swap,
        RoutineKind::Scal,
        RoutineKind::Copy,
        RoutineKind::Axpy,
        RoutineKind::Dot,
        RoutineKind::Sdsdot,
        RoutineKind::Nrm2,
        RoutineKind::Asum,
        RoutineKind::Iamax,
        RoutineKind::Gemv,
        RoutineKind::Trsv,
        RoutineKind::Ger,
        RoutineKind::Syr,
        RoutineKind::Syr2,
        RoutineKind::Gemm,
        RoutineKind::Syrk,
        RoutineKind::Syr2k,
        RoutineKind::Trsm,
    ];

    /// BLAS base name (no precision prefix).
    pub fn base_name(self) -> &'static str {
        match self {
            RoutineKind::Rotg => "rotg",
            RoutineKind::Rotmg => "rotmg",
            RoutineKind::Rot => "rot",
            RoutineKind::Rotm => "rotm",
            RoutineKind::Swap => "swap",
            RoutineKind::Scal => "scal",
            RoutineKind::Copy => "copy",
            RoutineKind::Axpy => "axpy",
            RoutineKind::Dot => "dot",
            RoutineKind::Sdsdot => "sdsdot",
            RoutineKind::Nrm2 => "nrm2",
            RoutineKind::Asum => "asum",
            RoutineKind::Iamax => "iamax",
            RoutineKind::Gemv => "gemv",
            RoutineKind::Trsv => "trsv",
            RoutineKind::Ger => "ger",
            RoutineKind::Syr => "syr",
            RoutineKind::Syr2 => "syr2",
            RoutineKind::Gemm => "gemm",
            RoutineKind::Syrk => "syrk",
            RoutineKind::Syr2k => "syr2k",
            RoutineKind::Trsm => "trsm",
        }
    }

    /// BLAS level of the routine.
    pub fn level(self) -> u8 {
        match self {
            RoutineKind::Gemv
            | RoutineKind::Trsv
            | RoutineKind::Ger
            | RoutineKind::Syr
            | RoutineKind::Syr2 => 2,
            RoutineKind::Gemm | RoutineKind::Syrk | RoutineKind::Syr2k | RoutineKind::Trsm => 3,
            _ => 1,
        }
    }
}

/// Parse a `blas_name` like `sdot`/`dgemv` into precision and kind.
pub fn parse_blas_name(name: &str) -> Result<(Precision, RoutineKind), CodegenError> {
    let lower = name.to_ascii_lowercase();
    // Special spellings first: `sdsdot` is single precision by
    // definition, and IAMAX carries the classic `i` prefix.
    match lower.as_str() {
        "sdsdot" => return Ok((Precision::Single, RoutineKind::Sdsdot)),
        "isamax" | "siamax" => return Ok((Precision::Single, RoutineKind::Iamax)),
        "idamax" | "diamax" => return Ok((Precision::Double, RoutineKind::Iamax)),
        _ => {}
    }
    if lower.len() < 2 {
        return Err(CodegenError::UnknownRoutine(name.to_string()));
    }
    let (prefix, rest) = lower.split_at(1);
    let prec = match prefix {
        "s" => Precision::Single,
        "d" => Precision::Double,
        _ => return Err(CodegenError::UnknownRoutine(name.to_string())),
    };
    match RoutineKind::ALL.into_iter().find(|k| k.base_name() == rest) {
        Some(k) => Ok((prec, k)),
        None => Err(CodegenError::UnknownRoutine(name.to_string())),
    }
}

/// A generated kernel: the validated configuration summary, a resource
/// estimate, and the pseudo-OpenCL listing.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// Kernel name (the `user_name`, or the BLAS name).
    pub name: String,
    /// Routine kind.
    pub kind: RoutineKind,
    /// Precision.
    pub precision: Precision,
    /// Vectorization width.
    pub width: usize,
    /// Tile sizes (Level 2/3).
    pub tiles: Option<(usize, usize)>,
    /// Systolic shape (GEMM family).
    pub systolic: Option<(usize, usize)>,
    /// Circuit resource/latency estimate for the configuration.
    pub estimate: ResourceEstimate,
    /// Pseudo-OpenCL kernel source.
    pub source: String,
}

fn ctype(p: Precision) -> &'static str {
    match p {
        Precision::Single => "float",
        Precision::Double => "double",
    }
}

fn invalid(spec: &RoutineSpec, reason: impl Into<String>) -> CodegenError {
    CodegenError::Invalid {
        routine: spec.blas_name.clone(),
        reason: reason.into(),
    }
}

fn parse_uplo(spec: &RoutineSpec) -> Result<Uplo, CodegenError> {
    match spec.uplo.as_deref() {
        Some("upper") | Some("Upper") => Ok(Uplo::Upper),
        Some("lower") | Some("Lower") => Ok(Uplo::Lower),
        Some(other) => Err(invalid(
            spec,
            format!("uplo must be upper/lower, got `{other}`"),
        )),
        None => Err(invalid(spec, "missing `uplo`")),
    }
}

/// Generate one kernel from a spec.
///
/// ```
/// use fblas_core::codegen::{generate, RoutineKind, RoutineSpec};
///
/// let mut spec = RoutineSpec::named("sdot");
/// spec.width = 32;
/// let kernel = generate(&spec).unwrap();
/// assert_eq!(kernel.kind, RoutineKind::Dot);
/// assert_eq!(kernel.estimate.resources.dsps, 32);
/// assert!(kernel.source.contains("#pragma unroll"));
/// ```
pub fn generate(spec: &RoutineSpec) -> Result<GeneratedKernel, CodegenError> {
    let (precision, kind) = parse_blas_name(&spec.blas_name)?;
    if spec.width == 0 {
        return Err(invalid(spec, "width must be at least 1"));
    }
    let w = spec.width;
    // Reference problem size used only for cost-model instantiation;
    // routines accept arbitrary runtime sizes (paper Sec. VI).
    const REF_N: usize = 4096;
    let tiles = match (spec.tile_n, spec.tile_m) {
        (Some(tn), Some(tm)) => {
            if tn == 0 || tm == 0 {
                return Err(invalid(spec, "tile sizes must be at least 1"));
            }
            Some((tn, tm))
        }
        (None, None) => None,
        _ => return Err(invalid(spec, "tile_n and tile_m must be given together")),
    };
    let default_tiles = tiles.unwrap_or((1024, 1024));
    let (tn, tm) = default_tiles;

    let t = ctype(precision);
    let name = spec.kernel_name().to_string();

    let (estimate, source, systolic) = match kind {
        RoutineKind::Rotg => (
            Rotg.estimate_p(precision),
            source_scalar(&name, t, "rotg"),
            None,
        ),
        RoutineKind::Rotmg => (
            Rotmg.estimate_p(precision),
            source_scalar(&name, t, "rotmg"),
            None,
        ),
        RoutineKind::Rot => (
            Rot::new(REF_N, w).estimate_p(precision),
            source_map2(&name, t, w, "x[i] = c*xv + s*yv; y[i] = c*yv - s*xv;"),
            None,
        ),
        RoutineKind::Rotm => (
            Rotm::new(REF_N, w).estimate_p(precision),
            source_map2(
                &name,
                t,
                w,
                "x[i] = h11*xv + h12*yv; y[i] = h21*xv + h22*yv;",
            ),
            None,
        ),
        RoutineKind::Swap => (
            Swap::new(REF_N, w).estimate_p(precision),
            source_map2(&name, t, w, "x[i] = yv; y[i] = xv;"),
            None,
        ),
        RoutineKind::Scal => (
            Scal::new(REF_N, w).estimate_p(precision),
            source_map1(&name, t, w, "out[i] = alpha * pop(ch_x);"),
            None,
        ),
        RoutineKind::Copy => (
            VecCopy::new(REF_N, w).estimate_p(precision),
            source_map1(&name, t, w, "out[i] = pop(ch_x);"),
            None,
        ),
        RoutineKind::Axpy => (
            Axpy::new(REF_N, w).estimate_p(precision),
            source_map2(&name, t, w, "out[i] = alpha * xv + yv;"),
            None,
        ),
        RoutineKind::Dot => (
            Dot::new(REF_N, w).estimate_p(precision),
            source_reduce(&name, t, w, "acc += pop(ch_x) * pop(ch_y);"),
            None,
        ),
        RoutineKind::Sdsdot => (
            Sdsdot::new(REF_N, w).estimate_p(precision),
            source_reduce(
                &name,
                "double",
                w,
                "acc += (double)pop(ch_x) * (double)pop(ch_y);",
            ),
            None,
        ),
        RoutineKind::Nrm2 => (
            Nrm2::new(REF_N, w).estimate_p(precision),
            source_reduce(&name, t, w, "acc += v * v; /* v = pop(ch_x) */"),
            None,
        ),
        RoutineKind::Asum => (
            Asum::new(REF_N, w).estimate_p(precision),
            source_reduce(&name, t, w, "acc += fabs(pop(ch_x));"),
            None,
        ),
        RoutineKind::Iamax => (
            Iamax::new(REF_N, w).estimate_p(precision),
            source_reduce(
                &name,
                t,
                w,
                "if (fabs(v) > best) { best = fabs(v); idx = i; }",
            ),
            None,
        ),
        RoutineKind::Gemv => {
            let transposed = spec.transposed.unwrap_or(false);
            let by_rows = match spec.tiles_by.as_deref() {
                Some("rows") | None => true,
                Some("cols") => false,
                Some(other) => {
                    return Err(invalid(
                        spec,
                        format!("tiles_by must be rows/cols, got `{other}`"),
                    ))
                }
            };
            let variant = match (transposed, by_rows) {
                (false, true) => GemvVariant::RowStreamed,
                (false, false) => GemvVariant::ColStreamed,
                (true, true) => GemvVariant::TransRowStreamed,
                (true, false) => GemvVariant::TransColStreamed,
            };
            let g = Gemv::new(variant, REF_N, REF_N, tn.min(REF_N), tm.min(REF_N), w);
            (
                g.estimate_p(precision),
                source_gemv(&name, t, w, tn, tm, variant),
                None,
            )
        }
        RoutineKind::Trsv => {
            let uplo = parse_uplo(spec)?;
            let diag = if spec.unit_diag.unwrap_or(false) {
                Diag::Unit
            } else {
                Diag::NonUnit
            };
            let trans = if spec.transposed.unwrap_or(false) {
                Trans::Yes
            } else {
                Trans::No
            };
            let m = Trsv::new(REF_N, w, uplo, trans, diag);
            (
                m.estimate_p(precision),
                source_scalar(&name, t, "trsv"),
                None,
            )
        }
        RoutineKind::Ger => {
            let g = Ger::new(REF_N, REF_N, tn.min(REF_N), tm.min(REF_N), w);
            (
                g.estimate_p(precision),
                source_map1(
                    &name,
                    t,
                    w,
                    "out[i] = pop(ch_A) + alpha * x_blk[r] * y_blk[c];",
                ),
                None,
            )
        }
        RoutineKind::Syr => {
            let uplo = parse_uplo(spec)?;
            let s = Syr::new(REF_N, tn.min(REF_N), tm.min(REF_N), w, uplo);
            (
                s.estimate_p(precision),
                source_map1(
                    &name,
                    t,
                    w,
                    "out[i] = in_tri ? a + alpha*x_blk[r]*x_blk[c] : a;",
                ),
                None,
            )
        }
        RoutineKind::Syr2 => {
            let uplo = parse_uplo(spec)?;
            let s = Syr2::new(REF_N, tn.min(REF_N), tm.min(REF_N), w, uplo);
            (
                s.estimate_p(precision),
                source_map1(
                    &name,
                    t,
                    w,
                    "out[i] = in_tri ? a + alpha*(x_blk[r]*y_blk[c] + y_blk[r]*x_blk[c]) : a;",
                ),
                None,
            )
        }
        RoutineKind::Gemm | RoutineKind::Syrk | RoutineKind::Syr2k => {
            let pr = spec.systolic_rows.unwrap_or(4);
            let pc = spec.systolic_cols.unwrap_or(4);
            if pr == 0 || pc == 0 {
                return Err(invalid(spec, "systolic dimensions must be at least 1"));
            }
            let (gtr, gtc) = tiles.unwrap_or((4 * pr, 4 * pc));
            if gtr % pr != 0 || gtc % pc != 0 {
                return Err(invalid(
                    spec,
                    format!(
                        "tiles ({gtr}x{gtc}) must be multiples of the systolic array ({pr}x{pc})"
                    ),
                ));
            }
            let shape = SystolicShape::new(pr, pc);
            let est = match kind {
                RoutineKind::Syrk => {
                    let uplo = parse_uplo(spec)?;
                    let trans = if spec.transposed.unwrap_or(false) {
                        Trans::Yes
                    } else {
                        Trans::No
                    };
                    Syrk::new(REF_N, REF_N, trans, uplo, shape, gtr, gtc).estimate_p(precision)
                }
                RoutineKind::Syr2k => {
                    let uplo = parse_uplo(spec)?;
                    let trans = if spec.transposed.unwrap_or(false) {
                        Trans::Yes
                    } else {
                        Trans::No
                    };
                    Syr2k::new(REF_N, REF_N, trans, uplo, shape, gtr, gtc).estimate_p(precision)
                }
                _ => crate::routines::Gemm::new(REF_N, REF_N, REF_N, shape, gtr, gtc)
                    .estimate_p(precision),
            };
            return Ok(GeneratedKernel {
                name: name.clone(),
                kind,
                precision,
                width: w,
                tiles: Some((gtr, gtc)),
                systolic: Some((pr, pc)),
                estimate: est,
                source: source_systolic(&name, t, pr, pc, gtr, gtc),
            });
        }
        RoutineKind::Trsm => {
            let uplo = parse_uplo(spec)?;
            let diag = if spec.unit_diag.unwrap_or(false) {
                Diag::Unit
            } else {
                Diag::NonUnit
            };
            let trans = if spec.transposed.unwrap_or(false) {
                Trans::Yes
            } else {
                Trans::No
            };
            let side = match spec.side.as_deref() {
                Some("left") | None => Side::Left,
                Some("right") => Side::Right,
                Some(other) => {
                    return Err(invalid(
                        spec,
                        format!("side must be left/right, got `{other}`"),
                    ))
                }
            };
            let m = Trsm::new(tn.min(REF_N), tm.min(REF_N), side, uplo, trans, diag, w);
            (
                m.estimate_p(precision),
                source_scalar(&name, t, "trsm"),
                None,
            )
        }
    };

    Ok(GeneratedKernel {
        name,
        kind,
        precision,
        width: w,
        tiles: if kind.level() >= 2 {
            Some(default_tiles)
        } else {
            None
        },
        systolic,
        estimate,
        source,
    })
}

/// Generate every kernel of a JSON specification file.
pub fn generate_spec_file(json: &str) -> Result<Vec<GeneratedKernel>, CodegenError> {
    let spec = SpecFile::from_json(json).map_err(|e| CodegenError::Json(e.to_string()))?;
    spec.routines.iter().map(generate).collect()
}

// ---------------- source templates ----------------

fn source_map1(name: &str, t: &str, w: usize, body: &str) -> String {
    format!(
        "__kernel void {name}(const {t} alpha, const int N) {{\n\
         \x20 for (int it = 0; it < N / {w}; it++) {{\n\
         \x20   #pragma unroll\n\
         \x20   for (int i = 0; i < {w}; i++) {{\n\
         \x20     {body}\n\
         \x20     push(ch_out, out[i]);\n\
         \x20   }}\n\
         \x20 }}\n}}\n"
    )
}

fn source_map2(name: &str, t: &str, w: usize, body: &str) -> String {
    format!(
        "__kernel void {name}(const int N) {{\n\
         \x20 for (int it = 0; it < N / {w}; it++) {{\n\
         \x20   #pragma unroll\n\
         \x20   for (int i = 0; i < {w}; i++) {{\n\
         \x20     {t} xv = pop(ch_x); {t} yv = pop(ch_y);\n\
         \x20     {body}\n\
         \x20     push(ch_out_x, x[i]); push(ch_out_y, y[i]);\n\
         \x20   }}\n\
         \x20 }}\n}}\n"
    )
}

fn source_reduce(name: &str, t: &str, w: usize, body: &str) -> String {
    format!(
        "__kernel void {name}(const int N) {{\n\
         \x20 {t} res = 0;\n\
         \x20 for (int it = 0; it < N / {w}; it++) {{\n\
         \x20   {t} acc = 0;\n\
         \x20   #pragma unroll\n\
         \x20   for (int i = 0; i < {w}; i++) {{\n\
         \x20     {body}\n\
         \x20   }}\n\
         \x20   res += acc;\n\
         \x20 }}\n\
         \x20 push(ch_res, res);\n}}\n"
    )
}

fn source_gemv(
    name: &str,
    t: &str,
    w: usize,
    tn: usize,
    tm: usize,
    variant: GemvVariant,
) -> String {
    format!(
        "// GEMV variant: {variant:?} (tiles {tn}x{tm})\n\
         __kernel void {name}(const {t} alpha, const {t} beta,\n\
         \x20                 const int N, const int M) {{\n\
         \x20 {t} x_blk[{tm}]; {t} y_blk[{tn}];\n\
         \x20 for (int bi = 0; bi < N / {tn}; bi++)\n\
         \x20   for (int bj = 0; bj < M / {tm}; bj++)\n\
         \x20     for (int i = 0; i < {tn}; i++)\n\
         \x20       for (int j = 0; j < {tm} / {w}; j++) {{\n\
         \x20         #pragma unroll\n\
         \x20         for (int ww = 0; ww < {w}; ww++)\n\
         \x20           acc += pop(ch_A) * x_blk[j * {w} + ww];\n\
         \x20       }}\n}}\n"
    )
}

fn source_systolic(name: &str, t: &str, pr: usize, pc: usize, tr: usize, tc: usize) -> String {
    format!(
        "// Systolic array {pr}x{pc}, memory tile {tr}x{tc} (paper Fig. 3)\n\
         __kernel void {name}(const int N, const int M, const int K) {{\n\
         \x20 {t} C_local[{tr}][{tc}];\n\
         \x20 // feeders -> PE grid -> drainers, constant fan-out per PE\n\
         \x20 for (int k = 0; k < K; k++) {{\n\
         \x20   #pragma unroll\n\
         \x20   for (int pi = 0; pi < {pr}; pi++)\n\
         \x20     #pragma unroll\n\
         \x20     for (int pj = 0; pj < {pc}; pj++)\n\
         \x20       PE(pi, pj); // C += A_fwd * B_fwd\n\
         \x20 }}\n}}\n"
    )
}

fn source_scalar(name: &str, t: &str, what: &str) -> String {
    format!(
        "// {what} scalar/sequential datapath\n\
         __kernel void {name}() {{\n\
         \x20 {t} v = pop(ch_in);\n\
         \x20 /* {what} arithmetic (divide / sqrt cores) */\n\
         \x20 push(ch_out, v);\n}}\n"
    )
}

// ---------------- estimate adapters ----------------
//
// The routine structs expose `estimate::<T>()`; codegen works from a
// runtime `Precision` value, so each struct gains a tiny adapter here.

trait EstimateP {
    fn estimate_p(&self, p: Precision) -> ResourceEstimate;
}

macro_rules! impl_estimate_p {
    ($($ty:ty),+ $(,)?) => {
        $(impl EstimateP for $ty {
            fn estimate_p(&self, p: Precision) -> ResourceEstimate {
                match p {
                    Precision::Single => self.estimate::<f32>(),
                    Precision::Double => self.estimate::<f64>(),
                }
            }
        })+
    };
}

impl_estimate_p!(
    Rotg,
    Rotmg,
    Rot,
    Rotm,
    Swap,
    Scal,
    VecCopy,
    Axpy,
    Dot,
    Sdsdot,
    Nrm2,
    Asum,
    Iamax,
    Gemv,
    Trsv,
    Ger,
    Syr,
    Syr2,
    crate::routines::Gemm,
    Syrk,
    Syr2k,
    Trsm,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_22_routine_names_in_both_precisions() {
        for kind in RoutineKind::ALL {
            for (prefix, prec) in [("s", Precision::Single), ("d", Precision::Double)] {
                // sdsdot has no `d` variant; isamax/idamax use the i prefix.
                let name = match kind {
                    RoutineKind::Sdsdot => {
                        if prec == Precision::Double {
                            continue;
                        }
                        "sdsdot".to_string()
                    }
                    RoutineKind::Iamax => format!("i{prefix}amax"),
                    _ => format!("{prefix}{}", kind.base_name()),
                };
                let (p, k) = parse_blas_name(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(k, kind, "{name}");
                assert_eq!(p, prec, "{name}");
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            parse_blas_name("zgemm"),
            Err(CodegenError::UnknownRoutine(_))
        ));
        assert!(matches!(
            parse_blas_name("sfoo"),
            Err(CodegenError::UnknownRoutine(_))
        ));
        assert!(matches!(
            parse_blas_name(""),
            Err(CodegenError::UnknownRoutine(_))
        ));
    }

    #[test]
    fn generates_a_dot_kernel() {
        let mut spec = RoutineSpec::named("sdot");
        spec.width = 32;
        let k = generate(&spec).unwrap();
        assert_eq!(k.kind, RoutineKind::Dot);
        assert_eq!(k.width, 32);
        assert_eq!(k.estimate.resources.dsps, 32);
        assert!(k.source.contains("#pragma unroll"));
        assert!(k.source.contains("res += acc"));
        assert!(k.tiles.is_none());
    }

    #[test]
    fn generates_gemv_variants() {
        let mut spec = RoutineSpec::named("dgemv");
        spec.tile_n = Some(512);
        spec.tile_m = Some(512);
        spec.transposed = Some(true);
        spec.tiles_by = Some("cols".into());
        let k = generate(&spec).unwrap();
        assert_eq!(k.kind, RoutineKind::Gemv);
        assert_eq!(k.precision, Precision::Double);
        assert_eq!(k.tiles, Some((512, 512)));
        assert!(k.source.contains("TransColStreamed"));
    }

    #[test]
    fn gemm_requires_compatible_tiles() {
        let mut spec = RoutineSpec::named("sgemm");
        spec.systolic_rows = Some(8);
        spec.systolic_cols = Some(8);
        spec.tile_n = Some(12); // not a multiple of 8
        spec.tile_m = Some(16);
        match generate(&spec) {
            Err(CodegenError::Invalid { reason, .. }) => assert!(reason.contains("multiples")),
            other => panic!("unexpected: {other:?}"),
        }
        spec.tile_n = Some(16);
        let k = generate(&spec).unwrap();
        assert_eq!(k.systolic, Some((8, 8)));
        assert_eq!(k.estimate.resources.dsps, 64);
        assert!(k.source.contains("PE(pi, pj)"));
    }

    #[test]
    fn triangular_routines_need_uplo() {
        let spec = RoutineSpec::named("strsv");
        match generate(&spec) {
            Err(CodegenError::Invalid { reason, .. }) => assert!(reason.contains("uplo")),
            other => panic!("unexpected: {other:?}"),
        }
        let mut spec = RoutineSpec::named("strsv");
        spec.uplo = Some("lower".into());
        assert!(generate(&spec).is_ok());
    }

    #[test]
    fn zero_width_rejected() {
        let mut spec = RoutineSpec::named("sscal");
        spec.width = 0;
        assert!(matches!(generate(&spec), Err(CodegenError::Invalid { .. })));
    }

    #[test]
    fn spec_file_end_to_end() {
        let json = r#"{
          "routines": [
            { "blas_name": "sdot", "width": 16 },
            { "blas_name": "saxpy", "width": 8 },
            { "blas_name": "ssyr", "uplo": "upper", "tile_n": 64, "tile_m": 64 }
          ]
        }"#;
        let kernels = generate_spec_file(json).unwrap();
        assert_eq!(kernels.len(), 3);
        assert_eq!(kernels[2].kind, RoutineKind::Syr);
        // Broken JSON surfaces as a Json error.
        assert!(matches!(
            generate_spec_file("{"),
            Err(CodegenError::Json(_))
        ));
    }

    #[test]
    fn double_precision_estimates_cost_more() {
        let s = generate(&RoutineSpec::named("sdot")).unwrap();
        let d = generate(&RoutineSpec::named("ddot")).unwrap();
        assert!(d.estimate.resources.dsps > s.estimate.resources.dsps);
        assert!(d.estimate.luts > s.estimate.luts);
    }
}
