//! # fblas-core — streaming BLAS for a simulated FPGA
//!
//! A complete Rust reproduction of **FBLAS** (De Matteis, de Fine Licht,
//! Hoefler: *FBLAS: Streaming Linear Algebra on FPGA*, SC 2020), running
//! on the software dataflow substrate of [`fblas_hlssim`] instead of
//! synthesized hardware.
//!
//! The crate mirrors the paper's two-layer architecture (paper Fig. 1):
//!
//! * **HLS modules** ([`routines`]) — independent streaming computational
//!   entities, one per BLAS routine, with FIFO interfaces and configurable
//!   vectorization width and tile sizes. All 22 routines of the paper's
//!   evaluation are implemented: Level 1 (ROTG, ROTMG, ROT, ROTM, SWAP,
//!   SCAL, COPY, AXPY, DOT, SDSDOT, NRM2, ASUM, IAMAX), Level 2 (GEMV,
//!   TRSV, GER, SYR, SYR2) and Level 3 (GEMM — 2D systolic —, SYRK,
//!   SYR2K, TRSM), in single and double precision.
//! * **Host API** ([`host`]) — classical BLAS calls (`sscal`, `ddot`,
//!   `sgemv`, `sgemm`, …) operating on simulated device buffers, with
//!   synchronous and asynchronous variants.
//!
//! Around these sit the paper's supporting systems:
//!
//! * [`helpers`] — interface modules (DRAM readers/writers for every tile
//!   order, fan-out, on-chip generators);
//! * [`tiling`] — 2D tile orders and the I/O-complexity formulas of
//!   Sec. III-B;
//! * [`codegen`] — the code-generator analog: JSON routine specifications
//!   in, validated module configurations and pseudo-OpenCL kernel
//!   listings out (Sec. II-C);
//! * [`composition`] — MDAG construction and validity analysis
//!   (Sec. V): edge validity, multitree detection, required channel
//!   depths, and I/O-volume accounting;
//! * [`apps`] — the composed applications of the evaluation (AXPYDOT,
//!   BICG, ATAX, GEMVER) in streaming and host-layer variants;
//! * [`perf`] — the performance estimator combining the cycle model,
//!   frequency model, and memory-bank contention into execution-time
//!   estimates for Tables IV–VI and Figs. 10–11.

#![allow(clippy::needless_range_loop)]
// explicit indices mirror the math
// Tests may unwrap freely; library code must not (see clippy.toml).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod apps;
pub mod codegen;
pub mod composition;
pub mod helpers;
pub mod host;
pub mod perf;
pub mod routines;
pub mod scalar;
pub mod tiling;

pub use scalar::Scalar;
