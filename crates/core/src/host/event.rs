//! Asynchronous host calls.
//!
//! "Library calls can be synchronous (return when the computation is
//! done) or asynchronous (return immediately)" (paper Sec. II-B). An
//! asynchronous call runs the routine's simulation on a worker thread
//! and hands back an [`Event`] the host can wait on — the OpenCL event
//! object of the original flow.

use std::thread::JoinHandle;

/// A pending asynchronous host call.
pub struct Event<R> {
    handle: JoinHandle<R>,
}

impl<R: Send + 'static> Event<R> {
    /// Block until the call completes and return its result.
    // A panic in the spawned call is a bug in the routine, not a
    // recoverable condition; re-raising it here is the contract.
    #[allow(clippy::disallowed_methods)]
    pub fn wait(self) -> R {
        self.handle
            .join()
            .expect("asynchronous FBLAS call panicked")
    }

    /// Whether the call has already finished (non-blocking probe).
    pub fn is_complete(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Launch a host call asynchronously. The closure should capture a
/// cloned [`Fpga`](super::Fpga) handle and the buffers it operates on.
pub fn enqueue<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> Event<R> {
    Event {
        handle: std::thread::spawn(f),
    }
}

/// [`enqueue`] with a trace span: the worker thread runs under a named
/// [`ModuleScope`](fblas_trace::ModuleScope), so the command's wall time
/// shows up as a lane in the tracer's timeline alongside the simulation
/// modules it spawns.
pub fn enqueue_traced<R: Send + 'static>(
    name: impl Into<String>,
    tracer: Option<&fblas_trace::Tracer>,
    f: impl FnOnce() -> R + Send + 'static,
) -> Event<R> {
    let name = name.into();
    let tracer = tracer.cloned();
    Event {
        handle: std::thread::spawn(move || {
            let _scope = fblas_trace::ModuleScope::enter(&name, tracer.as_ref());
            f()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_returns_result() {
        let e = enqueue(|| 21 * 2);
        assert_eq!(e.wait(), 42);
    }

    #[test]
    fn traced_event_records_a_lane() {
        let tracer = fblas_trace::Tracer::new();
        let e = enqueue_traced("host:axpy", Some(&tracer), || 7);
        assert_eq!(e.wait(), 7);
        let lanes = tracer.lanes();
        assert!(lanes.iter().any(|l| &*l.module == "host:axpy"));
    }

    #[test]
    fn is_complete_eventually_true() {
        let e = enqueue(|| ());
        while !e.is_complete() {
            std::thread::yield_now();
        }
        e.wait();
    }
}
