//! Classical BLAS host calls (paper Sec. II-B).
//!
//! Each call builds the module graph for one routine — DRAM readers, the
//! computational module, writers — runs it functionally on the dataflow
//! substrate, and returns a [`TimingEstimate`] computed from the paper's
//! cycle/frequency/bandwidth models. Semantics match the classical BLAS
//! calls (`sscal`, `ddot`, `sgemv`, …); precision selection is the `T`
//! type parameter instead of the name prefix.

use fblas_arch::{ResourceEstimate, RoutineClass};
use fblas_hlssim::{channel, PipelineCost, SimError, Simulation};

use super::buffer::DeviceBuffer;
use super::context::Fpga;
use crate::helpers::{
    read_matrix, read_vector, read_vector_replayed, write_matrix, write_scalar, write_vector,
};
use crate::perf::{estimate_time, StreamDemand, TimingEstimate};
use crate::routines::gemm::{read_gemm_a, read_gemm_b, store_c, Gemm, SystolicShape};
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::level3::{read_trsm_triangle, Side, Syr2k, Syrk, Trsm};
use crate::routines::trsv::read_triangle;
use crate::routines::{
    Asum, Axpy, Diag, Dot, Ger, Iamax, Nrm2, Rot, Rotg, Rotm, Rotmg, Scal, Sdsdot, Swap, Syr, Syr2,
    Trans, Trsv, Uplo, VecCopy,
};
use crate::scalar::Scalar;

/// Tile/width tuning of a Level-2 host call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvTuning {
    /// Tile height `T_N`.
    pub tn: usize,
    /// Tile width `T_M`.
    pub tm: usize,
    /// Vectorization width `W`.
    pub w: usize,
}

impl Default for GemvTuning {
    /// The paper's default experimental configuration: 1024×1024 tiles,
    /// width 16.
    fn default() -> Self {
        GemvTuning {
            tn: 1024,
            tm: 1024,
            w: 16,
        }
    }
}

impl GemvTuning {
    /// Convenience constructor.
    pub fn new(tn: usize, tm: usize, w: usize) -> Self {
        GemvTuning { tn, tm, w }
    }

    /// Tuning clamped so tiles never exceed the problem — useful for
    /// small functional runs.
    pub fn clamped(&self, n: usize, m: usize) -> Self {
        GemvTuning {
            tn: self.tn.min(n.max(1)),
            tm: self.tm.min(m.max(1)),
            w: self.w,
        }
    }
}

fn bytes<T: Scalar>(elems: usize) -> u64 {
    elems as u64 * T::PRECISION.elem_bytes()
}

/// Compute the timing estimate for a completed host call.
fn timing<T: Scalar>(
    fpga: &Fpga,
    class: RoutineClass,
    circuit: &ResourceEstimate,
    interfaces: usize,
    cost: PipelineCost,
    streams: &[StreamDemand],
) -> TimingEstimate {
    estimate_time(
        fpga.device(),
        class,
        true, // request HyperFlex; the model decides applicability
        circuit,
        interfaces,
        T::PRECISION.elem_bytes(),
        cost,
        streams,
        fpga.memory(),
    )
}

// --------------------------------------------------------------------
// Level 1
// --------------------------------------------------------------------

/// Result of a scalar-producing rotation constructor: values plus the
/// timing estimate.
pub type RotgResult<T> = ((T, T, T, T), TimingEstimate);
/// Result of [`rotmg`]: `(d1, d2, x1, param)` plus the timing estimate.
pub type RotmgResult<T> = ((T, T, T, [T; 5]), TimingEstimate);

/// ROTG: construct a Givens rotation; returns `(r, z, c, s)`.
pub fn rotg<T: Scalar>(fpga: &Fpga, a: T, b: T) -> Result<RotgResult<T>, SimError> {
    let mut sim = Simulation::new();
    let (ti, ri) = channel(sim.ctx(), 2, "rotg_in");
    let (to, ro) = channel(sim.ctx(), 4, "rotg_out");
    let out = fpga.alloc::<T>("rotg_out", 4);
    sim.add_module("host_in", fblas_hlssim::ModuleKind::Interface, move || {
        ti.push(a)?;
        ti.push(b)
    });
    Rotg.attach(&mut sim, ri, to);
    write_vector(&mut sim, &out, 4, ro);
    sim.run()?;
    let v = out.to_host();
    let est = Rotg.estimate::<T>();
    let t = timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        2,
        Rotg.cost::<T>(),
        &[],
    );
    Ok(((v[0], v[1], v[2], v[3]), t))
}

/// ROTMG: construct a modified Givens transform; returns
/// `(d1, d2, x1, param)`.
pub fn rotmg<T: Scalar>(
    fpga: &Fpga,
    d1: T,
    d2: T,
    x1: T,
    y1: T,
) -> Result<RotmgResult<T>, SimError> {
    let mut sim = Simulation::new();
    let (ti, ri) = channel(sim.ctx(), 4, "rotmg_in");
    let (to, ro) = channel(sim.ctx(), 8, "rotmg_out");
    let out = fpga.alloc::<T>("rotmg_out", 8);
    sim.add_module("host_in", fblas_hlssim::ModuleKind::Interface, move || {
        ti.push_slice(&[d1, d2, x1, y1])
    });
    Rotmg.attach(&mut sim, ri, to);
    write_vector(&mut sim, &out, 8, ro);
    sim.run()?;
    let v = out.to_host();
    let est = Rotmg.estimate::<T>();
    let t = timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        2,
        Rotmg.cost::<T>(),
        &[],
    );
    Ok(((v[0], v[1], v[2], [v[3], v[4], v[5], v[6], v[7]]), t))
}

/// ROT: apply a plane rotation to `x` and `y` in place.
pub fn rot<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    c: T,
    s: T,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "rot: length mismatch");
    let m = Rot::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (ty, ry) = channel(sim.ctx(), 64, "y");
    let (tox, rox) = channel(sim.ctx(), 64, "ox");
    let (toy, roy) = channel(sim.ctx(), 64, "oy");
    read_vector(&mut sim, x, tx);
    read_vector(&mut sim, y, ty);
    m.attach(&mut sim, c, s, rx, ry, tox, toy);
    write_vector(&mut sim, x, n, rox);
    write_vector(&mut sim, y, n, roy);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [
        StreamDemand::new(x.bank(), 2 * bytes::<T>(n)),
        StreamDemand::new(y.bank(), 2 * bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        4,
        m.cost::<T>(),
        &streams,
    ))
}

/// ROTM: apply a modified Givens transform to `x` and `y` in place.
pub fn rotm<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    param: [T; 5],
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "rotm: length mismatch");
    let m = Rotm::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (ty, ry) = channel(sim.ctx(), 64, "y");
    let (tox, rox) = channel(sim.ctx(), 64, "ox");
    let (toy, roy) = channel(sim.ctx(), 64, "oy");
    read_vector(&mut sim, x, tx);
    read_vector(&mut sim, y, ty);
    m.attach(&mut sim, param, rx, ry, tox, toy);
    write_vector(&mut sim, x, n, rox);
    write_vector(&mut sim, y, n, roy);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [
        StreamDemand::new(x.bank(), 2 * bytes::<T>(n)),
        StreamDemand::new(y.bank(), 2 * bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        4,
        m.cost::<T>(),
        &streams,
    ))
}

/// SWAP: exchange `x` and `y`.
pub fn swap<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "swap: length mismatch");
    let m = Swap::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (ty, ry) = channel(sim.ctx(), 64, "y");
    let (tox, rox) = channel(sim.ctx(), 64, "ox");
    let (toy, roy) = channel(sim.ctx(), 64, "oy");
    read_vector(&mut sim, x, tx);
    read_vector(&mut sim, y, ty);
    m.attach(&mut sim, rx, ry, tox, toy);
    write_vector(&mut sim, x, n, rox);
    write_vector(&mut sim, y, n, roy);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [
        StreamDemand::new(x.bank(), 2 * bytes::<T>(n)),
        StreamDemand::new(y.bank(), 2 * bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        4,
        m.cost::<T>(),
        &streams,
    ))
}

/// SCAL: `x ← α·x` in place.
pub fn scal<T: Scalar>(
    fpga: &Fpga,
    alpha: T,
    x: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    let m = Scal::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (to, ro) = channel(sim.ctx(), 64, "out");
    read_vector(&mut sim, x, tx);
    m.attach(&mut sim, alpha, rx, to);
    write_vector(&mut sim, x, n, ro);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [StreamDemand::new(x.bank(), 2 * bytes::<T>(n))];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        2,
        m.cost::<T>(),
        &streams,
    ))
}

/// COPY: `y ← x`.
pub fn copy<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "copy: length mismatch");
    let m = VecCopy::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (to, ro) = channel(sim.ctx(), 64, "out");
    read_vector(&mut sim, x, tx);
    m.attach(&mut sim, rx, to);
    write_vector(&mut sim, y, n, ro);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [
        StreamDemand::new(x.bank(), bytes::<T>(n)),
        StreamDemand::new(y.bank(), bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        2,
        m.cost::<T>(),
        &streams,
    ))
}

/// AXPY: `y ← α·x + y` in place.
pub fn axpy<T: Scalar>(
    fpga: &Fpga,
    alpha: T,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "axpy: length mismatch");
    let m = Axpy::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    let (ty, ry) = channel(sim.ctx(), 64, "y");
    let (to, ro) = channel(sim.ctx(), 64, "out");
    read_vector(&mut sim, x, tx);
    read_vector(&mut sim, y, ty);
    m.attach(&mut sim, alpha, rx, ry, to);
    write_vector(&mut sim, y, n, ro);
    sim.run()?;
    let est = m.estimate::<T>();
    let streams = [
        StreamDemand::new(x.bank(), bytes::<T>(n)),
        StreamDemand::new(y.bank(), 2 * bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        3,
        m.cost::<T>(),
        &streams,
    ))
}

/// Shared driver for the scalar-producing reductions.
fn reduction_call<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: Option<&DeviceBuffer<T>>,
    cost: PipelineCost,
    est: ResourceEstimate,
    attach: impl FnOnce(
        &mut Simulation,
        fblas_hlssim::Receiver<T>,
        Option<fblas_hlssim::Receiver<T>>,
        fblas_hlssim::Sender<T>,
    ),
) -> Result<(T, TimingEstimate), SimError> {
    let n = x.len();
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    read_vector(&mut sim, x, tx);
    let ry = y.map(|yb| {
        let (ty, ry) = channel(sim.ctx(), 64, "y");
        read_vector(&mut sim, yb, ty);
        ry
    });
    let (tr, rr) = channel(sim.ctx(), 1, "res");
    attach(&mut sim, rx, ry, tr);
    let res = fpga.alloc::<T>("res", 1);
    write_scalar(&mut sim, &res, rr);
    sim.run()?;
    let mut streams = vec![StreamDemand::new(x.bank(), bytes::<T>(n))];
    let mut interfaces = 2;
    if let Some(yb) = y {
        streams.push(StreamDemand::new(yb.bank(), bytes::<T>(n)));
        interfaces += 1;
    }
    let t = timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &est,
        interfaces,
        cost,
        &streams,
    );
    Ok((res.get(0), t))
}

/// DOT: returns `xᵀy`.
// Invariant: reduction_call always hands the closure the Some(y) it
// was given above.
#[allow(clippy::disallowed_methods)]
pub fn dot<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    w: usize,
) -> Result<(T, TimingEstimate), SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "dot: length mismatch");
    let m = Dot::new(n, w);
    reduction_call(
        fpga,
        x,
        Some(y),
        m.cost::<T>(),
        m.estimate::<T>(),
        |sim, rx, ry, tr| m.attach(sim, rx, ry.expect("dot needs y"), tr),
    )
}

/// SDSDOT: returns `sb + xᵀy` with double accumulation.
// Invariant: see `dot`.
#[allow(clippy::disallowed_methods)]
pub fn sdsdot<T: Scalar>(
    fpga: &Fpga,
    sb: T,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    w: usize,
) -> Result<(T, TimingEstimate), SimError> {
    let n = x.len();
    assert_eq!(y.len(), n, "sdsdot: length mismatch");
    let m = Sdsdot::new(n, w);
    reduction_call(
        fpga,
        x,
        Some(y),
        m.cost::<T>(),
        m.estimate::<T>(),
        |sim, rx, ry, tr| m.attach(sim, sb, rx, ry.expect("sdsdot needs y"), tr),
    )
}

/// NRM2: returns `‖x‖₂`.
pub fn nrm2<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    w: usize,
) -> Result<(T, TimingEstimate), SimError> {
    let m = Nrm2::new(x.len(), w);
    reduction_call(
        fpga,
        x,
        None,
        m.cost::<T>(),
        m.estimate::<T>(),
        |sim, rx, _ry, tr| m.attach(sim, rx, tr),
    )
}

/// ASUM: returns `Σ|xᵢ|`.
pub fn asum<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    w: usize,
) -> Result<(T, TimingEstimate), SimError> {
    let m = Asum::new(x.len(), w);
    reduction_call(
        fpga,
        x,
        None,
        m.cost::<T>(),
        m.estimate::<T>(),
        |sim, rx, _ry, tr| m.attach(sim, rx, tr),
    )
}

/// IAMAX: returns the 0-based index of the first maximum-magnitude
/// element.
pub fn iamax<T: Scalar>(
    fpga: &Fpga,
    x: &DeviceBuffer<T>,
    w: usize,
) -> Result<(usize, TimingEstimate), SimError> {
    let n = x.len();
    let m = Iamax::new(n, w);
    let mut sim = Simulation::new();
    let (tx, rx) = channel(sim.ctx(), 64, "x");
    read_vector(&mut sim, x, tx);
    let (tr, rr) = channel::<usize>(sim.ctx(), 1, "res");
    m.attach(&mut sim, rx, tr);
    let out = std::sync::Arc::new(parking_lot::Mutex::new(0usize));
    let out2 = out.clone();
    sim.add_module(
        "store_idx",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            *out2.lock() = rr.pop()?;
            Ok(())
        },
    );
    sim.run()?;
    let streams = [StreamDemand::new(x.bank(), bytes::<T>(n))];
    let t = timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &m.estimate::<T>(),
        2,
        m.cost::<T>(),
        &streams,
    );
    let idx = *out.lock();
    Ok((idx, t))
}

// --------------------------------------------------------------------
// Level 2
// --------------------------------------------------------------------

/// GEMV: `y ← α·op(A)·x + β·y` in place; `A` is `n × m` row-major.
#[allow(clippy::too_many_arguments)]
pub fn gemv<T: Scalar>(
    fpga: &Fpga,
    trans: Trans,
    n: usize,
    m: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    beta: T,
    y: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<TimingEstimate, SimError> {
    let tu = tuning.clamped(n, m);
    // Variants that stream y exactly once (no partial replay through
    // DRAM) are preferred by the host layer.
    let variant = match trans {
        Trans::No => GemvVariant::RowStreamed,
        Trans::Yes => GemvVariant::TransColStreamed,
    };
    let g = Gemv::new(variant, n, m, tu.tn, tu.tm, tu.w);
    assert_eq!(a.len(), n * m, "gemv: A must be n*m");
    assert_eq!(x.len(), g.x_len(), "gemv: x length");
    assert_eq!(y.len(), g.y_len(), "gemv: y length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (txv, rxv) = channel(sim.ctx(), 64, "x");
    let (tyi, ryi) = channel(sim.ctx(), 64, "y_in");
    let (tyo, ryo) = channel(sim.ctx(), 64, "y_out");
    read_matrix(&mut sim, a, n, m, g.a_tiling(), ta, 1);
    read_vector_replayed(&mut sim, x, txv, g.x_repetitions());
    read_vector(&mut sim, y, tyi);
    g.attach(&mut sim, alpha, beta, ra, rxv, ryi, tyo);
    write_vector(&mut sim, y, g.y_len(), ryo);
    sim.run()?;

    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(n * m)),
        StreamDemand::new(x.bank(), bytes::<T>(g.x_len() * g.x_repetitions())),
        StreamDemand::new(y.bank(), 2 * bytes::<T>(g.y_len())),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &g.estimate::<T>(),
        4,
        g.cost::<T>(),
        &streams,
    ))
}

/// GER: `A ← α·x·yᵀ + A` in place; `A` is `n × m` row-major.
#[allow(clippy::too_many_arguments)]
pub fn ger<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    alpha: T,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    a: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<TimingEstimate, SimError> {
    let tu = tuning.clamped(n, m);
    let g = Ger::new(n, m, tu.tn, tu.tm, tu.w);
    assert_eq!(a.len(), n * m, "ger: A must be n*m");
    assert_eq!(x.len(), n, "ger: x length");
    assert_eq!(y.len(), m, "ger: y length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (txv, rxv) = channel(sim.ctx(), 64, "x");
    let (tyv, ryv) = channel(sim.ctx(), 64, "y");
    let (to, ro) = channel(sim.ctx(), 256, "a_out");
    read_matrix(&mut sim, a, n, m, g.a_tiling(), ta, 1);
    read_vector(&mut sim, x, txv);
    read_vector_replayed(&mut sim, y, tyv, g.y_repetitions());
    g.attach(&mut sim, alpha, ra, rxv, ryv, to);
    write_matrix(&mut sim, a, n, m, g.a_tiling(), ro);
    sim.run()?;

    let streams = [
        StreamDemand::new(a.bank(), 2 * bytes::<T>(n * m)),
        StreamDemand::new(x.bank(), bytes::<T>(n)),
        StreamDemand::new(y.bank(), bytes::<T>(m * g.y_repetitions())),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &g.estimate::<T>(),
        4,
        g.cost::<T>(),
        &streams,
    ))
}

/// SYR: `A ← α·x·xᵀ + A` on the `uplo` triangle; `A` is `n × n`.
pub fn syr<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &DeviceBuffer<T>,
    a: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<TimingEstimate, SimError> {
    let tu = tuning.clamped(n, n);
    let s = Syr::new(n, tu.tn, tu.tm, tu.w, uplo);
    assert_eq!(a.len(), n * n, "syr: A must be n*n");
    assert_eq!(x.len(), n, "syr: x length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (txr, rxr) = channel(sim.ctx(), 64, "xr");
    let (txc, rxc) = channel(sim.ctx(), 64, "xc");
    let (to, ro) = channel(sim.ctx(), 256, "a_out");
    read_matrix(&mut sim, a, n, n, s.a_tiling(), ta, 1);
    read_vector(&mut sim, x, txr);
    read_vector_replayed(&mut sim, x, txc, s.x_col_repetitions());
    s.attach(&mut sim, alpha, ra, rxr, rxc, to);
    write_matrix(&mut sim, a, n, n, s.a_tiling(), ro);
    sim.run()?;

    let streams = [
        StreamDemand::new(a.bank(), 2 * bytes::<T>(n * n)),
        StreamDemand::new(x.bank(), bytes::<T>(n * (1 + s.x_col_repetitions()))),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &s.estimate::<T>(),
        3,
        s.cost::<T>(),
        &streams,
    ))
}

/// SYR2: `A ← α·x·yᵀ + α·y·xᵀ + A` on the `uplo` triangle.
#[allow(clippy::too_many_arguments)]
pub fn syr2<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    n: usize,
    alpha: T,
    x: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    a: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<TimingEstimate, SimError> {
    let tu = tuning.clamped(n, n);
    let s = Syr2::new(n, tu.tn, tu.tm, tu.w, uplo);
    assert_eq!(a.len(), n * n, "syr2: A must be n*n");
    assert_eq!(x.len(), n, "syr2: x length");
    assert_eq!(y.len(), n, "syr2: y length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (txr, rxr) = channel(sim.ctx(), 64, "xr");
    let (tyr, ryr) = channel(sim.ctx(), 64, "yr");
    let (txc, rxc) = channel(sim.ctx(), 64, "xc");
    let (tyc, ryc) = channel(sim.ctx(), 64, "yc");
    let (to, ro) = channel(sim.ctx(), 256, "a_out");
    read_matrix(&mut sim, a, n, n, s.a_tiling(), ta, 1);
    read_vector(&mut sim, x, txr);
    read_vector(&mut sim, y, tyr);
    read_vector_replayed(&mut sim, x, txc, s.col_repetitions());
    read_vector_replayed(&mut sim, y, tyc, s.col_repetitions());
    s.attach(&mut sim, alpha, ra, rxr, ryr, rxc, ryc, to);
    write_matrix(&mut sim, a, n, n, s.a_tiling(), ro);
    sim.run()?;

    let reps = 1 + s.col_repetitions();
    let streams = [
        StreamDemand::new(a.bank(), 2 * bytes::<T>(n * n)),
        StreamDemand::new(x.bank(), bytes::<T>(n * reps)),
        StreamDemand::new(y.bank(), bytes::<T>(n * reps)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &s.estimate::<T>(),
        4,
        s.cost::<T>(),
        &streams,
    ))
}

/// TRSV: `x ← op(A)⁻¹·x` in place; `A` is `n × n` row-major with the
/// `uplo` triangle stored.
#[allow(clippy::too_many_arguments)]
pub fn trsv<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    n: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let t = Trsv::new(n, w, uplo, trans, diag);
    assert_eq!(a.len(), n * n, "trsv: A must be n*n");
    assert_eq!(x.len(), n, "trsv: x length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (tb, rb) = channel(sim.ctx(), 64, "b");
    let (txo, rxo) = channel(sim.ctx(), 64, "x");
    read_triangle(&mut sim, a, n, uplo, t.reverse_rows(), ta);
    read_vector(&mut sim, x, tb);
    t.attach(&mut sim, ra, rb, txo);
    write_vector(&mut sim, x, n, rxo);
    sim.run()?;

    let tri = crate::routines::trsv::triangle_len(n);
    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(tri)),
        StreamDemand::new(x.bank(), 2 * bytes::<T>(n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &t.estimate::<T>(),
        3,
        t.cost::<T>(),
        &streams,
    ))
}

// --------------------------------------------------------------------
// Level 3
// --------------------------------------------------------------------

/// GEMM: `C ← α·A·B + β·C` on the systolic array; `A` is `n × k`,
/// `B` is `k × m`, `C` is `n × m`, all row-major.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    k: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
    beta: T,
    c: &DeviceBuffer<T>,
    shape: SystolicShape,
    tr: usize,
    tc: usize,
) -> Result<TimingEstimate, SimError> {
    let g = Gemm::new(n, m, k, shape, tr, tc);
    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 1024, "a");
    let (tb, rb) = channel(sim.ctx(), 1024, "b");
    let (tcs, rc) = channel(sim.ctx(), 1024, "c");
    read_gemm_a(&mut sim, a, g, ta);
    read_gemm_b(&mut sim, b, g, tb);
    g.attach(&mut sim, ra, rb, tcs);
    store_c(&mut sim, c, g, alpha, beta, rc);
    sim.run()?;

    // A is re-read once per C-tile column, B once per C-tile row.
    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(n * k * g.tile_cols())),
        StreamDemand::new(b.bank(), bytes::<T>(k * m * g.tile_rows())),
        StreamDemand::new(c.bank(), 2 * bytes::<T>(n * m)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Systolic,
        &g.estimate::<T>(),
        3,
        g.cost::<T>(),
        &streams,
    ))
}

/// SYRK: `C ← α·op(A)·op(A)ᵀ + β·C` on the `uplo` triangle.
#[allow(clippy::too_many_arguments)]
pub fn syrk<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    beta: T,
    c: &DeviceBuffer<T>,
    shape: SystolicShape,
    tr: usize,
    tc: usize,
) -> Result<TimingEstimate, SimError> {
    let s = Syrk::new(n, k, trans, uplo, shape, tr, tc);
    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 1024, "a");
    let (tb, rb) = channel(sim.ctx(), 1024, "b");
    let (tcs, rc) = channel(sim.ctx(), 1024, "c");
    s.read_inputs(&mut sim, a, ta, tb);
    s.attach(&mut sim, ra, rb, tcs);
    s.store(&mut sim, c, alpha, beta, rc);
    sim.run()?;

    let g = s.gemm_cfg();
    let streams = [
        StreamDemand::new(a.bank(), 2 * bytes::<T>(n * k * g.tile_cols())),
        StreamDemand::new(c.bank(), 2 * bytes::<T>(n * n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Systolic,
        &s.estimate::<T>(),
        3,
        s.cost::<T>(),
        &streams,
    ))
}

/// SYR2K: `C ← α·(op(A)·op(B)ᵀ + op(B)·op(A)ᵀ) + β·C` on the triangle.
#[allow(clippy::too_many_arguments)]
pub fn syr2k<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
    beta: T,
    c: &DeviceBuffer<T>,
    shape: SystolicShape,
    tr: usize,
    tc: usize,
) -> Result<TimingEstimate, SimError> {
    let s = Syr2k::new(n, k, trans, uplo, shape, tr, tc);
    let mut sim = Simulation::new();
    s.build(&mut sim, a, b, c, alpha, beta);
    sim.run()?;

    let g = s.gemm_cfg();
    let streams = [
        StreamDemand::new(a.bank(), 2 * bytes::<T>(n * k * g.tile_cols())),
        StreamDemand::new(b.bank(), 2 * bytes::<T>(n * k * g.tile_cols())),
        StreamDemand::new(c.bank(), 2 * bytes::<T>(n * n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Systolic,
        &s.estimate::<T>(),
        5,
        s.cost::<T>(),
        &streams,
    ))
}

/// TRSM: `B ← α·op(A)⁻¹·B` (Left) or `B ← α·B·op(A)⁻¹` (Right), in
/// place on the `m × n` buffer `B`.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    fpga: &Fpga,
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
    w: usize,
) -> Result<TimingEstimate, SimError> {
    let t = Trsm::new(m, n, side, uplo, trans, diag, w);
    assert_eq!(b.len(), m * n, "trsm: B must be m*n");
    let ord = t.a_order();
    assert_eq!(a.len(), ord * ord, "trsm: A dimension");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (tb, rb) = channel(sim.ctx(), 256, "b");
    let (to, ro) = channel(sim.ctx(), 256, "out");
    read_trsm_triangle(&mut sim, a, ord, uplo, ta);
    read_matrix(&mut sim, b, m, n, t.b_tiling(), tb, 1);
    t.attach(&mut sim, alpha, ra, rb, to);
    write_matrix(&mut sim, b, m, n, t.b_tiling(), ro);
    sim.run()?;

    let tri = crate::routines::trsv::triangle_len(ord);
    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(tri)),
        StreamDemand::new(b.bank(), 2 * bytes::<T>(m * n)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Streaming,
        &t.estimate::<T>(),
        3,
        t.cost::<T>(),
        &streams,
    ))
}

/// Batched fully unrolled GEMM (paper Table V): `batch` independent
/// `dim × dim` products streamed through one fully unrolled array.
/// Buffers hold the matrices contiguously, batch-major.
#[allow(clippy::too_many_arguments)]
pub fn gemm_batched<T: Scalar>(
    fpga: &Fpga,
    dim: usize,
    batch: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
    beta: T,
    c: &DeviceBuffer<T>,
) -> Result<TimingEstimate, SimError> {
    let sz = dim * dim;
    assert_eq!(a.len(), batch * sz, "gemm_batched: A length");
    assert_eq!(b.len(), batch * sz, "gemm_batched: B length");
    assert_eq!(c.len(), batch * sz, "gemm_batched: C length");
    let g = Gemm::fully_unrolled(dim);

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 1024, "a");
    let (tb, rb) = channel(sim.ctx(), 1024, "b");
    let (tcs, rc) = channel(sim.ctx(), 1024, "c");

    // Batched Read A: per problem, per k, a T_R column block.
    let a_buf = a.clone();
    sim.add_module(
        "read_a_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let data = a_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for kk in 0..dim {
                    for i in 0..dim {
                        ta.push(data[base + i * dim + kk])?;
                    }
                }
            }
            Ok(())
        },
    );
    let b_buf = b.clone();
    sim.add_module(
        "read_b_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let data = b_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for kk in 0..dim {
                    for j in 0..dim {
                        tb.push(data[base + kk * dim + j])?;
                    }
                }
            }
            Ok(())
        },
    );
    g.attach_batched(&mut sim, batch, ra, rb, tcs);
    let c_buf = c.clone();
    sim.add_module(
        "store_c_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let mut out = c_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for idx in 0..sz {
                    let acc = rc.pop()?;
                    out[base + idx] = alpha.mul_add(acc, beta * out[base + idx]);
                }
            }
            c_buf.from_host(&out);
            Ok(())
        },
    );
    sim.run()?;

    // Fully unrolled: a new problem enters every k cycles; DRAM traffic
    // is 3 matrices per problem (plus the C read for β).
    let est = g.estimate::<T>();
    let cost = PipelineCost::pipelined(est.latency, (batch * dim) as u64);
    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(batch * sz)),
        StreamDemand::new(b.bank(), bytes::<T>(batch * sz)),
        StreamDemand::new(c.bank(), 2 * bytes::<T>(batch * sz)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Systolic,
        &est,
        3,
        cost,
        &streams,
    ))
}

/// Batched fully unrolled left-side TRSM (paper Table V): `batch`
/// independent `dim × dim` solves streamed through one unrolled solver.
#[allow(clippy::too_many_arguments)]
pub fn trsm_batched<T: Scalar>(
    fpga: &Fpga,
    uplo: Uplo,
    diag: Diag,
    dim: usize,
    batch: usize,
    alpha: T,
    a: &DeviceBuffer<T>,
    b: &DeviceBuffer<T>,
) -> Result<TimingEstimate, SimError> {
    let sz = dim * dim;
    assert_eq!(a.len(), batch * sz, "trsm_batched: A length");
    assert_eq!(b.len(), batch * sz, "trsm_batched: B length");
    let t = Trsm::new(dim, dim, Side::Left, uplo, Trans::No, diag, dim);

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (tb, rb) = channel(sim.ctx(), 256, "b");
    let (to, ro) = channel(sim.ctx(), 256, "out");

    let tri = crate::routines::trsv::triangle_len(dim);
    let a_buf = a.clone();
    sim.add_module(
        "read_a_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let data = a_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for i in 0..dim {
                    let (lo, hi) = match uplo {
                        Uplo::Lower => (0, i + 1),
                        Uplo::Upper => (i, dim),
                    };
                    for j in lo..hi {
                        ta.push(data[base + i * dim + j])?;
                    }
                }
            }
            Ok(())
        },
    );
    let b_buf = b.clone();
    let b_tiling = t.b_tiling();
    sim.add_module(
        "read_b_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let data = b_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for &(r, c) in &b_tiling.stream_indices(dim, dim) {
                    tb.push(data[base + r * dim + c])?;
                }
            }
            Ok(())
        },
    );
    // One solver module per problem round: the module solves its fixed
    // shape `batch` times.
    let cfg = t;
    sim.add_module(
        "trsm_batched",
        fblas_hlssim::ModuleKind::Compute,
        move || {
            for _ in 0..batch {
                // Inline one-problem solve: triangle then dim RHS columns.
                let tri_vals = ra.pop_n(tri)?;
                let at = |i: usize, j: usize| -> T {
                    match uplo {
                        Uplo::Lower => tri_vals[i * (i + 1) / 2 + j],
                        Uplo::Upper => {
                            let start = i * dim - (i * i - i) / 2;
                            tri_vals[start + (j - i)]
                        }
                    }
                };
                for _rhs in 0..dim {
                    let mut col = rb.pop_n(dim)?;
                    for v in col.iter_mut() {
                        *v *= alpha;
                    }
                    match uplo {
                        Uplo::Lower => {
                            for i in 0..dim {
                                let mut acc = col[i];
                                for j in 0..i {
                                    acc -= at(i, j) * col[j];
                                }
                                col[i] = match cfg.diag {
                                    Diag::Unit => acc,
                                    Diag::NonUnit => acc / at(i, i),
                                };
                            }
                        }
                        Uplo::Upper => {
                            for i in (0..dim).rev() {
                                let mut acc = col[i];
                                for j in i + 1..dim {
                                    acc -= at(i, j) * col[j];
                                }
                                col[i] = match cfg.diag {
                                    Diag::Unit => acc,
                                    Diag::NonUnit => acc / at(i, i),
                                };
                            }
                        }
                    }
                    to.push_slice(&col)?;
                }
            }
            Ok(())
        },
    );
    let out_buf = b.clone();
    let b_tiling = t.b_tiling();
    sim.add_module(
        "store_b_batched",
        fblas_hlssim::ModuleKind::Interface,
        move || {
            let mut out = out_buf.to_host();
            for p in 0..batch {
                let base = p * sz;
                for &(r, c) in &b_tiling.stream_indices(dim, dim) {
                    out[base + r * dim + c] = ro.pop()?;
                }
            }
            out_buf.from_host(&out);
            Ok(())
        },
    );
    sim.run()?;

    let est = t.estimate::<T>();
    let cost = PipelineCost::pipelined(est.latency, (batch * dim) as u64);
    let streams = [
        StreamDemand::new(a.bank(), bytes::<T>(batch * tri)),
        StreamDemand::new(b.bank(), 2 * bytes::<T>(batch * sz)),
    ];
    Ok(timing::<T>(
        fpga,
        RoutineClass::Systolic,
        &est,
        3,
        cost,
        &streams,
    ))
}
