//! The FPGA context: device handle plus memory allocation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fblas_arch::{Device, MemorySystem};

use super::buffer::DeviceBuffer;

struct FpgaInner {
    device: Device,
    memory: MemorySystem,
    next_bank: AtomicUsize,
}

/// Handle to a simulated FPGA board: the target device plus its DDR
/// memory system. Cheap to clone (shared state), so asynchronous calls
/// can own one.
#[derive(Clone)]
pub struct Fpga {
    inner: Arc<FpgaInner>,
}

impl Fpga {
    /// Open a context on the given device with its default memory
    /// configuration (interleaving disabled, per the paper's BSP note).
    pub fn new(device: Device) -> Self {
        Fpga {
            inner: Arc::new(FpgaInner {
                device,
                memory: device.memory(),
                next_bank: AtomicUsize::new(0),
            }),
        }
    }

    /// Open a context with a custom memory system (e.g. interleaving
    /// enabled for the interleaving ablation).
    pub fn with_memory(device: Device, memory: MemorySystem) -> Self {
        Fpga {
            inner: Arc::new(FpgaInner {
                device,
                memory,
                next_bank: AtomicUsize::new(0),
            }),
        }
    }

    /// The target device.
    pub fn device(&self) -> Device {
        self.inner.device
    }

    /// The DDR memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.inner.memory
    }

    /// Allocate a zero-initialized buffer, placing it on the next DDR
    /// bank round-robin (the manual placement a careful user performs
    /// when interleaving is off).
    pub fn alloc<T: Clone + Default + Send + Sync + 'static>(
        &self,
        name: impl Into<String>,
        len: usize,
    ) -> DeviceBuffer<T> {
        let bank = self.next_bank();
        DeviceBuffer::zeroed(name, len, bank)
    }

    /// Allocate a buffer initialized from host data (round-robin bank).
    pub fn alloc_from<T: Clone + Send + Sync + 'static>(
        &self,
        name: impl Into<String>,
        data: Vec<T>,
    ) -> DeviceBuffer<T> {
        let bank = self.next_bank();
        DeviceBuffer::from_vec(name, data, bank)
    }

    /// Allocate a buffer on an explicit DDR bank.
    pub fn alloc_on<T: Clone + Send + Sync + 'static>(
        &self,
        name: impl Into<String>,
        data: Vec<T>,
        bank: usize,
    ) -> DeviceBuffer<T> {
        assert!(bank < self.inner.memory.bank_count(), "bank out of range");
        DeviceBuffer::from_vec(name, data, bank)
    }

    fn next_bank(&self) -> usize {
        self.inner.next_bank.fetch_add(1, Ordering::Relaxed) % self.inner.memory.bank_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_allocation() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let banks: Vec<usize> = (0..6)
            .map(|i| fpga.alloc::<f32>(format!("b{i}"), 4).bank())
            .collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn explicit_bank_allocation() {
        let fpga = Fpga::new(Device::Arria10Gx1150);
        let b = fpga.alloc_on("x", vec![1.0f64, 2.0], 1);
        assert_eq!(b.bank(), 1);
        assert_eq!(b.to_host(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "bank out of range")]
    fn invalid_bank_rejected() {
        let fpga = Fpga::new(Device::Arria10Gx1150); // 2 banks
        let _ = fpga.alloc_on("x", vec![0.0f32], 5);
    }

    #[test]
    fn clones_share_allocation_state() {
        let fpga = Fpga::new(Device::Arria10Gx1150);
        let c = fpga.clone();
        let b0 = fpga.alloc::<f32>("a", 1).bank();
        let b1 = c.alloc::<f32>("b", 1).bank();
        assert_ne!(b0, b1, "round-robin continues across clones");
        assert_eq!(c.device(), Device::Arria10Gx1150);
        assert_eq!(fpga.memory().bank_count(), 2);
    }
}
