//! Simulated device (DRAM) buffers.
//!
//! In the OpenCL flow of the paper, the host allocates buffers in the
//! FPGA's DDR banks, transfers data, invokes routines on them, and copies
//! results back (Sec. II-B). [`DeviceBuffer`] is that allocation: shared,
//! interior-mutable storage plus the DDR bank it lives in — the bank
//! matters because streams touching the same bank contend for its
//! bandwidth (see [`fblas_arch::MemorySystem`]).

use std::sync::Arc;

use parking_lot::RwLock;

/// A buffer resident in simulated device memory.
///
/// Cloning is cheap and yields a handle to the same storage, mirroring
/// how multiple interface modules may address the same DRAM region.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T> {
    data: Arc<RwLock<Vec<T>>>,
    bank: usize,
    name: String,
}

impl<T: Clone + Send + Sync + 'static> DeviceBuffer<T> {
    /// Wrap host data into a device buffer on the given DDR bank.
    pub fn from_vec(name: impl Into<String>, data: Vec<T>, bank: usize) -> Self {
        DeviceBuffer {
            data: Arc::new(RwLock::new(data)),
            bank,
            name: name.into(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// DDR bank index this buffer is allocated in.
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// Buffer name (used in module and channel labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Copy the device contents back to the host (the OpenCL
    /// `enqueueReadBuffer`).
    pub fn to_host(&self) -> Vec<T> {
        self.data.read().clone()
    }

    /// Overwrite device contents from the host (the OpenCL
    /// `enqueueWriteBuffer`).
    ///
    /// # Panics
    /// Panics if the length differs from the allocation.
    pub fn from_host(&self, src: &[T]) {
        let mut guard = self.data.write();
        assert_eq!(
            guard.len(),
            src.len(),
            "device buffer size mismatch on write"
        );
        guard.clone_from_slice(src);
    }

    /// Read one element.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, idx: usize) -> T {
        self.data.read()[idx].clone()
    }

    /// Run a closure with read access to the underlying storage.
    pub fn with_read<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        f(&self.data.read())
    }

    /// Run a closure with write access to the underlying storage.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        f(&mut self.data.write())
    }
}

impl<T: Clone + Default + Send + Sync + 'static> DeviceBuffer<T> {
    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn zeroed(name: impl Into<String>, len: usize, bank: usize) -> Self {
        DeviceBuffer::from_vec(name, vec![T::default(); len], bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_host_device() {
        let b = DeviceBuffer::from_vec("x", vec![1.0f32, 2.0, 3.0], 0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.bank(), 0);
        assert_eq!(b.name(), "x");
        assert_eq!(b.to_host(), vec![1.0, 2.0, 3.0]);
        b.from_host(&[4.0, 5.0, 6.0]);
        assert_eq!(b.get(1), 5.0);
    }

    #[test]
    fn clones_share_storage() {
        let b = DeviceBuffer::<f64>::zeroed("y", 4, 1);
        let b2 = b.clone();
        b.with_write(|v| v[2] = 9.0);
        assert_eq!(b2.get(2), 9.0);
        assert_eq!(b2.bank(), 1);
    }

    #[test]
    fn with_read_observes_contents() {
        let b = DeviceBuffer::from_vec("z", vec![1u32, 2, 3], 0);
        let sum = b.with_read(|s| s.iter().sum::<u32>());
        assert_eq!(sum, 6);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_write_panics() {
        let b = DeviceBuffer::from_vec("w", vec![0.0f64; 2], 0);
        b.from_host(&[1.0]);
    }
}
