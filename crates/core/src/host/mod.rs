//! Host API (paper Sec. II-B).
//!
//! The layer a host program uses: allocate device buffers, transfer
//! data, invoke BLAS routines on the (simulated) FPGA, and read results
//! back. Calls come in synchronous form (return when the computation is
//! done) and asynchronous form (return an [`Event`](event::Event)
//! immediately), mirroring the OpenCL programming flow.

pub mod blas;
pub mod buffer;
pub mod classic;
pub mod context;
pub mod event;

pub use blas::GemvTuning;
pub use buffer::DeviceBuffer;
pub use context::Fpga;
pub use event::{enqueue, enqueue_traced, Event};
