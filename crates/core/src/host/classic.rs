//! Classical BLAS entry points.
//!
//! The paper's host API "provides a set of library calls that match the
//! classical BLAS calls in terms of signature and behavior"
//! (Sec. II-B). The generic functions in [`blas`](super::blas) take the
//! precision as a type parameter; this module completes the classical
//! surface with the `s`/`d`-prefixed names, so host code ports from
//! CBLAS with minimal edits.
//!
//! Every wrapper is a direct delegation — semantics, errors, and timing
//! estimates are identical to the generic calls.

use fblas_hlssim::SimError;

use super::blas::{self, GemvTuning};
use super::buffer::DeviceBuffer;
use super::context::Fpga;
use crate::perf::TimingEstimate;
use crate::routines::gemm::SystolicShape;
use crate::routines::{Diag, Side, Trans, Uplo};

macro_rules! level1_wrappers {
    ($t:ty, $scal:ident, $copy:ident, $swap:ident, $axpy:ident, $dot:ident,
     $nrm2:ident, $asum:ident, $iamax:ident, $rot:ident, $rotm:ident,
     $rotg:ident, $rotmg:ident) => {
        /// SCAL in the classical naming (`x ← α·x`).
        pub fn $scal(
            fpga: &Fpga,
            alpha: $t,
            x: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::scal(fpga, alpha, x, w)
        }

        /// COPY in the classical naming (`y ← x`).
        pub fn $copy(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::copy(fpga, x, y, w)
        }

        /// SWAP in the classical naming.
        pub fn $swap(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::swap(fpga, x, y, w)
        }

        /// AXPY in the classical naming (`y ← α·x + y`).
        pub fn $axpy(
            fpga: &Fpga,
            alpha: $t,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::axpy(fpga, alpha, x, y, w)
        }

        /// DOT in the classical naming (returns `xᵀy`).
        pub fn $dot(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<($t, TimingEstimate), SimError> {
            blas::dot(fpga, x, y, w)
        }

        /// NRM2 in the classical naming (returns `‖x‖₂`).
        pub fn $nrm2(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<($t, TimingEstimate), SimError> {
            blas::nrm2(fpga, x, w)
        }

        /// ASUM in the classical naming (returns `Σ|xᵢ|`).
        pub fn $asum(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<($t, TimingEstimate), SimError> {
            blas::asum(fpga, x, w)
        }

        /// IAMAX in the classical naming (0-based index of the first
        /// maximum-magnitude element).
        pub fn $iamax(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<(usize, TimingEstimate), SimError> {
            blas::iamax(fpga, x, w)
        }

        /// ROT in the classical naming.
        pub fn $rot(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            c: $t,
            s: $t,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::rot(fpga, x, y, c, s, w)
        }

        /// ROTM in the classical naming (netlib `param` layout).
        pub fn $rotm(
            fpga: &Fpga,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            param: [$t; 5],
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::rotm(fpga, x, y, param, w)
        }

        /// ROTG in the classical naming (returns `(r, z, c, s)`).
        pub fn $rotg(
            fpga: &Fpga,
            a: $t,
            b: $t,
        ) -> Result<(($t, $t, $t, $t), TimingEstimate), SimError> {
            blas::rotg(fpga, a, b)
        }

        /// ROTMG in the classical naming.
        pub fn $rotmg(
            fpga: &Fpga,
            d1: $t,
            d2: $t,
            x1: $t,
            y1: $t,
        ) -> Result<(($t, $t, $t, [$t; 5]), TimingEstimate), SimError> {
            blas::rotmg(fpga, d1, d2, x1, y1)
        }
    };
}

level1_wrappers!(
    f32, sscal, scopy, sswap, saxpy, sdot, snrm2, sasum, isamax, srot, srotm, srotg, srotmg
);
level1_wrappers!(
    f64, dscal, dcopy, dswap, daxpy, ddot, dnrm2, dasum, idamax, drot, drotm, drotg, drotmg
);

/// SDSDOT (single precision only, per BLAS): `sb + xᵀy` with double
/// accumulation.
pub fn sdsdot(
    fpga: &Fpga,
    sb: f32,
    x: &DeviceBuffer<f32>,
    y: &DeviceBuffer<f32>,
    w: usize,
) -> Result<(f32, TimingEstimate), SimError> {
    blas::sdsdot(fpga, sb, x, y, w)
}

macro_rules! level23_wrappers {
    ($t:ty, $gemv:ident, $ger:ident, $syr:ident, $syr2:ident, $trsv:ident,
     $gemm:ident, $syrk:ident, $syr2k:ident, $trsm:ident) => {
        /// GEMV in the classical naming (`y ← α·op(A)·x + β·y`).
        #[allow(clippy::too_many_arguments)]
        pub fn $gemv(
            fpga: &Fpga,
            trans: Trans,
            n: usize,
            m: usize,
            alpha: $t,
            a: &DeviceBuffer<$t>,
            x: &DeviceBuffer<$t>,
            beta: $t,
            y: &DeviceBuffer<$t>,
            tuning: &GemvTuning,
        ) -> Result<TimingEstimate, SimError> {
            blas::gemv(fpga, trans, n, m, alpha, a, x, beta, y, tuning)
        }

        /// GER in the classical naming (`A ← α·x·yᵀ + A`).
        #[allow(clippy::too_many_arguments)]
        pub fn $ger(
            fpga: &Fpga,
            n: usize,
            m: usize,
            alpha: $t,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            a: &DeviceBuffer<$t>,
            tuning: &GemvTuning,
        ) -> Result<TimingEstimate, SimError> {
            blas::ger(fpga, n, m, alpha, x, y, a, tuning)
        }

        /// SYR in the classical naming (`A ← α·x·xᵀ + A`, one triangle).
        pub fn $syr(
            fpga: &Fpga,
            uplo: Uplo,
            n: usize,
            alpha: $t,
            x: &DeviceBuffer<$t>,
            a: &DeviceBuffer<$t>,
            tuning: &GemvTuning,
        ) -> Result<TimingEstimate, SimError> {
            blas::syr(fpga, uplo, n, alpha, x, a, tuning)
        }

        /// SYR2 in the classical naming.
        #[allow(clippy::too_many_arguments)]
        pub fn $syr2(
            fpga: &Fpga,
            uplo: Uplo,
            n: usize,
            alpha: $t,
            x: &DeviceBuffer<$t>,
            y: &DeviceBuffer<$t>,
            a: &DeviceBuffer<$t>,
            tuning: &GemvTuning,
        ) -> Result<TimingEstimate, SimError> {
            blas::syr2(fpga, uplo, n, alpha, x, y, a, tuning)
        }

        /// TRSV in the classical naming (`x ← op(A)⁻¹·x`).
        #[allow(clippy::too_many_arguments)]
        pub fn $trsv(
            fpga: &Fpga,
            uplo: Uplo,
            trans: Trans,
            diag: Diag,
            n: usize,
            a: &DeviceBuffer<$t>,
            x: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::trsv(fpga, uplo, trans, diag, n, a, x, w)
        }

        /// GEMM in the classical naming (`C ← α·A·B + β·C`, systolic).
        #[allow(clippy::too_many_arguments)]
        pub fn $gemm(
            fpga: &Fpga,
            n: usize,
            m: usize,
            k: usize,
            alpha: $t,
            a: &DeviceBuffer<$t>,
            b: &DeviceBuffer<$t>,
            beta: $t,
            c: &DeviceBuffer<$t>,
            shape: SystolicShape,
            tr: usize,
            tc: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::gemm(fpga, n, m, k, alpha, a, b, beta, c, shape, tr, tc)
        }

        /// SYRK in the classical naming.
        #[allow(clippy::too_many_arguments)]
        pub fn $syrk(
            fpga: &Fpga,
            uplo: Uplo,
            trans: Trans,
            n: usize,
            k: usize,
            alpha: $t,
            a: &DeviceBuffer<$t>,
            beta: $t,
            c: &DeviceBuffer<$t>,
            shape: SystolicShape,
            tr: usize,
            tc: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::syrk(fpga, uplo, trans, n, k, alpha, a, beta, c, shape, tr, tc)
        }

        /// SYR2K in the classical naming.
        #[allow(clippy::too_many_arguments)]
        pub fn $syr2k(
            fpga: &Fpga,
            uplo: Uplo,
            trans: Trans,
            n: usize,
            k: usize,
            alpha: $t,
            a: &DeviceBuffer<$t>,
            b: &DeviceBuffer<$t>,
            beta: $t,
            c: &DeviceBuffer<$t>,
            shape: SystolicShape,
            tr: usize,
            tc: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::syr2k(fpga, uplo, trans, n, k, alpha, a, b, beta, c, shape, tr, tc)
        }

        /// TRSM in the classical naming.
        #[allow(clippy::too_many_arguments)]
        pub fn $trsm(
            fpga: &Fpga,
            side: Side,
            uplo: Uplo,
            trans: Trans,
            diag: Diag,
            m: usize,
            n: usize,
            alpha: $t,
            a: &DeviceBuffer<$t>,
            b: &DeviceBuffer<$t>,
            w: usize,
        ) -> Result<TimingEstimate, SimError> {
            blas::trsm(fpga, side, uplo, trans, diag, m, n, alpha, a, b, w)
        }
    };
}

level23_wrappers!(f32, sgemv, sger, ssyr, ssyr2, strsv, sgemm, ssyrk, ssyr2k, strsm);
level23_wrappers!(f64, dgemv, dger, dsyr, dsyr2, dtrsv, dgemm, dsyrk, dsyr2k, dtrsm);

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_arch::Device;

    #[test]
    fn single_precision_names_work_end_to_end() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let x = fpga.alloc_from("x", vec![1.0f32, 2.0, 3.0, 4.0]);
        let y = fpga.alloc_from("y", vec![1.0f32; 4]);
        sscal(&fpga, 2.0, &x, 2).unwrap();
        assert_eq!(x.to_host(), vec![2.0, 4.0, 6.0, 8.0]);
        let (d, _) = sdot(&fpga, &x, &y, 2).unwrap();
        assert_eq!(d, 20.0);
        let (i, _) = isamax(&fpga, &x, 2).unwrap();
        assert_eq!(i, 3);
        let (s, _) = sdsdot(&fpga, 1.0, &x, &y, 2).unwrap();
        assert_eq!(s, 21.0);
    }

    #[test]
    fn double_precision_names_work_end_to_end() {
        let fpga = Fpga::new(Device::Arria10Gx1150);
        let x = fpga.alloc_from("x", vec![3.0f64, 4.0]);
        let (n, _) = dnrm2(&fpga, &x, 1).unwrap();
        assert!((n - 5.0).abs() < 1e-12);
        let y = fpga.alloc_from("y", vec![0.0f64; 2]);
        dcopy(&fpga, &x, &y, 1).unwrap();
        assert_eq!(y.to_host(), vec![3.0, 4.0]);
        daxpy(&fpga, -1.0, &x, &y, 1).unwrap();
        assert_eq!(y.to_host(), vec![0.0, 0.0]);
        let ((r, _z, _c, _s), _) = drotg(&fpga, 3.0, 4.0).unwrap();
        assert!((r - 5.0).abs() < 1e-12);
    }

    #[test]
    fn level2_and_3_names_work() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let n = 4;
        let a = fpga.alloc_from("a", vec![1.0f32; n * n]);
        let x = fpga.alloc_from("x", vec![1.0f32; n]);
        let y = fpga.alloc_from("y", vec![0.0f32; n]);
        let tuning = GemvTuning::new(2, 2, 2);
        sgemv(&fpga, Trans::No, n, n, 1.0, &a, &x, 0.0, &y, &tuning).unwrap();
        assert_eq!(y.to_host(), vec![4.0; n]);

        let b = fpga.alloc_from("b", vec![1.0f32; n * n]);
        let c = fpga.alloc_from("c", vec![0.0f32; n * n]);
        sgemm(
            &fpga,
            n,
            n,
            n,
            1.0,
            &a,
            &b,
            0.0,
            &c,
            SystolicShape::new(2, 2),
            2,
            2,
        )
        .unwrap();
        assert_eq!(c.to_host(), vec![4.0; n * n]);

        dger(
            &fpga,
            2,
            2,
            1.0,
            &fpga.alloc_from("gx", vec![1.0f64, 2.0]),
            &fpga.alloc_from("gy", vec![3.0f64, 4.0]),
            &fpga.alloc_from("ga", vec![0.0f64; 4]),
            &tuning,
        )
        .unwrap();
    }
}
