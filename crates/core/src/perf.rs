//! Execution-time estimation.
//!
//! Combines the paper's models into a per-design time estimate:
//!
//! 1. the pipeline cycle count `C = L + I·M` of the configured modules
//!    (Sec. IV, [`fblas_hlssim::cycles`]);
//! 2. the achieved clock frequency, derated by resource utilization and
//!    lifted by HyperFlex where applicable ([`fblas_arch::frequency`]);
//! 3. the DRAM ceiling: a design cannot consume operands faster than the
//!    banks its streams touch can deliver them, including bank-sharing
//!    contention ([`fblas_arch::memory`]).
//!
//! The reported time is the maximum of the compute-pipeline time and the
//! slowest stream's transfer time — the roofline of Sec. IV-B applied to
//! a whole design.

use fblas_arch::{
    design_overhead, BankAssignment, Device, FrequencyModel, MemorySystem, PowerModel,
    ResourceEstimate, Resources, RoutineClass,
};
use fblas_hlssim::PipelineCost;

/// Bytes moved by one DRAM stream of a design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDemand {
    /// DDR bank the stream touches.
    pub bank: usize,
    /// Total bytes transferred over the run.
    pub bytes: u64,
}

impl StreamDemand {
    /// Construct a stream demand.
    pub fn new(bank: usize, bytes: u64) -> Self {
        StreamDemand { bank, bytes }
    }
}

/// Complete execution-time estimate for a configured design.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingEstimate {
    /// Target device.
    pub device: Device,
    /// Estimated execution time in seconds.
    pub seconds: f64,
    /// Pipeline cycles of the compute-bound path.
    pub compute_cycles: u64,
    /// Achieved clock frequency in Hz.
    pub freq_hz: f64,
    /// Whether HyperFlex was applied.
    pub hyperflex: bool,
    /// Whether the estimate is memory-bound (DRAM ceiling dominated).
    pub memory_bound: bool,
    /// Total design resources, including the per-design overhead.
    pub resources: Resources,
    /// Estimated board power in watts.
    pub power_w: f64,
}

impl TimingEstimate {
    /// Time in microseconds (the unit of the paper's Tables IV–VI).
    pub fn micros(&self) -> f64 {
        self.seconds * 1.0e6
    }
}

/// Estimate the execution time of a design.
///
/// * `cost` — the pipeline cost of the design's critical module chain
///   (use [`fblas_hlssim::streamed_cycles`] for compositions);
/// * `circuit` — summed resource estimate of all computational modules;
/// * `interfaces` — number of DRAM interface modules (adds their
///   resources);
/// * `streams` — per-stream DRAM traffic with bank placement;
/// * `class`/`hyperflex` — frequency-model inputs.
#[allow(clippy::too_many_arguments)]
pub fn estimate_time(
    device: Device,
    class: RoutineClass,
    hyperflex: bool,
    circuit: &ResourceEstimate,
    interfaces: usize,
    elem_bytes: u64,
    cost: PipelineCost,
    streams: &[StreamDemand],
    memory: &MemorySystem,
) -> TimingEstimate {
    let model = device.model();
    let precision = if elem_bytes > 4 {
        fblas_arch::Precision::Double
    } else {
        fblas_arch::Precision::Single
    };
    let mut total = circuit.resources + design_overhead(device, hyperflex);
    for _ in 0..interfaces {
        total += fblas_arch::interface_module(precision, 16);
    }

    let util = total.max_utilization(&model.available).min(1.0);
    let (freq_hz, hyperflex_used) = FrequencyModel::new(device).achieved_hz(class, hyperflex, util);

    let compute_secs = cost.cycles() as f64 / freq_hz;

    // DRAM ceiling. With interleaving, every transfer is striped across
    // all banks, so the aggregate byte volume moves at the aggregate
    // bandwidth. Without interleaving, concurrent streams split the
    // bandwidth of the bank they live on, and the run cannot finish
    // before the slowest stream has moved its bytes.
    let mem_secs = if memory.interleaved() {
        streams.iter().map(|s| s.bytes).sum::<u64>() as f64 / memory.total_bandwidth()
    } else {
        let assignments: Vec<BankAssignment> = streams
            .iter()
            .map(|s| BankAssignment { bank: s.bank })
            .collect();
        let bws = memory.stream_bandwidths(&assignments);
        streams
            .iter()
            .zip(&bws)
            .map(|(s, bw)| s.bytes as f64 / bw)
            .fold(0.0f64, f64::max)
    };

    let memory_bound = mem_secs > compute_secs;
    let seconds = compute_secs.max(mem_secs);

    TimingEstimate {
        device,
        seconds,
        compute_cycles: cost.cycles(),
        freq_hz,
        hyperflex: hyperflex_used,
        memory_bound,
        resources: total,
        power_w: PowerModel::new(device).board_power_w(&total),
    }
}

/// Seed an [`AuditSpec`](fblas_audit::AuditSpec) from a design's timing
/// estimate: the achieved clock becomes the spec's frequency, the
/// estimate's seconds become the DRAM ceiling when the design is
/// memory-bound, and the given per-module predictions and MDAG critical
/// path are carried through. The returned spec is ready to be joined
/// with a traced simulation run via [`fblas_audit::audit`].
pub fn audit_spec(
    est: &TimingEstimate,
    predictions: Vec<fblas_audit::ModulePrediction>,
    critical_path: Vec<String>,
) -> fblas_audit::AuditSpec {
    let mut spec = fblas_audit::AuditSpec::new(est.freq_hz);
    spec.mem_ceiling_secs = if est.memory_bound { est.seconds } else { 0.0 };
    spec.critical_path = critical_path;
    spec.predictions = predictions;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblas_arch::{estimate_circuit, CircuitClass, Precision};

    fn dot_setup(w: u64, n: u64) -> (ResourceEstimate, PipelineCost) {
        let est = estimate_circuit(CircuitClass::MapReduce { w }, Precision::Single);
        let cost = PipelineCost::pipelined(est.latency, n / w);
        (est, cost)
    }

    #[test]
    fn compute_bound_when_fed_on_chip() {
        // No DRAM streams: the pipeline time stands alone.
        let (est, cost) = dot_setup(64, 1 << 24);
        let mem = Device::Stratix10Gx2800.memory();
        let t = estimate_time(
            Device::Stratix10Gx2800,
            RoutineClass::Streaming,
            true,
            &est,
            0,
            4,
            cost,
            &[],
            &mem,
        );
        assert!(!t.memory_bound);
        assert!(t.hyperflex);
        assert!(t.freq_hz > 300.0e6);
        assert!((t.seconds - t.compute_cycles as f64 / t.freq_hz).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_when_streams_exceed_pipeline() {
        // Huge W makes compute trivial; DRAM transfer dominates.
        let n: u64 = 1 << 26;
        let (est, cost) = dot_setup(256, n);
        let mem = Device::Stratix10Gx2800.memory();
        let streams = [StreamDemand::new(0, 4 * n), StreamDemand::new(1, 4 * n)];
        let t = estimate_time(
            Device::Stratix10Gx2800,
            RoutineClass::Streaming,
            true,
            &est,
            2,
            4,
            cost,
            &streams,
            &mem,
        );
        assert!(t.memory_bound);
        // 2^26 * 4 bytes at 19.2 GB/s ≈ 14 ms.
        assert!((t.seconds - (4.0 * n as f64) / 19.2e9).abs() / t.seconds < 1e-6);
    }

    #[test]
    fn bank_sharing_slows_the_run() {
        let n: u64 = 1 << 26;
        let (est, cost) = dot_setup(256, n);
        let mem = Device::Stratix10Gx2800.memory();
        let separate = [StreamDemand::new(0, 4 * n), StreamDemand::new(1, 4 * n)];
        let shared = [StreamDemand::new(0, 4 * n), StreamDemand::new(0, 4 * n)];
        let args = |s: &[StreamDemand]| {
            estimate_time(
                Device::Stratix10Gx2800,
                RoutineClass::Streaming,
                true,
                &est,
                2,
                4,
                cost,
                s,
                &mem,
            )
        };
        let t_sep = args(&separate);
        let t_shared = args(&shared);
        assert!(t_shared.seconds > 1.9 * t_sep.seconds);
    }

    #[test]
    fn audit_spec_carries_frequency_ceiling_and_path() {
        use fblas_audit::ModulePrediction;

        let n: u64 = 1 << 26;
        let (est, cost) = dot_setup(256, n);
        let mem = Device::Stratix10Gx2800.memory();
        let streams = [StreamDemand::new(0, 4 * n), StreamDemand::new(1, 4 * n)];
        let t = estimate_time(
            Device::Stratix10Gx2800,
            RoutineClass::Streaming,
            true,
            &est,
            2,
            4,
            cost,
            &streams,
            &mem,
        );
        assert!(t.memory_bound);
        let spec = audit_spec(
            &t,
            vec![ModulePrediction::compute("dot", cost, n, 256)],
            vec!["read_x".into(), "dot".into(), "store".into()],
        );
        assert_eq!(spec.freq_hz, t.freq_hz);
        assert!(spec.memory_bound());
        assert_eq!(spec.mem_ceiling_secs, t.seconds);
        assert_eq!(spec.critical_path.len(), 3);
        assert_eq!(spec.predictions.len(), 1);

        // A compute-bound estimate contributes no ceiling.
        let (est2, cost2) = dot_setup(64, 1 << 24);
        let t2 = estimate_time(
            Device::Stratix10Gx2800,
            RoutineClass::Streaming,
            true,
            &est2,
            0,
            4,
            cost2,
            &[],
            &mem,
        );
        let spec2 = audit_spec(&t2, Vec::new(), Vec::new());
        assert_eq!(spec2.mem_ceiling_secs, 0.0);
        assert!(!spec2.memory_bound());
    }

    #[test]
    fn power_and_micros_are_populated() {
        let (est, cost) = dot_setup(16, 1 << 20);
        let mem = Device::Arria10Gx1150.memory();
        let t = estimate_time(
            Device::Arria10Gx1150,
            RoutineClass::Streaming,
            false,
            &est,
            3,
            4,
            cost,
            &[StreamDemand::new(0, 4 << 20)],
            &mem,
        );
        assert!(t.power_w > 40.0 && t.power_w < 60.0);
        assert!((t.micros() - t.seconds * 1e6).abs() < 1e-9);
        assert!(!t.hyperflex, "Arria has no HyperFlex");
    }
}
