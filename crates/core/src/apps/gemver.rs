//! GEMVER: `B = A + u1·v1ᵀ + u2·v2ᵀ`, `x = β·Bᵀ·y + z`, `w = α·B·x`
//! (paper Sec. V-C, Fig. 9).
//!
//! The fully streamed MDAG would be non-multitree (B feeds both GEMVs,
//! and `x` flows between them), so the paper splits it into two valid
//! multitree components executed back to back:
//!
//! 1. GER → GER → (store B, GEMVᵀ) producing `B` and `x`;
//! 2. GEMV reading `B` and `x` from DRAM, producing `w`.
//!
//! I/O drops from ≈8N² (host layer) to ≈3N², and completion cycles from
//! ≈5N² to ≈2N² — the speedups of Fig. 11.

use fblas_arch::RoutineClass;
use fblas_hlssim::{channel, streamed_cycles, PipelineCost, SimError, Simulation};

use super::AppReport;
use crate::composition::Mdag;
use crate::helpers::writers::replay_vector_through_memory;
use crate::helpers::{
    duplicate, read_matrix, read_vector, read_vector_replayed, write_matrix, write_vector,
};
use crate::host::blas::{self, GemvTuning};
use crate::host::{DeviceBuffer, Fpga};
use crate::perf::{estimate_time, StreamDemand};
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::{Ger, Trans};
use crate::scalar::Scalar;

/// The MDAG of component 1 of Fig. 9 (the two GERs chained into the
/// transposed GEMV, with `B` also stored).
pub fn gemver_mdag(n: u64) -> Mdag {
    let mut g = Mdag::new();
    let a = g.add_interface("read_A");
    let u1 = g.add_interface("read_u1");
    let v1 = g.add_interface("read_v1");
    let u2 = g.add_interface("read_u2");
    let v2 = g.add_interface("read_v2");
    let y = g.add_interface("read_y");
    let ger1 = g.add_compute("ger1");
    let ger2 = g.add_compute("ger2");
    let dup = g.add_compute("duplicate");
    let gemv_t = g.add_compute("gemv_t");
    let b_out = g.add_interface("write_B");
    let x_out = g.add_interface("write_x");
    g.add_edge(a, ger1, n * n, n * n, 256);
    g.add_edge(u1, ger1, n, n, 64);
    g.add_edge(v1, ger1, n, n, 64);
    g.add_edge(ger1, ger2, n * n, n * n, 256);
    g.add_edge(u2, ger2, n, n, 64);
    g.add_edge(v2, ger2, n, n, 64);
    g.add_edge(ger2, dup, n * n, n * n, 256);
    g.add_edge(dup, b_out, n * n, n * n, 256);
    g.add_edge(dup, gemv_t, n * n, n * n, 256);
    g.add_edge(y, gemv_t, n, n, 64);
    g.add_edge(gemv_t, x_out, n, n, 64);
    g
}

/// Streaming GEMVER (two sequential multitree components). Outputs land
/// in `b_out`, `x_out`, `w_out`.
#[allow(clippy::too_many_arguments)]
pub fn gemver_streaming<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    alpha: T,
    beta: T,
    a: &DeviceBuffer<T>,
    u1: &DeviceBuffer<T>,
    v1: &DeviceBuffer<T>,
    u2: &DeviceBuffer<T>,
    v2: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    z: &DeviceBuffer<T>,
    b_out: &DeviceBuffer<T>,
    x_out: &DeviceBuffer<T>,
    w_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("gemver_streaming");
    let _obs = super::RoutineObservation::start("gemver_streaming");
    let tu = tuning.clamped(n, n);
    assert_eq!(a.len(), n * n, "gemver: A must be n*n");
    for (name, buf) in [
        ("u1", u1),
        ("v1", v1),
        ("u2", u2),
        ("v2", v2),
        ("y", y),
        ("z", z),
    ] {
        assert_eq!(buf.len(), n, "gemver: {name} length");
    }
    assert_eq!(b_out.len(), n * n, "gemver: B length");
    assert_eq!(x_out.len(), n, "gemver: x length");
    assert_eq!(w_out.len(), n, "gemver: w length");

    let ger1 = Ger::new(n, n, tu.tn, tu.tm, tu.w);
    let ger2 = Ger::new(n, n, tu.tn, tu.tm, tu.w);
    let gemv_t = Gemv::new(GemvVariant::TransRowStreamed, n, n, tu.tn, tu.tm, tu.w);
    let gemv2 = Gemv::new(GemvVariant::RowStreamed, n, n, tu.tn, tu.tm, tu.w);

    // ---------------- Component 1 ----------------
    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    read_matrix(&mut sim, a, n, n, ger1.a_tiling(), ta, 1);
    let (tu1, ru1) = channel(sim.ctx(), 64, "u1");
    read_vector(&mut sim, u1, tu1);
    let (tv1, rv1) = channel(sim.ctx(), 64, "v1");
    read_vector_replayed(&mut sim, v1, tv1, ger1.y_repetitions());
    let (tb1, rb1) = channel(sim.ctx(), 256, "b1");
    ger1.attach(&mut sim, T::ONE, ra, ru1, rv1, tb1);

    let (tu2, ru2) = channel(sim.ctx(), 64, "u2");
    read_vector(&mut sim, u2, tu2);
    let (tv2, rv2) = channel(sim.ctx(), 64, "v2");
    read_vector_replayed(&mut sim, v2, tv2, ger2.y_repetitions());
    let (tb2, rb2) = channel(sim.ctx(), 256, "b2");
    ger2.attach(&mut sim, T::ONE, rb1, ru2, rv2, tb2);

    let (tb_store, rb_store) = channel(sim.ctx(), 256, "b_store");
    let (tb_gemv, rb_gemv) = channel(sim.ctx(), 256, "b_gemv");
    duplicate(&mut sim, "dup_B", n * n, rb2, tb_store, tb_gemv);
    write_matrix(&mut sim, b_out, n, n, ger1.a_tiling(), rb_store);

    // x = β·Bᵀ·y + z.
    let (ty, ry) = channel(sim.ctx(), 64, "y");
    read_vector(&mut sim, y, ty);
    let (tx_in, rx_in) = channel(sim.ctx(), 64, "x_in");
    let (tx_out, rx_out) = channel(sim.ctx(), 64, "x_out");
    gemv_t.attach(&mut sim, beta, T::ONE, rb_gemv, ry, rx_in, tx_out);
    replay_vector_through_memory(&mut sim, z, x_out, n, gemv_t.y_rounds(), tx_in, rx_out);

    let modules_1 = sim.module_count();
    sim.run()?;

    // ---------------- Component 2 ----------------
    let mut sim2 = Simulation::new();
    let (ta2, ra2) = channel(sim2.ctx(), 256, "b");
    read_matrix(&mut sim2, b_out, n, n, gemv2.a_tiling(), ta2, 1);
    let (txv, rxv) = channel(sim2.ctx(), 64, "x");
    read_vector_replayed(&mut sim2, x_out, txv, gemv2.x_repetitions());
    let (tw_in, rw_in) = channel(sim2.ctx(), 64, "w_in");
    let zeros_w = fpga.alloc::<T>("w_zero", n);
    read_vector(&mut sim2, &zeros_w, tw_in);
    let (tw, rw) = channel(sim2.ctx(), 64, "w");
    gemv2.attach(&mut sim2, alpha, T::ZERO, ra2, rxv, rw_in, tw);
    write_vector(&mut sim2, w_out, n, rw);
    let modules_2 = sim2.module_count();
    sim2.run()?;

    // Cost: component 1 streams N² through three chained modules in
    // pipeline parallel; component 2 is one more N² pass — the paper's
    // 5N² → 2N² reduction.
    let eb = T::PRECISION.elem_bytes();
    let comp1 = PipelineCost::pipelined(
        streamed_cycles(&[ger1.cost::<T>(), ger2.cost::<T>(), gemv_t.cost::<T>()]),
        0,
    );
    let circuit1 = ger1
        .estimate::<T>()
        .merge(ger2.estimate::<T>())
        .merge(gemv_t.estimate::<T>());
    let streams1 = [
        StreamDemand::new(a.bank(), (n * n) as u64 * eb),
        StreamDemand::new(b_out.bank(), (n * n) as u64 * eb),
        StreamDemand::new(x_out.bank(), (2 * n * gemv_t.y_rounds()) as u64 * eb),
    ];
    let t1 = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &circuit1,
        8,
        eb,
        comp1,
        &streams1,
        fpga.memory(),
    );
    let streams2 = [
        StreamDemand::new(b_out.bank(), (n * n) as u64 * eb),
        StreamDemand::new(x_out.bank(), (n * gemv2.x_repetitions()) as u64 * eb),
        StreamDemand::new(w_out.bank(), n as u64 * eb),
    ];
    let t2 = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &gemv2.estimate::<T>(),
        4,
        eb,
        gemv2.cost::<T>(),
        &streams2,
        fpga.memory(),
    );

    let io = (3 * n * n
        + 4 * n * ger1.y_repetitions().max(1)
        + 2 * n
        + 2 * n * gemv_t.y_rounds()
        + n * gemv2.x_repetitions()
        + n) as u64;
    Ok(AppReport {
        seconds: t1.seconds + t2.seconds,
        io_elements: io,
        modules: modules_1 + modules_2,
    })
}

/// Host-layer GEMVER: matrix copy, two GERs, vector copy, two GEMVs —
/// six routine invocations through DRAM (≈8N² I/O).
#[allow(clippy::too_many_arguments)]
pub fn gemver_host_layer<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    alpha: T,
    beta: T,
    a: &DeviceBuffer<T>,
    u1: &DeviceBuffer<T>,
    v1: &DeviceBuffer<T>,
    u2: &DeviceBuffer<T>,
    v2: &DeviceBuffer<T>,
    y: &DeviceBuffer<T>,
    z: &DeviceBuffer<T>,
    b_out: &DeviceBuffer<T>,
    x_out: &DeviceBuffer<T>,
    w_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("gemver_host_layer");
    let _obs = super::RoutineObservation::start("gemver_host_layer");
    let t_copy_b = blas::copy(fpga, a, b_out, tuning.w)?;
    let t_ger1 = blas::ger(fpga, n, n, T::ONE, u1, v1, b_out, tuning)?;
    let t_ger2 = blas::ger(fpga, n, n, T::ONE, u2, v2, b_out, tuning)?;
    let t_copy_x = blas::copy(fpga, z, x_out, tuning.w)?;
    let t_gemv_t = blas::gemv(
        fpga,
        Trans::Yes,
        n,
        n,
        beta,
        b_out,
        y,
        T::ONE,
        x_out,
        tuning,
    )?;
    w_out.from_host(&vec![T::ZERO; n]);
    let t_gemv = blas::gemv(
        fpga,
        Trans::No,
        n,
        n,
        alpha,
        b_out,
        x_out,
        T::ZERO,
        w_out,
        tuning,
    )?;
    Ok(AppReport {
        seconds: t_copy_b.seconds
            + t_ger1.seconds
            + t_ger2.seconds
            + t_copy_x.seconds
            + t_gemv_t.seconds
            + t_gemv.seconds,
        io_elements: (8 * n * n + 10 * n) as u64,
        modules: 6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Validity;
    use fblas_arch::Device;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.419).sin()).collect()
    }

    struct Inputs {
        a: Vec<f64>,
        u1: Vec<f64>,
        v1: Vec<f64>,
        u2: Vec<f64>,
        v2: Vec<f64>,
        y: Vec<f64>,
        z: Vec<f64>,
    }

    fn inputs(n: usize) -> Inputs {
        Inputs {
            a: seq(n * n, 0.0),
            u1: seq(n, 1.0),
            v1: seq(n, 2.0),
            u2: seq(n, 3.0),
            v2: seq(n, 4.0),
            y: seq(n, 5.0),
            z: seq(n, 6.0),
        }
    }

    fn reference(n: usize, alpha: f64, beta: f64, inp: &Inputs) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut b = inp.a.clone();
        for i in 0..n {
            for j in 0..n {
                b[i * n + j] += inp.u1[i] * inp.v1[j] + inp.u2[i] * inp.v2[j];
            }
        }
        let mut x = inp.z.clone();
        for j in 0..n {
            for i in 0..n {
                x[j] += beta * b[i * n + j] * inp.y[i];
            }
        }
        let mut w = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                w[i] += alpha * b[i * n + j] * x[j];
            }
        }
        (b, x, w)
    }

    type BxW = (Vec<f64>, Vec<f64>, Vec<f64>);

    fn run_variant(streaming: bool, n: usize) -> (BxW, AppReport) {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let inp = inputs(n);
        let (alpha, beta) = (1.2f64, 0.7f64);
        let a = fpga.alloc_from("a", inp.a.clone());
        let u1 = fpga.alloc_from("u1", inp.u1.clone());
        let v1 = fpga.alloc_from("v1", inp.v1.clone());
        let u2 = fpga.alloc_from("u2", inp.u2.clone());
        let v2 = fpga.alloc_from("v2", inp.v2.clone());
        let y = fpga.alloc_from("y", inp.y.clone());
        let z = fpga.alloc_from("z", inp.z.clone());
        let b = fpga.alloc::<f64>("b", n * n);
        let x = fpga.alloc::<f64>("x", n);
        let w = fpga.alloc::<f64>("w", n);
        let tuning = GemvTuning::new(4, 4, 2);
        let rep = if streaming {
            gemver_streaming(
                &fpga, n, alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z, &b, &x, &w, &tuning,
            )
            .unwrap()
        } else {
            gemver_host_layer(
                &fpga, n, alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z, &b, &x, &w, &tuning,
            )
            .unwrap()
        };
        ((b.to_host(), x.to_host(), w.to_host()), rep)
    }

    #[test]
    fn streaming_matches_reference() {
        let n = 10;
        let ((b, x, w), rep) = run_variant(true, n);
        let inp = inputs(n);
        let (b_ref, x_ref, w_ref) = reference(n, 1.2, 0.7, &inp);
        for i in 0..n * n {
            assert!((b[i] - b_ref[i]).abs() < 1e-9, "B[{i}]");
        }
        for i in 0..n {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-9,
                "x[{i}]: {} vs {}",
                x[i],
                x_ref[i]
            );
            assert!((w[i] - w_ref[i]).abs() < 1e-9, "w[{i}]");
        }
        assert!(rep.modules > 10);
    }

    #[test]
    fn host_layer_matches_reference() {
        let n = 8;
        let ((b, x, w), rep) = run_variant(false, n);
        let inp = inputs(n);
        let (b_ref, x_ref, w_ref) = reference(n, 1.2, 0.7, &inp);
        for i in 0..n * n {
            assert!((b[i] - b_ref[i]).abs() < 1e-9);
        }
        for i in 0..n {
            assert!((x[i] - x_ref[i]).abs() < 1e-9);
            assert!((w[i] - w_ref[i]).abs() < 1e-9);
        }
        assert_eq!(rep.io_elements, (8 * n * n + 10 * n) as u64);
    }

    #[test]
    fn streaming_beats_host_layer() {
        let n = 64;
        let (_, rep_s) = run_variant(true, n);
        let (_, rep_h) = run_variant(false, n);
        assert!(rep_s.io_elements < rep_h.io_elements);
        let speedup = rep_h.seconds / rep_s.seconds;
        // Paper Fig. 11: GEMVER speedup ≈ 2.5–3.
        assert!(speedup > 1.5 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn component_mdag_is_valid_multitree() {
        let g = gemver_mdag(128);
        assert_eq!(g.validate(), Validity::Valid);
        assert_eq!(g.is_multitree(), Some(true));
    }
}
