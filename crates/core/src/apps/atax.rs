//! ATAX: `y = Aᵀ·(A·x)` (paper Sec. V-B, Fig. 8).
//!
//! The fully streamed MDAG is **not a multitree**: two paths lead from
//! the `A` reader to the second GEMV (directly, and through the first
//! GEMV). The first GEMV only produces a block of results after
//! consuming an entire row of tiles, so the second GEMV's `A` channel
//! must buffer that whole burst (`T_N·M` elements) or the composition
//! stalls forever. Both outcomes are reproduced here:
//!
//! * [`atax_streaming`] sizes the channel per the paper's fix (a) and
//!   completes;
//! * [`atax_invalid_streaming`] uses an ordinary small FIFO and returns
//!   the stall the paper predicts — detected deterministically by the
//!   simulation watchdog instead of hanging.

use fblas_arch::RoutineClass;
use fblas_hlssim::{channel, streamed_cycles, SimError, Simulation};

use super::AppReport;
use crate::composition::Mdag;
use crate::helpers::writers::replay_vector_through_memory;
use crate::helpers::{duplicate, read_matrix, read_vector_replayed};
use crate::host::blas::{self, GemvTuning};
use crate::host::{DeviceBuffer, Fpga};
use crate::perf::{estimate_time, StreamDemand};
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::Trans;
use crate::scalar::Scalar;

/// The streaming MDAG of Fig. 8, with the burst annotation that makes
/// the channel-depth requirement checkable.
pub fn atax_mdag(n: u64, m: u64, tn: u64, a_channel_depth: u64) -> Mdag {
    let mut g = Mdag::new();
    let a = g.add_interface("read_A");
    let x = g.add_interface("read_x");
    let dup = g.add_compute("duplicate");
    let g1 = g.add_compute("gemv");
    let g2 = g.add_compute("gemv_t");
    let y = g.add_interface("write_y");
    g.add_edge(a, dup, n * m, n * m, 256);
    g.add_edge(dup, g1, n * m, n * m, 256);
    let e = g.add_edge(dup, g2, n * m, n * m, a_channel_depth);
    g.add_edge(x, g1, m, m, 64);
    g.add_edge(g1, g2, n, n, 64);
    g.add_edge(g2, y, m, m, 64);
    // The second GEMV consumes no A before the first GEMV's first
    // result block, which requires a full row of tiles: T_N·M elements.
    g.set_burst_before_consume(e, tn * m);
    g
}

#[allow(clippy::too_many_arguments)]
fn build_atax<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    y_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
    a2_depth: usize,
) -> (Simulation, Gemv, Gemv, usize) {
    let tu = tuning.clamped(n, m);
    let g1 = Gemv::new(GemvVariant::RowStreamed, n, m, tu.tn, tu.tm, tu.w);
    let g2 = Gemv::new(GemvVariant::TransRowStreamed, n, m, tu.tn, tu.tm, tu.w);
    assert_eq!(a.len(), n * m, "atax: A must be n*m");
    assert_eq!(x.len(), m, "atax: x length");
    assert_eq!(y_out.len(), m, "atax: y length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (ta1, ra1) = channel(sim.ctx(), 256, "a1");
    let (ta2, ra2) = channel(sim.ctx(), a2_depth, "a2");
    read_matrix(&mut sim, a, n, m, g1.a_tiling(), ta, 1);
    duplicate(&mut sim, "dup_A", n * m, ra, ta1, ta2);

    // t = A·x.
    let (txv, rxv) = channel(sim.ctx(), 64, "x");
    read_vector_replayed(&mut sim, x, txv, g1.x_repetitions());
    let (tt_in, rt_in) = channel(sim.ctx(), 64, "t_in");
    let zeros_t = fpga.alloc::<T>("t_zero", n);
    crate::helpers::read_vector(&mut sim, &zeros_t, tt_in);
    let (tt, rt) = channel(sim.ctx(), 64, "t");
    g1.attach(&mut sim, T::ONE, T::ZERO, ra1, rxv, rt_in, tt);

    // y = Aᵀ·t: t consumed once in row blocks, y partials replayed.
    let (ty_in, ry_in) = channel(sim.ctx(), 64, "y_in");
    let (ty_out, ry_out) = channel(sim.ctx(), 64, "y_out");
    g2.attach(&mut sim, T::ONE, T::ZERO, ra2, rt, ry_in, ty_out);
    let zeros_y = fpga.alloc::<T>("y_zero", m);
    replay_vector_through_memory(&mut sim, &zeros_y, y_out, m, g2.y_rounds(), ty_in, ry_out);

    let modules = sim.module_count();
    (sim, g1, g2, modules)
}

/// Streaming ATAX with the `A` channel sized to the required burst
/// (`T_N·M` elements) — the paper's fix (a). `A` is read from DRAM once.
#[allow(clippy::too_many_arguments)]
pub fn atax_streaming<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    y_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("atax_streaming");
    let _obs = super::RoutineObservation::start("atax_streaming");
    let tu = tuning.clamped(n, m);
    // Burst (one row of tiles) plus slack for in-flight elements.
    let depth = tu.tn * m + 64;
    let (sim, g1, g2, modules) = build_atax(fpga, n, m, a, x, y_out, tuning, depth);
    sim.run()?;

    let cost = fblas_hlssim::PipelineCost::pipelined(
        streamed_cycles(&[g1.cost::<T>(), g2.cost::<T>()]),
        0,
    );
    let circuit = g1
        .estimate::<T>()
        .merge(g2.estimate::<T>())
        // The oversized FIFO is real on-chip storage.
        .with_buffer(depth as u64, T::PRECISION);
    let eb = T::PRECISION.elem_bytes();
    let streams = [
        StreamDemand::new(a.bank(), (n * m) as u64 * eb),
        StreamDemand::new(x.bank(), (m * g1.x_repetitions()) as u64 * eb),
        StreamDemand::new(y_out.bank(), (2 * m * g2.y_rounds()) as u64 * eb),
    ];
    let t = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &circuit,
        4,
        eb,
        cost,
        &streams,
        fpga.memory(),
    );
    Ok(AppReport {
        seconds: t.seconds,
        io_elements: (n * m + m * g1.x_repetitions() + 2 * m * g2.y_rounds()) as u64,
        modules,
    })
}

/// The invalid streaming composition: ordinary small FIFO on the `A`
/// edge. Always returns an error — [`SimError::Stall`] detected by the
/// watchdog — reproducing the paper's "the composition would stall
/// forever".
#[allow(clippy::too_many_arguments)]
pub fn atax_invalid_streaming<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    y_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("atax_invalid_streaming");
    let _obs = super::RoutineObservation::start("atax_invalid_streaming");
    let (sim, _g1, _g2, modules) = build_atax(fpga, n, m, a, x, y_out, tuning, 16);
    sim.run()?;
    // Unreachable for any problem larger than the FIFO; kept for
    // completeness on degenerate sizes.
    Ok(AppReport {
        seconds: 0.0,
        io_elements: 0,
        modules,
    })
}

/// Streaming ATAX with *independent matrix reads*: the paper's third
/// option — "we could let the two GEMV receive the matrix elements
/// independently. In this way, we have the same number of I/O
/// operations of the non-streamed version, but the completion time can
/// still benefit ... given the pipelined execution of the two
/// matrix-vector multiplications" (Sec. V-B). The `t` vector still
/// streams on-chip; only `A` is read twice.
#[allow(clippy::too_many_arguments)]
pub fn atax_streaming_independent_reads<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    y_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("atax_streaming_independent_reads");
    let _obs = super::RoutineObservation::start("atax_streaming_independent_reads");
    let tu = tuning.clamped(n, m);
    let g1 = Gemv::new(GemvVariant::RowStreamed, n, m, tu.tn, tu.tm, tu.w);
    let g2 = Gemv::new(GemvVariant::TransRowStreamed, n, m, tu.tn, tu.tm, tu.w);
    assert_eq!(a.len(), n * m, "atax: A must be n*m");

    let mut sim = Simulation::new();
    // Two independent interface reads of A — no duplicator, no burst.
    let (ta1, ra1) = channel(sim.ctx(), 256, "a1");
    let (ta2, ra2) = channel(sim.ctx(), 256, "a2");
    read_matrix(&mut sim, a, n, m, g1.a_tiling(), ta1, 1);
    read_matrix(&mut sim, a, n, m, g2.a_tiling(), ta2, 1);

    let (txv, rxv) = channel(sim.ctx(), 64, "x");
    read_vector_replayed(&mut sim, x, txv, g1.x_repetitions());
    let (tt_in, rt_in) = channel(sim.ctx(), 64, "t_in");
    let zeros_t = fpga.alloc::<T>("t_zero", n);
    crate::helpers::read_vector(&mut sim, &zeros_t, tt_in);
    // The on-chip t edge needs a row of results buffered: g2 consumes
    // t block bi before A row bi, while g1 produces block bi only after
    // its own row bi — the second A read keeps the matrix edges
    // independent, but t itself still skews by one block.
    let (tt, rt) = channel(sim.ctx(), tu.tn.max(64), "t");
    g1.attach(&mut sim, T::ONE, T::ZERO, ra1, rxv, rt_in, tt);

    let (ty_in, ry_in) = channel(sim.ctx(), 64, "y_in");
    let (ty_out, ry_out) = channel(sim.ctx(), 64, "y_out");
    g2.attach(&mut sim, T::ONE, T::ZERO, ra2, rt, ry_in, ty_out);
    let zeros_y = fpga.alloc::<T>("y_zero", m);
    replay_vector_through_memory(&mut sim, &zeros_y, y_out, m, g2.y_rounds(), ty_in, ry_out);

    let modules = sim.module_count();
    sim.run()?;

    let cost = fblas_hlssim::PipelineCost::pipelined(
        streamed_cycles(&[g1.cost::<T>(), g2.cost::<T>()]),
        0,
    );
    let circuit = g1.estimate::<T>().merge(g2.estimate::<T>());
    let eb = T::PRECISION.elem_bytes();
    let streams = [
        StreamDemand::new(a.bank(), 2 * (n * m) as u64 * eb), // A read twice
        StreamDemand::new(x.bank(), (m * g1.x_repetitions()) as u64 * eb),
        StreamDemand::new(y_out.bank(), (2 * m * g2.y_rounds()) as u64 * eb),
    ];
    let t = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &circuit,
        5,
        eb,
        cost,
        &streams,
        fpga.memory(),
    );
    Ok(AppReport {
        seconds: t.seconds,
        io_elements: (2 * n * m + m * g1.x_repetitions() + 2 * m * g2.y_rounds()) as u64,
        modules,
    })
}

/// Host-layer ATAX: two sequential GEMV calls through DRAM (the paper's
/// fix (b): break the MDAG into valid components).
pub fn atax_host_layer<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    x: &DeviceBuffer<T>,
    y_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("atax_host_layer");
    let _obs = super::RoutineObservation::start("atax_host_layer");
    let t_buf = fpga.alloc::<T>("t", n);
    let t1 = blas::gemv(fpga, Trans::No, n, m, T::ONE, a, x, T::ZERO, &t_buf, tuning)?;
    y_out.from_host(&vec![T::ZERO; m]);
    let t2 = blas::gemv(
        fpga,
        Trans::Yes,
        n,
        m,
        T::ONE,
        a,
        &t_buf,
        T::ZERO,
        y_out,
        tuning,
    )?;
    let tu = tuning.clamped(n, m);
    Ok(AppReport {
        seconds: t1.seconds + t2.seconds,
        io_elements: (2 * n * m + m * n.div_ceil(tu.tn) + n * m.div_ceil(tu.tm) + 2 * (n + m))
            as u64,
        modules: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Validity;
    use fblas_arch::Device;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.197).sin()).collect()
    }

    fn reference_atax(n: usize, m: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        let mut t = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..m {
                t[i] += a[i * m + j] * x[j];
            }
        }
        let mut y = vec![0.0f64; m];
        for i in 0..n {
            for j in 0..m {
                y[j] += a[i * m + j] * t[i];
            }
        }
        y
    }

    #[test]
    fn buffered_streaming_computes_atax() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (12, 8);
        let av = seq(n * m, 0.0);
        let xv = seq(m, 1.0);
        let a = fpga.alloc_from("a", av.clone());
        let x = fpga.alloc_from("x", xv.clone());
        let y = fpga.alloc::<f64>("y", m);
        let tuning = GemvTuning::new(4, 4, 2);
        let rep = atax_streaming(&fpga, n, m, &a, &x, &y, &tuning).unwrap();
        let exp = reference_atax(n, m, &av, &xv);
        let got = y.to_host();
        for j in 0..m {
            assert!(
                (got[j] - exp[j]).abs() < 1e-9,
                "y[{j}]: {} vs {}",
                got[j],
                exp[j]
            );
        }
        assert!(rep.modules >= 7);
    }

    #[test]
    fn undersized_channel_stalls_as_paper_predicts() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (24, 16);
        let a = fpga.alloc_from("a", seq(n * m, 0.0));
        let x = fpga.alloc_from("x", seq(m, 1.0));
        let y = fpga.alloc::<f64>("y", m);
        let tuning = GemvTuning::new(8, 8, 2);
        match atax_invalid_streaming(&fpga, n, m, &a, &x, &y, &tuning) {
            Err(SimError::Stall { .. }) => {}
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn independent_reads_variant_matches_reference() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (18, 10);
        let av = seq(n * m, 7.0);
        let xv = seq(m, 8.0);
        let a = fpga.alloc_from("a", av.clone());
        let x = fpga.alloc_from("x", xv.clone());
        let y = fpga.alloc::<f64>("y", m);
        let tuning = GemvTuning::new(6, 5, 2);
        let rep = atax_streaming_independent_reads(&fpga, n, m, &a, &x, &y, &tuning).unwrap();
        let exp = reference_atax(n, m, &av, &xv);
        let got = y.to_host();
        for j in 0..m {
            assert!((got[j] - exp[j]).abs() < 1e-9, "y[{j}]");
        }
        // Same matrix I/O as the host layer (A twice), fewer than the
        // buffered variant only in on-chip resources — and no deep FIFO.
        assert!(rep.io_elements >= (2 * n * m) as u64);

        // The buffered single-read variant moves less data.
        let y2 = fpga.alloc::<f64>("y2", m);
        let rep_buf = atax_streaming(&fpga, n, m, &a, &x, &y2, &tuning).unwrap();
        assert!(rep_buf.io_elements < rep.io_elements);
    }

    #[test]
    fn host_layer_matches_reference() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (9, 11);
        let av = seq(n * m, 2.0);
        let xv = seq(m, 3.0);
        let a = fpga.alloc_from("a", av.clone());
        let x = fpga.alloc_from("x", xv.clone());
        let y = fpga.alloc::<f64>("y", m);
        let tuning = GemvTuning::new(3, 4, 2);
        let rep = atax_host_layer(&fpga, n, m, &a, &x, &y, &tuning).unwrap();
        let exp = reference_atax(n, m, &av, &xv);
        let got = y.to_host();
        for j in 0..m {
            assert!((got[j] - exp[j]).abs() < 1e-9);
        }
        assert!(rep.io_elements > (2 * n * m) as u64, "A read twice");
    }

    #[test]
    fn mdag_analysis_matches_runtime_behaviour() {
        // Undersized: analysis demands a deeper channel.
        let g = atax_mdag(24, 16, 8, 16);
        match g.validate() {
            Validity::RequiresChannelDepth { min_depth, .. } => assert_eq!(min_depth, 8 * 16),
            other => panic!("unexpected: {other:?}"),
        }
        // Properly sized: valid.
        let g = atax_mdag(24, 16, 8, 8 * 16 + 64);
        assert_eq!(g.validate(), Validity::Valid);
        assert_eq!(g.is_multitree(), Some(false));
    }
}
