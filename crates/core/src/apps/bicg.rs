//! BICG: `q = A·p`, `s = Aᵀ·r` (paper Sec. V-A, Fig. 7).
//!
//! The two GEMV modules read the same matrix with different access
//! patterns; by configuring both to accept `A` in tiles by rows (the
//! transposed one adjusts its schedule through its tiling), a single
//! DRAM read of `A` feeds both through a duplicator — halving the
//! matrix traffic from `2NM` to `NM` while the modules compute in
//! parallel. Completion cycles are unchanged (`≈ NM`), so the paper's
//! expected speedup comes purely from the saved bandwidth (expected
//! 1.7×, measured up to 1.45×).

use fblas_arch::RoutineClass;
use fblas_hlssim::{channel, streamed_cycles, SimError, Simulation};

use super::AppReport;
use crate::composition::Mdag;
use crate::helpers::writers::replay_vector_through_memory;
use crate::helpers::{duplicate, read_matrix, read_vector, read_vector_replayed, write_vector};
use crate::host::blas::{self, GemvTuning};
use crate::host::{DeviceBuffer, Fpga};
use crate::perf::{estimate_time, StreamDemand};
use crate::routines::gemv::{Gemv, GemvVariant};
use crate::routines::Trans;
use crate::scalar::Scalar;

/// The streaming MDAG of Fig. 7.
pub fn bicg_mdag(n: u64, m: u64) -> Mdag {
    let mut g = Mdag::new();
    let a = g.add_interface("read_A");
    let p = g.add_interface("read_p");
    let r = g.add_interface("read_r");
    let dup = g.add_compute("duplicate");
    let g1 = g.add_compute("gemv");
    let g2 = g.add_compute("gemv_t");
    let q = g.add_interface("write_q");
    let s = g.add_interface("write_s");
    g.add_edge(a, dup, n * m, n * m, 16);
    g.add_edge(dup, g1, n * m, n * m, 16);
    g.add_edge(dup, g2, n * m, n * m, 16);
    g.add_edge(p, g1, m, m, 16);
    g.add_edge(r, g2, n, n, 16);
    g.add_edge(g1, q, n, n, 16);
    g.add_edge(g2, s, m, m, 16);
    g
}

/// Streaming BICG: computes `q` and `s` into the given output buffers
/// with a single read of `A` (`n × m` row-major).
#[allow(clippy::too_many_arguments)]
pub fn bicg_streaming<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    p: &DeviceBuffer<T>,
    r: &DeviceBuffer<T>,
    q_out: &DeviceBuffer<T>,
    s_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("bicg_streaming");
    let _obs = super::RoutineObservation::start("bicg_streaming");
    let tu = tuning.clamped(n, m);
    let g1 = Gemv::new(GemvVariant::RowStreamed, n, m, tu.tn, tu.tm, tu.w);
    let g2 = Gemv::new(GemvVariant::TransRowStreamed, n, m, tu.tn, tu.tm, tu.w);
    assert_eq!(a.len(), n * m, "bicg: A must be n*m");
    assert_eq!(p.len(), m, "bicg: p length");
    assert_eq!(r.len(), n, "bicg: r length");
    assert_eq!(q_out.len(), n, "bicg: q length");
    assert_eq!(s_out.len(), m, "bicg: s length");

    let mut sim = Simulation::new();
    let (ta, ra) = channel(sim.ctx(), 256, "a");
    let (ta1, ra1) = channel(sim.ctx(), 256, "a1");
    let (ta2, ra2) = channel(sim.ctx(), 256, "a2");
    read_matrix(&mut sim, a, n, m, g1.a_tiling(), ta, 1);
    duplicate(&mut sim, "dup_A", n * m, ra, ta1, ta2);

    // q = A·p: x (= p) replayed by its reader, y streamed once (zeros).
    let (tp, rp) = channel(sim.ctx(), 64, "p");
    read_vector_replayed(&mut sim, p, tp, g1.x_repetitions());
    let (tq_in, rq_in) = channel(sim.ctx(), 64, "q_in");
    let zeros_q = fpga.alloc::<T>("q_zero", n);
    read_vector(&mut sim, &zeros_q, tq_in);
    let (tq_out, rq_out) = channel(sim.ctx(), 64, "q_out");
    g1.attach(&mut sim, T::ONE, T::ZERO, ra1, rp, rq_in, tq_out);
    write_vector(&mut sim, q_out, n, rq_out);

    // s = Aᵀ·r: r consumed once, s partials replayed through memory.
    let (tr, rr) = channel(sim.ctx(), 64, "r");
    read_vector(&mut sim, r, tr);
    let (ts_in, rs_in) = channel(sim.ctx(), 64, "s_in");
    let (ts_out, rs_out) = channel(sim.ctx(), 64, "s_out");
    g2.attach(&mut sim, T::ONE, T::ZERO, ra2, rr, rs_in, ts_out);
    let zeros_s = fpga.alloc::<T>("s_zero", m);
    replay_vector_through_memory(&mut sim, &zeros_s, s_out, m, g2.y_rounds(), ts_in, rs_out);

    let modules = sim.module_count();
    sim.run()?;

    // Both GEMVs stream the same NM elements in parallel: completion is
    // one matrix pass (Sec. V-A: "do not affect the number of cycles to
    // completion, NM").
    let cost = fblas_hlssim::PipelineCost::pipelined(
        streamed_cycles(&[g1.cost::<T>(), g2.cost::<T>()]),
        0,
    );
    let circuit = g1.estimate::<T>().merge(g2.estimate::<T>());
    let eb = T::PRECISION.elem_bytes();
    let streams = [
        StreamDemand::new(a.bank(), (n * m) as u64 * eb),
        StreamDemand::new(p.bank(), (m * g1.x_repetitions()) as u64 * eb),
        StreamDemand::new(r.bank(), n as u64 * eb),
        StreamDemand::new(q_out.bank(), n as u64 * eb),
        StreamDemand::new(s_out.bank(), (2 * m * g2.y_rounds()) as u64 * eb),
    ];
    let t = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &circuit,
        5,
        eb,
        cost,
        &streams,
        fpga.memory(),
    );
    Ok(AppReport {
        seconds: t.seconds,
        io_elements: (n * m + m * g1.x_repetitions() + n + n + 2 * m * g2.y_rounds()) as u64,
        modules,
    })
}

/// Host-layer BICG: two independent GEMV calls, `A` read twice.
#[allow(clippy::too_many_arguments)]
pub fn bicg_host_layer<T: Scalar>(
    fpga: &Fpga,
    n: usize,
    m: usize,
    a: &DeviceBuffer<T>,
    p: &DeviceBuffer<T>,
    r: &DeviceBuffer<T>,
    q_out: &DeviceBuffer<T>,
    s_out: &DeviceBuffer<T>,
    tuning: &GemvTuning,
) -> Result<AppReport, SimError> {
    let _obs = super::RoutineObservation::start("bicg_host_layer");
    let _obs = super::RoutineObservation::start("bicg_host_layer");
    q_out.from_host(&vec![T::ZERO; n]);
    s_out.from_host(&vec![T::ZERO; m]);
    let t_q = blas::gemv(fpga, Trans::No, n, m, T::ONE, a, p, T::ZERO, q_out, tuning)?;
    let t_s = blas::gemv(fpga, Trans::Yes, n, m, T::ONE, a, r, T::ZERO, s_out, tuning)?;
    let tu = tuning.clamped(n, m);
    let reps_q = n.div_ceil(tu.tn);
    let reps_s = m.div_ceil(tu.tm);
    Ok(AppReport {
        seconds: t_q.seconds + t_s.seconds,
        io_elements: (2 * n * m + m * reps_q + n * reps_s + 2 * (n + m)) as u64,
        modules: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Validity;
    use fblas_arch::Device;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.713).sin()).collect()
    }

    #[test]
    fn streaming_matches_reference() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (18, 12);
        let av = seq(n * m, 0.0);
        let pv = seq(m, 1.0);
        let rv = seq(n, 2.0);
        let a = fpga.alloc_from("a", av.clone());
        let p = fpga.alloc_from("p", pv.clone());
        let r = fpga.alloc_from("r", rv.clone());
        let q = fpga.alloc::<f64>("q", n);
        let s = fpga.alloc::<f64>("s", m);
        let tuning = GemvTuning::new(6, 4, 2);
        let rep = bicg_streaming(&fpga, n, m, &a, &p, &r, &q, &s, &tuning).unwrap();

        let qv = q.to_host();
        let sv = s.to_host();
        for i in 0..n {
            let exp: f64 = (0..m).map(|j| av[i * m + j] * pv[j]).sum();
            assert!((qv[i] - exp).abs() < 1e-9, "q[{i}]");
        }
        for j in 0..m {
            let exp: f64 = (0..n).map(|i| av[i * m + j] * rv[i]).sum();
            assert!((sv[j] - exp).abs() < 1e-9, "s[{j}]");
        }
        assert!(rep.modules >= 8);
    }

    #[test]
    fn host_layer_matches_and_reads_a_twice() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let (n, m) = (10, 14);
        let av = seq(n * m, 3.0);
        let a = fpga.alloc_from("a", av.clone());
        let p = fpga.alloc_from("p", seq(m, 4.0));
        let r = fpga.alloc_from("r", seq(n, 5.0));
        let q = fpga.alloc::<f64>("q", n);
        let s = fpga.alloc::<f64>("s", m);
        let tuning = GemvTuning::new(5, 7, 2);
        let rep_h = bicg_host_layer(&fpga, n, m, &a, &p, &r, &q, &s, &tuning).unwrap();
        let rep_s = {
            let q2 = fpga.alloc::<f64>("q2", n);
            let s2 = fpga.alloc::<f64>("s2", m);
            let rep = bicg_streaming(&fpga, n, m, &a, &p, &r, &q2, &s2, &tuning).unwrap();
            assert_eq!(q.to_host(), q2.to_host());
            for (x, y) in s.to_host().iter().zip(s2.to_host()) {
                assert!((x - y).abs() < 1e-12);
            }
            rep
        };
        // The streamed version moves less matrix data.
        assert!(rep_s.io_elements < rep_h.io_elements);
    }

    #[test]
    fn streaming_speedup_in_paper_range_at_scale() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let n = 512;
        let a = fpga.alloc_from("a", vec![1.0f32; n * n]);
        let p = fpga.alloc_from("p", vec![1.0f32; n]);
        let r = fpga.alloc_from("r", vec![1.0f32; n]);
        let q = fpga.alloc::<f32>("q", n);
        let s = fpga.alloc::<f32>("s", n);
        let tuning = GemvTuning::new(128, 128, 16);
        let rep_s = bicg_streaming(&fpga, n, n, &a, &p, &r, &q, &s, &tuning).unwrap();
        let rep_h = bicg_host_layer(&fpga, n, n, &a, &p, &r, &q, &s, &tuning).unwrap();
        let speedup = rep_h.seconds / rep_s.seconds;
        // Paper: expected 1.7, measured up to 1.45.
        assert!(speedup > 1.2 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn mdag_is_valid_multitree() {
        let g = bicg_mdag(64, 32);
        assert_eq!(g.validate(), Validity::Valid);
        assert_eq!(g.is_multitree(), Some(true));
    }
}
