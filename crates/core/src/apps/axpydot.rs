//! AXPYDOT: `z = w − α·v`, `β = zᵀu` (paper Sec. V-A, Fig. 6).
//!
//! * Host-layer: COPY (to preserve `w`), AXPY, DOT — three routine
//!   invocations through DRAM, 7N I/O operations.
//! * Streaming: AXPY's output streams straight into DOT; the copy
//!   disappears and I/O drops to 3N+1 — the minimum. The two modules
//!   execute in pipeline parallel, cutting completion cycles from ~3N
//!   to ~N (speedup → 3; the measured value in the paper is ~4 because
//!   the host-layer AXPY suffers same-bank read/write contention on
//!   `z`, which the streaming version avoids entirely).

use fblas_arch::RoutineClass;
use fblas_hlssim::{channel, streamed_cycles, SimError, Simulation};

use super::AppReport;
use crate::composition::Mdag;
use crate::helpers::{read_vector, write_scalar};
use crate::host::blas;
use crate::host::{DeviceBuffer, Fpga};
use crate::perf::{estimate_time, StreamDemand};
use crate::routines::{Axpy, Dot};
use crate::scalar::Scalar;

/// The streaming MDAG of Fig. 6 (used for validity/I/O analysis).
pub fn axpydot_mdag(n: u64) -> Mdag {
    let mut g = Mdag::new();
    let w = g.add_interface("read_w");
    let v = g.add_interface("read_v");
    let u = g.add_interface("read_u");
    let axpy = g.add_compute("axpy");
    let dot = g.add_compute("dot");
    let beta = g.add_interface("write_beta");
    g.add_edge(w, axpy, n, n, 16);
    g.add_edge(v, axpy, n, n, 16);
    g.add_edge(axpy, dot, n, n, 16);
    g.add_edge(u, dot, n, n, 16);
    g.add_edge(dot, beta, 1, 1, 1);
    g
}

/// Streaming AXPYDOT: returns `β` and the cost report. `z` never
/// touches DRAM.
pub fn axpydot_streaming<T: Scalar>(
    fpga: &Fpga,
    w: &DeviceBuffer<T>,
    v: &DeviceBuffer<T>,
    u: &DeviceBuffer<T>,
    alpha: T,
    width: usize,
) -> Result<(T, AppReport), SimError> {
    let _obs = super::RoutineObservation::start("axpydot_streaming");
    let n = w.len();
    assert_eq!(v.len(), n, "axpydot: v length");
    assert_eq!(u.len(), n, "axpydot: u length");

    let axpy = Axpy::new(n, width);
    let dot = Dot::new(n, width);

    let mut sim = Simulation::new();
    let (tw, rw) = channel(sim.ctx(), 64, "w");
    let (tv, rv) = channel(sim.ctx(), 64, "v");
    let (tu, ru) = channel(sim.ctx(), 64, "u");
    let (tz, rz) = channel(sim.ctx(), 64, "z");
    let (tb, rb) = channel(sim.ctx(), 1, "beta");
    read_vector(&mut sim, w, tw);
    read_vector(&mut sim, v, tv);
    read_vector(&mut sim, u, tu);
    // z = w + (−α)·v streamed directly into the dot.
    axpy.attach(&mut sim, -alpha, rv, rw, tz);
    dot.attach(&mut sim, rz, ru, tb);
    let beta_buf = fpga.alloc::<T>("beta", 1);
    write_scalar(&mut sim, &beta_buf, rb);
    let modules = sim.module_count();
    sim.run()?;

    // Pipeline-parallel completion: Σ latencies + N (Sec. V-A).
    let cost = fblas_hlssim::PipelineCost::pipelined(
        streamed_cycles(&[axpy.cost::<T>(), dot.cost::<T>()]),
        0,
    );
    let circuit = axpy.estimate::<T>().merge(dot.estimate::<T>());
    let nbytes = n as u64 * T::PRECISION.elem_bytes();
    let streams = [
        StreamDemand::new(w.bank(), nbytes),
        StreamDemand::new(v.bank(), nbytes),
        StreamDemand::new(u.bank(), nbytes),
    ];
    let t = estimate_time(
        fpga.device(),
        RoutineClass::Streaming,
        true,
        &circuit,
        4,
        T::PRECISION.elem_bytes(),
        cost,
        &streams,
        fpga.memory(),
    );
    let report = AppReport {
        seconds: t.seconds,
        io_elements: 3 * n as u64 + 1,
        modules,
    };
    Ok((beta_buf.get(0), report))
}

/// Host-layer AXPYDOT: COPY, AXPY, DOT invoked one by one through DRAM.
/// Returns `(z, β, report)` — the host layer materializes `z`.
pub fn axpydot_host_layer<T: Scalar>(
    fpga: &Fpga,
    w: &DeviceBuffer<T>,
    v: &DeviceBuffer<T>,
    u: &DeviceBuffer<T>,
    alpha: T,
    width: usize,
) -> Result<(Vec<T>, T, AppReport), SimError> {
    let _obs = super::RoutineObservation::start("axpydot_host_layer");
    let n = w.len();
    // z gets its own bank, but the AXPY still both reads and writes it
    // there — "the vector z used by the AXPY routine is read/written in
    // the same memory module", the contention that lifts the measured
    // streaming speedup from the expected 3x to 4x (Sec. VI-C).
    let z = fpga.alloc::<T>("z", n);
    let t_copy = blas::copy(fpga, w, &z, width)?;
    let t_axpy = blas::axpy(fpga, -alpha, v, &z, width)?;
    let (beta, t_dot) = blas::dot(fpga, &z, u, width)?;
    let report = AppReport {
        seconds: t_copy.seconds + t_axpy.seconds + t_dot.seconds,
        io_elements: 7 * n as u64 + 1,
        modules: 3,
    };
    Ok((z.to_host(), beta, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::Validity;
    use fblas_arch::Device;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.351).sin()).collect()
    }

    #[test]
    fn streaming_matches_host_layer_and_reference() {
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let n = 257;
        let wv = seq(n, 0.0);
        let vv = seq(n, 1.0);
        let uv = seq(n, 2.0);
        let alpha = 0.85f64;
        let w = fpga.alloc_from("w", wv.clone());
        let v = fpga.alloc_from("v", vv.clone());
        let u = fpga.alloc_from("u", uv.clone());

        let (beta_s, rep_s) = axpydot_streaming(&fpga, &w, &v, &u, alpha, 8).unwrap();
        let (z_h, beta_h, rep_h) = axpydot_host_layer(&fpga, &w, &v, &u, alpha, 8).unwrap();

        // Reference.
        let z_ref: Vec<f64> = wv.iter().zip(&vv).map(|(w, v)| w - alpha * v).collect();
        let beta_ref: f64 = z_ref.iter().zip(&uv).map(|(z, u)| z * u).sum();
        assert!((beta_s - beta_ref).abs() < 1e-9);
        assert!((beta_h - beta_ref).abs() < 1e-9);
        for i in 0..n {
            assert!((z_h[i] - z_ref[i]).abs() < 1e-12);
        }

        // I/O reduction 7N → 3N+1.
        assert_eq!(rep_h.io_elements, 7 * n as u64 + 1);
        assert_eq!(rep_s.io_elements, 3 * n as u64 + 1);
        // Streaming must be faster.
        assert!(rep_s.seconds < rep_h.seconds);
    }

    #[test]
    fn speedup_approaches_paper_value_for_large_n() {
        // Model-only check at a paper-scale size: with the host-layer z
        // on a contended bank the speedup lands between 3 and 5
        // (paper Fig. 11: ~4).
        let fpga = Fpga::new(Device::Stratix10Gx2800);
        let n = 1 << 16;
        let w = fpga.alloc_from("w", vec![1.0f32; n]);
        let v = fpga.alloc_from("v", vec![1.0f32; n]);
        let u = fpga.alloc_from("u", vec![1.0f32; n]);
        let (_b, rep_s) = axpydot_streaming(&fpga, &w, &v, &u, 1.0, 16).unwrap();
        let (_z, _b, rep_h) = axpydot_host_layer(&fpga, &w, &v, &u, 1.0, 16).unwrap();
        let speedup = rep_h.seconds / rep_s.seconds;
        assert!(speedup > 2.5 && speedup < 5.5, "speedup {speedup}");
    }

    #[test]
    fn mdag_is_valid_multitree_with_minimal_io() {
        let g = axpydot_mdag(1 << 20);
        assert_eq!(g.validate(), Validity::Valid);
        assert_eq!(g.is_multitree(), Some(true));
        assert_eq!(g.interface_io_elements(), 3 * (1 << 20) + 1);
    }
}
