//! Composed applications from the paper's evaluation (Sec. V, Fig. 11,
//! Table VI): AXPYDOT, BICG, ATAX, and GEMVER, each in a *streaming*
//! variant (modules chained through on-chip FIFOs) and a *host-layer*
//! variant (routines invoked one by one, communicating through DRAM).
//!
//! Each app also exposes its MDAG for the Sec.-V validity analysis and
//! its I/O-operation counts, so the paper's analytical claims
//! (AXPYDOT 7N → 3N+1, GEMVER 8N² → 3N², …) are checkable against the
//! built graphs.

pub mod atax;
pub mod axpydot;
pub mod bicg;
pub mod gemver;

pub use atax::{
    atax_host_layer, atax_invalid_streaming, atax_mdag, atax_streaming,
    atax_streaming_independent_reads,
};
pub use axpydot::{axpydot_host_layer, axpydot_mdag, axpydot_streaming};
pub use bicg::{bicg_host_layer, bicg_mdag, bicg_streaming};
pub use gemver::{gemver_host_layer, gemver_mdag, gemver_streaming};

/// Outcome of running a composed application: functional results live
/// in the device buffers passed by the caller; this carries the cost
/// side.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Estimated execution time in seconds (per the paper's models).
    pub seconds: f64,
    /// Total off-chip I/O operations (elements read + written).
    pub io_elements: u64,
    /// Number of modules configured on the device.
    pub modules: usize,
}

impl AppReport {
    /// Estimated time in microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds * 1.0e6
    }
}

/// RAII observation of one routine invocation: when the global metrics
/// runtime is armed, records `fblas_routine_runs_total{routine,backend}`
/// and the wall latency into `fblas_routine_us{routine,backend}` on drop
/// (error paths included). The `backend` label carries the resolved
/// `FBLAS_BACKEND` knob, so dashboards can split latency by execution
/// path. Disarmed cost: one relaxed load.
pub(crate) struct RoutineObservation {
    started: Option<(std::time::Instant, &'static str)>,
}

impl RoutineObservation {
    pub(crate) fn start(routine: &'static str) -> Self {
        RoutineObservation {
            started: fblas_metrics::armed().then(|| (std::time::Instant::now(), routine)),
        }
    }
}

impl Drop for RoutineObservation {
    fn drop(&mut self) {
        if let Some((t0, routine)) = self.started {
            if let Some(reg) = fblas_metrics::registry() {
                let backend = crate::composition::Backend::resolve().as_str();
                let l: &[(&str, &str)] = &[("routine", routine), ("backend", backend)];
                reg.counter("fblas_routine_runs_total", l).inc();
                reg.histogram("fblas_routine_us", l)
                    .record(fblas_metrics::elapsed_us(t0));
            }
        }
    }
}
