//! 2D matrix tiling and streaming orders (paper Sec. III-B).
//!
//! Matrices cross FBLAS streaming interfaces in tiles: both the order of
//! tiles and the order of elements within a tile can be scheduled by rows
//! or by columns, giving four streaming modes. The chosen mode determines
//! which vector operands must be *replayed* (re-sent) and therefore the
//! I/O complexity of a routine — the paper's GEMV example yields
//! `NM + M·⌈N/T_N⌉ + 2N` I/O operations for tiles-by-rows (x replayed)
//! versus `NM + M + 2N·⌈M/T_M⌉` for tiles-by-columns (y replayed).

use serde::{Deserialize, Serialize};

/// The four matrix streaming modes: tiles ordered by rows or columns of
/// tiles, elements within each tile in row-major or column-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileOrder {
    /// Tiles scheduled left-to-right then top-to-bottom; elements within
    /// a tile row-major. The order of paper Fig. 2 (left).
    RowTilesRowMajor,
    /// Tiles by rows; elements within a tile column-major.
    RowTilesColMajor,
    /// Tiles scheduled top-to-bottom then left-to-right (Fig. 2 right);
    /// elements within a tile row-major.
    ColTilesRowMajor,
    /// Tiles by columns; elements within a tile column-major.
    ColTilesColMajor,
}

impl TileOrder {
    /// Are tiles scheduled row-of-tiles first?
    pub fn tiles_by_rows(self) -> bool {
        matches!(
            self,
            TileOrder::RowTilesRowMajor | TileOrder::RowTilesColMajor
        )
    }

    /// Are elements within a tile streamed row-major?
    pub fn elements_row_major(self) -> bool {
        matches!(
            self,
            TileOrder::RowTilesRowMajor | TileOrder::ColTilesRowMajor
        )
    }

    /// The streaming order obtained when this stream is interpreted as
    /// the transpose of the matrix: rows and columns swap at both levels.
    pub fn transposed(self) -> TileOrder {
        match self {
            TileOrder::RowTilesRowMajor => TileOrder::ColTilesColMajor,
            TileOrder::RowTilesColMajor => TileOrder::ColTilesRowMajor,
            TileOrder::ColTilesRowMajor => TileOrder::RowTilesColMajor,
            TileOrder::ColTilesColMajor => TileOrder::RowTilesRowMajor,
        }
    }
}

/// A tiling of an `n × m` matrix into `tn × tm` tiles streamed in a given
/// order. Edge tiles are allowed to be ragged (the paper's routines
/// accept arbitrary input sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Tile height (rows per tile), `T_N`.
    pub tn: usize,
    /// Tile width (columns per tile), `T_M`.
    pub tm: usize,
    /// Streaming order.
    pub order: TileOrder,
}

impl Tiling {
    /// Create a tiling; tile dimensions must be ≥ 1.
    ///
    /// # Panics
    /// Panics if a tile dimension is zero.
    pub fn new(tn: usize, tm: usize, order: TileOrder) -> Self {
        assert!(tn >= 1 && tm >= 1, "tile dimensions must be at least 1");
        Tiling { tn, tm, order }
    }

    /// Square tiling with the paper's default Fig. 2 order.
    pub fn square(t: usize, order: TileOrder) -> Self {
        Tiling::new(t, t, order)
    }

    /// Number of tile rows covering `n` matrix rows.
    pub fn tile_rows(&self, n: usize) -> usize {
        n.div_ceil(self.tn)
    }

    /// Number of tile columns covering `m` matrix columns.
    pub fn tile_cols(&self, m: usize) -> usize {
        m.div_ceil(self.tm)
    }

    /// The `(row, col)` element coordinates of an `n × m` matrix in
    /// streaming order. Every element appears exactly once.
    pub fn stream_indices(&self, n: usize, m: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(n * m);
        let trows = self.tile_rows(n);
        let tcols = self.tile_cols(m);
        let emit_tile = |bi: usize, bj: usize, out: &mut Vec<(usize, usize)>| {
            let r0 = bi * self.tn;
            let c0 = bj * self.tm;
            let r1 = (r0 + self.tn).min(n);
            let c1 = (c0 + self.tm).min(m);
            if self.order.elements_row_major() {
                for r in r0..r1 {
                    for c in c0..c1 {
                        out.push((r, c));
                    }
                }
            } else {
                for c in c0..c1 {
                    for r in r0..r1 {
                        out.push((r, c));
                    }
                }
            }
        };
        if self.order.tiles_by_rows() {
            for bi in 0..trows {
                for bj in 0..tcols {
                    emit_tile(bi, bj, &mut out);
                }
            }
        } else {
            for bj in 0..tcols {
                for bi in 0..trows {
                    emit_tile(bi, bj, &mut out);
                }
            }
        }
        out
    }
}

/// I/O operations of GEMV with `A` received in tiles by rows
/// (paper Sec. III-B): `NM + M·⌈N/T_N⌉ + 2N` — the matrix once, `x`
/// replayed once per row of tiles, `y` read and written once.
pub fn gemv_io_tiles_by_rows(n: usize, m: usize, tn: usize) -> u64 {
    (n as u64) * (m as u64) + (m as u64) * (n.div_ceil(tn) as u64) + 2 * n as u64
}

/// I/O operations of GEMV with `A` received in tiles by columns
/// (paper Sec. III-B): `NM + M + 2N·⌈M/T_M⌉` — the matrix once, `x`
/// once, `y` replayed (written and re-read) once per column of tiles.
pub fn gemv_io_tiles_by_cols(n: usize, m: usize, tm: usize) -> u64 {
    (n as u64) * (m as u64) + m as u64 + 2 * (n as u64) * (m.div_ceil(tm) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_order_covers_all_elements_exactly_once() {
        for order in [
            TileOrder::RowTilesRowMajor,
            TileOrder::RowTilesColMajor,
            TileOrder::ColTilesRowMajor,
            TileOrder::ColTilesColMajor,
        ] {
            let t = Tiling::new(3, 2, order);
            let idx = t.stream_indices(7, 5); // ragged edges on both axes
            assert_eq!(idx.len(), 35, "{order:?}");
            let set: HashSet<_> = idx.iter().copied().collect();
            assert_eq!(set.len(), 35, "{order:?}: duplicates");
        }
    }

    #[test]
    fn row_tiles_row_major_order_matches_fig2_left() {
        // 4x4 matrix, 2x2 tiles: tile (0,0) streams first, row-major.
        let t = Tiling::square(2, TileOrder::RowTilesRowMajor);
        let idx = t.stream_indices(4, 4);
        assert_eq!(
            &idx[..8],
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3)
            ]
        );
        // Second row of tiles starts after the first row of tiles.
        assert_eq!(idx[8], (2, 0));
    }

    #[test]
    fn col_tiles_order_matches_fig2_right() {
        let t = Tiling::square(2, TileOrder::ColTilesRowMajor);
        let idx = t.stream_indices(4, 4);
        // First the (0,0) tile, then the (1,0) tile below it.
        assert_eq!(
            &idx[..8],
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (3, 0),
                (3, 1)
            ]
        );
        assert_eq!(idx[8], (0, 2));
    }

    #[test]
    fn col_major_elements_within_tile() {
        let t = Tiling::new(2, 2, TileOrder::RowTilesColMajor);
        let idx = t.stream_indices(2, 2);
        assert_eq!(idx, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn transpose_round_trips() {
        for order in [
            TileOrder::RowTilesRowMajor,
            TileOrder::RowTilesColMajor,
            TileOrder::ColTilesRowMajor,
            TileOrder::ColTilesColMajor,
        ] {
            assert_eq!(order.transposed().transposed(), order);
        }
        assert_eq!(
            TileOrder::RowTilesRowMajor.transposed(),
            TileOrder::ColTilesColMajor
        );
    }

    #[test]
    fn transposed_stream_is_the_transpose_elementwise() {
        // Streaming A with order O must visit (i, j) in the same sequence
        // as streaming Aᵀ with O.transposed() visits (j, i).
        let (n, m) = (6, 4);
        let t = Tiling::new(2, 3, TileOrder::RowTilesRowMajor);
        let tt = Tiling::new(3, 2, t.order.transposed());
        let a: Vec<_> = t.stream_indices(n, m);
        let b: Vec<_> = tt.stream_indices(m, n);
        let swapped: Vec<_> = b.into_iter().map(|(r, c)| (c, r)).collect();
        assert_eq!(a, swapped);
    }

    #[test]
    fn tile_counts_with_ragged_edges() {
        let t = Tiling::new(4, 4, TileOrder::RowTilesRowMajor);
        assert_eq!(t.tile_rows(8), 2);
        assert_eq!(t.tile_rows(9), 3);
        assert_eq!(t.tile_cols(1), 1);
    }

    #[test]
    fn gemv_io_formulas_match_paper() {
        // Paper Sec. III-B with exact divisibility.
        let (n, m, t) = (1024usize, 2048usize, 256usize);
        assert_eq!(
            gemv_io_tiles_by_rows(n, m, t),
            (n * m + m * (n / t) + 2 * n) as u64
        );
        assert_eq!(
            gemv_io_tiles_by_cols(n, m, t),
            (n * m + m + 2 * n * (m / t)) as u64
        );
        // Larger T_N strictly reduces tiles-by-rows I/O.
        assert!(gemv_io_tiles_by_rows(n, m, 512) < gemv_io_tiles_by_rows(n, m, 128));
    }

    #[test]
    fn io_formulas_converge_to_nm_for_huge_tiles() {
        let (n, m) = (512usize, 512usize);
        let by_rows = gemv_io_tiles_by_rows(n, m, n);
        assert_eq!(by_rows, (n * m + m + 2 * n) as u64);
        let by_cols = gemv_io_tiles_by_cols(n, m, m);
        assert_eq!(by_cols, (n * m + m + 2 * n) as u64);
    }

    #[test]
    #[should_panic(expected = "tile dimensions")]
    fn zero_tile_rejected() {
        let _ = Tiling::new(0, 4, TileOrder::RowTilesRowMajor);
    }
}
