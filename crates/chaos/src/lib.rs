//! # fblas-chaos — deterministic chaos harness
//!
//! Seeded, reproducible fault plans for the hlssim fault hook layer
//! ([`fblas_hlssim::fault`]). A [`FaultPlan`] is a fixed set of
//! *one-shot rules* — "flip bit 13 of element 42 on channel `x->0`",
//! "crash module `gemv`" — built either explicitly or from a
//! [`ChaosRng`] seeded stream. Because channel faults key on the
//! per-channel element sequence number (deterministic under the SPSC
//! discipline) and every rule spends itself after firing, two runs with
//! the same plan inject byte-identical faults, and a retried component
//! runs clean on its second attempt — exactly the transient-fault model
//! (SEUs, hiccuping kernels) the recovery layer is designed for.
//!
//! The [`FaultReport`] is assembled from the rules' spent flags, not
//! from a runtime append log: concurrent module threads would record
//! injections in nondeterministic order, while the spent *set* is a
//! pure function of the plan and the workload.

#![warn(missing_docs)]

use std::fmt;

use parking_lot::Mutex;
use serde::Serialize;

pub use fblas_hlssim::fault::{FaultAction, FaultHook, FaultSite, ModuleFault};

/// SplitMix64: a tiny, high-quality, seedable PRNG. Used to derive
/// fault placements (element indices, bit positions) from a single
/// `FBLAS_CHAOS_SEED` so whole fault sweeps are reproducible from one
/// integer.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// RNG seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound >= 1, "ChaosRng::below needs a positive bound");
        // Multiply-shift reduction: unbiased enough for fault placement
        // and, unlike modulo, free of the low-bit weakness.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// One channel-payload fault: fires exactly once when element `index`
/// crosses `site` of `channel`.
#[derive(Debug, Clone, Serialize)]
pub struct ChannelRule {
    /// Push or pop side.
    pub site: FaultSite,
    /// Channel name (exact match).
    pub channel: String,
    /// Per-channel element sequence number the fault targets.
    pub index: u64,
    /// What happens to the element.
    pub action: FaultAction,
    /// Whether the rule has fired (one-shot: spent rules never fire
    /// again, so a retried component re-runs clean).
    pub spent: bool,
}

/// One module-boundary fault: fires exactly once when `module` starts.
#[derive(Debug, Clone, Serialize)]
pub struct ModuleRule {
    /// Module name (exact match).
    pub module: String,
    /// Crash (panic) or hang (stop making progress).
    pub fault: ModuleFault,
    /// Whether the rule has fired.
    pub spent: bool,
}

struct PlanState {
    channel_rules: Vec<ChannelRule>,
    module_rules: Vec<ModuleRule>,
}

/// A deterministic set of one-shot fault rules implementing
/// [`FaultHook`]. Arm it on a simulation context with
/// [`SimContext::arm_faults`](fblas_hlssim::SimContext::arm_faults).
pub struct FaultPlan {
    seed: Option<u64>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Empty plan; `seed` is carried into the report for provenance
    /// (pass the value the placements were derived from, or `None` for
    /// hand-written plans).
    pub fn new(seed: Option<u64>) -> Self {
        FaultPlan {
            seed,
            state: Mutex::new(PlanState {
                channel_rules: Vec::new(),
                module_rules: Vec::new(),
            }),
        }
    }

    /// Add a one-shot channel-payload fault rule.
    pub fn channel_fault(
        self,
        site: FaultSite,
        channel: impl Into<String>,
        index: u64,
        action: FaultAction,
    ) -> Self {
        self.state.lock().channel_rules.push(ChannelRule {
            site,
            channel: channel.into(),
            index,
            action,
            spent: false,
        });
        self
    }

    /// Add a one-shot module-boundary fault rule.
    pub fn module_fault(self, module: impl Into<String>, fault: ModuleFault) -> Self {
        self.state.lock().module_rules.push(ModuleRule {
            module: module.into(),
            fault,
            spent: false,
        });
        self
    }

    /// Number of rules (channel + module) in the plan.
    pub fn planned(&self) -> usize {
        let st = self.state.lock();
        st.channel_rules.len() + st.module_rules.len()
    }

    /// Whether any rule has fired so far.
    pub fn any_spent(&self) -> bool {
        let st = self.state.lock();
        st.channel_rules.iter().any(|r| r.spent) || st.module_rules.iter().any(|r| r.spent)
    }

    /// Reset every rule to unspent, making the plan reusable for a
    /// fresh run (e.g. the second run of a determinism check).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for r in &mut st.channel_rules {
            r.spent = false;
        }
        for r in &mut st.module_rules {
            r.spent = false;
        }
    }

    /// Deterministic report of what was planned and what actually fired,
    /// assembled from the rules' spent flags in a stable sort order.
    pub fn report(&self) -> FaultReport {
        let st = self.state.lock();
        let mut injections: Vec<InjectionRecord> = st
            .channel_rules
            .iter()
            .filter(|r| r.spent)
            .map(|r| InjectionRecord {
                target: r.channel.clone(),
                site: Some(r.site.label().to_string()),
                index: Some(r.index),
                action: r.action.label().to_string(),
            })
            .chain(
                st.module_rules
                    .iter()
                    .filter(|r| r.spent)
                    .map(|r| InjectionRecord {
                        target: r.module.clone(),
                        site: None,
                        index: None,
                        action: r.fault.label().to_string(),
                    }),
            )
            .collect();
        injections.sort_by(|a, b| {
            (&a.target, &a.site, a.index, &a.action).cmp(&(&b.target, &b.site, b.index, &b.action))
        });
        FaultReport {
            seed: self.seed,
            planned: st.channel_rules.len() + st.module_rules.len(),
            injections,
        }
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("channel_rules", &st.channel_rules)
            .field("module_rules", &st.module_rules)
            .finish()
    }
}

/// Count one rule firing into the global metrics runtime, labeled by
/// rule kind. Disarmed cost: one relaxed load.
#[cold]
fn record_rule_fired(kind: &str) {
    if let Some(reg) = fblas_metrics::registry() {
        reg.counter("fblas_chaos_rules_fired_total", &[("kind", kind)])
            .inc();
    }
}

impl FaultHook for FaultPlan {
    fn on_channel(&self, site: FaultSite, channel: &str, index: u64) -> Option<FaultAction> {
        let mut st = self.state.lock();
        let rule = st
            .channel_rules
            .iter_mut()
            .find(|r| !r.spent && r.site == site && r.index == index && r.channel == channel)?;
        rule.spent = true;
        record_rule_fired("channel");
        Some(rule.action)
    }

    fn on_module_start(&self, module: &str) -> Option<ModuleFault> {
        let mut st = self.state.lock();
        let rule = st
            .module_rules
            .iter_mut()
            .find(|r| !r.spent && r.module == module)?;
        rule.spent = true;
        record_rule_fired("module");
        Some(rule.fault)
    }
}

/// One fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct InjectionRecord {
    /// Channel or module name.
    pub target: String,
    /// `"push"`/`"pop"` for channel faults, `null` for module faults.
    pub site: Option<String>,
    /// Element sequence number for channel faults, `null` otherwise.
    pub index: Option<u64>,
    /// Action label (`"corrupt"`, `"drop"`, `"duplicate"`, `"delay"`,
    /// `"crash"`, `"hang"`).
    pub action: String,
}

/// What a plan intended and what it delivered — deterministic for a
/// given plan and workload (assembled from spent flags, sorted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultReport {
    /// The seed placements were derived from, if any.
    pub seed: Option<u64>,
    /// Total rules in the plan.
    pub planned: usize,
    /// Rules that fired, in stable order.
    pub injections: Vec<InjectionRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = ChaosRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // Different seeds diverge immediately.
        assert_ne!(ChaosRng::new(1).next_u64(), ChaosRng::new(2).next_u64());
    }

    #[test]
    fn rules_are_one_shot_and_exact_match() {
        let plan = FaultPlan::new(Some(9)).channel_fault(
            FaultSite::Push,
            "ch",
            3,
            FaultAction::Corrupt { bit: 5 },
        );
        assert_eq!(plan.on_channel(FaultSite::Push, "ch", 2), None);
        assert_eq!(plan.on_channel(FaultSite::Pop, "ch", 3), None);
        assert_eq!(plan.on_channel(FaultSite::Push, "other", 3), None);
        assert_eq!(
            plan.on_channel(FaultSite::Push, "ch", 3),
            Some(FaultAction::Corrupt { bit: 5 })
        );
        // Spent: the same element on a retry runs clean.
        assert_eq!(plan.on_channel(FaultSite::Push, "ch", 3), None);
        assert!(plan.any_spent());
        plan.reset();
        assert!(!plan.any_spent());
        assert_eq!(
            plan.on_channel(FaultSite::Push, "ch", 3),
            Some(FaultAction::Corrupt { bit: 5 })
        );
    }

    #[test]
    fn module_rules_fire_once() {
        let plan = FaultPlan::new(None).module_fault("gemv", ModuleFault::Crash);
        assert_eq!(plan.on_module_start("dot"), None);
        assert_eq!(plan.on_module_start("gemv"), Some(ModuleFault::Crash));
        assert_eq!(plan.on_module_start("gemv"), None);
    }

    #[test]
    fn report_is_deterministic_and_serializable() {
        let plan = FaultPlan::new(Some(123))
            .channel_fault(FaultSite::Pop, "b", 1, FaultAction::DropElement)
            .channel_fault(FaultSite::Push, "a", 7, FaultAction::Corrupt { bit: 0 })
            .module_fault("m", ModuleFault::Hang);
        // Fire in "runtime" order b, m, a — the report must not care.
        plan.on_channel(FaultSite::Pop, "b", 1);
        plan.on_module_start("m");
        plan.on_channel(FaultSite::Push, "a", 7);
        let r1 = plan.report();
        assert_eq!(r1.planned, 3);
        assert_eq!(r1.injections.len(), 3);
        assert_eq!(r1.injections[0].target, "a");
        let json = serde_json::to_string(&r1).unwrap();
        assert!(json.contains("\"seed\":123"));
        assert!(json.contains("\"corrupt\""));

        plan.reset();
        plan.on_channel(FaultSite::Push, "a", 7);
        plan.on_channel(FaultSite::Pop, "b", 1);
        plan.on_module_start("m");
        assert_eq!(
            plan.report(),
            r1,
            "firing order does not leak into the report"
        );
    }
}
