//! # fblas-refblas — CPU reference BLAS
//!
//! A from-scratch CPU implementation of the 22 BLAS routines offered by
//! FBLAS (paper Sec. VI), playing two roles in the reproduction:
//!
//! 1. **Correctness oracle** — the streaming FPGA-simulated routines in
//!    `fblas-core` are validated against these straightforward
//!    implementations (netlib reference semantics).
//! 2. **CPU comparator** — the paper's Tables IV–VI compare FBLAS against
//!    Intel MKL on a 10-core Xeon; [`parallel`] provides multi-threaded
//!    variants (std scoped threads) and [`batched`] the batched small
//!    GEMM/TRSM of Table V, filling the same role.
//!
//! Matrices are dense, row-major, with the leading dimension equal to the
//! column count: a `rows × cols` matrix is a `&[T]` of exactly
//! `rows·cols` elements.

#![allow(clippy::too_many_arguments)] // BLAS signatures are what they are
#![allow(clippy::needless_range_loop)] // explicit indices mirror the math
#![allow(clippy::identity_op)] // row*stride + col kept explicit in tests
#![warn(missing_docs)]

pub mod apps;
pub mod batched;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod parallel;
pub mod real;
pub mod types;

pub use real::Real;
pub use types::{Diag, RotmFlag, Side, Trans, Uplo};
