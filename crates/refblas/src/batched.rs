//! Batched small-matrix routines (the Table V comparator).
//!
//! The paper compares fully unrolled FBLAS GEMM/TRSM circuits of size 4×4
//! against "the batched version of the same routine offered by MKL", for
//! batches of thousands of invocations (Sec. VI-D). These are the CPU-side
//! batched loops, parallelized over the batch dimension.

use std::thread;

use crate::level3;
use crate::real::Real;
use crate::types::{Diag, Side, Trans, Uplo};

/// Batched GEMM: for each `i`, `C[i] ← α·A[i]·B[i] + β·C[i]` where every
/// matrix is `dim × dim` row-major, stored contiguously batch-major.
///
/// # Panics
/// Panics if the slice lengths are not `batch · dim²`.
pub fn gemm_batched<T: Real>(
    dim: usize,
    batch: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
    threads: usize,
) {
    let sz = dim * dim;
    assert_eq!(a.len(), batch * sz, "gemm_batched: A length");
    assert_eq!(b.len(), batch * sz, "gemm_batched: B length");
    assert_eq!(c.len(), batch * sz, "gemm_batched: C length");
    let threads = threads.max(1);
    if threads == 1 || batch < 2 * threads {
        for i in 0..batch {
            level3::gemm(
                Trans::No,
                Trans::No,
                dim,
                dim,
                dim,
                alpha,
                &a[i * sz..(i + 1) * sz],
                &b[i * sz..(i + 1) * sz],
                beta,
                &mut c[i * sz..(i + 1) * sz],
            );
        }
        return;
    }
    let per = batch.div_ceil(threads);
    thread::scope(|s| {
        let mut c_rest: &mut [T] = c;
        let mut start = 0usize;
        while start < batch {
            let count = per.min(batch - start);
            let (c_block, tail) = c_rest.split_at_mut(count * sz);
            c_rest = tail;
            let a_block = &a[start * sz..(start + count) * sz];
            let b_block = &b[start * sz..(start + count) * sz];
            s.spawn(move || {
                for i in 0..count {
                    level3::gemm(
                        Trans::No,
                        Trans::No,
                        dim,
                        dim,
                        dim,
                        alpha,
                        &a_block[i * sz..(i + 1) * sz],
                        &b_block[i * sz..(i + 1) * sz],
                        beta,
                        &mut c_block[i * sz..(i + 1) * sz],
                    );
                }
            });
            start += count;
        }
    });
}

/// Batched left-side TRSM: for each `i`, `B[i] ← α·A[i]⁻¹·B[i]` with
/// `A[i]` triangular `dim × dim`.
///
/// # Panics
/// Panics if the slice lengths are not `batch · dim²`.
#[allow(clippy::too_many_arguments)]
pub fn trsm_batched<T: Real>(
    uplo: Uplo,
    diag: Diag,
    dim: usize,
    batch: usize,
    alpha: T,
    a: &[T],
    b: &mut [T],
    threads: usize,
) {
    let sz = dim * dim;
    assert_eq!(a.len(), batch * sz, "trsm_batched: A length");
    assert_eq!(b.len(), batch * sz, "trsm_batched: B length");
    let threads = threads.max(1);
    if threads == 1 || batch < 2 * threads {
        for i in 0..batch {
            level3::trsm(
                Side::Left,
                uplo,
                Trans::No,
                diag,
                dim,
                dim,
                alpha,
                &a[i * sz..(i + 1) * sz],
                &mut b[i * sz..(i + 1) * sz],
            );
        }
        return;
    }
    let per = batch.div_ceil(threads);
    thread::scope(|s| {
        let mut b_rest: &mut [T] = b;
        let mut start = 0usize;
        while start < batch {
            let count = per.min(batch - start);
            let (b_block, tail) = b_rest.split_at_mut(count * sz);
            b_rest = tail;
            let a_block = &a[start * sz..(start + count) * sz];
            s.spawn(move || {
                for i in 0..count {
                    level3::trsm(
                        Side::Left,
                        uplo,
                        Trans::No,
                        diag,
                        dim,
                        dim,
                        alpha,
                        &a_block[i * sz..(i + 1) * sz],
                        &mut b_block[i * sz..(i + 1) * sz],
                    );
                }
            });
            start += count;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.71).sin()).collect()
    }

    #[test]
    fn batched_gemm_matches_loop_of_gemms() {
        let dim = 4;
        let batch = 37;
        let sz = dim * dim;
        let a = seq(batch * sz, 0.0);
        let b = seq(batch * sz, 1.0);
        let mut c_ref = seq(batch * sz, 2.0);
        let mut c_par = c_ref.clone();
        for i in 0..batch {
            level3::gemm(
                Trans::No,
                Trans::No,
                dim,
                dim,
                dim,
                1.1,
                &a[i * sz..(i + 1) * sz],
                &b[i * sz..(i + 1) * sz],
                0.3,
                &mut c_ref[i * sz..(i + 1) * sz],
            );
        }
        gemm_batched(dim, batch, 1.1, &a, &b, 0.3, &mut c_par, 4);
        for i in 0..batch * sz {
            assert!((c_ref[i] - c_par[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_trsm_solves_each_system() {
        let dim = 4;
        let batch = 16;
        let sz = dim * dim;
        // Build well-conditioned upper-triangular As and random Xs.
        let mut a = vec![0.0f64; batch * sz];
        for i in 0..batch {
            for r in 0..dim {
                for cix in r..dim {
                    a[i * sz + r * dim + cix] = 0.1 * (r + cix + i) as f64 + 0.2;
                }
                a[i * sz + r * dim + r] += 2.0;
            }
        }
        let x = seq(batch * sz, 3.0);
        // B[i] = A[i]·X[i]
        let mut b = vec![0.0f64; batch * sz];
        for i in 0..batch {
            level3::gemm(
                Trans::No,
                Trans::No,
                dim,
                dim,
                dim,
                1.0,
                &a[i * sz..(i + 1) * sz],
                &x[i * sz..(i + 1) * sz],
                0.0,
                &mut b[i * sz..(i + 1) * sz],
            );
        }
        trsm_batched(Uplo::Upper, Diag::NonUnit, dim, batch, 1.0, &a, &mut b, 4);
        for i in 0..batch * sz {
            assert!((b[i] - x[i]).abs() < 1e-9, "index {i}");
        }
    }

    #[test]
    fn small_batches_run_serially() {
        let dim = 2;
        let batch = 3;
        let sz = dim * dim;
        let a = seq(batch * sz, 0.0);
        let b = seq(batch * sz, 1.0);
        let mut c = vec![0.0f64; batch * sz];
        gemm_batched(dim, batch, 1.0, &a, &b, 0.0, &mut c, 64);
        // Spot check one element of the last batch entry.
        let i = batch - 1;
        let exp = a[i * sz] * b[i * sz] + a[i * sz + 1] * b[i * sz + 2];
        assert!((c[i * sz] - exp).abs() < 1e-12);
    }
}
