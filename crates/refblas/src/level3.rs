//! Reference implementations of the BLAS Level-3 routines offered by
//! FBLAS: GEMM, SYRK, SYR2K, TRSM (paper Sec. VI).
//!
//! Matrices are dense, row-major.

use crate::real::Real;
use crate::types::{Diag, Side, Trans, Uplo};

/// General matrix multiply: `C ← α·op(A)·op(B) + β·C` with `op(A)` of
/// shape `m × k`, `op(B)` of shape `k × n`, `C` of shape `m × n`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn gemm<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    match transa {
        Trans::No => assert_eq!(a.len(), m * k, "gemm: A must be m*k"),
        Trans::Yes => assert_eq!(a.len(), k * m, "gemm: A must be k*m"),
    }
    match transb {
        Trans::No => assert_eq!(b.len(), k * n, "gemm: B must be k*n"),
        Trans::Yes => assert_eq!(b.len(), n * k, "gemm: B must be n*k"),
    }
    assert_eq!(c.len(), m * n, "gemm: C must be m*n");

    let a_at = |i: usize, l: usize| -> T {
        match transa {
            Trans::No => a[i * k + l],
            Trans::Yes => a[l * m + i],
        }
    };
    let b_at = |l: usize, j: usize| -> T {
        match transb {
            Trans::No => b[l * n + j],
            Trans::Yes => b[j * k + l],
        }
    };

    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc = a_at(i, l).mul_add(b_at(l, j), acc);
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Symmetric rank-k update: `C ← α·op(A)·op(A)ᵀ + β·C` (trans = No) or
/// `C ← α·op(A)ᵀ·op(A) + β·C` (trans = Yes), touching only the `uplo`
/// triangle of the `n × n` matrix `C`. `A` is `n × k` (No) or `k × n`
/// (Yes), row-major.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn syrk<T: Real>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    beta: T,
    c: &mut [T],
) {
    match trans {
        Trans::No => assert_eq!(a.len(), n * k, "syrk: A must be n*k"),
        Trans::Yes => assert_eq!(a.len(), k * n, "syrk: A must be k*n"),
    }
    assert_eq!(c.len(), n * n, "syrk: C must be n*n");
    let a_at = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a[i * k + l],
            Trans::Yes => a[l * n + i],
        }
    };
    for i in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (i, n),
            Uplo::Lower => (0, i + 1),
        };
        for j in lo..hi {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc = a_at(i, l).mul_add(a_at(j, l), acc);
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Symmetric rank-2k update: `C ← α·op(A)·op(B)ᵀ + α·op(B)·op(A)ᵀ + β·C`,
/// touching only the `uplo` triangle.
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn syr2k<T: Real>(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    match trans {
        Trans::No => {
            assert_eq!(a.len(), n * k, "syr2k: A must be n*k");
            assert_eq!(b.len(), n * k, "syr2k: B must be n*k");
        }
        Trans::Yes => {
            assert_eq!(a.len(), k * n, "syr2k: A must be k*n");
            assert_eq!(b.len(), k * n, "syr2k: B must be k*n");
        }
    }
    assert_eq!(c.len(), n * n, "syr2k: C must be n*n");
    let at = |m: &[T], i: usize, l: usize| -> T {
        match trans {
            Trans::No => m[i * k + l],
            Trans::Yes => m[l * n + i],
        }
    };
    for i in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Upper => (i, n),
            Uplo::Lower => (0, i + 1),
        };
        for j in lo..hi {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc = at(a, i, l).mul_add(at(b, j, l), acc);
                acc = at(b, i, l).mul_add(at(a, j, l), acc);
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `B ← α·op(A)⁻¹·B` (side = Left) or `B ← α·B·op(A)⁻¹` (side = Right),
/// where `A` is triangular (`m × m` for Left, `n × n` for Right) and `B`
/// is `m × n`, all row-major, solved in place.
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Real>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    b: &mut [T],
) {
    let adim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.len(), adim * adim, "trsm: A dimension");
    assert_eq!(b.len(), m * n, "trsm: B must be m*n");

    for v in b.iter_mut() {
        *v *= alpha;
    }

    let elem = |i: usize, j: usize| -> T {
        match trans {
            Trans::No => a[i * adim + j],
            Trans::Yes => a[j * adim + i],
        }
    };
    let effective_upper = match (uplo, trans) {
        (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes) => true,
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes) => false,
    };

    match side {
        Side::Left => {
            // Solve op(A)·X = B column-block-wise over rows of B.
            if effective_upper {
                for i in (0..m).rev() {
                    for l in i + 1..m {
                        let f = elem(i, l);
                        for j in 0..n {
                            let t = b[l * n + j];
                            b[i * n + j] -= f * t;
                        }
                    }
                    if diag == Diag::NonUnit {
                        let d = elem(i, i);
                        for j in 0..n {
                            b[i * n + j] /= d;
                        }
                    }
                }
            } else {
                for i in 0..m {
                    for l in 0..i {
                        let f = elem(i, l);
                        for j in 0..n {
                            let t = b[l * n + j];
                            b[i * n + j] -= f * t;
                        }
                    }
                    if diag == Diag::NonUnit {
                        let d = elem(i, i);
                        for j in 0..n {
                            b[i * n + j] /= d;
                        }
                    }
                }
            }
        }
        Side::Right => {
            // Solve X·op(A) = B row-wise: for each row r of B, solve
            // op(A)ᵀ·xᵀ = rᵀ, i.e. a TRSV with flipped triangle.
            if effective_upper {
                // X·U = B: forward over columns.
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = b[i * n + j];
                        for l in 0..j {
                            acc -= b[i * n + l] * elem(l, j);
                        }
                        b[i * n + j] = match diag {
                            Diag::Unit => acc,
                            Diag::NonUnit => acc / elem(j, j),
                        };
                    }
                }
            } else {
                // X·L = B: backward over columns.
                for i in 0..m {
                    for j in (0..n).rev() {
                        let mut acc = b[i * n + j];
                        for l in j + 1..n {
                            acc -= b[i * n + l] * elem(l, j);
                        }
                        b[i * n + j] = match diag {
                            Diag::Unit => acc,
                            Diag::NonUnit => acc / elem(j, j),
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_slice(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    fn seq_matrix(rows: usize, cols: usize, seed: f64) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| ((i as f64 + seed) * 0.37).sin())
            .collect()
    }

    #[test]
    fn gemm_identity() {
        let n = 3;
        let mut eye = vec![0.0f64; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b = seq_matrix(n, n, 1.0);
        let mut c = vec![0.0f64; n * n];
        gemm(Trans::No, Trans::No, n, n, n, 1.0, &eye, &b, 0.0, &mut c);
        close_slice(&c, &b, 1e-14);
    }

    #[test]
    fn gemm_small_known() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]].
        let a = vec![1.0f64, 2.0, 3.0, 4.0];
        let b = vec![5.0f64, 6.0, 7.0, 8.0];
        let mut c = vec![1.0f64; 4];
        gemm(Trans::No, Trans::No, 2, 2, 2, 1.0, &a, &b, 100.0, &mut c);
        close_slice(&c, &[119.0, 122.0, 143.0, 150.0], 1e-12);
    }

    #[test]
    fn gemm_transpose_variants_agree() {
        let (m, n, k) = (4, 5, 3);
        let a = seq_matrix(m, k, 0.0);
        let b = seq_matrix(k, n, 9.0);
        let mut c_ref = vec![0.0f64; m * n];
        gemm(Trans::No, Trans::No, m, n, k, 1.0, &a, &b, 0.0, &mut c_ref);

        // Build explicit transposes and verify all four flag combinations
        // produce the same product.
        let mut at = vec![0.0f64; k * m];
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a[i * k + l];
            }
        }
        let mut bt = vec![0.0f64; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        for (ta, tb, aa, bb) in [
            (Trans::Yes, Trans::No, &at, &b),
            (Trans::No, Trans::Yes, &a, &bt),
            (Trans::Yes, Trans::Yes, &at, &bt),
        ] {
            let mut c = vec![0.0f64; m * n];
            gemm(ta, tb, m, n, k, 1.0, aa, bb, 0.0, &mut c);
            close_slice(&c, &c_ref, 1e-12);
        }
    }

    #[test]
    fn syrk_matches_explicit_product() {
        let (n, k) = (4, 6);
        let a = seq_matrix(n, k, 3.0);
        let mut c = vec![0.0f64; n * n];
        syrk(Uplo::Upper, Trans::No, n, k, 2.0, &a, 0.0, &mut c);
        // Reference: full A·Aᵀ.
        let mut at = vec![0.0f64; k * n];
        for i in 0..n {
            for l in 0..k {
                at[l * n + i] = a[i * k + l];
            }
        }
        let mut full = vec![0.0f64; n * n];
        gemm(Trans::No, Trans::No, n, n, k, 2.0, &a, &at, 0.0, &mut full);
        for i in 0..n {
            for j in i..n {
                assert!((c[i * n + j] - full[i * n + j]).abs() < 1e-12);
            }
            for j in 0..i {
                assert_eq!(c[i * n + j], 0.0, "lower triangle untouched");
            }
        }
    }

    #[test]
    fn syrk_trans_matches_ata() {
        let (n, k) = (3, 5);
        let a = seq_matrix(k, n, 7.0); // k×n for trans=Yes
        let mut c = vec![0.0f64; n * n];
        syrk(Uplo::Lower, Trans::Yes, n, k, 1.0, &a, 0.0, &mut c);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[l * n + i] * a[l * n + j];
                }
                assert!((c[i * n + j] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syr2k_symmetry_property() {
        let (n, k) = (4, 3);
        let a = seq_matrix(n, k, 1.0);
        let b = seq_matrix(n, k, 2.0);
        let mut c_up = vec![0.0f64; n * n];
        let mut c_lo = vec![0.0f64; n * n];
        syr2k(Uplo::Upper, Trans::No, n, k, 1.0, &a, &b, 0.0, &mut c_up);
        syr2k(Uplo::Lower, Trans::No, n, k, 1.0, &a, &b, 0.0, &mut c_lo);
        for i in 0..n {
            for j in i..n {
                assert!((c_up[i * n + j] - c_lo[j * n + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_left_solves_system() {
        let m = 4;
        let n = 3;
        let mut a = vec![0.0f64; m * m];
        for i in 0..m {
            for j in i..m {
                a[i * m + j] = 0.3 + (i + j) as f64 * 0.1;
            }
            a[i * m + i] += 2.0;
        }
        let x = seq_matrix(m, n, 5.0);
        // B = A·X
        let mut bmat = vec![0.0f64; m * n];
        gemm(Trans::No, Trans::No, m, n, m, 1.0, &a, &x, 0.0, &mut bmat);
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            m,
            n,
            1.0,
            &a,
            &mut bmat,
        );
        close_slice(&bmat, &x, 1e-10);
    }

    #[test]
    fn trsm_right_solves_system() {
        let m = 3;
        let n = 4;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                a[i * n + j] = 0.2 + (2 * i + j) as f64 * 0.07;
            }
            a[i * n + i] += 2.5;
        }
        let x = seq_matrix(m, n, 11.0);
        // B = X·A (A lower): b_{ij} = Σ_l x_{il} a_{lj}
        let mut bmat = vec![0.0f64; m * n];
        gemm(Trans::No, Trans::No, m, n, n, 1.0, &x, &a, 0.0, &mut bmat);
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            m,
            n,
            1.0,
            &a,
            &mut bmat,
        );
        close_slice(&bmat, &x, 1e-10);
    }

    #[test]
    fn trsm_transposed_and_unit_diag() {
        let m = 4;
        let n = 2;
        let mut a = vec![0.0f64; m * m];
        for i in 0..m {
            for j in 0..i {
                a[i * m + j] = 0.1 * (i as f64 + 1.0) + 0.05 * j as f64;
            }
            a[i * m + i] = 42.0; // garbage: unit diag must ignore it
        }
        // op(A) = Aᵀ (upper unit-triangular effective).
        let x = seq_matrix(m, n, 2.0);
        // Compute B = Aᵀ_unit · X manually.
        let mut bmat = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = x[i * n + j]; // unit diagonal
                for l in i + 1..m {
                    acc += a[l * m + i] * x[l * n + j];
                }
                bmat[i * n + j] = acc;
            }
        }
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::Yes,
            Diag::Unit,
            m,
            n,
            1.0,
            &a,
            &mut bmat,
        );
        close_slice(&bmat, &x, 1e-10);
    }

    #[test]
    fn trsm_alpha_scaling() {
        let m = 2;
        let n = 2;
        let a = vec![2.0f64, 0.0, 0.0, 4.0];
        let mut b = vec![2.0f64, 4.0, 8.0, 16.0];
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            m,
            n,
            3.0,
            &a,
            &mut b,
        );
        close_slice(&b, &[3.0, 6.0, 6.0, 12.0], 1e-12);
    }

    #[test]
    #[should_panic(expected = "gemm: C must be m*n")]
    fn gemm_bad_c_panics() {
        let mut c = vec![0.0f64; 3];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &[0.0; 4],
            &[0.0; 4],
            0.0,
            &mut c,
        );
    }
}
