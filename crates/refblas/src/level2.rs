//! Reference implementations of the BLAS Level-2 routines offered by
//! FBLAS: GEMV, TRSV, GER, SYR, SYR2 (paper Sec. VI).
//!
//! Matrices are dense, row-major `rows × cols` slices.

use crate::real::Real;
use crate::types::{Diag, Trans, Uplo};

/// General matrix-vector multiply: `y ← α·op(A)·x + β·y`, where `A` is
/// `m × n` row-major; `op(A)` is `A` or `Aᵀ` per `trans`.
///
/// With `trans == No`, `x` has `n` elements and `y` has `m`; transposed,
/// the roles swap.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn gemv<T: Real>(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    x: &[T],
    beta: T,
    y: &mut [T],
) {
    assert_eq!(a.len(), m * n, "gemv: A must be m*n");
    let (xn, yn) = match trans {
        Trans::No => (n, m),
        Trans::Yes => (m, n),
    };
    assert_eq!(x.len(), xn, "gemv: x length");
    assert_eq!(y.len(), yn, "gemv: y length");

    match trans {
        Trans::No => {
            for i in 0..m {
                let row = &a[i * n..(i + 1) * n];
                let mut acc = T::ZERO;
                for j in 0..n {
                    acc = row[j].mul_add(x[j], acc);
                }
                y[i] = alpha * acc + beta * y[i];
            }
        }
        Trans::Yes => {
            // Compute β·y first, then accumulate columns to stay cache
            // friendly over the row-major storage.
            for yj in y.iter_mut() {
                *yj *= beta;
            }
            for i in 0..m {
                let row = &a[i * n..(i + 1) * n];
                let axi = alpha * x[i];
                for j in 0..n {
                    y[j] = axi.mul_add(row[j], y[j]);
                }
            }
        }
    }
}

/// Rank-1 update: `A ← α·x·yᵀ + A`, `A` is `m × n` row-major.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn ger<T: Real>(m: usize, n: usize, alpha: T, x: &[T], y: &[T], a: &mut [T]) {
    assert_eq!(a.len(), m * n, "ger: A must be m*n");
    assert_eq!(x.len(), m, "ger: x length");
    assert_eq!(y.len(), n, "ger: y length");
    for i in 0..m {
        let axi = alpha * x[i];
        let row = &mut a[i * n..(i + 1) * n];
        for j in 0..n {
            row[j] = axi.mul_add(y[j], row[j]);
        }
    }
}

/// Symmetric rank-1 update: `A ← α·x·xᵀ + A`, touching only the `uplo`
/// triangle of the `n × n` matrix `A`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn syr<T: Real>(uplo: Uplo, n: usize, alpha: T, x: &[T], a: &mut [T]) {
    assert_eq!(a.len(), n * n, "syr: A must be n*n");
    assert_eq!(x.len(), n, "syr: x length");
    for i in 0..n {
        let axi = alpha * x[i];
        let (lo, hi) = match uplo {
            Uplo::Upper => (i, n),
            Uplo::Lower => (0, i + 1),
        };
        for j in lo..hi {
            a[i * n + j] = axi.mul_add(x[j], a[i * n + j]);
        }
    }
}

/// Symmetric rank-2 update: `A ← α·x·yᵀ + α·y·xᵀ + A`, touching only the
/// `uplo` triangle.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn syr2<T: Real>(uplo: Uplo, n: usize, alpha: T, x: &[T], y: &[T], a: &mut [T]) {
    assert_eq!(a.len(), n * n, "syr2: A must be n*n");
    assert_eq!(x.len(), n, "syr2: x length");
    assert_eq!(y.len(), n, "syr2: y length");
    for i in 0..n {
        let axi = alpha * x[i];
        let ayi = alpha * y[i];
        let (lo, hi) = match uplo {
            Uplo::Upper => (i, n),
            Uplo::Lower => (0, i + 1),
        };
        for j in lo..hi {
            a[i * n + j] = axi.mul_add(y[j], ayi.mul_add(x[j], a[i * n + j]));
        }
    }
}

/// Triangular solve: `x ← op(A)⁻¹·x`, where `A` is `n × n` triangular
/// (row-major) with the `uplo` triangle stored and an optional implicit
/// unit diagonal.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn trsv<T: Real>(uplo: Uplo, trans: Trans, diag: Diag, n: usize, a: &[T], x: &mut [T]) {
    assert_eq!(a.len(), n * n, "trsv: A must be n*n");
    assert_eq!(x.len(), n, "trsv: x length");
    // op(A) upper ⇔ backward substitution; op(A) lower ⇔ forward.
    let effective_upper = match (uplo, trans) {
        (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes) => true,
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes) => false,
    };
    let elem = |i: usize, j: usize| -> T {
        match trans {
            Trans::No => a[i * n + j],
            Trans::Yes => a[j * n + i],
        }
    };
    if effective_upper {
        for ii in (0..n).rev() {
            let mut acc = x[ii];
            for j in ii + 1..n {
                acc -= elem(ii, j) * x[j];
            }
            x[ii] = match diag {
                Diag::Unit => acc,
                Diag::NonUnit => acc / elem(ii, ii),
            };
        }
    } else {
        for ii in 0..n {
            let mut acc = x[ii];
            for j in 0..ii {
                acc -= elem(ii, j) * x[j];
            }
            x[ii] = match diag {
                Diag::Unit => acc,
                Diag::NonUnit => acc / elem(ii, ii),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level1::dot;

    fn close_slice(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemv_no_trans() {
        // A = [[1,2],[3,4],[5,6]], x = [1,1], y = [1,1,1].
        let a = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = vec![1.0f64, 1.0];
        let mut y = vec![1.0f64, 1.0, 1.0];
        gemv(Trans::No, 3, 2, 2.0, &a, &x, 10.0, &mut y);
        close_slice(&y, &[16.0, 24.0, 32.0], 1e-12);
    }

    #[test]
    fn gemv_trans() {
        let a = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = vec![1.0f64, 1.0, 1.0];
        let mut y = vec![0.0f64, 0.0];
        gemv(Trans::Yes, 3, 2, 1.0, &a, &x, 0.0, &mut y);
        close_slice(&y, &[9.0, 12.0], 1e-12);
    }

    #[test]
    fn gemv_beta_zero_ignores_y_contents() {
        let a = vec![1.0f64; 4];
        let x = vec![1.0f64, 1.0];
        let mut y = vec![123.0f64, 456.0];
        gemv(Trans::No, 2, 2, 1.0, &a, &x, 0.0, &mut y);
        close_slice(&y, &[2.0, 2.0], 1e-12);
    }

    #[test]
    fn ger_rank1() {
        let mut a = vec![0.0f64; 6];
        ger(2, 3, 2.0, &[1.0, 2.0], &[1.0, 10.0, 100.0], &mut a);
        close_slice(&a, &[2.0, 20.0, 200.0, 4.0, 40.0, 400.0], 1e-12);
    }

    #[test]
    fn syr_updates_only_requested_triangle() {
        let n = 3;
        let x = vec![1.0f64, 2.0, 3.0];
        let mut up = vec![0.0f64; 9];
        syr(Uplo::Upper, n, 1.0, &x, &mut up);
        // Upper triangle has x_i x_j, strictly-lower stays zero.
        assert_eq!(up[2], 3.0); // (0,2)
        assert_eq!(up[2 * 3 + 0], 0.0);
        assert_eq!(up[1 * 3 + 1], 4.0);

        let mut lo = vec![0.0f64; 9];
        syr(Uplo::Lower, n, 1.0, &x, &mut lo);
        assert_eq!(lo[2 * 3 + 0], 3.0);
        assert_eq!(lo[2], 0.0); // (0,2)
    }

    #[test]
    fn syr2_matches_two_gers_on_triangle() {
        let n = 3;
        let x = vec![1.0f64, -2.0, 0.5];
        let y = vec![2.0f64, 1.0, -1.0];
        let mut a = vec![0.0f64; 9];
        syr2(Uplo::Upper, n, 1.5, &x, &y, &mut a);
        let mut full = vec![0.0f64; 9];
        ger(n, n, 1.5, &x, &y, &mut full);
        ger(n, n, 1.5, &y, &x, &mut full);
        for i in 0..n {
            for j in i..n {
                assert!((a[i * n + j] - full[i * n + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsv_upper_and_lower_roundtrip() {
        // Build a well-conditioned triangular matrix, multiply, solve back.
        let n = 4;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if j >= i {
                    a[i * n + j] = 1.0 + (i + 2 * j) as f64 * 0.1;
                }
            }
            a[i * n + i] += 3.0;
        }
        let x0 = vec![1.0f64, -2.0, 3.0, 0.5];
        // b = U x0
        let mut b = vec![0.0f64; n];
        gemv(Trans::No, n, n, 1.0, &a, &x0, 0.0, &mut b);
        trsv(Uplo::Upper, Trans::No, Diag::NonUnit, n, &a, &mut b);
        close_slice(&b, &x0, 1e-10);

        // Transposed: solve Uᵀ x = b2.
        let mut b2 = vec![0.0f64; n];
        gemv(Trans::Yes, n, n, 1.0, &a, &x0, 0.0, &mut b2);
        trsv(Uplo::Upper, Trans::Yes, Diag::NonUnit, n, &a, &mut b2);
        close_slice(&b2, &x0, 1e-10);
    }

    #[test]
    fn trsv_unit_diagonal_ignores_stored_diag() {
        let n = 3;
        // Lower unit-triangular with garbage on the diagonal.
        let a = vec![
            99.0f64, 0.0, 0.0, //
            2.0, 77.0, 0.0, //
            3.0, 4.0, 55.0,
        ];
        let x0 = vec![1.0f64, 2.0, 3.0];
        // b = L1 x0 where L1 has ones on the diagonal.
        let b = vec![1.0, 2.0 * 1.0 + 2.0, 3.0 * 1.0 + 4.0 * 2.0 + 3.0];
        let mut x = b;
        trsv(Uplo::Lower, Trans::No, Diag::Unit, n, &a, &mut x);
        close_slice(&x, &x0, 1e-12);
    }

    #[test]
    fn gemv_consistent_with_dot() {
        let m = 5;
        let n = 7;
        let a: Vec<f64> = (0..m * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.91).cos()).collect();
        let mut y = vec![0.0f64; m];
        gemv(Trans::No, m, n, 1.0, &a, &x, 0.0, &mut y);
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            assert!((y[i] - dot(row, &x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "gemv: x length")]
    fn gemv_bad_x_panics() {
        let mut y = vec![0.0f64; 2];
        gemv(Trans::No, 2, 2, 1.0, &[0.0; 4], &[0.0; 3], 0.0, &mut y);
    }
}
