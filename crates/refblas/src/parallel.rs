//! Multi-threaded CPU variants of the comparator routines.
//!
//! The paper's CPU baseline is Intel MKL running in parallel on a 10-core
//! Xeon E5-2630 v4 ("we considered the best parallel execution time",
//! Sec. VI-D). These implementations use std scoped threads with static
//! row-block partitioning — not MKL-grade, but a legitimate parallel
//! baseline whose scaling role in Tables IV–VI is the same.

use std::thread;

use crate::level3::gemm as gemm_serial;
use crate::real::Real;
use crate::types::Trans;

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `n` items into at most `parts` contiguous ranges of near-equal
/// size. Returns only non-empty ranges.
fn partition(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len > 0 {
            out.push(start..start + len);
        }
        start += len;
    }
    out
}

/// Parallel dot product `xᵀy` over `threads` workers.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn dot<T: Real>(x: &[T], y: &[T], threads: usize) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let ranges = partition(x.len(), threads);
    if ranges.len() <= 1 {
        return crate::level1::dot(x, y);
    }
    thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let xs = &x[r.clone()];
                let ys = &y[r];
                s.spawn(move || crate::level1::dot(xs, ys))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dot worker"))
            .sum()
    })
}

/// Parallel `y ← α·A·x + β·y` (non-transposed), rows of `A` partitioned
/// across workers. `A` is `m × n` row-major.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn gemv<T: Real>(
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    x: &[T],
    beta: T,
    y: &mut [T],
    threads: usize,
) {
    assert_eq!(a.len(), m * n, "gemv: A must be m*n");
    assert_eq!(x.len(), n, "gemv: x length");
    assert_eq!(y.len(), m, "gemv: y length");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        crate::level2::gemv(Trans::No, m, n, alpha, a, x, beta, y);
        return;
    }
    thread::scope(|s| {
        // Split y into disjoint row blocks, one per worker.
        let mut rest: &mut [T] = y;
        let mut offset = 0usize;
        for r in ranges {
            let (block, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let rows = &a[r.start * n..r.end * n];
            let nrows = r.len();
            debug_assert_eq!(offset, r.start);
            offset = r.end;
            s.spawn(move || {
                crate::level2::gemv(Trans::No, nrows, n, alpha, rows, x, beta, block);
            });
        }
    });
}

/// Parallel `C ← α·op(A)·op(B) + β·C`, rows of `C` partitioned across
/// workers.
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Real>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "gemm: C must be m*n");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 || transa == Trans::Yes {
        // Transposed-A row blocks are not contiguous in A; fall back.
        gemm_serial(transa, transb, m, n, k, alpha, a, b, beta, c);
        return;
    }
    thread::scope(|s| {
        let mut rest: &mut [T] = c;
        for r in ranges {
            let (block, tail) = rest.split_at_mut(r.len() * n);
            rest = tail;
            let a_rows = &a[r.start * k..r.end * k];
            let nrows = r.len();
            s.spawn(move || {
                gemm_serial(
                    Trans::No,
                    transb,
                    nrows,
                    n,
                    k,
                    alpha,
                    a_rows,
                    b,
                    beta,
                    block,
                );
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.193).sin()).collect()
    }

    #[test]
    fn partition_covers_everything() {
        for n in [0usize, 1, 7, 100] {
            for p in [1usize, 3, 8, 200] {
                let rs = partition(n, p);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Contiguous and ordered.
                let mut pos = 0;
                for r in rs {
                    assert_eq!(r.start, pos);
                    assert!(!r.is_empty());
                    pos = r.end;
                }
            }
        }
    }

    #[test]
    fn parallel_dot_matches_serial() {
        let x = seq(10_001, 0.0);
        let y = seq(10_001, 3.0);
        let serial = crate::level1::dot(&x, &y);
        for t in [1, 2, 4, 16] {
            let par = dot(&x, &y, t);
            assert!((par - serial).abs() < 1e-9, "threads={t}");
        }
    }

    #[test]
    fn parallel_gemv_matches_serial() {
        let (m, n) = (57, 33);
        let a = seq(m * n, 1.0);
        let x = seq(n, 2.0);
        let mut y_ref = seq(m, 5.0);
        let mut y_par = y_ref.clone();
        crate::level2::gemv(Trans::No, m, n, 1.3, &a, &x, 0.7, &mut y_ref);
        gemv(m, n, 1.3, &a, &x, 0.7, &mut y_par, 4);
        for i in 0..m {
            assert!((y_ref[i] - y_par[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_gemm_matches_serial() {
        let (m, n, k) = (23, 17, 11);
        let a = seq(m * k, 1.0);
        let b = seq(k * n, 2.0);
        let mut c_ref = seq(m * n, 3.0);
        let mut c_par = c_ref.clone();
        gemm_serial(Trans::No, Trans::No, m, n, k, 0.9, &a, &b, 0.4, &mut c_ref);
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            0.9,
            &a,
            &b,
            0.4,
            &mut c_par,
            5,
        );
        for i in 0..m * n {
            assert!((c_ref[i] - c_par[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn transposed_a_falls_back_correctly() {
        let (m, n, k) = (6, 4, 5);
        let at = seq(k * m, 1.0);
        let b = seq(k * n, 2.0);
        let mut c_ref = vec![0.0f64; m * n];
        let mut c_par = vec![0.0f64; m * n];
        gemm_serial(
            Trans::Yes,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &at,
            &b,
            0.0,
            &mut c_ref,
        );
        gemm(
            Trans::Yes,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &at,
            &b,
            0.0,
            &mut c_par,
            4,
        );
        assert_eq!(c_ref, c_par);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let (m, n) = (3, 2);
        let a = seq(m * n, 0.0);
        let x = seq(n, 1.0);
        let mut y = vec![0.0f64; m];
        gemv(m, n, 1.0, &a, &x, 0.0, &mut y, 64);
        let mut y_ref = vec![0.0f64; m];
        crate::level2::gemv(Trans::No, m, n, 1.0, &a, &x, 0.0, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
