//! BLAS enumeration types (transpose, triangle, diagonal, side).

/// Whether a matrix operand is used transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

impl Trans {
    /// Flip the flag.
    pub fn toggled(self) -> Trans {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }
}

/// Which triangle of a matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// Upper triangle.
    Upper,
    /// Lower triangle.
    Lower,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Diag {
    /// Diagonal elements are taken as 1 and not referenced.
    Unit,
    /// Diagonal elements are read from the matrix.
    NonUnit,
}

/// Side of a matrix product for TRSM: solve `op(A)·X = αB` or `X·op(A) = αB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// A is on the left.
    Left,
    /// A is on the right.
    Right,
}

/// The modified-Givens transform flag of ROTM/ROTMG, mirroring the
/// netlib `param[0]` encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RotmFlag {
    /// `param[0] = -2`: identity, no transformation applied.
    Identity,
    /// `param[0] = -1`: full 2×2 matrix `[[h11, h12], [h21, h22]]`.
    Full,
    /// `param[0] = 0`: off-diagonal `[[1, h12], [h21, 1]]`.
    OffDiagonal,
    /// `param[0] = 1`: diagonal `[[h11, 1], [-1, h22]]`.
    Diagonal,
}

impl RotmFlag {
    /// The netlib `param[0]` value for this flag.
    pub fn param0(self) -> f64 {
        match self {
            RotmFlag::Identity => -2.0,
            RotmFlag::Full => -1.0,
            RotmFlag::OffDiagonal => 0.0,
            RotmFlag::Diagonal => 1.0,
        }
    }
}

/// The H matrix produced by ROTMG / consumed by ROTM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotmParam<T> {
    /// Which entries of H are explicit.
    pub flag: RotmFlag,
    /// H[0][0].
    pub h11: T,
    /// H[0][1].
    pub h12: T,
    /// H[1][0].
    pub h21: T,
    /// H[1][1].
    pub h22: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_toggles() {
        assert_eq!(Trans::No.toggled(), Trans::Yes);
        assert_eq!(Trans::Yes.toggled(), Trans::No);
    }

    #[test]
    fn rotm_param0_encoding() {
        assert_eq!(RotmFlag::Identity.param0(), -2.0);
        assert_eq!(RotmFlag::Full.param0(), -1.0);
        assert_eq!(RotmFlag::OffDiagonal.param0(), 0.0);
        assert_eq!(RotmFlag::Diagonal.param0(), 1.0);
    }
}
