//! Reference implementations of the BLAS Level-1 routines offered by
//! FBLAS: ROTG, ROTMG, ROT, ROTM, SWAP, SCAL, COPY, AXPY, DOT, SDSDOT,
//! NRM2, ASUM, IAMAX (paper Sec. VI).
//!
//! Semantics follow the netlib reference BLAS. Vectors are contiguous
//! slices (increment 1); FBLAS streams vectors contiguously, so
//! non-unit strides never arise in the reproduction.

use crate::real::Real;
use crate::types::{RotmFlag, RotmParam};

/// Output of [`rotg`]: the Givens rotation annihilating the second
/// component of `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Givens<T> {
    /// The rotated first component `r` (overwrites `a` in classic BLAS).
    pub r: T,
    /// The reconstruction scalar `z` (overwrites `b`).
    pub z: T,
    /// Cosine of the rotation.
    pub c: T,
    /// Sine of the rotation.
    pub s: T,
}

/// Construct a Givens plane rotation zeroing `b` (netlib `?rotg`).
pub fn rotg<T: Real>(a: T, b: T) -> Givens<T> {
    let roe = if a.abs() > b.abs() { a } else { b };
    let scale = a.abs() + b.abs();
    if scale == T::ZERO {
        return Givens {
            r: T::ZERO,
            z: T::ZERO,
            c: T::ONE,
            s: T::ZERO,
        };
    }
    let sa = a / scale;
    let sb = b / scale;
    let r = (scale * (sa * sa + sb * sb).sqrt()).copysign(roe);
    let c = a / r;
    let s = b / r;
    let z = if a.abs() > b.abs() {
        s
    } else if c != T::ZERO {
        T::ONE / c
    } else {
        T::ONE
    };
    Givens { r, z, c, s }
}

/// Output of [`rotmg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotmgResult<T> {
    /// Updated first diagonal scaling factor.
    pub d1: T,
    /// Updated second diagonal scaling factor.
    pub d2: T,
    /// Updated first component.
    pub x1: T,
    /// The modified-Givens transform.
    pub param: RotmParam<T>,
}

/// Construct a modified Givens transformation (netlib `?rotmg`): given the
/// scaled vector `(sqrt(d1)·x1, sqrt(d2)·y1)`, produce `H` and updated
/// scales such that applying `H` annihilates the second component.
pub fn rotmg<T: Real>(mut d1: T, mut d2: T, mut x1: T, y1: T) -> RotmgResult<T> {
    let gam = T::from_f64(4096.0);
    let gamsq = gam * gam;
    let rgamsq = T::ONE / gamsq;

    let (mut h11, mut h12, mut h21, mut h22);
    let mut flag;

    if d1 < T::ZERO {
        // The netlib "zero H, D and X1" error path.
        return RotmgResult {
            d1: T::ZERO,
            d2: T::ZERO,
            x1: T::ZERO,
            param: RotmParam {
                flag: RotmFlag::Full,
                h11: T::ZERO,
                h12: T::ZERO,
                h21: T::ZERO,
                h22: T::ZERO,
            },
        };
    }
    let p2 = d2 * y1;
    if p2 == T::ZERO {
        return RotmgResult {
            d1,
            d2,
            x1,
            param: RotmParam {
                flag: RotmFlag::Identity,
                h11: T::ZERO,
                h12: T::ZERO,
                h21: T::ZERO,
                h22: T::ZERO,
            },
        };
    }
    let p1 = d1 * x1;
    let q2 = p2 * y1;
    let q1 = p1 * x1;

    if q1.abs() > q2.abs() {
        h21 = -y1 / x1;
        h12 = p2 / p1;
        let u = T::ONE - h12 * h21;
        if u > T::ZERO {
            flag = RotmFlag::OffDiagonal;
            d1 /= u;
            d2 /= u;
            x1 *= u;
            h11 = T::ONE;
            h22 = T::ONE;
        } else {
            // Numerically impossible for |q1| > |q2| with exact
            // arithmetic; netlib zeroes everything defensively.
            return RotmgResult {
                d1: T::ZERO,
                d2: T::ZERO,
                x1: T::ZERO,
                param: RotmParam {
                    flag: RotmFlag::Full,
                    h11: T::ZERO,
                    h12: T::ZERO,
                    h21: T::ZERO,
                    h22: T::ZERO,
                },
            };
        }
    } else {
        if q2 < T::ZERO {
            return RotmgResult {
                d1: T::ZERO,
                d2: T::ZERO,
                x1: T::ZERO,
                param: RotmParam {
                    flag: RotmFlag::Full,
                    h11: T::ZERO,
                    h12: T::ZERO,
                    h21: T::ZERO,
                    h22: T::ZERO,
                },
            };
        }
        flag = RotmFlag::Diagonal;
        h11 = p1 / p2;
        h22 = x1 / y1;
        let u = T::ONE + h11 * h22;
        let tmp = d2 / u;
        d2 = d1 / u;
        d1 = tmp;
        x1 = y1 * u;
        h12 = T::ONE;
        h21 = -T::ONE;
    }

    // Rescaling of d1 (netlib scaling loops), keeping the factors within
    // [1/gam², gam²].
    while d1 != T::ZERO && (d1 <= rgamsq || d1 >= gamsq) {
        flag = RotmFlag::Full;
        if d1 <= rgamsq {
            d1 *= gamsq;
            x1 /= gam;
            h11 /= gam;
            h12 /= gam;
        } else {
            d1 /= gamsq;
            x1 *= gam;
            h11 *= gam;
            h12 *= gam;
        }
    }
    // Rescaling of d2.
    while d2 != T::ZERO && (d2.abs() <= rgamsq || d2.abs() >= gamsq) {
        flag = RotmFlag::Full;
        if d2.abs() <= rgamsq {
            d2 *= gamsq;
            h21 /= gam;
            h22 /= gam;
        } else {
            d2 /= gamsq;
            h21 *= gam;
            h22 *= gam;
        }
    }

    let param = match flag {
        RotmFlag::Full => RotmParam {
            flag,
            h11,
            h12,
            h21,
            h22,
        },
        RotmFlag::OffDiagonal => RotmParam {
            flag,
            h11: T::ZERO,
            h12,
            h21,
            h22: T::ZERO,
        },
        RotmFlag::Diagonal => RotmParam {
            flag,
            h11,
            h12: T::ZERO,
            h21: T::ZERO,
            h22,
        },
        RotmFlag::Identity => RotmParam {
            flag,
            h11: T::ZERO,
            h12: T::ZERO,
            h21: T::ZERO,
            h22: T::ZERO,
        },
    };
    RotmgResult { d1, d2, x1, param }
}

/// Apply a plane rotation to vector pair `(x, y)`:
/// `xᵢ ← c·xᵢ + s·yᵢ`, `yᵢ ← c·yᵢ − s·xᵢ`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn rot<T: Real>(x: &mut [T], y: &mut [T], c: T, s: T) {
    assert_eq!(x.len(), y.len(), "rot: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let t = c * *xi + s * *yi;
        *yi = c * *yi - s * *xi;
        *xi = t;
    }
}

/// Apply a modified Givens transformation `H` to `(x, y)` (netlib `?rotm`).
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn rotm<T: Real>(x: &mut [T], y: &mut [T], param: &RotmParam<T>) {
    assert_eq!(x.len(), y.len(), "rotm: length mismatch");
    let (h11, h12, h21, h22) = match param.flag {
        RotmFlag::Identity => return,
        RotmFlag::Full => (param.h11, param.h12, param.h21, param.h22),
        RotmFlag::OffDiagonal => (T::ONE, param.h12, param.h21, T::ONE),
        RotmFlag::Diagonal => (param.h11, T::ONE, -T::ONE, param.h22),
    };
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let w = *xi;
        let z = *yi;
        *xi = w * h11 + z * h12;
        *yi = w * h21 + z * h22;
    }
}

/// Exchange the contents of two vectors.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn swap<T: Real>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    x.swap_with_slice(y);
}

/// Scale a vector in place: `x ← α·x`.
pub fn scal<T: Real>(alpha: T, x: &mut [T]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Copy `x` into `y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn copy<T: Real>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// `y ← α·x + y`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(*xi, *yi);
    }
}

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn dot<T: Real>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// `sb + xᵀy` computed with double-precision accumulation (netlib
/// `sdsdot`; single precision only, as in BLAS).
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
pub fn sdsdot(sb: f32, x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "sdsdot: length mismatch");
    let acc: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum::<f64>()
        + sb as f64;
    acc as f32
}

/// Euclidean norm `‖x‖₂`, computed with the netlib scale/ssq recurrence to
/// avoid intermediate overflow/underflow.
pub fn nrm2<T: Real>(x: &[T]) -> T {
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for &xi in x {
        if xi != T::ZERO {
            let absxi = xi.abs();
            if scale < absxi {
                let r = scale / absxi;
                ssq = T::ONE + ssq * r * r;
                scale = absxi;
            } else {
                let r = absxi / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Sum of absolute values `Σ|xᵢ|`.
pub fn asum<T: Real>(x: &[T]) -> T {
    x.iter().map(|v| v.abs()).sum()
}

/// Index (0-based) of the first element with maximum absolute value;
/// `None` for an empty vector.
///
/// Classic BLAS returns a 1-based index and 0 for `n = 0`; the FBLAS host
/// layer converts. `None` makes the empty case unambiguous in Rust.
pub fn iamax<T: Real>(x: &[T]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_abs = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > best_abs {
            best = i;
            best_abs = a;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn rotg_annihilates_b() {
        let g = rotg(3.0f64, 4.0);
        // r = ±5, and applying the rotation to (a, b) zeroes b.
        assert!(close(g.r.abs(), 5.0, 1e-12));
        let b_rot = -g.s * 3.0 + g.c * 4.0;
        assert!(b_rot.abs() < 1e-12);
        assert!(close(g.c * g.c + g.s * g.s, 1.0, 1e-12));
    }

    #[test]
    fn rotg_zero_input() {
        let g = rotg(0.0f32, 0.0);
        assert_eq!(g.c, 1.0);
        assert_eq!(g.s, 0.0);
        assert_eq!(g.r, 0.0);
    }

    #[test]
    fn rotg_sign_convention() {
        // roe follows the larger-magnitude input.
        let g = rotg(-6.0f64, 2.0);
        assert!(g.r < 0.0);
        let g = rotg(2.0f64, -6.0);
        assert!(g.r < 0.0);
    }

    #[test]
    fn rot_is_orthogonal() {
        let mut x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![4.0f64, 5.0, 6.0];
        let n_before = dot(&x, &x) + dot(&y, &y);
        let theta = 0.7f64;
        rot(&mut x, &mut y, theta.cos(), theta.sin());
        let n_after = dot(&x, &x) + dot(&y, &y);
        assert!(close(n_before, n_after, 1e-12));
    }

    #[test]
    fn rotmg_annihilates_second_component() {
        for &(d1, d2, x1, y1) in &[
            (2.0f64, 3.0, 1.5, 0.5),
            (1.0, 1.0, 1.0, 2.0),
            (0.5, 4.0, -1.0, 0.25),
            (3.0, 0.1, 0.2, 5.0),
        ] {
            let r = rotmg(d1, d2, x1, y1);
            let mut xv = [x1];
            let mut yv = [y1];
            rotm(&mut xv, &mut yv, &r.param);
            // The second component of H·(x1, y1) must vanish.
            assert!(
                yv[0].abs() < 1e-10,
                "rotmg({d1},{d2},{x1},{y1}): residual {}",
                yv[0]
            );
            assert!(close(xv[0], r.x1, 1e-10), "x1 update mismatch");
        }
    }

    #[test]
    fn rotmg_preserves_weighted_norm() {
        // d1·x1² + d2·y1² is invariant under the modified rotation.
        let (d1, d2, x1, y1) = (2.0f64, 3.0, 1.5, 0.5);
        let before = d1 * x1 * x1 + d2 * y1 * y1;
        let r = rotmg(d1, d2, x1, y1);
        let after = r.d1 * r.x1 * r.x1; // y' = 0
        assert!(close(before, after, 1e-10));
    }

    #[test]
    fn rotmg_negative_d1_zeroes_everything() {
        let r = rotmg(-1.0f64, 1.0, 1.0, 1.0);
        assert_eq!(r.d1, 0.0);
        assert_eq!(r.d2, 0.0);
        assert_eq!(r.x1, 0.0);
    }

    #[test]
    fn rotmg_zero_p2_is_identity() {
        let r = rotmg(1.0f64, 1.0, 2.0, 0.0);
        assert_eq!(r.param.flag, RotmFlag::Identity);
        assert_eq!(r.x1, 2.0);
    }

    #[test]
    fn rotmg_rescaling_kicks_in_for_tiny_d1() {
        let r = rotmg(1.0e-10f64, 1.0, 1.0, 0.5);
        assert_eq!(r.param.flag, RotmFlag::Full);
        let mut xv = [1.0];
        let mut yv = [0.5];
        rotm(&mut xv, &mut yv, &r.param);
        assert!(yv[0].abs() < 1e-9);
    }

    #[test]
    fn rotm_identity_flag_is_noop() {
        let mut x = vec![1.0f32, 2.0];
        let mut y = vec![3.0f32, 4.0];
        let p = RotmParam {
            flag: RotmFlag::Identity,
            h11: 9.0,
            h12: 9.0,
            h21: 9.0,
            h22: 9.0,
        };
        rotm(&mut x, &mut y, &p);
        assert_eq!(x, vec![1.0, 2.0]);
        assert_eq!(y, vec![3.0, 4.0]);
    }

    #[test]
    fn swap_copy_scal() {
        let mut x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![4.0f64, 5.0, 6.0];
        swap(&mut x, &mut y);
        assert_eq!(x, vec![4.0, 5.0, 6.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
        let mut z = vec![0.0f64; 3];
        copy(&x, &mut z);
        assert_eq!(z, x);
        scal(2.0, &mut z);
        assert_eq!(z, vec![8.0, 10.0, 12.0]);
        scal(0.0, &mut z);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![10.0f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        assert_eq!(dot(&x, &x), 14.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn sdsdot_uses_double_accumulation() {
        // Large cancellation that f32 accumulation would lose.
        let x = vec![1.0e7f32, 1.0, -1.0e7];
        let y = vec![1.0f32, 1.0, 1.0];
        let r = sdsdot(0.5, &x, &y);
        assert_eq!(r, 1.5);
    }

    #[test]
    fn nrm2_basic_and_overflow_safe() {
        assert!(close(nrm2(&[3.0f64, 4.0]).to_f64(), 5.0, 1e-12));
        assert_eq!(nrm2::<f64>(&[]), 0.0);
        // Values whose squares overflow f32: the scaled recurrence must
        // still produce a finite, correct result.
        let big = 1.0e30f32;
        let n = nrm2(&[big, big]);
        assert!(n.is_finite());
        assert!(close(n as f64, (2.0f64).sqrt() * 1.0e30, 1e-6));
    }

    #[test]
    fn asum_and_iamax() {
        let x = vec![-1.0f64, 3.0, -2.0];
        assert_eq!(asum(&x), 6.0);
        assert_eq!(iamax(&x), Some(1));
        assert_eq!(iamax::<f64>(&[]), None);
        // First occurrence on ties.
        assert_eq!(iamax(&[2.0f64, -2.0, 2.0]), Some(0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0f64], &[1.0, 2.0]);
    }
}
