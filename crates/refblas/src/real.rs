//! Minimal real-number abstraction over `f32`/`f64`.
//!
//! The standard library has no common trait for float arithmetic and
//! external numeric-trait crates are out of scope, so this small trait
//! carries exactly what the BLAS routines need.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar (`f32` or `f64`).
pub trait Real:
    Copy
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The constant 2.
    const TWO: Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (used where the simulated DSP
    /// initiates a multiply and an add in one cycle).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Conversion from `f64` (for constants and test tolerances).
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Machine epsilon.
    fn epsilon() -> Self;
    /// Copysign: magnitude of `self`, sign of `sign`.
    fn copysign(self, sign: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline]
            fn copysign(self, sign: Self) -> Self {
                <$t>::copysign(self, sign)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_ops<T: Real>() -> T {
        let a = T::from_f64(3.0);
        let b = T::from_f64(-4.0);
        (a * a + b * b).sqrt()
    }

    #[test]
    fn works_for_both_precisions() {
        assert!((generic_ops::<f32>() - 5.0).abs() < 1e-6);
        assert!((generic_ops::<f64>() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constants_and_helpers() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f64::TWO, 2.0);
        assert_eq!((-3.5f64).abs(), 3.5);
        assert_eq!(2.0f32.mul_add(3.0, 4.0), 10.0);
        assert_eq!(5.0f64.copysign(-1.0), -5.0);
        assert!(f32::epsilon() > 0.0);
        assert_eq!(Real::to_f64(1.5f32), 1.5);
    }
}
