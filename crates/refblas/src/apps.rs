//! Reference implementations of the composed applications used in the
//! paper's streaming-composition evaluation (Sec. V, Fig. 11, Table VI).
//!
//! These are the "updated set of BLAS subprograms" of Blackford et al.
//! that FBLAS implements by chaining streaming modules; here they are
//! computed directly on the CPU, serving as oracle and comparator.

use crate::level1::{axpy, copy, dot};
use crate::level2::{gemv, ger};
use crate::real::Real;
use crate::types::Trans;

/// AXPYDOT: `z = w − α·v`, `β = zᵀu`. Returns `(z, β)`.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn axpydot<T: Real>(w: &[T], v: &[T], u: &[T], alpha: T) -> (Vec<T>, T) {
    assert_eq!(w.len(), v.len(), "axpydot: w/v length");
    assert_eq!(w.len(), u.len(), "axpydot: w/u length");
    let mut z = vec![T::ZERO; w.len()];
    copy(w, &mut z);
    axpy(-alpha, v, &mut z);
    let beta = dot(&z, u);
    (z, beta)
}

/// BICG: `q = A·p`, `s = Aᵀ·r` with `A` of shape `n × m` row-major,
/// `p` of length `m`, `r` of length `n`. Returns `(q, s)` of lengths
/// `n` and `m`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn bicg<T: Real>(n: usize, m: usize, a: &[T], p: &[T], r: &[T]) -> (Vec<T>, Vec<T>) {
    assert_eq!(a.len(), n * m, "bicg: A must be n*m");
    assert_eq!(p.len(), m, "bicg: p length");
    assert_eq!(r.len(), n, "bicg: r length");
    let mut q = vec![T::ZERO; n];
    gemv(Trans::No, n, m, T::ONE, a, p, T::ZERO, &mut q);
    let mut s = vec![T::ZERO; m];
    gemv(Trans::Yes, n, m, T::ONE, a, r, T::ZERO, &mut s);
    (q, s)
}

/// ATAX: `y = Aᵀ·(A·x)` with `A` of shape `m × n` row-major, `x` of
/// length `n`. Returns `y` of length `n`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn atax<T: Real>(m: usize, n: usize, a: &[T], x: &[T]) -> Vec<T> {
    assert_eq!(a.len(), m * n, "atax: A must be m*n");
    assert_eq!(x.len(), n, "atax: x length");
    let mut t = vec![T::ZERO; m];
    gemv(Trans::No, m, n, T::ONE, a, x, T::ZERO, &mut t);
    let mut y = vec![T::ZERO; n];
    gemv(Trans::Yes, m, n, T::ONE, a, &t, T::ZERO, &mut y);
    y
}

/// Result of [`gemver`].
#[derive(Debug, Clone, PartialEq)]
pub struct GemverResult<T> {
    /// `B = A + u1·v1ᵀ + u2·v2ᵀ`.
    pub b: Vec<T>,
    /// `x = β·Bᵀ·y + z`.
    pub x: Vec<T>,
    /// `w = α·B·x`.
    pub w: Vec<T>,
}

/// GEMVER (paper Sec. V-C): `B = A + u1·v1ᵀ + u2·v2ᵀ`,
/// `x = β·Bᵀ·y + z`, `w = α·B·x`, all square of order `n`.
///
/// # Panics
/// Panics on dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn gemver<T: Real>(
    n: usize,
    alpha: T,
    beta: T,
    a: &[T],
    u1: &[T],
    v1: &[T],
    u2: &[T],
    v2: &[T],
    y: &[T],
    z: &[T],
) -> GemverResult<T> {
    assert_eq!(a.len(), n * n, "gemver: A must be n*n");
    for (name, v) in [
        ("u1", u1),
        ("v1", v1),
        ("u2", u2),
        ("v2", v2),
        ("y", y),
        ("z", z),
    ] {
        assert_eq!(v.len(), n, "gemver: {name} length");
    }
    let mut b = a.to_vec();
    ger(n, n, T::ONE, u1, v1, &mut b);
    ger(n, n, T::ONE, u2, v2, &mut b);

    let mut x = z.to_vec();
    gemv(Trans::Yes, n, n, beta, &b, y, T::ONE, &mut x);

    let mut w = vec![T::ZERO; n];
    gemv(Trans::No, n, n, alpha, &b, &x, T::ZERO, &mut w);

    GemverResult { b, x, w }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 + seed) * 0.313).sin()).collect()
    }

    #[test]
    fn axpydot_small_known() {
        let w = vec![5.0f64, 6.0];
        let v = vec![1.0f64, 2.0];
        let u = vec![1.0f64, 1.0];
        let (z, beta) = axpydot(&w, &v, &u, 2.0);
        assert_eq!(z, vec![3.0, 2.0]);
        assert_eq!(beta, 5.0);
    }

    #[test]
    fn bicg_matches_direct_gemvs() {
        let (n, m) = (5, 7);
        let a = seq(n * m, 0.0);
        let p = seq(m, 1.0);
        let r = seq(n, 2.0);
        let (q, s) = bicg(n, m, &a, &p, &r);
        for i in 0..n {
            let direct: f64 = (0..m).map(|j| a[i * m + j] * p[j]).sum();
            assert!((q[i] - direct).abs() < 1e-12);
        }
        for j in 0..m {
            let direct: f64 = (0..n).map(|i| a[i * m + j] * r[i]).sum();
            assert!((s[j] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn atax_is_gram_matrix_action() {
        let (m, n) = (6, 4);
        let a = seq(m * n, 3.0);
        let x = seq(n, 4.0);
        let y = atax(m, n, &a, &x);
        // Direct AᵀA x.
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..m {
                let mut ax = 0.0;
                for l in 0..n {
                    ax += a[i * n + l] * x[l];
                }
                acc += a[i * n + j] * ax;
            }
            assert!((y[j] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn gemver_components_consistent() {
        let n = 5;
        let a = seq(n * n, 0.0);
        let u1 = seq(n, 1.0);
        let v1 = seq(n, 2.0);
        let u2 = seq(n, 3.0);
        let v2 = seq(n, 4.0);
        let y = seq(n, 5.0);
        let z = seq(n, 6.0);
        let (alpha, beta) = (1.3, 0.7);
        let r = gemver(n, alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z);
        // B spot check.
        for i in 0..n {
            for j in 0..n {
                let exp = a[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j];
                assert!((r.b[i * n + j] - exp).abs() < 1e-12);
            }
        }
        // x = β Bᵀ y + z.
        for j in 0..n {
            let mut acc = z[j];
            for i in 0..n {
                acc += beta * r.b[i * n + j] * y[i];
            }
            assert!((r.x[j] - acc).abs() < 1e-12);
        }
        // w = α B x.
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += alpha * r.b[i * n + j] * r.x[j];
            }
            assert!((r.w[i] - acc).abs() < 1e-12);
        }
    }
}
