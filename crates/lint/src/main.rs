//! `fblas-lint` command-line interface.
//!
//! ```text
//! fblas-lint [--format table|json] [--validate] [--deny-warnings]
//!            [--fusion-plan OUT.json] PATH...
//! ```
//!
//! Each `PATH` is a JSON document (codegen spec, program, or graph) or
//! a directory searched recursively for `*.json`. Files named
//! `*.rejected.json` are *negative fixtures*: the linter must find at
//! least one error in them, and the process fails if it does not —
//! which keeps the rejected examples in the repo honest.
//!
//! `--deny-warnings` promotes warnings to failures: a clean file must
//! be warning-free (negative fixtures are unaffected — they are judged
//! on errors). `--fusion-plan OUT.json` writes the serializable fusion
//! plans (schema `fblas-fusion-plan-v1`) the dataflow analysis derived,
//! as a JSON array in analysis order.
//!
//! Exit codes: `0` all files matched expectations, `1` lint errors (or
//! a clean bill on a `.rejected.json`), `2` usage/IO error.
//!
//! With `FBLAS_BENCH_DIR` set, a `BENCH_lint.json` artifact summarizing
//! per-file diagnostic counts and fusion-pass statistics is written for
//! the bench-diff gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fblas_bench::metrics::{BenchReport, Cell};
use fblas_lint::{lint_json_full, FusionPlan, LintReport};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Table,
    Json,
}

struct Options {
    format: Format,
    validate: bool,
    deny_warnings: bool,
    fusion_plan: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fblas-lint [--format table|json] [--validate] [--deny-warnings]\n\
     \u{20}                 [--fusion-plan OUT.json] PATH...\n\
     \n\
     Statically analyzes fBLAS composition documents (codegen specs,\n\
     programs, module graphs) for deadlocks, contract violations,\n\
     resource overcommit, numeric hazards, dead and pass-through\n\
     modules, over-provisioned channel depths, and fusion legality.\n\
     \n\
     Files named *.rejected.json must produce at least one error.\n\
     --deny-warnings additionally fails any clean file that produced\n\
     warnings. --fusion-plan writes the fblas-fusion-plan-v1 artifacts\n\
     derived for every analyzable graph/component. --validate\n\
     round-trips every JSON report and every fusion plan through the\n\
     serializer and fails on any mismatch."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut format = Format::Table;
    let mut validate = false;
    let mut deny_warnings = false;
    let mut fusion_plan = None;
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("table") => format = Format::Table,
                    Some("json") => format = Format::Json,
                    other => return Err(format!("--format expects table|json, got {other:?}")),
                }
            }
            "--validate" => validate = true,
            "--deny-warnings" => deny_warnings = true,
            "--fusion-plan" => {
                i += 1;
                match args.get(i) {
                    Some(p) => fusion_plan = Some(PathBuf::from(p)),
                    None => return Err("--fusion-plan expects an output path".to_string()),
                }
            }
            "--help" | "-h" => return Err(usage().to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }
    if paths.is_empty() {
        return Err(usage().to_string());
    }
    Ok(Options {
        format,
        validate,
        deny_warnings,
        fusion_plan,
        paths,
    })
}

/// Recursively collect `*.json` files under `path` (sorted for
/// deterministic output), or the file itself.
fn collect_inputs(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            if e.is_dir() || e.extension().is_some_and(|x| x == "json") {
                collect_inputs(&e, out)?;
            }
        }
        Ok(())
    } else if path.is_file() {
        out.push(path.to_path_buf());
        Ok(())
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

/// `true` when the report matched the file's expectation.
fn expectation_met(file: &Path, report: &LintReport, deny_warnings: bool) -> bool {
    let rejected_fixture = file
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".rejected.json"));
    if rejected_fixture {
        report.errors() > 0
    } else {
        report.accepted() && (!deny_warnings || report.warnings() == 0)
    }
}

/// Round-trip the report through its JSON representation.
fn validate_round_trip(report: &LintReport) -> Result<(), String> {
    let json = report.to_json();
    let back = LintReport::from_json(&json)?;
    if &back != report {
        return Err("report changed across a JSON round-trip".to_string());
    }
    Ok(())
}

/// Round-trip a fusion plan and check byte stability: parse(json) must
/// equal the plan, and re-serializing the parse must reproduce the
/// bytes.
fn validate_plan_round_trip(plan: &FusionPlan) -> Result<(), String> {
    let json = plan.to_json();
    let back = FusionPlan::from_json(&json)?;
    if &back != plan {
        return Err("fusion plan changed across a JSON round-trip".to_string());
    }
    if back.to_json() != json {
        return Err("fusion plan serialization is not byte-stable".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for p in &opts.paths {
        if let Err(e) = collect_inputs(p, &mut files) {
            eprintln!("fblas-lint: {e}");
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("fblas-lint: no .json inputs found");
        return ExitCode::from(2);
    }

    let mut all_ok = true;
    let mut bench = BenchReport::new("lint");
    bench.meta("files", files.len() as u64);
    let mut json_reports = Vec::new();
    let mut all_plans: Vec<FusionPlan> = Vec::new();
    let (mut chains_total, mut fused_total) = (0u64, 0u64);
    let mut rejected_by_reason: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();

    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fblas-lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let display = file.display().to_string();
        let out = lint_json_full(&text, &display);
        let report = &out.report;

        if opts.validate {
            if let Err(e) = validate_round_trip(report) {
                eprintln!("fblas-lint: {display}: validation failed: {e}");
                all_ok = false;
            }
            for plan in &out.fusion {
                if let Err(e) = validate_plan_round_trip(plan) {
                    eprintln!(
                        "fblas-lint: {display}: fusion plan `{}`: validation failed: {e}",
                        plan.file
                    );
                    all_ok = false;
                }
            }
        }

        let met = expectation_met(file, report, opts.deny_warnings);
        if !met {
            all_ok = false;
        }

        let (mut chains, mut fused, mut rejected) = (0u64, 0u64, 0u64);
        for plan in &out.fusion {
            chains += plan.stats.chains_found;
            fused += plan.stats.fused;
            for (reason, n) in &plan.stats.rejected {
                rejected += n;
                *rejected_by_reason.entry(reason.clone()).or_insert(0) += n;
            }
        }
        chains_total += chains;
        fused_total += fused;

        match opts.format {
            Format::Table => {
                let verdict = if met { "ok" } else { "FAIL" };
                println!("== {display} [{verdict}]");
                println!("{}", report.render_table());
            }
            Format::Json => json_reports.push((display.clone(), report.clone())),
        }

        bench.add_row([
            ("file", Cell::S(display)),
            ("errors", Cell::U(report.errors() as u64)),
            ("warnings", Cell::U(report.warnings() as u64)),
            ("notes", Cell::U(report.notes() as u64)),
            ("expectation_met", Cell::U(met as u64)),
            ("fusion_chains", Cell::U(chains)),
            ("fusion_fused", Cell::U(fused)),
            ("fusion_rejected", Cell::U(rejected)),
        ]);
        all_plans.extend(out.fusion);
    }

    if opts.format == Format::Json {
        // One top-level array of {file, report} objects.
        let mut out = String::from("[\n");
        for (i, (file, report)) in json_reports.iter().enumerate() {
            let comma = if i + 1 < json_reports.len() { "," } else { "" };
            out.push_str(&format!(
                "{{\"file\": {:?}, \"report\": {}}}{comma}\n",
                file,
                report.to_json()
            ));
        }
        out.push(']');
        println!("{out}");
    }

    if let Some(path) = &opts.fusion_plan {
        let mut body = String::from("[\n");
        for (i, plan) in all_plans.iter().enumerate() {
            body.push_str(&plan.to_json());
            if i + 1 < all_plans.len() {
                body.push(',');
            }
            body.push('\n');
        }
        body.push_str("]\n");
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("fblas-lint: {}: {e}", path.display());
            all_ok = false;
        }
    }

    if std::env::var("FBLAS_BENCH_DIR").is_ok() {
        bench.meta("fusion_chains", chains_total);
        bench.meta("fusion_fused", fused_total);
        for (reason, n) in &rejected_by_reason {
            bench.meta(format!("fusion_rejected_{reason}"), *n);
        }
        if let Err(e) = bench.write() {
            eprintln!("fblas-lint: failed to write bench artifact: {e}");
            all_ok = false;
        }
    }

    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
