//! Diagnostics: stable codes, severities, locations, and renderers.
//!
//! Every finding the analyzer emits is a [`Diagnostic`] with a stable
//! [`LintCode`] (the `FL....` namespace, mirroring rustc's `E....`), a
//! severity, a span-like [`Location`] naming the module/edge/operand it
//! anchors to, a human message, and — where the analysis can compute
//! one — a fix-it hint. Reports render as a human table or as JSON that
//! round-trips through serde (validated in CI).

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Stable diagnostic codes. Codes are append-only: a released code never
/// changes meaning, so downstream tooling can gate on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LintCode {
    /// Element-count contract violation on a stream (produced ≠ consumed,
    /// or a mid-stream disconnect).
    FL0001,
    /// Tile-order incompatibility between consumers of a shared stream.
    FL0002,
    /// Replay demanded from a computational producer (only interface
    /// modules can replay a stream, paper Sec. III-B).
    FL0003,
    /// Channel depth too small: the composition deadlocks at the
    /// instantiated FIFO depth but a finite deeper FIFO fixes it.
    FL0004,
    /// Cyclic composition (self-loop or dependency cycle).
    FL0005,
    /// Reference to an undeclared operand.
    FL0006,
    /// Operand shape mismatch.
    FL0007,
    /// Static-single-assignment violation: an operand written twice.
    FL0008,
    /// Unknown BLAS routine in a codegen spec.
    FL0009,
    /// Invalid routine or planner parameters.
    FL0010,
    /// DSP overcommit: the design does not fit the device's DSP budget.
    FL0011,
    /// M20K overcommit: on-chip buffers (including deep FIFOs) exceed
    /// the device's block-RAM budget.
    FL0012,
    /// Memory-bandwidth overcommit: concurrent interface streams demand
    /// more than the device's aggregate DRAM bandwidth.
    FL0013,
    /// W-way accumulation reassociates floating-point reduction order.
    FL0014,
    /// Mixed-precision accumulation hazard.
    FL0015,
    /// Derived minimum channel depth (informational: the exact depth at
    /// which the deadlock disappears).
    FL0016,
    /// Unschedulable: no finite channel depth removes the deadlock, or
    /// the analysis could not reach a verdict.
    FL0017,
    /// Retry-unsound in-place update: recovery retries are enabled but
    /// an op writes an operand it also reads, so replaying the
    /// component would consume the partially updated value instead of
    /// the original input.
    FL0018,
    /// Fusable module chain: a maximal run of stateless 1:1-rate relays
    /// that may legally collapse into a single loop (see the
    /// `FusionPlan` artifact for the proof obligations).
    FL0019,
    /// Fusion blocked: a relay chain cannot be fused; the diagnostic
    /// names the witness (the blocking edge or module).
    FL0020,
    /// Channel depth slack: the instantiated FIFO depth is provably
    /// deeper than the exact minimum under the chosen chunk size.
    FL0021,
    /// Channel depth tight: the instantiated FIFO depth equals the
    /// exact minimum — shrinking it by one deadlocks the composition.
    FL0022,
    /// Pass-through scal: `scal` by 1.0 is the identity; the module
    /// forwards its input unchanged.
    FL0023,
    /// Pass-through copy: a `copy` whose output feeds exactly one
    /// consumer can be spliced out of the pipeline.
    FL0024,
    /// Fusion stops at a W-way reassociating reduction: fusing across
    /// it would change the floating-point reduction order, so the fused
    /// result would not stay bit-identical.
    FL0025,
    /// Dead module: a compute module whose results never reach an
    /// interface write — the values are computed and discarded.
    FL0026,
}

impl LintCode {
    /// The stable code string (`"FL0001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::FL0001 => "FL0001",
            LintCode::FL0002 => "FL0002",
            LintCode::FL0003 => "FL0003",
            LintCode::FL0004 => "FL0004",
            LintCode::FL0005 => "FL0005",
            LintCode::FL0006 => "FL0006",
            LintCode::FL0007 => "FL0007",
            LintCode::FL0008 => "FL0008",
            LintCode::FL0009 => "FL0009",
            LintCode::FL0010 => "FL0010",
            LintCode::FL0011 => "FL0011",
            LintCode::FL0012 => "FL0012",
            LintCode::FL0013 => "FL0013",
            LintCode::FL0014 => "FL0014",
            LintCode::FL0015 => "FL0015",
            LintCode::FL0016 => "FL0016",
            LintCode::FL0017 => "FL0017",
            LintCode::FL0018 => "FL0018",
            LintCode::FL0019 => "FL0019",
            LintCode::FL0020 => "FL0020",
            LintCode::FL0021 => "FL0021",
            LintCode::FL0022 => "FL0022",
            LintCode::FL0023 => "FL0023",
            LintCode::FL0024 => "FL0024",
            LintCode::FL0025 => "FL0025",
            LintCode::FL0026 => "FL0026",
        }
    }

    /// Short lint name, for the code table in the docs.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::FL0001 => "stream-count-mismatch",
            LintCode::FL0002 => "tile-order-conflict",
            LintCode::FL0003 => "replay-from-compute",
            LintCode::FL0004 => "channel-under-depth",
            LintCode::FL0005 => "cyclic-composition",
            LintCode::FL0006 => "unknown-operand",
            LintCode::FL0007 => "shape-mismatch",
            LintCode::FL0008 => "multiple-writers",
            LintCode::FL0009 => "unknown-routine",
            LintCode::FL0010 => "invalid-parameters",
            LintCode::FL0011 => "dsp-overcommit",
            LintCode::FL0012 => "m20k-overcommit",
            LintCode::FL0013 => "bandwidth-overcommit",
            LintCode::FL0014 => "reassociated-reduction",
            LintCode::FL0015 => "mixed-precision",
            LintCode::FL0016 => "derived-min-depth",
            LintCode::FL0017 => "unschedulable",
            LintCode::FL0018 => "retry-unsound-inplace",
            LintCode::FL0019 => "fusable-chain",
            LintCode::FL0020 => "fusion-blocked",
            LintCode::FL0021 => "channel-depth-slack",
            LintCode::FL0022 => "channel-depth-tight",
            LintCode::FL0023 => "pass-through-scal",
            LintCode::FL0024 => "pass-through-copy",
            LintCode::FL0025 => "fusion-reassociation",
            LintCode::FL0026 => "dead-module",
        }
    }

    /// Every code the analyzer can emit, in numeric order. The fixture
    /// coverage test walks this registry: a code that no committed
    /// fixture triggers is a code whose behavior nothing pins down.
    pub const ALL: &'static [LintCode] = &[
        LintCode::FL0001,
        LintCode::FL0002,
        LintCode::FL0003,
        LintCode::FL0004,
        LintCode::FL0005,
        LintCode::FL0006,
        LintCode::FL0007,
        LintCode::FL0008,
        LintCode::FL0009,
        LintCode::FL0010,
        LintCode::FL0011,
        LintCode::FL0012,
        LintCode::FL0013,
        LintCode::FL0014,
        LintCode::FL0015,
        LintCode::FL0016,
        LintCode::FL0017,
        LintCode::FL0018,
        LintCode::FL0019,
        LintCode::FL0020,
        LintCode::FL0021,
        LintCode::FL0022,
        LintCode::FL0023,
        LintCode::FL0024,
        LintCode::FL0025,
        LintCode::FL0026,
    ];
}

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: a derived fact worth surfacing.
    Note,
    /// Suspicious but not plan-blocking.
    Warning,
    /// The composition cannot run as written.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Span-like anchor for a diagnostic: the document it came from and the
/// graph object (module, channel, operand, op) it points at. All fields
/// optional — a rate-analysis finding names a channel, a spec finding a
/// routine, a program finding an operand.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Location {
    /// Source file the document was read from.
    #[serde(default)]
    pub file: Option<String>,
    /// Module (MDAG node / simulator module) name.
    #[serde(default)]
    pub module: Option<String>,
    /// Channel (MDAG edge) name, `producer->consumer`.
    #[serde(default)]
    pub channel: Option<String>,
    /// Operand or routine name.
    #[serde(default)]
    pub operand: Option<String>,
    /// Index of the offending op in the program.
    #[serde(default)]
    pub op_index: Option<usize>,
}

impl Location {
    /// Location naming only a channel.
    pub fn channel(name: impl Into<String>) -> Self {
        Location {
            channel: Some(name.into()),
            ..Default::default()
        }
    }

    /// Location naming only an operand/routine.
    pub fn operand(name: impl Into<String>) -> Self {
        Location {
            operand: Some(name.into()),
            ..Default::default()
        }
    }

    /// Location naming only a module.
    pub fn module(name: impl Into<String>) -> Self {
        Location {
            module: Some(name.into()),
            ..Default::default()
        }
    }

    fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(m) = &self.module {
            parts.push(format!("module `{m}`"));
        }
        if let Some(c) = &self.channel {
            parts.push(format!("channel `{c}`"));
        }
        if let Some(o) = &self.operand {
            parts.push(format!("`{o}`"));
        }
        if let Some(i) = self.op_index {
            parts.push(format!("op #{i}"));
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity.
    pub severity: Severity,
    /// Where in the composition it anchors.
    #[serde(default)]
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
    /// Machine-actionable suggestion, when the analysis derived one.
    #[serde(default)]
    pub fixit: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        code: LintCode,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
            fixit: None,
        }
    }

    /// Attach a fix-it hint.
    pub fn with_fixit(mut self, fixit: impl Into<String>) -> Self {
        self.fixit = Some(fixit.into());
        self
    }
}

/// Report schema version; bumped when the JSON layout changes.
pub const REPORT_VERSION: u64 = 1;

/// A full lint report over one or more documents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Producing tool, always `"fblas-lint"`.
    pub tool: String,
    /// Schema version of this report.
    pub version: u64,
    /// Findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Default for LintReport {
    fn default() -> Self {
        LintReport::new()
    }
}

impl LintReport {
    /// Empty report.
    pub fn new() -> Self {
        LintReport {
            tool: "fblas-lint".into(),
            version: REPORT_VERSION,
            diagnostics: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every finding of another report.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Whether the composition is accepted (no errors).
    pub fn accepted(&self) -> bool {
        self.errors() == 0
    }

    /// Serialize to the machine-readable JSON form.
    // Invariant: the report is plain data (strings, enums, counters) —
    // serde_json cannot fail on it.
    #[allow(clippy::disallowed_methods)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Serialize to a JSON value.
    // Invariant: same as `to_json`.
    #[allow(clippy::disallowed_methods)]
    pub fn to_value(&self) -> Value {
        serde_json::to_value(self).expect("report serialization cannot fail")
    }

    /// Parse a report back from its JSON text (the round-trip CI checks).
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Render the rustc-style human table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(s, "{}[{}]: {}", d.severity, d.code.as_str(), d.message);
            let _ = writeln!(s, "  --> {}", d.location.render());
            if let Some(fixit) = &d.fixit {
                let _ = writeln!(s, "  help: {fixit}");
            }
        }
        let _ = writeln!(
            s,
            "{} error(s), {} warning(s), {} note(s)",
            self.errors(),
            self.warnings(),
            self.notes()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(
                LintCode::FL0004,
                Severity::Error,
                Location::channel("read_A->gemv_t#1"),
                "composition deadlocks at depth 64",
            )
            .with_fixit("increase the channel depth to 4096"),
        );
        r.push(Diagnostic::new(
            LintCode::FL0016,
            Severity::Note,
            Location::channel("read_A->gemv_t#1"),
            "exact minimum depth: 4096",
        ));
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let back = LintReport::from_json(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn table_renders_code_location_and_fixit() {
        let t = sample().render_table();
        assert!(t.contains("error[FL0004]"));
        assert!(t.contains("read_A->gemv_t#1"));
        assert!(t.contains("help: increase the channel depth to 4096"));
        assert!(t.contains("1 error(s), 0 warning(s), 1 note(s)"));
    }

    #[test]
    fn counters_and_acceptance() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.notes(), 1);
        assert!(!r.accepted());
        assert!(LintReport::new().accepted());
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(LintCode::FL0001.as_str(), "FL0001");
        assert_eq!(LintCode::FL0017.as_str(), "FL0017");
        assert_eq!(LintCode::FL0018.as_str(), "FL0018");
        assert_eq!(LintCode::FL0018.name(), "retry-unsound-inplace");
        assert_eq!(LintCode::FL0004.name(), "channel-under-depth");
        assert_eq!(LintCode::FL0019.as_str(), "FL0019");
        assert_eq!(LintCode::FL0026.as_str(), "FL0026");
        assert_eq!(LintCode::FL0021.name(), "channel-depth-slack");
        assert_eq!(LintCode::FL0025.name(), "fusion-reassociation");
    }

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(LintCode::ALL.len(), 26);
        for (i, code) in LintCode::ALL.iter().enumerate() {
            assert_eq!(code.as_str(), format!("FL{:04}", i + 1));
        }
    }
}
