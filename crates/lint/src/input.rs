//! Lintable document formats.
//!
//! The CLI consumes three JSON dialects, classified by their top-level
//! key:
//!
//! * `{"routines": [...]}` — a codegen routines specification
//!   ([`fblas_core::codegen::SpecFile`]);
//! * `{"program": {...}}` — a linear-algebra program over named
//!   operands, plus an optional planner/device configuration;
//! * `{"graph": {...}}` — a raw module DAG (nodes, edges, depths,
//!   burst annotations) for direct rate analysis.
//!
//! Files named `*.rejected.json` are *negative* fixtures: the linter
//! must produce at least one error for them, and the CLI fails if it
//! does not.

use fblas_arch::{Device, Precision};
use fblas_core::composition::{Mdag, Op, PlannerConfig, Program};
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// An operand declaration in a program document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperandDoc {
    /// Operand name.
    pub name: String,
    /// `"vector"`, `"matrix"`, or `"scalar"`.
    pub kind: String,
    /// Vector length (vectors only).
    #[serde(default)]
    pub len: Option<usize>,
    /// Matrix rows (matrices only).
    #[serde(default)]
    pub rows: Option<usize>,
    /// Matrix columns (matrices only).
    #[serde(default)]
    pub cols: Option<usize>,
}

/// One operation in a program document. `op` selects the routine; the
/// operand fields used depend on it (mirroring [`Op`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpDoc {
    /// Routine: `copy`, `scal`, `axpy`, `dot`, `gemv`, `ger`.
    pub op: String,
    /// Scaling factor α.
    #[serde(default)]
    pub alpha: Option<f64>,
    /// Scaling factor β (GEMV).
    #[serde(default)]
    pub beta: Option<f64>,
    /// Matrix operand.
    #[serde(default)]
    pub a: Option<String>,
    /// Vector operand x.
    #[serde(default)]
    pub x: Option<String>,
    /// Vector operand y.
    #[serde(default)]
    pub y: Option<String>,
    /// Output operand.
    #[serde(default)]
    pub out: Option<String>,
    /// Transposition flag (GEMV).
    #[serde(default)]
    pub transposed: Option<bool>,
}

/// Planner/device configuration of a program document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigDoc {
    /// Tile height `T_N`.
    #[serde(default)]
    pub tn: Option<usize>,
    /// Tile width `T_M`.
    #[serde(default)]
    pub tm: Option<usize>,
    /// Allow deep channels (ATAX fix (a)).
    #[serde(default)]
    pub allow_deep_channels: Option<bool>,
    /// Default FIFO depth.
    #[serde(default)]
    pub default_depth: Option<u64>,
    /// Target device: `"arria10"`, `"stratix10"`, `"u280"`.
    #[serde(default)]
    pub device: Option<String>,
    /// Element precision: `"single"` / `"double"`.
    #[serde(default)]
    pub precision: Option<String>,
    /// Vectorization width `W`.
    #[serde(default)]
    pub width: Option<usize>,
    /// Recovery retry budget (`FBLAS_RETRY_MAX` equivalent). A value
    /// greater than 1 arms the retry-soundness lints (FL0018).
    #[serde(default)]
    pub retry_max: Option<u32>,
    /// Transport chunk size assumed by the channel-depth tightening
    /// pass (default: the simulator's `FBLAS_CHUNK` default).
    #[serde(default)]
    pub chunk: Option<u64>,
}

/// The `"program"` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramDoc {
    /// Operand declarations.
    pub operands: Vec<OperandDoc>,
    /// Operations, in program order.
    pub ops: Vec<OpDoc>,
    /// Optional configuration.
    #[serde(default = "ConfigDoc::default")]
    pub config: ConfigDoc,
}

/// A node of a `"graph"` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDoc {
    /// Node name.
    pub name: String,
    /// `"interface"` or `"compute"`.
    pub kind: String,
}

/// An edge of a `"graph"` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeDoc {
    /// Producer node name.
    pub from: String,
    /// Consumer node name.
    pub to: String,
    /// Elements produced.
    pub produced: u64,
    /// Elements consumed.
    pub consumed: u64,
    /// Instantiated FIFO depth.
    pub depth: u64,
    /// Burst the consumer buffers before it starts draining (0 = none).
    #[serde(default)]
    pub burst: Option<u64>,
}

/// Analysis configuration of a `"graph"` document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphConfigDoc {
    /// Transport chunk size assumed by the depth-tightening pass.
    #[serde(default)]
    pub chunk: Option<u64>,
    /// Abstract-scheduler step budget override.
    #[serde(default)]
    pub budget: Option<u64>,
    /// Vectorization width `W` (drives reduction-semantics inference).
    #[serde(default)]
    pub width: Option<usize>,
}

/// The `"graph"` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphDoc {
    /// Modules.
    pub nodes: Vec<NodeDoc>,
    /// Channels.
    pub edges: Vec<EdgeDoc>,
    /// Optional analysis configuration.
    #[serde(default)]
    pub config: GraphConfigDoc,
}

/// A classified lintable document.
#[derive(Debug, Clone, PartialEq)]
pub enum Document {
    /// Codegen routines specification (raw JSON text, parsed by the
    /// codegen layer itself so its errors surface as lints).
    Spec(String),
    /// Program document.
    Program(ProgramDoc),
    /// Raw MDAG document.
    Graph(GraphDoc),
}

/// Classify and parse a JSON document. Returns a human-readable error
/// for malformed JSON or an unrecognized shape.
pub fn classify(json: &str) -> Result<Document, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    if v.get("routines").is_some() {
        return Ok(Document::Spec(json.to_string()));
    }
    if let Some(p) = v.get("program") {
        let doc: ProgramDoc =
            serde_json::from_value(p.clone()).map_err(|e| format!("program document: {e}"))?;
        return Ok(Document::Program(doc));
    }
    if let Some(g) = v.get("graph") {
        let doc: GraphDoc =
            serde_json::from_value(g.clone()).map_err(|e| format!("graph document: {e}"))?;
        return Ok(Document::Graph(doc));
    }
    Err("unrecognized document: expected a top-level `routines`, `program`, or `graph` key".into())
}

impl ConfigDoc {
    /// The planner configuration this document requests.
    pub fn planner_config(&self) -> PlannerConfig {
        let d = PlannerConfig::default();
        PlannerConfig {
            tn: self.tn.unwrap_or(d.tn),
            tm: self.tm.unwrap_or(d.tm),
            allow_deep_channels: self.allow_deep_channels.unwrap_or(d.allow_deep_channels),
            default_depth: self.default_depth.unwrap_or(d.default_depth),
        }
    }

    /// The target device (default: the paper's Stratix 10).
    pub fn target_device(&self) -> Result<Device, String> {
        match self.device.as_deref() {
            None => Ok(Device::Stratix10Gx2800),
            Some("arria10") | Some("Arria10Gx1150") => Ok(Device::Arria10Gx1150),
            Some("stratix10") | Some("Stratix10Gx2800") => Ok(Device::Stratix10Gx2800),
            Some("u280") | Some("AlveoU280") => Ok(Device::AlveoU280),
            Some(other) => Err(format!(
                "unknown device `{other}` (expected arria10/stratix10/u280)"
            )),
        }
    }

    /// The element precision (default single).
    pub fn target_precision(&self) -> Result<Precision, String> {
        match self.precision.as_deref() {
            None | Some("single") | Some("f32") => Ok(Precision::Single),
            Some("double") | Some("f64") => Ok(Precision::Double),
            Some(other) => Err(format!(
                "unknown precision `{other}` (expected single/double)"
            )),
        }
    }

    /// The vectorization width (default 16, the codegen default).
    pub fn vector_width(&self) -> usize {
        self.width.unwrap_or(16)
    }
}

impl ProgramDoc {
    /// Build the [`Program`] this document describes. Declaration errors
    /// (bad operand kind, missing fields) are reported as strings; the
    /// planner-level analysis then runs on the result.
    pub fn to_program(&self) -> Result<Program, String> {
        let mut p = Program::new();
        for od in &self.operands {
            match od.kind.as_str() {
                "vector" => {
                    let len = od
                        .len
                        .ok_or_else(|| format!("vector `{}` missing `len`", od.name))?;
                    p.vector(od.name.clone(), len);
                }
                "matrix" => {
                    let rows = od
                        .rows
                        .ok_or_else(|| format!("matrix `{}` missing `rows`", od.name))?;
                    let cols = od
                        .cols
                        .ok_or_else(|| format!("matrix `{}` missing `cols`", od.name))?;
                    p.matrix(od.name.clone(), rows, cols);
                }
                "scalar" => {
                    p.scalar(od.name.clone());
                }
                other => {
                    return Err(format!(
                        "operand `{}`: unknown kind `{other}` (expected vector/matrix/scalar)",
                        od.name
                    ))
                }
            }
        }
        for (i, od) in self.ops.iter().enumerate() {
            p.op(od.to_op(i)?);
        }
        Ok(p)
    }
}

impl OpDoc {
    fn req(&self, field: &str, value: &Option<String>, i: usize) -> Result<String, String> {
        value
            .clone()
            .ok_or_else(|| format!("op #{i} (`{}`) missing `{field}`", self.op))
    }

    /// Convert to the planner's [`Op`].
    pub fn to_op(&self, i: usize) -> Result<Op, String> {
        let alpha = self.alpha.unwrap_or(1.0);
        match self.op.as_str() {
            "copy" => Ok(Op::Copy {
                x: self.req("x", &self.x, i)?,
                out: self.req("out", &self.out, i)?,
            }),
            "scal" => Ok(Op::Scal {
                alpha,
                x: self.req("x", &self.x, i)?,
                out: self.req("out", &self.out, i)?,
            }),
            "axpy" => Ok(Op::Axpy {
                alpha,
                x: self.req("x", &self.x, i)?,
                y: self.req("y", &self.y, i)?,
                out: self.req("out", &self.out, i)?,
            }),
            "dot" => Ok(Op::Dot {
                x: self.req("x", &self.x, i)?,
                y: self.req("y", &self.y, i)?,
                out: self.req("out", &self.out, i)?,
            }),
            "gemv" => Ok(Op::Gemv {
                alpha,
                beta: self.beta.unwrap_or(0.0),
                a: self.req("a", &self.a, i)?,
                transposed: self.transposed.unwrap_or(false),
                x: self.req("x", &self.x, i)?,
                y: self.y.clone(),
                out: self.req("out", &self.out, i)?,
            }),
            "ger" => Ok(Op::Ger {
                alpha,
                a: self.req("a", &self.a, i)?,
                x: self.req("x", &self.x, i)?,
                y: self.req("y", &self.y, i)?,
                out: self.req("out", &self.out, i)?,
            }),
            other => Err(format!("op #{i}: unknown routine `{other}`")),
        }
    }
}

impl GraphDoc {
    /// Build the [`Mdag`] this document describes.
    pub fn to_mdag(&self) -> Result<Mdag, String> {
        let mut g = Mdag::new();
        let mut ids = Vec::with_capacity(self.nodes.len());
        for nd in &self.nodes {
            let id = match nd.kind.as_str() {
                "interface" => g.add_interface(nd.name.clone()),
                "compute" => g.add_compute(nd.name.clone()),
                other => {
                    return Err(format!(
                        "node `{}`: unknown kind `{other}` (expected interface/compute)",
                        nd.name
                    ))
                }
            };
            ids.push((nd.name.clone(), id));
        }
        let find = |name: &str| {
            ids.iter()
                .find(|(n, _)| n == name)
                .map(|(_, id)| *id)
                .ok_or_else(|| format!("edge references unknown node `{name}`"))
        };
        for ed in &self.edges {
            let from = find(&ed.from)?;
            let to = find(&ed.to)?;
            let e = g.add_edge(from, to, ed.produced, ed.consumed, ed.depth);
            if let Some(b) = ed.burst {
                if b > 0 {
                    g.set_burst_before_consume(e, b);
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_three_dialects() {
        assert!(matches!(
            classify(r#"{"routines": []}"#),
            Ok(Document::Spec(_))
        ));
        let p = r#"{"program": {"operands": [{"name":"x","kind":"vector","len":8}],
                      "ops": [{"op":"copy","x":"x","out":"x2"}]}}"#;
        assert!(matches!(classify(p), Ok(Document::Program(_))));
        let g = r#"{"graph": {"nodes": [{"name":"a","kind":"interface"}], "edges": []}}"#;
        assert!(matches!(classify(g), Ok(Document::Graph(_))));
        assert!(classify(r#"{"something": 1}"#).is_err());
        assert!(classify("not json").is_err());
    }

    #[test]
    fn program_doc_builds_a_program() {
        let doc = ProgramDoc {
            operands: vec![
                OperandDoc {
                    name: "x".into(),
                    kind: "vector".into(),
                    len: Some(8),
                    rows: None,
                    cols: None,
                },
                OperandDoc {
                    name: "y".into(),
                    kind: "vector".into(),
                    len: Some(8),
                    rows: None,
                    cols: None,
                },
            ],
            ops: vec![OpDoc {
                op: "copy".into(),
                alpha: None,
                beta: None,
                a: None,
                x: Some("x".into()),
                y: None,
                out: Some("y".into()),
                transposed: None,
            }],
            config: ConfigDoc::default(),
        };
        let p = doc.to_program().unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn graph_doc_builds_an_mdag() {
        let doc = GraphDoc {
            nodes: vec![
                NodeDoc {
                    name: "a".into(),
                    kind: "interface".into(),
                },
                NodeDoc {
                    name: "b".into(),
                    kind: "compute".into(),
                },
            ],
            edges: vec![EdgeDoc {
                from: "a".into(),
                to: "b".into(),
                produced: 8,
                consumed: 8,
                depth: 4,
                burst: None,
            }],
            config: GraphConfigDoc::default(),
        };
        let g = doc.to_mdag().unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ConfigDoc::default();
        assert_eq!(c.planner_config(), PlannerConfig::default());
        assert_eq!(c.target_device().unwrap(), Device::Stratix10Gx2800);
        assert_eq!(c.target_precision().unwrap(), Precision::Single);
        assert_eq!(c.vector_width(), 16);
        assert!(ConfigDoc {
            device: Some("nope".into()),
            ..Default::default()
        }
        .target_device()
        .is_err());
    }
}
